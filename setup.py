"""Setup shim for environments without PEP 517 build isolation.

Offline installs (no network for build dependencies) can use::

    python setup.py develop

All project metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
