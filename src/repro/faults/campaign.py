"""Fault-injection campaign runner (experiment E11, paper §V future work).

For each fault specimen the campaign runs a fresh protected machine up to
the trigger instant, injects, resumes, and classifies the outcome:

``DETECTED``  the SOFIA core reset (violation before any effect),
``MASKED``    the run completed with the golden output (fault absorbed),
``SDC``       silent data corruption — completed with *wrong* output,
``CRASHED``   illegal instruction / bus error trap,
``HUNG``      exceeded the instruction budget.

The headline claim under test: for faults on the *protected surface*
(stored code, fetched words, the program counter), SOFIA converts
silent corruption and hijacks into detection; faults on the unprotected
surface (register file, a glitched MAC comparator) can still cause SDC —
quantifying exactly where the paper's guarantee ends.

Campaigns are embarrassingly parallel: every specimen runs a fresh
machine against the same shared image.  ``run_campaign(parallel=True,
jobs=N)`` fans the specimen list across a process pool via
:mod:`repro.runner`; the image is built once in the parent and shipped
to each worker through the pool initializer, and results come back in
specimen order, so parallel classification counts are byte-identical to
the serial ones.
"""

from __future__ import annotations

import enum
import hashlib
import random
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from ..crypto.keys import DeviceKeys
from ..isa.program import AsmProgram
from ..obs import phase as obs_phase
from ..runner import (ResultStore, ShardSpec, campaign_record,
                      make_batches, resolve_jobs, run_tasks,
                      run_tasks_stored, task_key, write_campaign)
from ..sim.batch import BATCH_WIDTH, LockstepLeader
from ..sim.result import Status
from ..sim.sofia import SofiaMachine
from ..transform.image import SofiaImage
from ..transform.transformer import transform
from .models import (CodeBitFlip, CombinedFault, FaultSpec, FetchGlitch,
                     PCGlitch, RegisterFault, VerifySkip)


class FaultOutcome(enum.Enum):
    DETECTED = "detected"
    MASKED = "masked"
    SDC = "sdc"
    CRASHED = "crashed"
    HUNG = "hung"


@dataclass
class FaultResult:
    fault: FaultSpec
    model: str
    outcome: FaultOutcome
    description: str
    status: Status
    detail: str = ""


@dataclass
class CampaignSummary:
    """Aggregated outcome counts per fault model."""

    counts: Dict[str, Dict[FaultOutcome, int]] = field(default_factory=dict)

    def add(self, result: FaultResult) -> None:
        per_model = self.counts.setdefault(
            result.model, {o: 0 for o in FaultOutcome})
        per_model[result.outcome] += 1

    def rate(self, model: str, outcome: FaultOutcome) -> float:
        per_model = self.counts.get(model)
        if not per_model:
            return 0.0
        total = sum(per_model.values())
        return per_model[outcome] / total if total else 0.0

    def render(self) -> str:
        header = (f"{'fault model':<16s}" + "".join(
            f"{o.value:>10s}" for o in FaultOutcome) + f"{'total':>8s}")
        lines = ["Fault-injection campaign (E11)", header, "-" * len(header)]
        for model in sorted(self.counts):
            per_model = self.counts[model]
            total = sum(per_model.values())
            row = f"{model:<16s}" + "".join(
                f"{per_model[o]:>10d}" for o in FaultOutcome)
            lines.append(row + f"{total:>8d}")
        return "\n".join(lines)


def _classify_fault(fault: FaultSpec, description: str, result,
                    golden_output: Sequence[int]) -> FaultResult:
    """Map one specimen's execution result to its campaign outcome."""
    if result.status is Status.RESET:
        outcome = FaultOutcome.DETECTED
    elif result.status is Status.TRAP:
        outcome = FaultOutcome.CRASHED
    elif result.status is Status.LIMIT:
        outcome = FaultOutcome.HUNG
    elif result.output_ints == list(golden_output):
        outcome = FaultOutcome.MASKED
    else:
        outcome = FaultOutcome.SDC
    return FaultResult(fault=fault, model=type(fault).__name__,
                       outcome=outcome, description=description,
                       status=result.status,
                       detail=str(result.violation or result.trap_reason))


def run_fault(image: SofiaImage, keys: DeviceKeys, fault: FaultSpec,
              golden_output: Sequence[int],
              max_instructions: int = 2_000_000,
              engine: Optional[str] = None) -> FaultResult:
    """Inject one fault into a fresh protected run and classify it."""
    machine = SofiaMachine(image, keys, engine=engine)
    if fault.trigger_instructions > 0:
        machine.run(max_instructions=fault.trigger_instructions)
    description = fault.inject(machine)
    result = machine.run(max_instructions=max_instructions)
    return _classify_fault(fault, description, result, golden_output)


def run_fault_batch(image: SofiaImage, keys: DeviceKeys,
                    faults: Sequence[FaultSpec],
                    golden_output: Sequence[int],
                    max_instructions: int = 2_000_000) -> List[FaultResult]:
    """Lockstep-batched :func:`run_fault` over one specimen group.

    One leader machine (with a bit-slice-warmed front end) runs the
    shared clean prefix exactly once; each specimen forks off at its
    trigger point, injects, and resumes on the scalar engine.  Results
    come back in the *submission* order of ``faults`` and are
    byte-identical to per-specimen :func:`run_fault` calls — the scalar
    prefix cost ``sum(t_i)`` collapses to ``max(t_i)``.
    """
    results: List[Optional[FaultResult]] = [None] * len(faults)
    leader = LockstepLeader(image, keys)
    order = sorted(range(len(faults)),
                   key=lambda i: faults[i].trigger_instructions)
    for index in order:
        fault = faults[index]
        machine = leader.fork_at(fault.trigger_instructions)
        description = fault.inject(machine)
        result = machine.run(max_instructions=max_instructions)
        results[index] = _classify_fault(fault, description, result,
                                         golden_output)
    return results


def sample_faults(image: SofiaImage, total_instructions: int,
                  per_model: int = 25, seed: int = 2016,
                  models: Optional[Sequence[str]] = None,
                  rng: Optional[random.Random] = None) -> List[FaultSpec]:
    """Draw a randomized fault population over the run's dynamic window.

    Randomness is fully injectable: pass either ``seed`` (a private
    ``random.Random`` is created) or an explicit ``rng`` — never a shared
    global stream — so concurrent campaigns draw reproducible, mutually
    independent populations.
    """
    rng = rng if rng is not None else random.Random(seed)
    wanted = set(models or ("CodeBitFlip", "FetchGlitch", "PCGlitch",
                            "RegisterFault", "VerifySkip", "CombinedFault"))
    code_limit = image.code_base + 4 * len(image.words)
    faults: List[FaultSpec] = []

    def trigger() -> int:
        return rng.randrange(0, max(1, total_instructions))

    for _ in range(per_model):
        address = image.code_base + 4 * rng.randrange(len(image.words))
        if "CodeBitFlip" in wanted:
            faults.append(CodeBitFlip(trigger(), address=address,
                                      bit=rng.randrange(32)))
        if "FetchGlitch" in wanted:
            faults.append(FetchGlitch(trigger(), address=address,
                                      xor_mask=1 << rng.randrange(32)))
        if "PCGlitch" in wanted:
            glitch_pc = image.code_base + 4 * rng.randrange(
                (code_limit - image.code_base) // 4)
            faults.append(PCGlitch(trigger(), target=glitch_pc))
        if "RegisterFault" in wanted:
            faults.append(RegisterFault(trigger(),
                                        reg=rng.randrange(1, 32),
                                        bit=rng.randrange(32)))
        if "VerifySkip" in wanted:
            faults.append(VerifySkip(trigger()))
        if "CombinedFault" in wanted:
            # glitch-assisted tamper: corrupt code and the comparator in
            # the same window (the strongest single-shot fault attack)
            when = trigger()
            faults.append(CombinedFault(when, parts=(
                VerifySkip(when),
                CodeBitFlip(when, address=address, bit=rng.randrange(32)),
            )))
    return faults


# per-process context installed by the pool initializer: the protected
# image and run parameters shared by every specimen in the campaign
_WORKER_CTX: Optional[tuple] = None


def _init_fault_worker(image: SofiaImage, keys: DeviceKeys,
                       golden_output: List[int],
                       max_instructions: int,
                       engine: Optional[str] = None) -> None:
    global _WORKER_CTX
    _WORKER_CTX = (image, keys, golden_output, max_instructions, engine)


def _fault_task(fault: FaultSpec) -> FaultResult:
    image, keys, golden_output, max_instructions, engine = _WORKER_CTX
    return run_fault(image, keys, fault, golden_output, max_instructions,
                     engine=engine)


def _fault_batch_task(group: List[FaultSpec]) -> List[FaultResult]:
    image, keys, golden_output, max_instructions, _engine = _WORKER_CTX
    return run_fault_batch(image, keys, group, golden_output,
                           max_instructions)


def run_campaign(program: AsmProgram, keys: DeviceKeys,
                 golden_output: Sequence[int], nonce: int = 0xFA17,
                 per_model: int = 25, seed: int = 2016,
                 max_instructions: int = 2_000_000,
                 rng: Optional[random.Random] = None,
                 parallel: bool = False, jobs: Optional[int] = None,
                 export_path=None, engine: Optional[str] = None,
                 profile=None, batch_width: int = BATCH_WIDTH,
                 models: Optional[Sequence[str]] = None,
                 store_dir=None, shard: Optional[ShardSpec] = None,
                 telemetry=None
                 ) -> "tuple[List[FaultResult], CampaignSummary]":
    """Full campaign on one program; returns per-fault results + summary.

    The protected image is built and golden-checked exactly once; every
    specimen then runs against it.  With ``parallel=True`` the specimen
    list is dispatched across ``jobs`` worker processes (default: one per
    CPU); serial and parallel runs classify identically because each
    ``run_fault`` is a pure function of (image, fault).  ``export_path``
    writes the campaign's parameters and per-specimen results as JSON.

    ``engine="batch"`` routes the specimens through the lockstep batch
    engine in submission-order groups of ``batch_width`` (one pool task
    per group; the partition depends only on the width, so any ``--jobs``
    stays byte-identical) — results and exports match the scalar path
    exactly, just faster.  ``models`` restricts the sampled population to
    the named fault models (default: all six).

    ``store_dir`` makes the campaign incremental: each specimen's result
    is content-addressed by (code version, image + run context, fault
    spec, engine) in a :class:`~repro.runner.store.ResultStore` there,
    cached specimens are loaded instead of simulated, and a killed
    campaign resumed over the same store produces an export
    byte-identical to an uninterrupted run (store-backed exports are
    canonical: no wall-clock or worker-count field).  ``shard`` restricts
    execution to one deterministic slice of the specimen list; the
    summary then covers only the results present, and no export is
    written until a merged store makes the campaign complete.

    ``telemetry`` (a :class:`repro.obs.Telemetry`, default ``None``)
    records phases, per-task spans and simulator counters — strictly
    observationally: results and exports are byte-identical either way.
    """
    started = time.perf_counter()
    if profile is not None:
        keys = keys.for_profile(profile)
    with obs_phase(telemetry, "build"):
        image = transform(program, keys, nonce=nonce, profile=profile)
        baseline = SofiaMachine(image, keys,
                                engine=engine).run(max_instructions)
    if list(baseline.output_ints) != list(golden_output) or not baseline.ok:
        raise AssertionError(
            f"golden run broken: {baseline.summary()} "
            f"{baseline.output_ints}")
    with obs_phase(telemetry, "plan"):
        faults = sample_faults(image, baseline.instructions,
                               per_model=per_model, seed=seed,
                               models=models, rng=rng)
    store = ResultStore(store_dir) if store_dir is not None else None
    fault_keys = None
    if store is not None:
        # everything the worker context contributes to one result: the
        # image is the content-determined build artifact, the keys are
        # named by their provisioned values (never digest live objects)
        context = {
            "image": hashlib.sha256(image.to_bytes()).hexdigest(),
            "keys": [keys.k1, keys.k2, keys.k3,
                     keys.cipher_factory.__name__],
            "golden": list(golden_output),
            "max_instructions": max_instructions,
        }
        fault_keys = [task_key("fault-injection", context, fault,
                               engine=engine) for fault in faults]
    global _WORKER_CTX
    try:
        initargs = (image, keys, list(golden_output), max_instructions,
                    engine)

        def execute(missing: List[FaultSpec]) -> List[FaultResult]:
            # the batch engine is byte-identical to per-specimen runs at
            # any grouping, so grouping only the missing faults is safe
            if engine == "batch":
                groups = make_batches(missing, batch_width)
                return [result for group_results in run_tasks(
                    _fault_batch_task, groups, jobs=jobs,
                    parallel=parallel, initializer=_init_fault_worker,
                    initargs=initargs, telemetry=telemetry)
                    for result in group_results]
            return run_tasks(
                _fault_task, missing, jobs=jobs, parallel=parallel,
                initializer=_init_fault_worker, initargs=initargs,
                telemetry=telemetry)

        with obs_phase(telemetry, "execute"):
            run = run_tasks_stored(execute, faults, fault_keys,
                                   store=store, shard=shard,
                                   telemetry=telemetry)
        results = run.results
    finally:
        _WORKER_CTX = None  # release the image pinned by the serial path
    summary = CampaignSummary()
    for result in results:
        if result is not None:
            summary.add(result)
    if export_path is not None and run.complete:
        parameters = {"nonce": nonce, "per_model": per_model, "seed": seed,
                      "max_instructions": max_instructions,
                      "baseline_instructions": baseline.instructions}
        if models is not None:
            # restricted populations record their surface; the default
            # all-models export layout is unchanged
            parameters["models"] = sorted(models)
        if store is not None:
            # canonical export: resumed/merged runs must be byte-equal,
            # so no wall-clock or worker-count field
            record = campaign_record("fault-injection", parameters,
                                     results)
        else:
            record = campaign_record(
                "fault-injection", parameters, results,
                jobs=resolve_jobs(jobs) if parallel else 1,
                elapsed_seconds=time.perf_counter() - started)
        with obs_phase(telemetry, "export"):
            write_campaign(export_path, record)
    return results, summary
