"""Fault-injection study (paper §V future work, experiment E11)."""

from .campaign import (CampaignSummary, FaultOutcome, FaultResult,
                       run_campaign, run_fault, sample_faults)
from .models import (CodeBitFlip, CombinedFault, FaultSpec, FetchGlitch,
                     PCGlitch, RegisterFault, VerifySkip, with_trigger)

__all__ = [
    "FaultSpec", "CodeBitFlip", "FetchGlitch", "PCGlitch",
    "RegisterFault", "VerifySkip", "CombinedFault", "with_trigger",
    "FaultOutcome", "FaultResult", "CampaignSummary",
    "run_fault", "run_campaign", "sample_faults",
]
