"""Fault models for the fault-injection campaign (paper §V future work).

The paper closes with "we further plan to test the architecture's
resistance to fault-based attacks".  This package implements that study
for the functional model: physical fault effects (voltage/clock glitches,
laser shots) are abstracted as architectural-state corruptions injected at
a chosen dynamic instant:

* ``CodeBitFlip``      — a bit flips in stored program memory (SEU in the
                         flash/SRAM holding the encrypted binary);
* ``FetchGlitch``      — one fetched word is corrupted on the bus for a
                         single traversal (transient, memory unchanged);
* ``PCGlitch``         — the program counter is forced to an arbitrary
                         value (classic instruction-skip / jump glitch);
* ``RegisterFault``    — a register bit flips (datapath SEU);
* ``VerifySkip``       — the MAC comparison itself is glitched to pass
                         once (the canonical attack on any checker).

Each model reports what SOFIA *can* and *cannot* promise: code/fetch/PC
faults perturb the decrypt-verify pipeline and are detected like software
attacks; register faults and checker glitches are outside the threat model
(the paper protects instruction integrity, not datapath state).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Optional

from ..sim.sofia import SofiaMachine


@dataclass(frozen=True)
class FaultSpec:
    """Base class: when (dynamic instruction index) and what to corrupt."""

    trigger_instructions: int  # inject after this many committed instrs

    def inject(self, machine: SofiaMachine) -> str:
        """Apply the fault; returns a short description for the report."""
        raise NotImplementedError


@dataclass(frozen=True)
class CodeBitFlip(FaultSpec):
    """Flip ``bit`` of the stored code word at ``address``."""

    address: int = 0
    bit: int = 0

    def inject(self, machine: SofiaMachine) -> str:
        word = machine.memory.fetch_word(self.address)
        machine.memory.poke_code(self.address, word ^ (1 << self.bit))
        return f"code bit {self.bit} @ 0x{self.address:08x}"


@dataclass(frozen=True)
class FetchGlitch(FaultSpec):
    """Corrupt the next fetch of ``address`` once (bus transient)."""

    address: int = 0
    xor_mask: int = 1

    def inject(self, machine: SofiaMachine) -> str:
        original = machine.memory.fetch_word(self.address)
        machine.memory.poke_code(self.address, original ^ self.xor_mask)

        # restore after one block traversal: hook the block cache flush
        # (the poke cleared it; the next decrypt sees the glitched word).
        # A subsequent poke restores memory and flushes again, modelling a
        # transient that affected exactly one traversal window.
        machine.pending_fetch_restore = (self.address, original)
        return f"fetch glitch @ 0x{self.address:08x} mask 0x{self.xor_mask:x}"


@dataclass(frozen=True)
class PCGlitch(FaultSpec):
    """Force the PC to ``target`` (instruction-skip / jump glitch)."""

    target: int = 0

    def inject(self, machine: SofiaMachine) -> str:
        machine.state.pc = self.target
        return f"pc glitch -> 0x{self.target:08x}"


@dataclass(frozen=True)
class RegisterFault(FaultSpec):
    """Flip ``bit`` of register ``reg`` (datapath SEU)."""

    reg: int = 4
    bit: int = 0

    def inject(self, machine: SofiaMachine) -> str:
        machine.state.regs[self.reg] ^= (1 << self.bit)
        machine.state.regs[self.reg] &= 0xFFFFFFFF
        if self.reg == 0:
            machine.state.regs[0] = 0  # r0 is hard-wired
        return f"register r{self.reg} bit {self.bit}"


@dataclass(frozen=True)
class VerifySkip(FaultSpec):
    """Glitch the MAC comparator to accept the next failing block."""

    def inject(self, machine: SofiaMachine) -> str:
        machine.verify_skip_budget = getattr(
            machine, "verify_skip_budget", 0) + 1
        return "verify comparator glitched (one acceptance)"


@dataclass(frozen=True)
class CombinedFault(FaultSpec):
    """Several faults injected at the same instant.

    The canonical fault *attack* on SOFIA: flip a code bit **and** glitch
    the MAC comparator in the same window — the glitch lets exactly one
    tampered block through, turning a deterministic detection into silent
    data corruption.  This is what the paper's planned fault study must
    defend against (e.g. by a redundant comparator).
    """

    parts: tuple = ()

    def inject(self, machine: SofiaMachine) -> str:
        return " + ".join(part.inject(machine) for part in self.parts)


def with_trigger(spec: FaultSpec, trigger: int) -> FaultSpec:
    """Copy of ``spec`` with a different trigger instant."""
    return dataclasses.replace(spec, trigger_instructions=trigger)
