"""Exception hierarchy for the SOFIA reproduction.

All library errors derive from :class:`ReproError` so callers can catch a
single base class.  The hierarchy mirrors the subsystem layout: assembly and
compilation problems, transformation problems, and run-time integrity
violations raised by the simulated SOFIA hardware.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class AssemblyError(ReproError):
    """Raised by the assembler for malformed assembly input."""

    def __init__(self, message: str, line: int = 0) -> None:
        self.line = line
        if line:
            message = f"line {line}: {message}"
        super().__init__(message)


class EncodingError(ReproError):
    """Raised when an instruction cannot be encoded (range/field errors)."""


class DecodingError(ReproError):
    """Raised when a 32-bit word does not decode to a valid instruction."""


class CompileError(ReproError):
    """Raised by the minicc compiler for invalid source programs."""

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        self.line = line
        self.column = column
        if line:
            message = f"{line}:{column}: {message}"
        super().__init__(message)


class CFGError(ReproError):
    """Raised when a control flow graph cannot be constructed precisely."""


class TransformError(ReproError):
    """Raised when a program cannot be rewritten into SOFIA blocks."""


class ImageError(ReproError):
    """Raised for malformed SOFIA binary images."""


class SimulationError(ReproError):
    """Raised for simulator misuse (bad memory map, missing entry, ...)."""


class HardwareModelError(ReproError, ValueError):
    """Raised by :mod:`repro.hwmodel` for out-of-range design parameters.

    Subclasses :class:`ValueError` as well: the hardware model predates
    the typed hierarchy and its callers (and tests) historically caught
    ``ValueError`` for bad unroll factors — both spellings keep working.
    """


class IntegrityViolation(ReproError):
    """Raised (or recorded) by the simulated SOFIA core on a violation.

    Attributes mirror what the hardware knows at detection time.
    """

    def __init__(self, kind: str, pc: int, detail: str = "") -> None:
        self.kind = kind
        self.pc = pc
        self.detail = detail
        message = f"{kind} violation at pc=0x{pc:08x}"
        if detail:
            message = f"{message}: {detail}"
        super().__init__(message)
