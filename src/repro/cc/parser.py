"""Recursive-descent parser for minicc.

Grammar (C subset; everything is ``int``)::

    program   := (global | function)*
    global    := 'int' ident ('[' num ']')? ('=' init)? ';'
    init      := num | '{' num (',' num)* '}'
    function  := 'int' ident '(' params? ')' block
    params    := 'int' ident (',' 'int' ident)*
    block     := '{' stmt* '}'
    stmt      := block | 'if' ... | 'while' ... | 'for' ... | 'return' e? ';'
               | 'break' ';' | 'continue' ';'
               | 'int' ident ('[' num ']')? ('=' expr)? ';'
               | expr? ';'
    expr      := assignment (with compound operators lowered to
                 plain assignment + binary op)
    precedence: ?: < || < && < | < ^ < & < ==,!= < <,<=,>,>= < <<,>>
                < +,- < *,/,% < unary
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..errors import CompileError
from . import ast_nodes as ast
from .lexer import Token, tokenize

_BINARY_LEVELS = [
    ["||"],
    ["&&"],
    ["|"],
    ["^"],
    ["&"],
    ["==", "!="],
    ["<", "<=", ">", ">="],
    ["<<", ">>"],
    ["+", "-"],
    ["*", "/", "%"],
]

_COMPOUND_OPS = {"+=": "+", "-=": "-", "*=": "*", "/=": "/", "%=": "%",
                 "&=": "&", "|=": "|", "^=": "^", "<<=": "<<", ">>=": ">>"}


class Parser:
    def __init__(self, tokens: List[Token]) -> None:
        self.tokens = tokens
        self.pos = 0

    # -- token helpers -----------------------------------------------------

    @property
    def current(self) -> Token:
        return self.tokens[self.pos]

    def _error(self, message: str) -> CompileError:
        tok = self.current
        return CompileError(message, tok.line, tok.column)

    def advance(self) -> Token:
        token = self.current
        if token.kind != "eof":
            self.pos += 1
        return token

    def check(self, kind: str, text: Optional[str] = None) -> bool:
        token = self.current
        return token.kind == kind and (text is None or token.text == text)

    def accept(self, kind: str, text: Optional[str] = None) -> Optional[Token]:
        if self.check(kind, text):
            return self.advance()
        return None

    def expect(self, kind: str, text: Optional[str] = None) -> Token:
        if not self.check(kind, text):
            want = text or kind
            raise self._error(f"expected {want!r}, found {self.current.text!r}")
        return self.advance()

    # -- top level -----------------------------------------------------------

    def parse_program(self) -> ast.Program:
        program = ast.Program()
        while not self.check("eof"):
            self.expect("kw", "int")
            name = self.expect("ident").text
            if self.check("op", "("):
                program.functions.append(self._function_rest(name))
            else:
                program.globals.append(self._global_rest(name))
        self._validate(program)
        return program

    def _validate(self, program: ast.Program) -> None:
        seen = set()
        for item in list(program.globals) + list(program.functions):
            if item.name in seen:
                raise CompileError(f"duplicate definition of {item.name!r}",
                                   item.line)
            seen.add(item.name)

    def _global_rest(self, name: str) -> ast.GlobalVar:
        line = self.current.line
        size: Optional[int] = None
        init: Tuple[int, ...] = ()
        if self.accept("op", "["):
            size_tok = self.expect("num")
            size = size_tok.value
            if size <= 0:
                raise CompileError(f"array {name!r} must have positive size",
                                   size_tok.line)
            self.expect("op", "]")
        if self.accept("op", "="):
            if size is None:
                init = (self._const_int(),)
            else:
                self.expect("op", "{")
                values = [self._const_int()]
                while self.accept("op", ","):
                    values.append(self._const_int())
                self.expect("op", "}")
                if len(values) > size:
                    raise CompileError(
                        f"too many initializers for {name!r}", line)
                init = tuple(values)
        self.expect("op", ";")
        return ast.GlobalVar(name=name, size=size, init=init, line=line)

    def _const_int(self) -> int:
        negative = bool(self.accept("op", "-"))
        token = self.expect("num")
        return -token.value if negative else token.value

    def _function_rest(self, name: str) -> ast.Function:
        line = self.current.line
        self.expect("op", "(")
        params: List[str] = []
        if not self.check("op", ")"):
            if self.accept("kw", "void"):
                pass
            else:
                while True:
                    self.expect("kw", "int")
                    params.append(self.expect("ident").text)
                    if not self.accept("op", ","):
                        break
        self.expect("op", ")")
        if len(params) > 8:
            raise CompileError(
                f"function {name!r} has more than 8 parameters", line)
        if len(set(params)) != len(params):
            raise CompileError(f"duplicate parameter in {name!r}", line)
        body = self._block()
        return ast.Function(name=name, params=tuple(params), body=body,
                            line=line)

    # -- statements ------------------------------------------------------------

    def _block(self) -> ast.BlockStmt:
        line = self.current.line
        self.expect("op", "{")
        body: List = []
        while not self.check("op", "}"):
            if self.check("eof"):
                raise self._error("unterminated block")
            body.append(self._statement())
        self.expect("op", "}")
        return ast.BlockStmt(body=tuple(body), line=line)

    def _statement(self):
        token = self.current
        if self.check("op", "{"):
            return self._block()
        if self.accept("kw", "if"):
            self.expect("op", "(")
            cond = self._expression()
            self.expect("op", ")")
            then = self._statement()
            otherwise = self._statement() if self.accept("kw", "else") else None
            return ast.If(cond, then, otherwise, line=token.line)
        if self.accept("kw", "while"):
            self.expect("op", "(")
            cond = self._expression()
            self.expect("op", ")")
            return ast.While(cond, self._statement(), line=token.line)
        if self.accept("kw", "do"):
            body = self._statement()
            self.expect("kw", "while")
            self.expect("op", "(")
            cond = self._expression()
            self.expect("op", ")")
            self.expect("op", ";")
            return ast.DoWhile(body, cond, line=token.line)
        if self.accept("kw", "for"):
            self.expect("op", "(")
            decl = None
            init = None
            if self.accept("kw", "int"):
                # `for (int i = e; ...)` desugars to a scoped declaration
                name = self.expect("ident").text
                self.expect("op", "=")
                decl = ast.Decl(name, None, self._expression(),
                                line=token.line)
            elif not self.check("op", ";"):
                init = self._expression()
            self.expect("op", ";")
            cond = None if self.check("op", ";") else self._expression()
            self.expect("op", ";")
            step = None if self.check("op", ")") else self._expression()
            self.expect("op", ")")
            loop = ast.For(init, cond, step, self._statement(),
                           line=token.line)
            if decl is not None:
                return ast.BlockStmt(body=(decl, loop), line=token.line)
            return loop
        if self.accept("kw", "return"):
            value = None if self.check("op", ";") else self._expression()
            self.expect("op", ";")
            return ast.Return(value, line=token.line)
        if self.accept("kw", "break"):
            self.expect("op", ";")
            return ast.Break(line=token.line)
        if self.accept("kw", "continue"):
            self.expect("op", ";")
            return ast.Continue(line=token.line)
        if self.accept("kw", "int"):
            name = self.expect("ident").text
            size: Optional[int] = None
            init = None
            if self.accept("op", "["):
                size_tok = self.expect("num")
                size = size_tok.value
                if size <= 0:
                    raise CompileError("array size must be positive",
                                       size_tok.line)
                self.expect("op", "]")
            if self.accept("op", "="):
                if size is not None:
                    raise self._error("local array initializers unsupported")
                init = self._expression()
            self.expect("op", ";")
            return ast.Decl(name, size, init, line=token.line)
        if self.accept("op", ";"):
            return ast.BlockStmt(body=(), line=token.line)
        expr = self._expression()
        self.expect("op", ";")
        return ast.ExprStmt(expr, line=token.line)

    # -- expressions ---------------------------------------------------------

    def _expression(self):
        return self._assignment()

    def _assignment(self):
        left = self._ternary()
        token = self.current
        if self.check("op", "="):
            self.advance()
            value = self._assignment()
            self._check_lvalue(left, token)
            return ast.Assign(left, value, line=token.line)
        if token.kind == "op" and token.text in _COMPOUND_OPS:
            self.advance()
            value = self._assignment()
            self._check_lvalue(left, token)
            op = _COMPOUND_OPS[token.text]
            return ast.Assign(left, ast.Binary(op, left, value,
                                               line=token.line),
                              line=token.line)
        return left

    def _check_lvalue(self, expr, token: Token) -> None:
        if not isinstance(expr, (ast.Var, ast.Index)):
            raise CompileError("assignment target must be a variable or "
                               "array element", token.line, token.column)

    def _ternary(self):
        cond = self._binary(0)
        if self.accept("op", "?"):
            then = self._expression()
            self.expect("op", ":")
            otherwise = self._ternary()
            return ast.Conditional(cond, then, otherwise)
        return cond

    def _binary(self, level: int):
        if level >= len(_BINARY_LEVELS):
            return self._unary()
        left = self._binary(level + 1)
        while (self.current.kind == "op"
               and self.current.text in _BINARY_LEVELS[level]):
            op = self.advance()
            right = self._binary(level + 1)
            left = ast.Binary(op.text, left, right, line=op.line)
        return left

    def _unary(self):
        token = self.current
        if token.kind == "op" and token.text in ("++", "--"):
            # prefix increment: exact desugaring to an assignment
            self.advance()
            operand = self._unary()
            self._check_lvalue(operand, token)
            op = "+" if token.text == "++" else "-"
            return ast.Assign(operand,
                              ast.Binary(op, operand, ast.Num(1),
                                         line=token.line),
                              line=token.line)
        if self.check("op", "-"):
            self.advance()
            operand = self._unary()
            if isinstance(operand, ast.Num):
                return ast.Num(-operand.value, line=token.line)
            return ast.Unary("-", operand, line=token.line)
        if self.check("op", "!"):
            self.advance()
            return ast.Unary("!", self._unary(), line=token.line)
        if self.check("op", "~"):
            self.advance()
            return ast.Unary("~", self._unary(), line=token.line)
        if self.check("op", "+"):
            self.advance()
            return self._unary()
        return self._postfix()

    def _postfix(self):
        token = self.current
        if token.kind == "num":
            self.advance()
            return ast.Num(token.value, line=token.line)
        if self.accept("op", "("):
            expr = self._expression()
            self.expect("op", ")")
            return expr
        if token.kind == "ident":
            self.advance()
            if self.accept("op", "("):
                args: List = []
                if not self.check("op", ")"):
                    args.append(self._expression())
                    while self.accept("op", ","):
                        args.append(self._expression())
                self.expect("op", ")")
                return ast.Call(token.text, tuple(args), line=token.line)
            if self.accept("op", "["):
                index = self._expression()
                self.expect("op", "]")
                return self._maybe_postfix(
                    ast.Index(token.text, index, line=token.line))
            return self._maybe_postfix(ast.Var(token.text, line=token.line))
        raise self._error(f"unexpected token {token.text!r} in expression")

    def _maybe_postfix(self, expr):
        token = self.current
        if token.kind == "op" and token.text in ("++", "--"):
            self.advance()
            return ast.PostOp(expr, "+" if token.text == "++" else "-",
                              line=token.line)
        return expr


def parse_source(source: str) -> ast.Program:
    """Tokenize + parse minicc source."""
    return Parser(tokenize(source)).parse_program()
