"""Abstract syntax tree for minicc."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple


# --- expressions -----------------------------------------------------------

@dataclass(frozen=True)
class Num:
    value: int
    line: int = 0


@dataclass(frozen=True)
class Var:
    name: str
    line: int = 0


@dataclass(frozen=True)
class Index:
    """Array access ``name[index]``."""

    name: str
    index: "Expr"
    line: int = 0


@dataclass(frozen=True)
class Unary:
    op: str          # "-", "!", "~"
    operand: "Expr"
    line: int = 0


@dataclass(frozen=True)
class Binary:
    op: str          # arithmetic/comparison/logical operators
    left: "Expr"
    right: "Expr"
    line: int = 0


@dataclass(frozen=True)
class Assign:
    """``target = value`` where target is Var or Index."""

    target: "Expr"
    value: "Expr"
    line: int = 0


@dataclass(frozen=True)
class Call:
    name: str
    args: Tuple["Expr", ...]
    line: int = 0


@dataclass(frozen=True)
class Conditional:
    """Ternary ``cond ? a : b``."""

    cond: "Expr"
    then: "Expr"
    otherwise: "Expr"
    line: int = 0


@dataclass(frozen=True)
class PostOp:
    """Postfix ``target++`` / ``target--`` (value is the *old* value)."""

    target: "Expr"   # Var or Index
    op: str          # "+" or "-"
    line: int = 0


Expr = (Num, Var, Index, Unary, Binary, Assign, Call, Conditional, PostOp)


# --- statements --------------------------------------------------------------

@dataclass(frozen=True)
class ExprStmt:
    expr: "Expr"
    line: int = 0


@dataclass(frozen=True)
class Decl:
    """Local declaration ``int name [= init]`` or ``int name[size]``."""

    name: str
    size: Optional[int]  # None for scalars, element count for arrays
    init: Optional["Expr"]
    line: int = 0


@dataclass(frozen=True)
class If:
    cond: "Expr"
    then: "Stmt"
    otherwise: Optional["Stmt"]
    line: int = 0


@dataclass(frozen=True)
class While:
    cond: "Expr"
    body: "Stmt"
    line: int = 0


@dataclass(frozen=True)
class DoWhile:
    body: "Stmt"
    cond: "Expr"
    line: int = 0


@dataclass(frozen=True)
class For:
    init: Optional["Expr"]
    cond: Optional["Expr"]
    step: Optional["Expr"]
    body: "Stmt"
    line: int = 0


@dataclass(frozen=True)
class Return:
    value: Optional["Expr"]
    line: int = 0


@dataclass(frozen=True)
class Break:
    line: int = 0


@dataclass(frozen=True)
class Continue:
    line: int = 0


@dataclass(frozen=True)
class BlockStmt:
    body: Tuple["Stmt", ...]
    line: int = 0


Stmt = (ExprStmt, Decl, If, While, DoWhile, For, Return, Break, Continue,
        BlockStmt)


# --- top level ----------------------------------------------------------------

@dataclass(frozen=True)
class GlobalVar:
    name: str
    size: Optional[int]          # None scalar, element count for arrays
    init: Tuple[int, ...] = ()   # constant initializers
    line: int = 0


@dataclass(frozen=True)
class Function:
    name: str
    params: Tuple[str, ...]
    body: BlockStmt
    line: int = 0


@dataclass
class Program:
    globals: List[GlobalVar] = field(default_factory=list)
    functions: List[Function] = field(default_factory=list)

    def function(self, name: str) -> Function:
        for fn in self.functions:
            if fn.name == name:
                return fn
        raise KeyError(name)
