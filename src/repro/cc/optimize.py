"""Peephole optimizer for minicc output: push/pop elimination.

The accumulator code generator keeps intermediate expression values on the
real stack::

    addi sp, sp, -4          # push t0
    sw   t0, 0(sp)
    ...evaluate the right operand into t0...
    lw   t1, 0(sp)           # pop into t1
    addi sp, sp, 4

When the bracketed span is short, straight-line and register-poor, the
round trip through memory is pure waste.  This pass rewrites matching
push/pop pairs into register moves through a free scratch register::

    addi s0, t0, 0           # mv s0, t0
    ...evaluate...
    addi t1, s0, 0           # mv t1, s0

Safety conditions (all checked):

* the span between push and pop contains no control transfer (calls
  clobber caller-saved registers; branches break the linear match),
* no label lands inside the rewritten window (no hidden entries),
* the span never touches ``sp`` (nested pushes are rewritten innermost-
  first, which removes their ``sp`` uses and unlocks the outer pair),
* the scratch register is referenced nowhere in the span.

The scratch pool uses the callee-saved registers s0..s7 — minicc's code
generator never touches them, so cross-call safety is not required (and
spans containing calls are rejected anyway).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..isa.instructions import (Instruction, registers_read,
                                registers_written)
from ..isa.program import AsmProgram
from ..isa.registers import SP

#: scratch registers: s0..s7 (never emitted by the code generator)
_SCRATCH_POOL = tuple(range(20, 28))

#: the accumulator register pushed by the code generator
_ACC = 12  # t0


def _is_push(a: Instruction, b: Instruction) -> bool:
    return (a.mnemonic == "addi" and a.rd == SP and a.rs1 == SP
            and a.imm == -4
            and b.mnemonic == "sw" and b.rs2 == _ACC and b.rs1 == SP
            and b.imm == 0)


def _is_pop(a: Instruction, b: Instruction) -> Optional[int]:
    """Returns the pop destination register, or None."""
    if (a.mnemonic == "lw" and a.rs1 == SP and a.imm == 0
            and b.mnemonic == "addi" and b.rd == SP and b.rs1 == SP
            and b.imm == 4):
        return a.rd
    return None


def _touches_sp(instr: Instruction) -> bool:
    return SP in registers_read(instr) or SP in registers_written(instr)


def _span_is_safe(instructions: List[Instruction], start: int,
                  end: int) -> bool:
    """May instructions[start:end] sit between a rewritten push/pop?"""
    for instr in instructions[start:end]:
        spec = instr.spec
        if spec.is_cti or spec.is_halt:
            return False
        if _touches_sp(instr):
            return False
    return True


def _free_scratch(instructions: List[Instruction], start: int,
                  end: int) -> Optional[int]:
    used = set()
    for instr in instructions[start:end]:
        used |= registers_read(instr)
        used |= registers_written(instr)
    for reg in _SCRATCH_POOL:
        if reg not in used:
            return reg
    return None


@dataclass
class OptimizeStats:
    pairs_rewritten: int = 0
    instructions_removed: int = 0


def _find_rewritable_pair(program: AsmProgram
                          ) -> Optional[Tuple[int, int, int]]:
    """Innermost (push_index, pop_index, scratch) pair, if any."""
    instructions = program.instructions
    label_indices = set(program.labels.values())
    stack: List[int] = []
    i = 0
    while i + 1 < len(instructions):
        if _is_push(instructions[i], instructions[i + 1]):
            stack.append(i)
            i += 2
            continue
        pop_reg = _is_pop(instructions[i], instructions[i + 1])
        if pop_reg is not None and stack:
            push_index = stack.pop()
            span_start, span_end = push_index + 2, i
            window = range(push_index, i + 2)
            if (not any(li in window for li in label_indices)
                    and _span_is_safe(instructions, span_start, span_end)):
                scratch = _free_scratch(instructions, span_start, span_end)
                if scratch is not None and scratch != pop_reg:
                    return push_index, i, scratch
            i += 2
            continue
        i += 1
    return None


def _apply_rewrite(program: AsmProgram, push_index: int, pop_index: int,
                   scratch: int) -> None:
    instructions = program.instructions
    pop_reg = instructions[pop_index].rd
    line_push = instructions[push_index].line
    line_pop = instructions[pop_index].line
    # push: two instructions -> one move
    instructions[push_index:push_index + 2] = [
        Instruction("addi", rd=scratch, rs1=_ACC, imm=0, line=line_push)]
    pop_index -= 1  # everything after the push shifted left by one
    instructions[pop_index:pop_index + 2] = [
        Instruction("addi", rd=pop_reg, rs1=scratch, imm=0, line=line_pop)]

    def remap(index: int) -> int:
        adjusted = index
        if index > push_index:
            adjusted -= 1
        if index > pop_index + 1:
            adjusted -= 1
        return adjusted

    program.labels = {name: remap(index)
                      for name, index in program.labels.items()}


def optimize_pushpop(program: AsmProgram,
                     max_passes: int = 10_000) -> OptimizeStats:
    """Rewrite push/pop pairs in place; returns what was done."""
    stats = OptimizeStats()
    for _ in range(max_passes):
        found = _find_rewritable_pair(program)
        if found is None:
            break
        _apply_rewrite(program, *found)
        stats.pairs_rewritten += 1
        stats.instructions_removed += 2
    program.validate()
    return stats
