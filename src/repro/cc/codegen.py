"""SRISC code generator for minicc.

Strategy: a classic accumulator machine.  Every expression leaves its value
in ``t0``; binary operators stash the left operand on the real stack and
pop it into ``t1``.  Locals live at fixed offsets from a frame pointer
(``fp``) so stack pushes during expression evaluation never disturb
addressing.  Every function has exactly one ``ret`` (a shared epilogue),
which is precisely the canonical form the SOFIA transformer wants.

Calling convention: arguments in ``a0..a7`` (spilled to the callee's frame
on entry, so recursion just works), result in ``a0``, ``ra``/``fp`` saved
in the frame.

Builtins map to the MMIO console: ``print_int(x)``, ``print_char(x)``,
``print_word(x)``, ``exit(x)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..errors import CompileError
from ..isa.program import MMIO_EXIT, MMIO_PUTCHAR, MMIO_PUTINT, MMIO_PUTWORD
from . import ast_nodes as ast

_BUILTINS = {"print_int": MMIO_PUTINT, "print_char": MMIO_PUTCHAR,
             "print_word": MMIO_PUTWORD, "exit": MMIO_EXIT}

_SIMPLE_BINOPS = {"+": "add", "-": "sub", "*": "mul", "/": "div",
                  "%": "rem", "&": "and", "|": "or", "^": "xor",
                  "<<": "sll", ">>": "sra"}


@dataclass
class _GlobalInfo:
    name: str
    is_array: bool


@dataclass
class _LocalInfo:
    offset: int
    is_array: bool


class _FunctionContext:
    """Per-function state: frame layout, scopes, loop labels."""

    def __init__(self, fn: ast.Function) -> None:
        self.fn = fn
        self.slots: Dict[int, _LocalInfo] = {}   # id(decl node) -> info
        self.frame_locals = 0                     # bytes of locals
        self.scopes: List[Dict[str, _LocalInfo]] = []
        self.loop_stack: List[Tuple[str, str]] = []  # (continue, break)

    def allocate(self, node_id: int, words: int, is_array: bool) -> _LocalInfo:
        info = _LocalInfo(offset=self.frame_locals, is_array=is_array)
        self.slots[node_id] = info
        self.frame_locals += 4 * words
        return info

    @property
    def frame_size(self) -> int:
        # locals + saved ra + saved fp, kept 8-byte aligned
        size = self.frame_locals + 8
        return (size + 7) & ~7

    def push_scope(self) -> None:
        self.scopes.append({})

    def pop_scope(self) -> None:
        self.scopes.pop()

    def declare(self, name: str, info: _LocalInfo, line: int) -> None:
        scope = self.scopes[-1]
        if name in scope:
            raise CompileError(f"duplicate declaration of {name!r}", line)
        scope[name] = info

    def lookup(self, name: str) -> Optional[_LocalInfo]:
        for scope in reversed(self.scopes):
            if name in scope:
                return scope[name]
        return None


class CodeGenerator:
    """Emits SRISC assembly text for a parsed minicc program."""

    def __init__(self, program: ast.Program) -> None:
        self.program = program
        self.lines: List[str] = []
        self.globals: Dict[str, _GlobalInfo] = {}
        self.functions: Dict[str, ast.Function] = {}
        self._label_counter = 0

    # -- helpers ---------------------------------------------------------

    def emit(self, text: str) -> None:
        self.lines.append(f"    {text}")

    def emit_label(self, label: str) -> None:
        self.lines.append(f"{label}:")

    def new_label(self, hint: str) -> str:
        self._label_counter += 1
        return f"__L{self._label_counter}_{hint}"

    # -- top level ----------------------------------------------------------

    def generate(self) -> str:
        for var in self.program.globals:
            self.globals[var.name] = _GlobalInfo(var.name,
                                                 var.size is not None)
        for fn in self.program.functions:
            if fn.name in _BUILTINS:
                raise CompileError(
                    f"{fn.name!r} is a builtin and cannot be redefined",
                    fn.line)
            if fn.name in self.globals:
                raise CompileError(
                    f"{fn.name!r} is already a global variable", fn.line)
            self.functions[fn.name] = fn
        if "main" not in self.functions:
            raise CompileError("program has no main() function")
        if self.functions["main"].params:
            raise CompileError("main() must take no parameters")

        self.lines.append(".entry __start")
        self.lines.append(".text")
        self.emit_label("__start")
        self.emit("call main")
        self.emit(f"li t0, 0x{MMIO_EXIT:08X}")
        self.emit("sw a0, 0(t0)")
        self.emit("halt")
        for fn in self.program.functions:
            self._function(fn)
        if self.program.globals:
            self.lines.append(".data")
            for var in self.program.globals:
                self._global_var(var)
        return "\n".join(self.lines) + "\n"

    def _global_var(self, var: ast.GlobalVar) -> None:
        count = var.size if var.size is not None else 1
        init = list(var.init) + [0] * (count - len(var.init))
        self.emit_label(var.name)
        for chunk_start in range(0, count, 8):
            chunk = init[chunk_start:chunk_start + 8]
            self.emit(".word " + ", ".join(str(v) for v in chunk))

    # -- functions ----------------------------------------------------------

    def _function(self, fn: ast.Function) -> None:
        ctx = _FunctionContext(fn)
        self._prescan(fn, ctx)
        frame = ctx.frame_size
        self.emit_label(fn.name)
        self.emit(f"addi sp, sp, -{frame}")
        self.emit(f"sw ra, {frame - 4}(sp)")
        self.emit(f"sw fp, {frame - 8}(sp)")
        self.emit("mv fp, sp")

        ctx.push_scope()
        for index, param in enumerate(fn.params):
            info = ctx.slots[-(index + 1)]
            ctx.declare(param, info, fn.line)
            self.emit(f"sw a{index}, {info.offset}(fp)")
        epilogue = f"__epilogue_{fn.name}"
        self._block(fn.body, ctx, epilogue, new_scope=False)
        ctx.pop_scope()

        self.emit("li a0, 0")  # implicit `return 0`
        self.emit_label(epilogue)
        self.emit("mv sp, fp")
        self.emit(f"lw ra, {frame - 4}(sp)")
        self.emit(f"lw fp, {frame - 8}(sp)")
        self.emit(f"addi sp, sp, {frame}")
        self.emit("ret")

    def _prescan(self, fn: ast.Function, ctx: _FunctionContext) -> None:
        """Assign a frame slot to every parameter and declaration."""
        for index in range(len(fn.params)):
            # parameters use negative pseudo-ids (one slot each)
            ctx.allocate(-(index + 1), 1, is_array=False)

        def walk(stmt) -> None:
            if isinstance(stmt, ast.Decl):
                words = stmt.size if stmt.size is not None else 1
                ctx.allocate(id(stmt), words, stmt.size is not None)
            elif isinstance(stmt, ast.BlockStmt):
                for child in stmt.body:
                    walk(child)
            elif isinstance(stmt, ast.If):
                walk(stmt.then)
                if stmt.otherwise is not None:
                    walk(stmt.otherwise)
            elif isinstance(stmt, ast.While):
                walk(stmt.body)
            elif isinstance(stmt, ast.DoWhile):
                walk(stmt.body)
            elif isinstance(stmt, ast.For):
                walk(stmt.body)

        walk(fn.body)

    # -- statements -------------------------------------------------------------

    def _block(self, block: ast.BlockStmt, ctx: _FunctionContext,
               epilogue: str, new_scope: bool = True) -> None:
        if new_scope:
            ctx.push_scope()
        for stmt in block.body:
            self._statement(stmt, ctx, epilogue)
        if new_scope:
            ctx.pop_scope()

    def _statement(self, stmt, ctx: _FunctionContext, epilogue: str) -> None:
        if isinstance(stmt, ast.BlockStmt):
            self._block(stmt, ctx, epilogue)
        elif isinstance(stmt, ast.ExprStmt):
            self._expr(stmt.expr, ctx)
        elif isinstance(stmt, ast.Decl):
            info = ctx.slots[id(stmt)]
            ctx.declare(stmt.name, info, stmt.line)
            if stmt.init is not None:
                self._expr(stmt.init, ctx)
                self.emit(f"sw t0, {info.offset}(fp)")
        elif isinstance(stmt, ast.If):
            otherwise = self.new_label("else")
            end = self.new_label("endif")
            self._expr(stmt.cond, ctx)
            self.emit(f"beq t0, zero, {otherwise if stmt.otherwise else end}")
            self._statement(stmt.then, ctx, epilogue)
            if stmt.otherwise is not None:
                self.emit(f"jmp {end}")
                self.emit_label(otherwise)
                self._statement(stmt.otherwise, ctx, epilogue)
            self.emit_label(end)
        elif isinstance(stmt, ast.While):
            cond = self.new_label("while")
            end = self.new_label("endwhile")
            self.emit_label(cond)
            self._expr(stmt.cond, ctx)
            self.emit(f"beq t0, zero, {end}")
            ctx.loop_stack.append((cond, end))
            self._statement(stmt.body, ctx, epilogue)
            ctx.loop_stack.pop()
            self.emit(f"jmp {cond}")
            self.emit_label(end)
        elif isinstance(stmt, ast.DoWhile):
            top = self.new_label("do")
            cond = self.new_label("docond")
            end = self.new_label("enddo")
            self.emit_label(top)
            ctx.loop_stack.append((cond, end))
            self._statement(stmt.body, ctx, epilogue)
            ctx.loop_stack.pop()
            self.emit_label(cond)
            self._expr(stmt.cond, ctx)
            self.emit(f"bne t0, zero, {top}")
            self.emit_label(end)
        elif isinstance(stmt, ast.For):
            cond = self.new_label("for")
            step = self.new_label("forstep")
            end = self.new_label("endfor")
            if stmt.init is not None:
                self._expr(stmt.init, ctx)
            self.emit_label(cond)
            if stmt.cond is not None:
                self._expr(stmt.cond, ctx)
                self.emit(f"beq t0, zero, {end}")
            ctx.loop_stack.append((step, end))
            self._statement(stmt.body, ctx, epilogue)
            ctx.loop_stack.pop()
            self.emit_label(step)
            if stmt.step is not None:
                self._expr(stmt.step, ctx)
            self.emit(f"jmp {cond}")
            self.emit_label(end)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self._expr(stmt.value, ctx)
                self.emit("mv a0, t0")
            else:
                self.emit("li a0, 0")
            self.emit(f"jmp {epilogue}")
        elif isinstance(stmt, ast.Break):
            if not ctx.loop_stack:
                raise CompileError("break outside a loop", stmt.line)
            self.emit(f"jmp {ctx.loop_stack[-1][1]}")
        elif isinstance(stmt, ast.Continue):
            if not ctx.loop_stack:
                raise CompileError("continue outside a loop", stmt.line)
            self.emit(f"jmp {ctx.loop_stack[-1][0]}")
        else:  # pragma: no cover - parser produces only the above
            raise CompileError(f"unknown statement {stmt!r}")

    # -- expressions --------------------------------------------------------------

    def _push(self) -> None:
        self.emit("addi sp, sp, -4")
        self.emit("sw t0, 0(sp)")

    def _pop(self, reg: str) -> None:
        self.emit(f"lw {reg}, 0(sp)")
        self.emit("addi sp, sp, 4")

    def _expr(self, expr, ctx: _FunctionContext) -> None:
        """Evaluate ``expr`` into t0."""
        if isinstance(expr, ast.Num):
            self.emit(f"li t0, {expr.value & 0xFFFFFFFF}")
        elif isinstance(expr, ast.Var):
            self._load_var(expr, ctx)
        elif isinstance(expr, ast.Index):
            self._address_of(expr, ctx)
            self.emit("lw t0, 0(t2)")
        elif isinstance(expr, ast.Unary):
            self._unary(expr, ctx)
        elif isinstance(expr, ast.Binary):
            self._binary(expr, ctx)
        elif isinstance(expr, ast.Assign):
            self._assign(expr, ctx)
        elif isinstance(expr, ast.Call):
            self._call(expr, ctx)
        elif isinstance(expr, ast.PostOp):
            self._post_op(expr, ctx)
        elif isinstance(expr, ast.Conditional):
            otherwise = self.new_label("ternelse")
            end = self.new_label("ternend")
            self._expr(expr.cond, ctx)
            self.emit(f"beq t0, zero, {otherwise}")
            self._expr(expr.then, ctx)
            self.emit(f"jmp {end}")
            self.emit_label(otherwise)
            self._expr(expr.otherwise, ctx)
            self.emit_label(end)
        else:  # pragma: no cover
            raise CompileError(f"unknown expression {expr!r}")

    def _load_var(self, expr: ast.Var, ctx: _FunctionContext) -> None:
        info = ctx.lookup(expr.name)
        if info is not None:
            if info.is_array:
                raise CompileError(
                    f"array {expr.name!r} used as a scalar", expr.line)
            self.emit(f"lw t0, {info.offset}(fp)")
            return
        ginfo = self.globals.get(expr.name)
        if ginfo is None:
            raise CompileError(f"undeclared variable {expr.name!r}",
                               expr.line)
        if ginfo.is_array:
            raise CompileError(
                f"array {expr.name!r} used as a scalar", expr.line)
        self.emit(f"la t2, {expr.name}")
        self.emit("lw t0, 0(t2)")

    def _address_of(self, expr: ast.Index, ctx: _FunctionContext) -> None:
        """Leave the element address in t2 (clobbers t0)."""
        info = ctx.lookup(expr.name)
        ginfo = self.globals.get(expr.name)
        if info is not None:
            if not info.is_array:
                raise CompileError(f"{expr.name!r} is not an array",
                                   expr.line)
        elif ginfo is not None:
            if not ginfo.is_array:
                raise CompileError(f"{expr.name!r} is not an array",
                                   expr.line)
        else:
            raise CompileError(f"undeclared array {expr.name!r}", expr.line)
        self._expr(expr.index, ctx)
        self.emit("slli t0, t0, 2")
        if info is not None:
            self.emit(f"addi t2, fp, {info.offset}")
            self.emit("add t2, t2, t0")
        else:
            self.emit(f"la t2, {expr.name}")
            self.emit("add t2, t2, t0")

    def _unary(self, expr: ast.Unary, ctx: _FunctionContext) -> None:
        self._expr(expr.operand, ctx)
        if expr.op == "-":
            self.emit("sub t0, zero, t0")
        elif expr.op == "!":
            self.emit("sltiu t0, t0, 1")
        elif expr.op == "~":
            self.emit("li t1, -1")
            self.emit("xor t0, t0, t1")
        else:  # pragma: no cover
            raise CompileError(f"unknown unary {expr.op!r}", expr.line)

    def _binary(self, expr: ast.Binary, ctx: _FunctionContext) -> None:
        if expr.op == "&&":
            end = self.new_label("andend")
            self._expr(expr.left, ctx)
            self.emit("sltu t0, zero, t0")
            self.emit(f"beq t0, zero, {end}")
            self._expr(expr.right, ctx)
            self.emit("sltu t0, zero, t0")
            self.emit_label(end)
            return
        if expr.op == "||":
            end = self.new_label("orend")
            self._expr(expr.left, ctx)
            self.emit("sltu t0, zero, t0")
            self.emit(f"bne t0, zero, {end}")
            self._expr(expr.right, ctx)
            self.emit("sltu t0, zero, t0")
            self.emit_label(end)
            return
        self._expr(expr.left, ctx)
        self._push()
        self._expr(expr.right, ctx)
        self._pop("t1")
        op = expr.op
        if op in _SIMPLE_BINOPS:
            self.emit(f"{_SIMPLE_BINOPS[op]} t0, t1, t0")
        elif op == "==":
            self.emit("sub t0, t1, t0")
            self.emit("sltiu t0, t0, 1")
        elif op == "!=":
            self.emit("sub t0, t1, t0")
            self.emit("sltu t0, zero, t0")
        elif op == "<":
            self.emit("slt t0, t1, t0")
        elif op == ">":
            self.emit("slt t0, t0, t1")
        elif op == "<=":
            self.emit("slt t0, t0, t1")
            self.emit("xori t0, t0, 1")
        elif op == ">=":
            self.emit("slt t0, t1, t0")
            self.emit("xori t0, t0, 1")
        else:  # pragma: no cover
            raise CompileError(f"unknown operator {op!r}", expr.line)

    def _assign(self, expr: ast.Assign, ctx: _FunctionContext) -> None:
        target = expr.target
        if isinstance(target, ast.Var):
            self._expr(expr.value, ctx)
            info = ctx.lookup(target.name)
            if info is not None:
                if info.is_array:
                    raise CompileError(
                        f"cannot assign to array {target.name!r}",
                        target.line)
                self.emit(f"sw t0, {info.offset}(fp)")
                return
            ginfo = self.globals.get(target.name)
            if ginfo is None:
                raise CompileError(
                    f"undeclared variable {target.name!r}", target.line)
            if ginfo.is_array:
                raise CompileError(
                    f"cannot assign to array {target.name!r}", target.line)
            self.emit(f"la t2, {target.name}")
            self.emit("sw t0, 0(t2)")
            return
        assert isinstance(target, ast.Index)
        self._expr(expr.value, ctx)
        self._push()
        self._address_of(target, ctx)
        self._pop("t0")
        self.emit("sw t0, 0(t2)")

    def _post_op(self, expr: ast.PostOp, ctx: _FunctionContext) -> None:
        """Postfix ++/--: leave the *old* value in t0, store the new one."""
        delta = 1 if expr.op == "+" else -1
        target = expr.target
        if isinstance(target, ast.Var):
            info = ctx.lookup(target.name)
            if info is not None:
                if info.is_array:
                    raise CompileError(
                        f"cannot increment array {target.name!r}",
                        target.line)
                self.emit(f"lw t0, {info.offset}(fp)")
                self.emit(f"addi t1, t0, {delta}")
                self.emit(f"sw t1, {info.offset}(fp)")
                return
            ginfo = self.globals.get(target.name)
            if ginfo is None:
                raise CompileError(
                    f"undeclared variable {target.name!r}", target.line)
            if ginfo.is_array:
                raise CompileError(
                    f"cannot increment array {target.name!r}", target.line)
            self.emit(f"la t2, {target.name}")
            self.emit("lw t0, 0(t2)")
            self.emit(f"addi t1, t0, {delta}")
            self.emit("sw t1, 0(t2)")
            return
        assert isinstance(target, ast.Index)
        self._address_of(target, ctx)   # element address in t2
        self.emit("lw t0, 0(t2)")
        self.emit(f"addi t1, t0, {delta}")
        self.emit("sw t1, 0(t2)")

    def _call(self, expr: ast.Call, ctx: _FunctionContext) -> None:
        if expr.name in _BUILTINS:
            if len(expr.args) != 1:
                raise CompileError(
                    f"{expr.name}() takes exactly one argument", expr.line)
            self._expr(expr.args[0], ctx)
            self.emit(f"li t2, 0x{_BUILTINS[expr.name]:08X}")
            self.emit("sw t0, 0(t2)")
            return
        fn = self.functions.get(expr.name)
        if fn is None:
            raise CompileError(f"call to undefined function {expr.name!r}",
                               expr.line)
        if len(expr.args) != len(fn.params):
            raise CompileError(
                f"{expr.name}() expects {len(fn.params)} argument(s), "
                f"got {len(expr.args)}", expr.line)
        for arg in expr.args:
            self._expr(arg, ctx)
            self._push()
        for index in range(len(expr.args) - 1, -1, -1):
            self._pop(f"a{index}")
        self.emit(f"call {expr.name}")
        self.emit("mv t0, a0")
