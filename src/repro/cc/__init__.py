"""minicc — the C-subset compiler substrate.

Stands in for the paper's Bare-C Cross-Compiler System: workloads are
written in a small C dialect, compiled to SRISC assembly, and then either
assembled directly (vanilla baseline) or fed to the SOFIA transformer.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..isa.assembler import parse as parse_asm
from ..isa.program import AsmProgram
from . import ast_nodes
from .codegen import CodeGenerator
from .lexer import Token, tokenize
from .optimize import OptimizeStats, optimize_pushpop
from .parser import parse_source


@dataclass
class CompiledProgram:
    """Result of compiling one minicc translation unit."""

    source: str
    asm_text: str
    program: AsmProgram
    tree: ast_nodes.Program
    optimize_stats: "OptimizeStats | None" = None


def compile_source(source: str, optimize: bool = False) -> CompiledProgram:
    """Compile minicc source to a parsed :class:`AsmProgram`.

    ``optimize=True`` runs the push/pop peephole pass
    (:mod:`repro.cc.optimize`) on the generated assembly.
    """
    tree = parse_source(source)
    asm_text = CodeGenerator(tree).generate()
    program = parse_asm(asm_text)
    stats = None
    if optimize:
        stats = optimize_pushpop(program)
    return CompiledProgram(source=source, asm_text=asm_text,
                           program=program, tree=tree,
                           optimize_stats=stats)


__all__ = ["compile_source", "CompiledProgram", "parse_source", "tokenize",
           "Token", "CodeGenerator", "ast_nodes", "optimize_pushpop",
           "OptimizeStats"]
