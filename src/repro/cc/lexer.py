"""Lexer for minicc, the C subset used to author SOFIA workloads.

Token kinds: ``int``/keywords, identifiers, integer literals (decimal, hex,
char constants), punctuation and multi-character operators.  ``//`` and
``/* */`` comments are stripped.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..errors import CompileError

KEYWORDS = {"int", "void", "if", "else", "while", "do", "for", "return",
            "break", "continue"}

# ASCII-only character classes: unicode lookalikes such as '²' satisfy
# str.isdigit() but are not valid C source (found by the fuzz suite).
_DIGITS = frozenset("0123456789")
_ALPHA = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_")
_ALNUM = _ALPHA | _DIGITS

#: multi-character operators, longest first
_OPERATORS = ["<<=", ">>=", "==", "!=", "<=", ">=", "&&", "||", "<<", ">>",
              "++", "--",
              "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
              "+", "-", "*", "/", "%", "<", ">", "=", "!", "~", "&", "|",
              "^", "(", ")", "{", "}", "[", "]", ";", ",", "?", ":"]


@dataclass(frozen=True)
class Token:
    kind: str      # "kw", "ident", "num", "op", "eof"
    text: str
    value: int = 0
    line: int = 0
    column: int = 0

    def __str__(self) -> str:  # pragma: no cover - diagnostics only
        return f"{self.kind}({self.text!r})"


def _strip_comments(source: str) -> str:
    out = []
    i, n = 0, len(source)
    while i < n:
        if source.startswith("//", i):
            while i < n and source[i] != "\n":
                i += 1
        elif source.startswith("/*", i):
            end = source.find("*/", i + 2)
            if end < 0:
                raise CompileError("unterminated block comment")
            # keep newlines so line numbers stay right
            out.append("\n" * source.count("\n", i, end))
            i = end + 2
        else:
            out.append(source[i])
            i += 1
    return "".join(out)


def tokenize(source: str) -> List[Token]:
    """Convert minicc source text into a token list ending with EOF."""
    text = _strip_comments(source)
    tokens: List[Token] = []
    line, column = 1, 1
    i, n = 0, len(text)
    while i < n:
        ch = text[i]
        if ch == "\n":
            line += 1
            column = 1
            i += 1
            continue
        if ch.isspace():
            column += 1
            i += 1
            continue
        if ch in _ALPHA:
            start = i
            while i < n and text[i] in _ALNUM:
                i += 1
            word = text[start:i]
            kind = "kw" if word in KEYWORDS else "ident"
            tokens.append(Token(kind, word, line=line, column=column))
            column += i - start
            continue
        if ch in _DIGITS:
            start = i
            if text.startswith("0x", i) or text.startswith("0X", i):
                i += 2
                while i < n and text[i] in "0123456789abcdefABCDEF":
                    i += 1
                value = int(text[start:i], 16)
            else:
                while i < n and text[i] in _DIGITS:
                    i += 1
                value = int(text[start:i])
            tokens.append(Token("num", text[start:i], value=value,
                                line=line, column=column))
            column += i - start
            continue
        if ch == "'":
            if i + 2 < n and text[i + 1] == "\\" and text[i + 3] == "'":
                escapes = {"n": 10, "t": 9, "0": 0, "\\": 92, "'": 39}
                esc = text[i + 2]
                if esc not in escapes:
                    raise CompileError(f"bad escape '\\{esc}'", line, column)
                tokens.append(Token("num", text[i:i + 4],
                                    value=escapes[esc], line=line,
                                    column=column))
                i += 4
                column += 4
                continue
            if i + 2 < n and text[i + 2] == "'":
                tokens.append(Token("num", text[i:i + 3],
                                    value=ord(text[i + 1]), line=line,
                                    column=column))
                i += 3
                column += 3
                continue
            raise CompileError("bad character literal", line, column)
        for op in _OPERATORS:
            if text.startswith(op, i):
                tokens.append(Token("op", op, line=line, column=column))
                i += len(op)
                column += len(op)
                break
        else:
            raise CompileError(f"unexpected character {ch!r}", line, column)
    tokens.append(Token("eof", "", line=line, column=column))
    return tokens
