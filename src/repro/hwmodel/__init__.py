"""FPGA area/timing model (Table I substitute + profile-driven costing)."""

from .components import (CIPHER_PROFILES, CIPHER_ROUNDS, CipherProfile,
                         PAPER_UNROLL, PRESENT_PROFILE, RECTANGLE_PROFILE,
                         Component, cipher_cycles_per_op,
                         cipher_datapath_slices, cipher_path_ns,
                         leon3_components, sofia_components)
from .design import (CipherChoice, HardwareDesign, Table1, Table1Row,
                     UnrollPoint, cipher_ablation, sofia_design, table1,
                     unroll_ablation, vanilla_design)
from .profilecost import (CYCLES_BUDGET, ProfileHardware, cipher_hw_profile,
                          hw_point_label, legal_unrolls, min_legal_unroll,
                          parse_unroll_specs, profile_cost, profile_costs,
                          resolve_unrolls, sofia_profile_components)

__all__ = [
    "Component", "leon3_components", "sofia_components",
    "cipher_datapath_slices", "cipher_path_ns", "cipher_cycles_per_op",
    "CIPHER_ROUNDS", "PAPER_UNROLL",
    "CipherProfile", "CIPHER_PROFILES", "RECTANGLE_PROFILE",
    "PRESENT_PROFILE", "CipherChoice", "cipher_ablation",
    "HardwareDesign", "vanilla_design", "sofia_design",
    "Table1", "Table1Row", "table1", "UnrollPoint", "unroll_ablation",
    "CYCLES_BUDGET", "ProfileHardware", "cipher_hw_profile",
    "hw_point_label", "legal_unrolls", "min_legal_unroll",
    "parse_unroll_specs", "profile_cost", "profile_costs",
    "resolve_unrolls", "sofia_profile_components",
]
