"""Component-level FPGA cost model (substitute for Virtex-6 synthesis).

Table I of the paper reports only two totals per design (slices and clock),
so the per-component constants below are *calibrated*: they are plausible
LEON3-minimal/Virtex-6 figures whose sums and maxima reproduce the paper's
totals, while the *structure* is predictive — the SOFIA adder list and the
cipher-unroll scaling laws come from the paper's description (§III): a
single RECTANGLE instance unrolled 13x placed in the critical path, key
storage for three 80-bit keys, the CBC-MAC compare, the modified next-PC
logic, and the reset line.

The model supports the unroll-factor ablation: fewer unrolled rounds
shorten the critical path (faster clock) but increase the cycles per cipher
operation; the paper needs a 64-bit operation every 2 cycles to keep the
fetch stream moving, which forces ``ceil(26 / unroll) <= 2`` i.e.
``unroll >= 13`` — exactly the paper's design point.  The profile-aware
generalization of that constraint (PRESENT's 31 rounds force
``unroll >= 16``) lives in :mod:`repro.hwmodel.profilecost`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..errors import HardwareModelError

#: RECTANGLE's published latency in cycles (iterated implementation).
CIPHER_ROUNDS = 26

#: paper design point: 13 rounds per cycle -> 2 cycles per operation
PAPER_UNROLL = 13

#: calibrated datapath constants (RECTANGLE)
SLICES_PER_ROUND = 86.0
ROUND_DELAY_NS = 1.40
CIPHER_OVERHEAD_NS = 1.76   # key mux, CTR/CBC alternation mux, routing


@dataclass(frozen=True)
class CipherProfile:
    """Unrollable-datapath cost profile of a 64-bit lightweight cipher.

    Profiles follow the single-cycle-implementation study the paper cites
    ([36], Maene & Verbauwhede): RECTANGLE's bit-slice rounds are a bit
    larger but barely slower than PRESENT's, while PRESENT needs 31 rounds
    — so at the fetch-sustaining design point (one operation per two
    cycles) RECTANGLE clocks higher, which is why SOFIA picked it.

    Every unroll-taking method validates against *this cipher's* round
    count (PRESENT accepts 27..31 where RECTANGLE does not) and raises
    :class:`~repro.errors.HardwareModelError` out of range.
    """

    name: str
    rounds: int
    slices_per_round: float
    round_ns: float
    overhead_ns: float = CIPHER_OVERHEAD_NS

    def _check_unroll(self, unroll: int) -> None:
        if not isinstance(unroll, int) or not 1 <= unroll <= self.rounds:
            raise HardwareModelError(
                f"{self.name}: unroll must be an integer in "
                f"1..{self.rounds} (its round count), got {unroll!r}")

    def datapath_slices(self, unroll: int) -> int:
        self._check_unroll(unroll)
        return round(self.slices_per_round * unroll)

    def path_ns(self, unroll: int) -> float:
        self._check_unroll(unroll)
        return unroll * self.round_ns + self.overhead_ns

    def cycles_per_op(self, unroll: int) -> int:
        """Cycles for one 64-bit operation at ``unroll`` rounds/cycle."""
        self._check_unroll(unroll)
        return -(-self.rounds // unroll)

    def min_sustaining_unroll(self, cycles_budget: int = 2) -> int:
        """Smallest unroll giving one operation per ``cycles_budget``."""
        if not isinstance(cycles_budget, int) or cycles_budget < 1:
            raise HardwareModelError(
                f"cycles_budget must be a positive integer, "
                f"got {cycles_budget!r}")
        return -(-self.rounds // cycles_budget)


RECTANGLE_PROFILE = CipherProfile("RECTANGLE-80", CIPHER_ROUNDS,
                                  SLICES_PER_ROUND, ROUND_DELAY_NS)
PRESENT_PROFILE = CipherProfile("PRESENT-80", 31, 74.0, 1.28)

CIPHER_PROFILES = {p.name: p for p in (RECTANGLE_PROFILE, PRESENT_PROFILE)}


@dataclass(frozen=True)
class Component:
    """One synthesized block: its area and its contribution to the path."""

    name: str
    slices: int
    path_ns: float   # delay of this component's longest internal path

    def __str__(self) -> str:
        return f"{self.name:<28s} {self.slices:>6d} slices  {self.path_ns:5.2f} ns"


def leon3_components() -> List[Component]:
    """Minimal LEON3 configuration (calibrated to 5,889 slices, 92.3 MHz)."""
    return [
        Component("integer pipeline (7-stage)", 2601, 10.83),
        Component("register file", 452, 6.10),
        Component("mul/div unit", 903, 10.20),
        Component("i-cache controller", 702, 8.40),
        Component("d-cache / bus interface", 799, 9.70),
        Component("AHB + peripherals", 432, 7.90),
    ]


def cipher_datapath_slices(unroll: int) -> int:
    """Area of the RECTANGLE datapath with ``unroll`` combinational rounds."""
    return RECTANGLE_PROFILE.datapath_slices(unroll)


def cipher_path_ns(unroll: int) -> float:
    """Critical path through ``unroll`` combinational RECTANGLE rounds."""
    return RECTANGLE_PROFILE.path_ns(unroll)


def cipher_cycles_per_op(unroll: int) -> int:
    """Cycles for one 64-bit cipher operation at a given unroll factor."""
    return RECTANGLE_PROFILE.cycles_per_op(unroll)


def sofia_components(unroll: int = PAPER_UNROLL) -> List[Component]:
    """SOFIA additions on top of the LEON3 (calibrated to +1,662 slices)."""
    return [
        Component(f"RECTANGLE datapath ({unroll}x unrolled)",
                  cipher_datapath_slices(unroll), cipher_path_ns(unroll)),
        Component("key storage + schedule", 221, 6.50),
        Component("CBC-MAC compare + control", 182, 5.90),
        Component("next-PC / mux-path logic", 88, 4.80),
        Component("reset + pipeline integration", 53, 3.10),
    ]
