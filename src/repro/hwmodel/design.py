"""Whole-design area/clock aggregation and the Table I report."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from .components import (CIPHER_PROFILES, CipherProfile, Component,
                         PAPER_UNROLL, cipher_cycles_per_op,
                         leon3_components, sofia_components)


@dataclass(frozen=True)
class HardwareDesign:
    """A synthesized design: component list + derived totals."""

    name: str
    components: List[Component]

    @property
    def total_slices(self) -> int:
        return sum(c.slices for c in self.components)

    @property
    def critical_path_ns(self) -> float:
        return max(c.path_ns for c in self.components)

    @property
    def clock_mhz(self) -> float:
        return 1000.0 / self.critical_path_ns

    def report(self) -> str:
        lines = [f"== {self.name} =="]
        lines.extend(str(c) for c in self.components)
        lines.append(f"{'total':<28s} {self.total_slices:>6d} slices  "
                     f"{self.critical_path_ns:5.2f} ns "
                     f"({self.clock_mhz:.1f} MHz)")
        return "\n".join(lines)


def vanilla_design() -> HardwareDesign:
    """The unmodified LEON3 (Table I row 'Vanilla')."""
    return HardwareDesign("LEON3 (vanilla)", leon3_components())


def sofia_design(unroll: int = PAPER_UNROLL) -> HardwareDesign:
    """LEON3 + SOFIA (Table I row 'SOFIA')."""
    return HardwareDesign(f"LEON3 + SOFIA (unroll={unroll})",
                          leon3_components() + sofia_components(unroll))


@dataclass(frozen=True)
class Table1Row:
    design: str
    slices: int
    clock_mhz: float


@dataclass(frozen=True)
class Table1:
    """The paper's Table I plus derived overhead percentages."""

    vanilla: Table1Row
    sofia: Table1Row

    @property
    def area_overhead(self) -> float:
        """Fractional slice increase (paper: 0.282)."""
        return self.sofia.slices / self.vanilla.slices - 1.0

    @property
    def clock_slowdown(self) -> float:
        """Fractional clock-period increase (paper: 'clock is 84.6% slower')."""
        return self.vanilla.clock_mhz / self.sofia.clock_mhz - 1.0

    @property
    def clock_ratio(self) -> float:
        """f_vanilla / f_sofia — the execution-time multiplier."""
        return self.vanilla.clock_mhz / self.sofia.clock_mhz

    def render(self) -> str:
        lines = [
            "Table I: hardware comparison of SOFIA and LEON3",
            f"{'Design':<10s} {'Slices':>8s} {'Clock speed':>12s}",
            f"{self.vanilla.design:<10s} {self.vanilla.slices:>8,d} "
            f"{self.vanilla.clock_mhz:>9.1f} MHz",
            f"{self.sofia.design:<10s} {self.sofia.slices:>8,d} "
            f"{self.sofia.clock_mhz:>9.1f} MHz",
            f"area overhead:   {self.area_overhead:+.1%} (paper: +28.2%)",
            f"clock slowdown:  {self.clock_slowdown:+.1%} (paper: +84.6%)",
        ]
        return "\n".join(lines)


def table1(unroll: int = PAPER_UNROLL) -> Table1:
    """Regenerate Table I from the component model."""
    vanilla = vanilla_design()
    sofia = sofia_design(unroll)
    return Table1(
        vanilla=Table1Row("Vanilla", vanilla.total_slices, vanilla.clock_mhz),
        sofia=Table1Row("SOFIA", sofia.total_slices, sofia.clock_mhz))


@dataclass(frozen=True)
class UnrollPoint:
    """One point of the cipher-unroll ablation."""

    unroll: int
    slices: int
    clock_mhz: float
    cipher_cycles: int
    #: does this design sustain one 64-bit cipher op per two cycles, as
    #: required to alternate CTR and CBC without stalling fetch (§III)?
    sustains_fetch: bool


def unroll_ablation() -> List[UnrollPoint]:
    """Sweep the unroll factor (design-choice ablation for §III)."""
    points = []
    for unroll in range(1, 27):
        design = sofia_design(unroll)
        cycles = cipher_cycles_per_op(unroll)
        points.append(UnrollPoint(
            unroll=unroll, slices=design.total_slices,
            clock_mhz=design.clock_mhz, cipher_cycles=cycles,
            sustains_fetch=cycles <= 2))
    return points


@dataclass(frozen=True)
class CipherChoice:
    """One cipher evaluated at its fetch-sustaining design point."""

    cipher: str
    unroll: int
    datapath_slices: int
    clock_mhz: float

    def __str__(self) -> str:
        return (f"{self.cipher:<14s} unroll={self.unroll:<3d} "
                f"{self.datapath_slices:>5d} slices  "
                f"{self.clock_mhz:5.1f} MHz")


def cipher_ablation(cycles_budget: int = 2) -> List[CipherChoice]:
    """Compare candidate ciphers at one operation per ``cycles_budget``.

    Reproduces the design rationale behind the paper's RECTANGLE choice:
    both ciphers are 64-bit/80-bit, but PRESENT's 31 rounds need a deeper
    unroll to sustain the fetch stream, which costs clock frequency.
    """
    base_path = max(c.path_ns for c in leon3_components())
    choices = []
    for profile in CIPHER_PROFILES.values():
        unroll = profile.min_sustaining_unroll(cycles_budget)
        path = max(base_path, profile.path_ns(unroll))
        choices.append(CipherChoice(
            cipher=profile.name, unroll=unroll,
            datapath_slices=profile.datapath_slices(unroll),
            clock_mhz=1000.0 / path))
    return sorted(choices, key=lambda c: -c.clock_mhz)
