"""Profile-driven hardware costing: ``ProtectionProfile`` -> area/clock.

This module is the bridge between the E17 design space
(:class:`~repro.transform.profile.ProtectionProfile`) and the Table I
component model (:mod:`repro.hwmodel.components`): every protection
profile, paired with a cipher-datapath unroll factor, maps to one
synthesizable design point with an area total, a critical path, and a
clock estimate — pure arithmetic, no simulation, byte-deterministic.

**Design space.**  The cipher axis selects the unrollable datapath
(RECTANGLE-80 or PRESENT-80, per the single-cycle study the paper cites,
[36] Maene & Verbauwhede); the unroll factor trades area for clock
(`unroll` combinational rounds per cycle).  The seal width scales the
CBC-MAC compare/control block (wider seals need wider comparators and
one more state word), and the block geometry sizes the fetch-stage word
counter.  All constants are calibrated so the paper's design point —
``rectangle-80/mac64/sequential`` at ``unroll=13`` — reproduces Table I
exactly (7,551 slices, 50.1 MHz).

**Minimum legal unroll.**  The fetch stream needs one 64-bit cipher
operation per :data:`CYCLES_BUDGET` cycles — the CTR keystream word-pair
and the CBC absorb alternate, one operation every other cycle (paper
§III).  That generalizes the paper's ``ceil(26 / unroll) <= 2`` to
``ceil(rounds / unroll) <= CYCLES_BUDGET`` per cipher: RECTANGLE's 26
rounds force ``unroll >= 13`` (the paper's point), PRESENT's 31 rounds
force ``unroll >= 16``.  Shallower unrolls would stall fetch — the cycle
simulator models a never-stalling decrypt path, so those points are
outside the legal design space and :func:`profile_cost` rejects them.

**Objectives.**  For the unified E17+hardware Pareto the scalar hardware
cost is the area-delay product (total slices x critical-path ns), the
standard figure of merit the cited study ranks lightweight ciphers by:
it folds both exported axes (``slices``, ``clock_mhz``) into one
monotone cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple, Union

from ..errors import HardwareModelError
from ..transform.profile import ProtectionProfile
from .components import (CIPHER_PROFILES, CipherProfile, Component,
                         leon3_components)

#: fetch-sustaining budget: one 64-bit cipher operation per two cycles
#: (CTR and CBC alternate; paper §III)
CYCLES_BUDGET = 2

#: CBC-MAC compare/control calibration: ``base + per_word * mac_words``
#: reproduces Table I's 182 slices at the paper's 2-word seal
_MAC_COMPARE_BASE_SLICES = 150
_MAC_COMPARE_SLICES_PER_WORD = 16
_MAC_COMPARE_BASE_NS = 5.30
_MAC_COMPARE_NS_PER_WORD = 0.30

#: fetch-stage block word counter: 4 slices per counter bit beyond the
#: paper's 3-bit (8-word) geometry, folded into the next-PC logic
_NEXT_PC_BASE_SLICES = 88
_BLOCK_COUNTER_SLICES_PER_BIT = 4

#: an unroll spec token: an explicit factor or "min" (per-profile
#: minimum legal unroll)
UnrollSpec = Union[int, str]


def cipher_hw_profile(profile: ProtectionProfile) -> CipherProfile:
    """The unrollable-datapath cost profile of this profile's cipher."""
    for hw in CIPHER_PROFILES.values():
        if hw.name.lower() == profile.cipher.lower():
            return hw
    raise HardwareModelError(
        f"no hardware cost profile for cipher {profile.cipher!r} "
        f"(known: {sorted(p.name for p in CIPHER_PROFILES.values())})")


def min_legal_unroll(profile: ProtectionProfile,
                     cycles_budget: int = CYCLES_BUDGET) -> int:
    """Smallest fetch-sustaining unroll for this profile's cipher.

    ``ceil(rounds / unroll) <= cycles_budget`` — the paper's
    ``unroll >= 13`` for RECTANGLE, ``unroll >= 16`` for PRESENT.
    """
    return cipher_hw_profile(profile).min_sustaining_unroll(cycles_budget)


def legal_unrolls(profile: ProtectionProfile) -> range:
    """Every fetch-sustaining unroll factor for this profile's cipher."""
    hw = cipher_hw_profile(profile)
    return range(hw.min_sustaining_unroll(CYCLES_BUDGET), hw.rounds + 1)


def resolve_unrolls(profile: ProtectionProfile,
                    specs: Sequence[UnrollSpec] = ("min",)) -> List[int]:
    """The legal subset of requested unroll factors, ascending.

    ``"min"`` resolves to :func:`min_legal_unroll`; explicit factors
    outside this profile's legal range are dropped (a mixed-cipher grid
    may request ``13,16`` where 13 is legal for RECTANGLE only).  The
    sweep driver raises when a factor is legal for *no* profile.
    """
    legal = legal_unrolls(profile)
    resolved = set()
    for spec in specs:
        if spec == "min":
            resolved.add(legal.start)
        elif isinstance(spec, int) and spec in legal:
            resolved.add(spec)
    return sorted(resolved)


def hw_point_label(profile: ProtectionProfile, unroll: int) -> str:
    """Label of one hardware design point, e.g. ``...sequential@u13``."""
    return f"{profile.label}@u{unroll}"


def sofia_profile_components(profile: ProtectionProfile,
                             unroll: int) -> List[Component]:
    """SOFIA additions for this profile at this unroll factor.

    Generalizes :func:`~repro.hwmodel.components.sofia_components` from
    the paper's fixed design point to the whole profile space; at the
    default profile and ``unroll=13`` the lists are slice-for-slice
    identical (Table I calibration).
    """
    hw = cipher_hw_profile(profile)
    compare_slices = (_MAC_COMPARE_BASE_SLICES
                     + _MAC_COMPARE_SLICES_PER_WORD * profile.mac_words)
    compare_ns = round(_MAC_COMPARE_BASE_NS
                       + _MAC_COMPARE_NS_PER_WORD * profile.mac_words, 2)
    counter_bits = max(3, (profile.block_words - 1).bit_length())
    next_pc_slices = (_NEXT_PC_BASE_SLICES
                      + _BLOCK_COUNTER_SLICES_PER_BIT * (counter_bits - 3))
    return [
        Component(f"{hw.name} datapath ({unroll}x unrolled)",
                  hw.datapath_slices(unroll), hw.path_ns(unroll)),
        Component("key storage + schedule", 221, 6.50),
        Component(f"CBC-MAC compare + control ({profile.mac_bits}-bit)",
                  compare_slices, compare_ns),
        Component("next-PC / mux-path logic", next_pc_slices, 4.80),
        Component("reset + pipeline integration", 53, 3.10),
    ]


@dataclass(frozen=True)
class ProfileHardware:
    """One profile's synthesized design point at one unroll factor."""

    profile_label: str
    cipher: str
    unroll: int
    min_unroll: int
    cipher_cycles: int
    datapath_slices: int
    sofia_slices: int        # SOFIA additions only
    slices: int              # LEON3 + SOFIA additions
    critical_path_ns: float
    clock_mhz: float

    @property
    def label(self) -> str:
        """``<profile label>@u<unroll>`` — feeds back into ``--profiles``."""
        return f"{self.profile_label}@u{self.unroll}"

    @property
    def area_delay(self) -> float:
        """Slices x critical-path ns: the scalar hardware-cost objective."""
        return self.slices * self.critical_path_ns

    def __str__(self) -> str:
        return (f"{self.label:<42s} {self.slices:>6d} slices  "
                f"{self.clock_mhz:5.1f} MHz  {self.cipher_cycles}c/op")


def profile_cost(profile: ProtectionProfile,
                 unroll: "int | None" = None) -> ProfileHardware:
    """Area/clock estimate of one profile at one unroll factor.

    ``unroll=None`` picks the profile's minimum legal (fetch-sustaining)
    unroll; an explicit unroll outside :func:`legal_unrolls` raises
    :class:`~repro.errors.HardwareModelError`.  Pure arithmetic on the
    profile — deterministic, simulation-free, safe to recompute on every
    export.
    """
    hw = cipher_hw_profile(profile)
    minimum = hw.min_sustaining_unroll(CYCLES_BUDGET)
    if unroll is None:
        unroll = minimum
    if not isinstance(unroll, int) or unroll not in legal_unrolls(profile):
        raise HardwareModelError(
            f"{profile.label}: unroll must be in {minimum}.."
            f"{hw.rounds} (ceil({hw.rounds}/unroll) <= {CYCLES_BUDGET} "
            f"keeps fetch fed; {hw.rounds} rounds total), got {unroll!r}")
    components = leon3_components() + sofia_profile_components(profile,
                                                               unroll)
    base_slices = sum(c.slices for c in leon3_components())
    total = sum(c.slices for c in components)
    path = max(c.path_ns for c in components)
    return ProfileHardware(
        profile_label=profile.label, cipher=profile.cipher, unroll=unroll,
        min_unroll=minimum, cipher_cycles=hw.cycles_per_op(unroll),
        datapath_slices=hw.datapath_slices(unroll),
        sofia_slices=total - base_slices, slices=total,
        critical_path_ns=path, clock_mhz=1000.0 / path)


def profile_costs(profile: ProtectionProfile,
                  specs: Sequence[UnrollSpec] = ("min",)
                  ) -> List[ProfileHardware]:
    """Design points for every legal requested unroll, ascending."""
    return [profile_cost(profile, unroll)
            for unroll in resolve_unrolls(profile, specs)]


def parse_unroll_specs(text: str) -> Tuple[UnrollSpec, ...]:
    """Parse a CLI unroll list: comma-separated factors and/or ``min``.

    Factors must be positive integers; legality against each cipher's
    round count is per-profile (see :func:`resolve_unrolls`).
    """
    specs: List[UnrollSpec] = []
    for token in text.split(","):
        token = token.strip()
        if not token:
            continue
        if token == "min":
            specs.append("min")
            continue
        try:
            unroll = int(token)
        except ValueError:
            raise ValueError(
                f"bad unroll {token!r}: expected a positive integer "
                f"or 'min'")
        if unroll < 1:
            raise ValueError(f"unroll must be positive, got {unroll}")
        specs.append(unroll)
    if not specs:
        raise ValueError("empty unroll list")
    return tuple(specs)
