"""repro — a functional reproduction of SOFIA (DATE 2016).

SOFIA ("Software and Control Flow Integrity Architecture", de Clercq et
al.) is a hardware security architecture that encrypts every instruction
with control-flow-dependent information (CFI) and verifies a CBC-MAC over
each block of instructions before they can take effect (SI).

This package rebuilds the whole system in Python:

* :mod:`repro.crypto`    — RECTANGLE-80, CTR keystream, CBC-MAC, keys
* :mod:`repro.isa`       — the SRISC ISA, assembler, disassembler
* :mod:`repro.cfg`       — instruction-granularity control flow graphs
* :mod:`repro.transform` — the SOFIA binary transformation toolchain
* :mod:`repro.sim`       — vanilla and SOFIA processor simulators
* :mod:`repro.cc`        — minicc, a C-subset compiler for workloads
* :mod:`repro.workloads` — ADPCM (the paper's benchmark) and friends
* :mod:`repro.baselines` — XOR-ISR and ECB-ISR comparison defenses
* :mod:`repro.attacks`   — injection/tamper/relocation/reuse campaign
* :mod:`repro.hwmodel`   — FPGA area/clock model (Table I)
* :mod:`repro.security`  — §IV-A bounds + Monte-Carlo experiments
* :mod:`repro.obs`       — campaign telemetry: events, metrics, traces
* :mod:`repro.eval`      — regenerates every table and figure

Quickstart::

    from repro import core
    keys = core.make_keys(seed=1)
    program = core.build_c("int main() { print_int(6 * 7); return 0; }")
    image = core.protect(program, keys, nonce=0x2016)
    result = core.run_protected(image, keys)
    assert result.output_ints == [42]
"""

from . import core
from .core import (build_assembly, build_c, link_vanilla, make_keys,
                   protect, protect_and_run, run_protected, run_vanilla)
from .errors import (AssemblyError, CFGError, CompileError, DecodingError,
                     EncodingError, ImageError, IntegrityViolation,
                     ReproError, SimulationError, TransformError)

__version__ = "1.0.0"

__all__ = [
    "core", "make_keys", "build_c", "build_assembly", "link_vanilla",
    "protect", "run_vanilla", "run_protected", "protect_and_run",
    "ReproError", "AssemblyError", "EncodingError", "DecodingError",
    "CompileError", "CFGError", "TransformError", "ImageError",
    "SimulationError", "IntegrityViolation",
    "__version__",
]
