"""Instruction Set Randomization baselines (paper §I related work).

Two comparison defenses from the literature, built on the vanilla core:

* :class:`XorIsrMachine` — ASIST-style [29]: every instruction word is
  XORed with one 32-bit key.  Injected plaintext code decrypts to garbage,
  but the scheme is position-independent: *relocating* encrypted words, and
  any code-reuse attack, go undetected.
* :class:`EcbIsrMachine` — AES-ECB-style [3] (RECTANGLE-ECB here): adjacent
  word *pairs* are encrypted as one 64-bit ECB block.  Stronger keying than
  XOR, but ECB is still position-independent at pair granularity, so
  pair-aligned relocation of encrypted code executes correctly — the
  weakness the paper calls out for [3].

Both "detect" attacks only probabilistically, when garbage fails to decode
(an illegal-instruction trap) or crashes; there is no integrity guarantee
and no control-flow binding.
"""

from __future__ import annotations

from typing import List, Optional

from ..crypto.rectangle import Rectangle80
from ..errors import DecodingError, SimulationError
from ..isa.encoding import decode
from ..isa.instructions import Instruction
from ..isa.program import Executable
from ..sim.timing import DEFAULT_TIMING, TimingParams
from ..sim.vanilla import VanillaMachine


def xor_encrypt_words(words: List[int], key: int) -> List[int]:
    """Encrypt a text section with the XOR-ISR scheme."""
    key &= 0xFFFFFFFF
    return [(w ^ key) & 0xFFFFFFFF for w in words]


def ecb_encrypt_words(words: List[int], cipher: Rectangle80) -> List[int]:
    """Encrypt a text section pairwise with RECTANGLE in ECB mode.

    Odd-length sections are nop-padded to a pair boundary first — both
    halves of a ciphertext block must be stored or the final instruction
    cannot be reconstructed.
    """
    padded = list(words)
    if len(padded) % 2:
        padded.append(0)  # canonical nop
    out: List[int] = []
    for i in range(0, len(padded), 2):
        block = cipher.encrypt((padded[i] << 32) | padded[i + 1])
        out.append((block >> 32) & 0xFFFFFFFF)
        out.append(block & 0xFFFFFFFF)
    return out


class XorIsrMachine(VanillaMachine):
    """Vanilla core with an XOR decryption stage in instruction fetch."""

    def __init__(self, executable: Executable, key: int,
                 timing: TimingParams = DEFAULT_TIMING,
                 engine: Optional[str] = None) -> None:
        encrypted = Executable(
            code_words=xor_encrypt_words(executable.code_words, key),
            data=executable.data, symbols=executable.symbols,
            entry=executable.entry, code_base=executable.code_base,
            data_base=executable.data_base)
        super().__init__(encrypted, timing, engine=engine)
        self.key = key & 0xFFFFFFFF

    def _fetch_decode(self, pc: int) -> Instruction:
        cached = self._decoded.get(pc)
        if cached is not None:
            return cached
        word = self.memory.fetch_word(pc) ^ self.key
        instr = decode(word, pc)
        self._decoded[pc] = instr
        return instr


class EcbIsrMachine(VanillaMachine):
    """Vanilla core with pairwise RECTANGLE-ECB instruction decryption."""

    def __init__(self, executable: Executable, key: int,
                 timing: TimingParams = DEFAULT_TIMING,
                 engine: Optional[str] = None) -> None:
        self.cipher = Rectangle80(key)
        encrypted = Executable(
            code_words=ecb_encrypt_words(executable.code_words, self.cipher),
            data=executable.data, symbols=executable.symbols,
            entry=executable.entry, code_base=executable.code_base,
            data_base=executable.data_base)
        super().__init__(encrypted, timing, engine=engine)
        # ECB pairs couple adjacent words: a write to either invalidates
        # both decoded entries, so just drop everything on any code write.
        self.memory.add_code_listener(lambda _addr: self._flush_decoded())

    def _fetch_decode(self, pc: int) -> Instruction:
        cached = self._decoded.get(pc)
        if cached is not None:
            return cached
        index = (pc - self.memory.code_base) >> 2
        pair_base = pc - 4 * (index & 1)
        high = self.memory.fetch_word(pair_base)
        try:
            low = self.memory.fetch_word(pair_base + 4)
        except SimulationError:
            low = 0
        block = self.cipher.decrypt((high << 32) | low)
        word = (block >> 32) & 0xFFFFFFFF if pc == pair_base else block & 0xFFFFFFFF
        instr = decode(word, pc)
        self._decoded[pc] = instr
        return instr
