"""Baseline defenses for the attack-coverage comparison (experiment E8)."""

from .isr import (EcbIsrMachine, XorIsrMachine, ecb_encrypt_words,
                  xor_encrypt_words)

__all__ = ["XorIsrMachine", "EcbIsrMachine", "xor_encrypt_words",
           "ecb_encrypt_words"]
