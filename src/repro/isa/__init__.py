"""SRISC instruction-set substrate (stands in for LEON3's SPARCv8)."""

from .assembler import assemble, assemble_text, parse, resolve_instruction
from .disassembler import disassemble, disassemble_word, dump
from .encoding import decode, encode, is_valid_word
from .instructions import NOP, Instruction, OpSpec, SPECS, make_nop
from .program import (AsmProgram, CODE_BASE, DATA_BASE, Executable,
                      MMIO_BASE, MMIO_EXIT, MMIO_PUTCHAR, MMIO_PUTINT,
                      MMIO_PUTWORD, STACK_TOP, split_functions)
from .registers import (ALIASES, NUM_REGISTERS, parse_register,
                        register_name)

__all__ = [
    "Instruction", "OpSpec", "SPECS", "NOP", "make_nop",
    "encode", "decode", "is_valid_word",
    "parse", "assemble", "assemble_text", "resolve_instruction",
    "disassemble", "disassemble_word", "dump",
    "AsmProgram", "Executable", "split_functions",
    "CODE_BASE", "DATA_BASE", "STACK_TOP", "MMIO_BASE",
    "MMIO_PUTCHAR", "MMIO_PUTINT", "MMIO_EXIT", "MMIO_PUTWORD",
    "ALIASES", "NUM_REGISTERS", "parse_register", "register_name",
]
