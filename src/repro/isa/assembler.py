"""Two-pass SRISC assembler.

``parse`` turns assembly text into an :class:`AsmProgram` (labels bound to
instruction indices, pseudo-instructions expanded, data section built).
``assemble`` links an :class:`AsmProgram` at fixed base addresses and encodes
it into an :class:`Executable` for the vanilla core.  The SOFIA toolchain
instead feeds the parsed program to :mod:`repro.transform`.

Syntax
------
* one instruction, label (``name:``) or directive per line;
* comments start with ``#`` or ``;``;
* registers accept numeric (``r4``) or ABI (``a0``) names;
* memory operands are written ``offset(base)``;
* ``.text`` / ``.data`` switch sections; ``.word``, ``.half``, ``.byte``,
  ``.space``, ``.align``, ``.asciz`` populate data; ``.entry name`` sets the
  entry symbol; ``.targets a, b`` annotates the next (indirect) CTI with its
  static target set; ``.globl`` is accepted and ignored.

Pseudo-instructions: ``li``, ``la``, ``mv``, ``not``, ``neg``, ``seqz``,
``snez``, ``b``, ``ret``, ``bgt``, ``ble``, ``bgtu``, ``bleu``.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from ..errors import AssemblyError, EncodingError
from .encoding import encode
from .instructions import Instruction, SPECS
from .program import (AsmProgram, CODE_BASE, DATA_BASE, Executable,
                      resolve_data_references)
from .registers import AT, RA, ZERO, parse_register

_LABEL_RE = re.compile(r"^([A-Za-z_.$][\w.$]*):")
_NAME_RE = re.compile(r"^[A-Za-z_.$][\w.$]*$")
_MEM_RE = re.compile(r"^(.*)\((\w+)\)$")
_RELOC_RE = re.compile(r"^%(hi|lo)\(([A-Za-z_.$][\w.$]*)\)$")


def _parse_int(token: str, line: int) -> int:
    token = token.strip()
    try:
        if len(token) == 3 and token[0] == token[2] == "'":
            return ord(token[1])
        return int(token, 0)
    except ValueError:
        raise AssemblyError(f"invalid integer {token!r}", line) from None


def _split_operands(rest: str) -> List[str]:
    return [tok.strip() for tok in rest.split(",")] if rest.strip() else []


class _Parser:
    """Single-pass parser building an AsmProgram."""

    def __init__(self) -> None:
        self.program = AsmProgram()
        self.section = "text"
        self.pending_targets: Tuple[str, ...] = ()
        self.entry_set = False

    # -- data section helpers ------------------------------------------

    def _data_label(self, name: str, line: int) -> None:
        if name in self.program.data_symbols or name in self.program.labels:
            raise AssemblyError(f"duplicate symbol {name!r}", line)
        self.program.data_symbols[name] = len(self.program.data)

    def _emit_data_value(self, value: int, size: int) -> None:
        self.program.data += (value & ((1 << (8 * size)) - 1)).to_bytes(size, "big")

    # -- text section helpers ------------------------------------------

    def _code_label(self, name: str, line: int) -> None:
        if name in self.program.labels or name in self.program.data_symbols:
            raise AssemblyError(f"duplicate symbol {name!r}", line)
        self.program.labels[name] = len(self.program.instructions)

    def _emit(self, instr: Instruction) -> None:
        if self.pending_targets and instr.spec.is_indirect:
            instr = Instruction(
                instr.mnemonic, rd=instr.rd, rs1=instr.rs1, rs2=instr.rs2,
                imm=instr.imm, symbol=instr.symbol, reloc=instr.reloc,
                targets=self.pending_targets, line=instr.line)
            self.pending_targets = ()
        self.program.instructions.append(instr)

    # -- directive handling --------------------------------------------

    def directive(self, name: str, rest: str, line: int) -> None:
        if name == ".text":
            self.section = "text"
        elif name == ".data":
            self.section = "data"
        elif name == ".globl":
            pass
        elif name == ".entry":
            symbol = rest.strip()
            if not _NAME_RE.match(symbol):
                raise AssemblyError(f"bad entry symbol {symbol!r}", line)
            self.program.entry = symbol
            self.entry_set = True
        elif name == ".targets":
            targets = tuple(tok for tok in _split_operands(rest))
            if not targets or not all(_NAME_RE.match(t) for t in targets):
                raise AssemblyError(".targets requires a label list", line)
            self.pending_targets = targets
        elif name in (".word", ".half", ".byte"):
            if self.section != "data":
                raise AssemblyError(f"{name} outside .data", line)
            size = {".word": 4, ".half": 2, ".byte": 1}[name]
            for token in _split_operands(rest):
                self._emit_data_value(_parse_int(token, line), size)
        elif name == ".space":
            if self.section != "data":
                raise AssemblyError(".space outside .data", line)
            count = _parse_int(rest, line)
            if count < 0:
                raise AssemblyError(".space size must be non-negative", line)
            self.program.data += bytes(count)
        elif name == ".align":
            if self.section != "data":
                raise AssemblyError(".align outside .data", line)
            alignment = _parse_int(rest, line)
            if alignment <= 0 or alignment & (alignment - 1):
                raise AssemblyError(".align requires a power of two", line)
            while len(self.program.data) % alignment:
                self.program.data.append(0)
        elif name == ".asciz":
            if self.section != "data":
                raise AssemblyError(".asciz outside .data", line)
            text = rest.strip()
            if len(text) < 2 or text[0] != '"' or text[-1] != '"':
                raise AssemblyError(".asciz requires a quoted string", line)
            body = text[1:-1].encode().decode("unicode_escape")
            self.program.data += body.encode("latin-1") + b"\x00"
        else:
            raise AssemblyError(f"unknown directive {name}", line)

    # -- instruction parsing --------------------------------------------

    def instruction(self, mnemonic: str, rest: str, line: int) -> None:
        if self.section != "text":
            raise AssemblyError("instruction outside .text", line)
        ops = _split_operands(rest)
        for instr in _lower(mnemonic, ops, line):
            self._emit(instr)

    def line(self, raw: str, line_no: int) -> None:
        text = raw.split("#", 1)[0].split(";", 1)[0].strip()
        while text:
            match = _LABEL_RE.match(text)
            if not match:
                break
            name = match.group(1)
            if self.section == "text":
                self._code_label(name, line_no)
            else:
                self._data_label(name, line_no)
            text = text[match.end():].strip()
        if not text:
            return
        parts = text.split(None, 1)
        head = parts[0].lower()
        rest = parts[1] if len(parts) > 1 else ""
        if head.startswith("."):
            self.directive(head, rest, line_no)
        else:
            self.instruction(head, rest, line_no)


def _reg(token: str, line: int) -> int:
    try:
        return parse_register(token)
    except ValueError as exc:
        raise AssemblyError(str(exc), line) from None


def _imm_or_symbol(token: str, line: int) -> Tuple[Optional[int], Optional[str], Optional[str]]:
    """Return (imm, symbol, reloc) for an operand token."""
    reloc_match = _RELOC_RE.match(token)
    if reloc_match:
        return None, reloc_match.group(2), reloc_match.group(1)
    if _NAME_RE.match(token):
        return None, token, None
    return _parse_int(token, line), None, None


def _expect(ops: List[str], count: int, mnemonic: str, line: int) -> None:
    if len(ops) != count:
        raise AssemblyError(
            f"{mnemonic} expects {count} operand(s), got {len(ops)}", line)


def _lower(mnemonic: str, ops: List[str], line: int) -> List[Instruction]:
    """Lower one source mnemonic (possibly a pseudo) to real instructions."""
    # --- pseudo-instructions ---
    if mnemonic == "li":
        _expect(ops, 2, mnemonic, line)
        rd = _reg(ops[0], line)
        value = _parse_int(ops[1], line) & 0xFFFFFFFF
        signed = value - 0x100000000 if value & 0x80000000 else value
        if -0x8000 <= signed <= 0x7FFF:
            return [Instruction("addi", rd=rd, rs1=ZERO, imm=signed, line=line)]
        high, low = value >> 16, value & 0xFFFF
        seq = [Instruction("lui", rd=rd, imm=high, line=line)]
        if low:
            seq.append(Instruction("ori", rd=rd, rs1=rd, imm=low, line=line))
        return seq
    if mnemonic == "la":
        _expect(ops, 2, mnemonic, line)
        rd = _reg(ops[0], line)
        symbol = ops[1]
        if not _NAME_RE.match(symbol):
            raise AssemblyError(f"la expects a symbol, got {symbol!r}", line)
        return [
            Instruction("lui", rd=rd, symbol=symbol, reloc="hi", line=line),
            Instruction("ori", rd=rd, rs1=rd, symbol=symbol, reloc="lo", line=line),
        ]
    if mnemonic == "mv":
        _expect(ops, 2, mnemonic, line)
        return [Instruction("addi", rd=_reg(ops[0], line),
                            rs1=_reg(ops[1], line), imm=0, line=line)]
    if mnemonic == "not":
        _expect(ops, 2, mnemonic, line)
        rd, rs = _reg(ops[0], line), _reg(ops[1], line)
        return [Instruction("addi", rd=AT, rs1=ZERO, imm=-1, line=line),
                Instruction("xor", rd=rd, rs1=rs, rs2=AT, line=line)]
    if mnemonic == "neg":
        _expect(ops, 2, mnemonic, line)
        return [Instruction("sub", rd=_reg(ops[0], line), rs1=ZERO,
                            rs2=_reg(ops[1], line), line=line)]
    if mnemonic == "seqz":
        _expect(ops, 2, mnemonic, line)
        return [Instruction("sltiu", rd=_reg(ops[0], line),
                            rs1=_reg(ops[1], line), imm=1, line=line)]
    if mnemonic == "snez":
        _expect(ops, 2, mnemonic, line)
        return [Instruction("sltu", rd=_reg(ops[0], line), rs1=ZERO,
                            rs2=_reg(ops[1], line), line=line)]
    if mnemonic == "b":
        _expect(ops, 1, mnemonic, line)
        imm, symbol, _ = _imm_or_symbol(ops[0], line)
        return [Instruction("jmp", imm=imm, symbol=symbol, line=line)]
    if mnemonic == "ret":
        _expect(ops, 0, mnemonic, line)
        return [Instruction("jr", rs1=RA, line=line)]
    if mnemonic in ("bgt", "ble", "bgtu", "bleu"):
        _expect(ops, 3, mnemonic, line)
        real = {"bgt": "blt", "ble": "bge", "bgtu": "bltu", "bleu": "bgeu"}[mnemonic]
        imm, symbol, _ = _imm_or_symbol(ops[2], line)
        return [Instruction(real, rs1=_reg(ops[1], line), rs2=_reg(ops[0], line),
                            imm=imm, symbol=symbol, line=line)]

    # --- real instructions ---
    spec = SPECS.get(mnemonic)
    if spec is None:
        raise AssemblyError(f"unknown mnemonic {mnemonic!r}", line)
    if spec.fmt == "N":
        _expect(ops, 0, mnemonic, line)
        return [Instruction(mnemonic, line=line)]
    if spec.fmt == "R":
        _expect(ops, 3, mnemonic, line)
        return [Instruction(mnemonic, rd=_reg(ops[0], line),
                            rs1=_reg(ops[1], line), rs2=_reg(ops[2], line),
                            line=line)]
    if spec.fmt == "I":
        if mnemonic == "lui":
            _expect(ops, 2, mnemonic, line)
            imm, symbol, reloc = _imm_or_symbol(ops[1], line)
            return [Instruction(mnemonic, rd=_reg(ops[0], line), imm=imm,
                                symbol=symbol, reloc=reloc, line=line)]
        _expect(ops, 3, mnemonic, line)
        imm, symbol, reloc = _imm_or_symbol(ops[2], line)
        return [Instruction(mnemonic, rd=_reg(ops[0], line),
                            rs1=_reg(ops[1], line), imm=imm, symbol=symbol,
                            reloc=reloc, line=line)]
    if spec.fmt == "M":
        _expect(ops, 2, mnemonic, line)
        match = _MEM_RE.match(ops[1])
        if not match:
            raise AssemblyError(
                f"{mnemonic} expects offset(base), got {ops[1]!r}", line)
        offset_text = match.group(1).strip() or "0"
        offset = _parse_int(offset_text, line)
        base = _reg(match.group(2), line)
        data_reg = _reg(ops[0], line)
        if spec.is_store:
            return [Instruction(mnemonic, rs2=data_reg, rs1=base, imm=offset,
                                line=line)]
        return [Instruction(mnemonic, rd=data_reg, rs1=base, imm=offset,
                            line=line)]
    if spec.fmt == "B":
        _expect(ops, 3, mnemonic, line)
        imm, symbol, _ = _imm_or_symbol(ops[2], line)
        return [Instruction(mnemonic, rs1=_reg(ops[0], line),
                            rs2=_reg(ops[1], line), imm=imm, symbol=symbol,
                            line=line)]
    if spec.fmt == "J":
        _expect(ops, 1, mnemonic, line)
        imm, symbol, _ = _imm_or_symbol(ops[0], line)
        return [Instruction(mnemonic, imm=imm, symbol=symbol, line=line)]
    if spec.fmt == "JR":
        if mnemonic == "jalr":
            _expect(ops, 2, mnemonic, line)
            return [Instruction(mnemonic, rd=_reg(ops[0], line),
                                rs1=_reg(ops[1], line), line=line)]
        _expect(ops, 1, mnemonic, line)
        return [Instruction(mnemonic, rs1=_reg(ops[0], line), line=line)]
    raise AssertionError(f"unhandled format {spec.fmt}")


def parse(text: str, entry: Optional[str] = None) -> AsmProgram:
    """Parse assembly source into an :class:`AsmProgram`."""
    parser = _Parser()
    for line_no, raw in enumerate(text.splitlines(), start=1):
        parser.line(raw, line_no)
    program = parser.program
    if entry is not None:
        program.entry = entry
    elif not parser.entry_set:
        if "main" not in program.labels and "_start" in program.labels:
            program.entry = "_start"
    program.validate()
    _check_symbols(program)
    return program


def _check_symbols(program: AsmProgram) -> None:
    """Verify that every referenced symbol is defined somewhere."""
    known = set(program.labels) | set(program.data_symbols)
    for instr in program.instructions:
        if instr.symbol is not None and instr.symbol not in known:
            raise AssemblyError(
                f"undefined symbol {instr.symbol!r}", instr.line)
        for target in instr.targets:
            if target not in program.labels:
                raise AssemblyError(
                    f".targets names unknown code label {target!r}", instr.line)


def resolve_instruction(
    instr: Instruction, symbols: Dict[str, int]
) -> Instruction:
    """Replace a symbolic operand with its numeric value.

    ``symbols`` must hold absolute addresses for every label.  ``%hi``/
    ``%lo`` relocations are applied here.
    """
    if instr.symbol is None:
        return instr
    address = symbols.get(instr.symbol)
    if address is None:
        raise AssemblyError(f"undefined symbol {instr.symbol!r}", instr.line)
    if instr.reloc == "hi":
        value = (address >> 16) & 0xFFFF
    elif instr.reloc == "lo":
        value = address & 0xFFFF
    else:
        value = address
    return Instruction(instr.mnemonic, rd=instr.rd, rs1=instr.rs1,
                       rs2=instr.rs2, imm=value, symbol=None, reloc=None,
                       targets=instr.targets, line=instr.line)


def assemble(
    program: AsmProgram,
    code_base: int = CODE_BASE,
    data_base: int = DATA_BASE,
) -> Executable:
    """Link and encode a parsed program into a vanilla executable."""
    program.validate()
    symbols = {name: code_base + 4 * index
               for name, index in program.labels.items()}
    symbols.update(resolve_data_references(program, data_base))
    words: List[int] = []
    source: List[Instruction] = []
    for index, instr in enumerate(program.instructions):
        pc = code_base + 4 * index
        resolved = resolve_instruction(instr, symbols)
        try:
            words.append(encode(resolved, pc))
        except EncodingError as exc:
            raise AssemblyError(str(exc), instr.line) from exc
        source.append(resolved)
    return Executable(code_words=words, data=bytes(program.data),
                      symbols=symbols, entry=symbols[program.entry],
                      code_base=code_base, data_base=data_base, source=source)


def assemble_text(text: str, **kwargs) -> Executable:
    """Convenience: parse + assemble in one call."""
    return assemble(parse(text), **kwargs)
