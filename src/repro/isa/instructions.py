"""SRISC instruction set definition.

Every mnemonic is described by an :class:`OpSpec` (opcode, encoding format,
behavioural flags, base cycle cost for the timing model).  Assembly-level
instructions are :class:`Instruction` records whose operands may still be
symbolic (label references); the transformer manipulates these records and
the encoder lowers them to 32-bit words once addresses are final.

Formats
-------
``R``  — ``op rd, rs1, rs2``          (register ALU)
``I``  — ``op rd, rs1, imm16``        (immediate ALU, ``lui`` ignores rs1)
``M``  — ``op rd, imm16(rs1)``        (loads) / ``op rs2, imm16(rs1)`` (stores)
``B``  — ``op rs1, rs2, label``       (compare-and-branch, PC-relative)
``J``  — ``op label``                 (jmp/call, absolute 26-bit word address)
``JR`` — ``op rs1``                   (indirect jump/call)
``N``  — no operands (nop, halt)
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Optional, Tuple

from .registers import register_name


@dataclass(frozen=True)
class OpSpec:
    """Static description of one mnemonic."""

    mnemonic: str
    opcode: int
    fmt: str
    #: base latency in cycles for the pipeline timing model
    cycles: int = 1
    is_branch: bool = False   # conditional, two successors
    is_jump: bool = False     # unconditional direct jump
    is_call: bool = False     # writes the return address
    is_indirect: bool = False  # target comes from a register
    is_store: bool = False
    is_load: bool = False
    is_halt: bool = False

    @property
    def is_cti(self) -> bool:
        """True for every control-transfer instruction."""
        return self.is_branch or self.is_jump or self.is_call or self.is_indirect


def _specs() -> Dict[str, OpSpec]:
    table = [
        OpSpec("nop", 0x00, "N"),
        # register ALU
        OpSpec("add", 0x01, "R"), OpSpec("sub", 0x02, "R"),
        OpSpec("and", 0x03, "R"), OpSpec("or", 0x04, "R"),
        OpSpec("xor", 0x05, "R"), OpSpec("sll", 0x06, "R"),
        OpSpec("srl", 0x07, "R"), OpSpec("sra", 0x08, "R"),
        OpSpec("mul", 0x09, "R", cycles=4),
        OpSpec("div", 0x0A, "R", cycles=35),
        OpSpec("rem", 0x0B, "R", cycles=35),
        OpSpec("slt", 0x0C, "R"), OpSpec("sltu", 0x0D, "R"),
        # immediate ALU
        OpSpec("addi", 0x10, "I"), OpSpec("andi", 0x11, "I"),
        OpSpec("ori", 0x12, "I"), OpSpec("xori", 0x13, "I"),
        OpSpec("slli", 0x14, "I"), OpSpec("srli", 0x15, "I"),
        OpSpec("srai", 0x16, "I"), OpSpec("slti", 0x17, "I"),
        OpSpec("sltiu", 0x18, "I"), OpSpec("lui", 0x19, "I"),
        # memory
        OpSpec("lw", 0x20, "M", cycles=2, is_load=True),
        OpSpec("lh", 0x21, "M", cycles=2, is_load=True),
        OpSpec("lhu", 0x22, "M", cycles=2, is_load=True),
        OpSpec("lb", 0x23, "M", cycles=2, is_load=True),
        OpSpec("lbu", 0x24, "M", cycles=2, is_load=True),
        OpSpec("sw", 0x25, "M", cycles=2, is_store=True),
        OpSpec("sh", 0x26, "M", cycles=2, is_store=True),
        OpSpec("sb", 0x27, "M", cycles=2, is_store=True),
        # compare-and-branch (taken-branch penalty added by the timing model)
        OpSpec("beq", 0x28, "B", is_branch=True),
        OpSpec("bne", 0x29, "B", is_branch=True),
        OpSpec("blt", 0x2A, "B", is_branch=True),
        OpSpec("bge", 0x2B, "B", is_branch=True),
        OpSpec("bltu", 0x2C, "B", is_branch=True),
        OpSpec("bgeu", 0x2D, "B", is_branch=True),
        # jumps and calls
        OpSpec("jmp", 0x30, "J", is_jump=True),
        OpSpec("call", 0x31, "J", is_call=True),
        OpSpec("jr", 0x32, "JR", is_indirect=True),
        OpSpec("jalr", 0x33, "JR", is_indirect=True, is_call=True),
        # system
        OpSpec("halt", 0x3E, "N", is_halt=True),
    ]
    return {spec.mnemonic: spec for spec in table}


SPECS: Dict[str, OpSpec] = _specs()
OPCODE_TO_SPEC: Dict[int, OpSpec] = {spec.opcode: spec for spec in SPECS.values()}

#: mnemonics whose I-format immediate is zero-extended rather than sign-extended
ZERO_EXTENDED_IMM = frozenset({"andi", "ori", "xori", "sltiu", "lui"})
#: shift immediates are 5-bit
SHIFT_IMMS = frozenset({"slli", "srli", "srai"})


@dataclass(frozen=True)
class Instruction:
    """One assembly-level SRISC instruction.

    ``symbol`` holds an unresolved label for branch/jump/call targets (and
    for ``lui``/``ori`` pairs produced by the ``la`` pseudo-instruction,
    which the assembler resolves before encoding).  ``targets`` is the
    static target annotation (``.targets``) required on indirect CTIs by the
    SOFIA transformer.
    """

    mnemonic: str
    rd: Optional[int] = None
    rs1: Optional[int] = None
    rs2: Optional[int] = None
    imm: Optional[int] = None
    symbol: Optional[str] = None
    reloc: Optional[str] = None  # None | "hi" | "lo" for la-split symbols
    targets: Tuple[str, ...] = field(default=())
    line: int = 0

    @property
    def spec(self) -> OpSpec:
        return SPECS[self.mnemonic]

    @property
    def is_cti(self) -> bool:
        return self.spec.is_cti

    @property
    def is_store(self) -> bool:
        return self.spec.is_store

    def with_symbol(self, symbol: Optional[str]) -> "Instruction":
        return replace(self, symbol=symbol)

    def with_imm(self, imm: int) -> "Instruction":
        return replace(self, imm=imm)

    def render(self) -> str:
        """Assembly text for this instruction."""
        spec = self.spec
        name = self.mnemonic
        if spec.fmt == "N":
            return name
        if spec.fmt == "R":
            return (f"{name} {register_name(self.rd)}, "
                    f"{register_name(self.rs1)}, {register_name(self.rs2)}")
        if spec.fmt == "I":
            imm = self.symbol if self.imm is None else self.imm
            if self.reloc and self.symbol is not None:
                imm = f"%{self.reloc}({self.symbol})"
            if name == "lui":
                return f"{name} {register_name(self.rd)}, {imm}"
            return f"{name} {register_name(self.rd)}, {register_name(self.rs1)}, {imm}"
        if spec.fmt == "M":
            imm = self.imm if self.imm is not None else self.symbol
            reg = self.rs2 if spec.is_store else self.rd
            return f"{name} {register_name(reg)}, {imm}({register_name(self.rs1)})"
        if spec.fmt == "B":
            target = self.symbol if self.symbol is not None else self.imm
            return (f"{name} {register_name(self.rs1)}, "
                    f"{register_name(self.rs2)}, {target}")
        if spec.fmt == "J":
            target = self.symbol if self.symbol is not None else self.imm
            return f"{name} {target}"
        if spec.fmt == "JR":
            if self.mnemonic == "jalr":
                return f"{name} {register_name(self.rd)}, {register_name(self.rs1)}"
            return f"{name} {register_name(self.rs1)}"
        raise AssertionError(f"unhandled format {spec.fmt}")

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()


#: Canonical nop used for padding and for MAC-word replacement in hardware.
NOP = Instruction("nop")


def make_nop() -> Instruction:
    """Return the canonical nop instruction."""
    return NOP


def registers_read(instr: Instruction) -> frozenset:
    """Registers whose values the instruction consumes."""
    spec = instr.spec
    reads = set()
    if spec.fmt == "R":
        reads.update((instr.rs1, instr.rs2))
    elif spec.fmt == "I" and instr.mnemonic != "lui":
        reads.add(instr.rs1)
    elif spec.fmt == "M":
        reads.add(instr.rs1)            # base address
        if spec.is_store:
            reads.add(instr.rs2)        # stored data
    elif spec.fmt == "B":
        reads.update((instr.rs1, instr.rs2))
    elif spec.fmt == "JR":
        reads.add(instr.rs1)
    reads.discard(None)
    return frozenset(reads)


def registers_written(instr: Instruction) -> frozenset:
    """Registers the instruction writes (r0 writes are discarded)."""
    spec = instr.spec
    writes = set()
    if spec.fmt in ("R", "I") or (spec.fmt == "M" and spec.is_load):
        writes.add(instr.rd)
    elif spec.is_call:                  # call writes ra; jalr writes rd
        writes.add(1 if instr.rd is None else instr.rd)
    writes.discard(None)
    writes.discard(0)
    return frozenset(writes)
