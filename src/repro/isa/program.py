"""Program containers: parsed assembly and linked executables.

:class:`AsmProgram` is the assembler's (and minicc's) output and the SOFIA
transformer's input: a flat list of instructions with labels attached to
instruction indices, plus an initialized data section.  Addresses are not
assigned yet — the transformer is free to relocate everything into blocks.

:class:`Executable` is a linked vanilla binary: encoded code words at
``CODE_BASE``, data at ``DATA_BASE``, resolved symbols, an entry address.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..errors import AssemblyError
from .instructions import Instruction

#: Default memory map (see DESIGN.md).
CODE_BASE = 0x0000_0000
DATA_BASE = 0x0010_0000
STACK_TOP = 0x0020_0000
MMIO_BASE = 0xFFFF_0000

MMIO_PUTCHAR = MMIO_BASE + 0x0
MMIO_PUTINT = MMIO_BASE + 0x4
MMIO_EXIT = MMIO_BASE + 0x8
MMIO_PUTWORD = MMIO_BASE + 0xC
#: A simulated safety-critical actuator (the paper's motivating example is
#: a store that disables the brakes of a car, §II-B2).  The attack harness
#: treats any unsanctioned write here as a successful compromise.
MMIO_ACTUATOR = MMIO_BASE + 0x10


@dataclass
class AsmProgram:
    """Parsed (unlinked) assembly program.

    ``labels`` maps a code label to the index of the instruction it
    precedes; a label equal to ``len(instructions)`` marks the end of the
    text section.  ``data_symbols`` maps data labels to byte offsets within
    ``data``.
    """

    instructions: List[Instruction] = field(default_factory=list)
    labels: Dict[str, int] = field(default_factory=dict)
    data: bytearray = field(default_factory=bytearray)
    data_symbols: Dict[str, int] = field(default_factory=dict)
    entry: str = "main"

    def label_at(self, index: int) -> List[str]:
        """All labels attached to instruction ``index``."""
        return [name for name, i in self.labels.items() if i == index]

    def labels_by_index(self) -> Dict[int, List[str]]:
        """index -> labels map (stable order by name)."""
        result: Dict[int, List[str]] = {}
        for name in sorted(self.labels):
            result.setdefault(self.labels[name], []).append(name)
        return result

    def validate(self) -> None:
        """Check structural invariants shared by assembler and compiler."""
        n = len(self.instructions)
        for name, index in self.labels.items():
            if not 0 <= index <= n:
                raise AssemblyError(f"label {name!r} points outside the program")
        if self.entry not in self.labels:
            raise AssemblyError(f"entry symbol {self.entry!r} is not defined")
        for name, offset in self.data_symbols.items():
            if not 0 <= offset <= len(self.data):
                raise AssemblyError(f"data symbol {name!r} points outside .data")

    def code_symbol_addresses(self, base: int = CODE_BASE) -> Dict[str, int]:
        """Naive (untransformed) address of every code label."""
        return {name: base + 4 * index for name, index in self.labels.items()}


@dataclass
class Executable:
    """A linked vanilla (unprotected) binary image."""

    code_words: List[int]
    data: bytes
    symbols: Dict[str, int]
    entry: int
    code_base: int = CODE_BASE
    data_base: int = DATA_BASE
    #: per-word source instruction (for tracing/diagnostics)
    source: Optional[List[Instruction]] = None

    @property
    def code_size_bytes(self) -> int:
        """Size of the text section in bytes (the paper's code-size metric)."""
        return 4 * len(self.code_words)

    def word_at(self, address: int) -> int:
        index = (address - self.code_base) // 4
        if not 0 <= index < len(self.code_words):
            raise AssemblyError(f"address 0x{address:08x} outside text section")
        return self.code_words[index]

    def symbol(self, name: str) -> int:
        try:
            return self.symbols[name]
        except KeyError:
            raise AssemblyError(f"unknown symbol {name!r}") from None


def resolve_data_references(
    program: AsmProgram, data_base: int = DATA_BASE
) -> Dict[str, int]:
    """Absolute addresses of all data symbols."""
    return {name: data_base + off for name, off in program.data_symbols.items()}


def split_functions(program: AsmProgram) -> List[Tuple[str, int, int]]:
    """Partition the text section into (label, start, end) function ranges.

    A function starts at every label that is the target of a ``call`` or is
    the entry symbol; ranges run to the next function start.  Used by
    analyses and by the transformer's single-ret canonicalization.
    """
    starts = {program.labels[program.entry]}
    for instr in program.instructions:
        if instr.spec.is_call and instr.symbol is not None:
            if instr.symbol in program.labels:
                starts.add(program.labels[instr.symbol])
        if instr.spec.is_call and instr.spec.is_indirect:
            for target in instr.targets:
                if target in program.labels:
                    starts.add(program.labels[target])
    ordered = sorted(starts)
    by_index = program.labels_by_index()
    result = []
    for i, start in enumerate(ordered):
        end = ordered[i + 1] if i + 1 < len(ordered) else len(program.instructions)
        names = by_index.get(start, [f"func_{start}"])
        result.append((names[0], start, end))
    return result
