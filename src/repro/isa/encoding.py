"""Binary encoding/decoding of SRISC instructions.

Layout (32-bit words, bit 31 is the MSB)::

    [31:26] opcode
    R   : [25:21] rd   [20:16] rs1  [15:11] rs2
    I   : [25:21] rd   [20:16] rs1  [15:0]  imm16
    M ld: [25:21] rd   [20:16] base [15:0]  imm16
    M st: [25:21] data [20:16] base [15:0]  imm16
    B   : [25:21] rs1  [20:16] rs2  [15:0]  imm16 (signed word offset,
                                                   target = pc + 4*imm)
    J   : [25:0]  imm26 (absolute word address, target = imm26 << 2)
    JR  : [25:21] rd (jalr only)  [20:16] rs1

Immediates for ``andi/ori/xori/sltiu/lui`` are zero-extended 16-bit values;
the remaining I/M immediates are signed 16-bit; shift amounts are 0..31.
"""

from __future__ import annotations

from ..errors import DecodingError, EncodingError
from .instructions import (Instruction, OPCODE_TO_SPEC, SHIFT_IMMS, SPECS,
                           ZERO_EXTENDED_IMM)

WORD_MASK = 0xFFFFFFFF
IMM16_MASK = 0xFFFF
IMM26_MASK = 0x3FFFFFF


def _check_reg(value: int, name: str, mnemonic: str) -> int:
    if value is None:
        raise EncodingError(f"{mnemonic}: missing {name}")
    if not 0 <= value < 32:
        raise EncodingError(f"{mnemonic}: {name}={value} out of range")
    return value


def _encode_imm16(value: int, mnemonic: str) -> int:
    if value is None:
        raise EncodingError(f"{mnemonic}: missing immediate")
    if mnemonic in SHIFT_IMMS:
        if not 0 <= value < 32:
            raise EncodingError(f"{mnemonic}: shift amount {value} out of 0..31")
        return value
    if mnemonic in ZERO_EXTENDED_IMM:
        if not 0 <= value <= 0xFFFF:
            raise EncodingError(f"{mnemonic}: immediate {value} out of 0..65535")
        return value
    if not -0x8000 <= value <= 0x7FFF:
        raise EncodingError(f"{mnemonic}: immediate {value} out of signed 16-bit range")
    return value & IMM16_MASK


def _decode_imm16(raw: int, mnemonic: str) -> int:
    if mnemonic in ZERO_EXTENDED_IMM or mnemonic in SHIFT_IMMS:
        return raw
    return raw - 0x10000 if raw & 0x8000 else raw


def encode(instr: Instruction, pc: int = 0) -> int:
    """Encode an instruction (with fully numeric operands) at address ``pc``.

    Branch instructions must carry ``imm`` = absolute byte target; jumps and
    calls likewise.  The assembler resolves symbols before calling this.
    """
    spec = instr.spec
    op = spec.opcode << 26
    name = instr.mnemonic
    if instr.symbol is not None:
        raise EncodingError(f"{name}: unresolved symbol {instr.symbol!r}")
    if spec.fmt == "N":
        return op
    if spec.fmt == "R":
        return (op
                | (_check_reg(instr.rd, "rd", name) << 21)
                | (_check_reg(instr.rs1, "rs1", name) << 16)
                | (_check_reg(instr.rs2, "rs2", name) << 11))
    if spec.fmt == "I":
        rs1 = 0 if name == "lui" else _check_reg(instr.rs1, "rs1", name)
        return (op
                | (_check_reg(instr.rd, "rd", name) << 21)
                | (rs1 << 16)
                | _encode_imm16(instr.imm, name))
    if spec.fmt == "M":
        data_reg = instr.rs2 if spec.is_store else instr.rd
        return (op
                | (_check_reg(data_reg, "data register", name) << 21)
                | (_check_reg(instr.rs1, "base register", name) << 16)
                | _encode_imm16(instr.imm, name))
    if spec.fmt == "B":
        target = instr.imm
        if target is None:
            raise EncodingError(f"{name}: missing branch target")
        delta = target - pc
        if delta % 4:
            raise EncodingError(f"{name}: misaligned branch target 0x{target:x}")
        offset = delta // 4
        if not -0x8000 <= offset <= 0x7FFF:
            raise EncodingError(
                f"{name}: branch from 0x{pc:x} to 0x{target:x} out of range")
        return (op
                | (_check_reg(instr.rs1, "rs1", name) << 21)
                | (_check_reg(instr.rs2, "rs2", name) << 16)
                | (offset & IMM16_MASK))
    if spec.fmt == "J":
        target = instr.imm
        if target is None:
            raise EncodingError(f"{name}: missing jump target")
        if target % 4:
            raise EncodingError(f"{name}: misaligned target 0x{target:x}")
        word_addr = target >> 2
        if word_addr > IMM26_MASK:
            raise EncodingError(f"{name}: target 0x{target:x} exceeds 26-bit word space")
        return op | word_addr
    if spec.fmt == "JR":
        rd = _check_reg(instr.rd, "rd", name) if name == "jalr" else 0
        return op | (rd << 21) | (_check_reg(instr.rs1, "rs1", name) << 16)
    raise AssertionError(f"unhandled format {spec.fmt}")


def decode(word: int, pc: int = 0) -> Instruction:
    """Decode a 32-bit word fetched from address ``pc``.

    Raises :class:`DecodingError` for unknown opcodes — the simulated
    processor treats that as an illegal-instruction trap, which is how
    "random data" from a SOFIA decryption error usually manifests.

    Decoding is **canonical**: a word whose format leaves field bits
    unused (nop/halt operand bits, R-format bits [10:0], the ``lui`` rs1
    field, the ``jr`` rd field, the ``jalr`` imm16 field) only decodes
    when those bits are zero — exactly the words :func:`encode` can
    produce, so ``encode(decode(w), pc) == w`` for every decodable word
    (the round-trip property the fuzzer pins).
    """
    word &= WORD_MASK
    spec = OPCODE_TO_SPEC.get(word >> 26)
    if spec is None:
        raise DecodingError(f"invalid opcode 0x{word >> 26:02x} in word 0x{word:08x}")
    name = spec.mnemonic
    f21 = (word >> 21) & 0x1F
    f16 = (word >> 16) & 0x1F
    f11 = (word >> 11) & 0x1F
    raw16 = word & IMM16_MASK
    if spec.fmt == "N":
        if word & IMM26_MASK:
            raise DecodingError(
                f"{name}: non-canonical operand bits in word 0x{word:08x}")
        return Instruction(name)
    if spec.fmt == "R":
        if word & 0x7FF:
            raise DecodingError(
                f"{name}: non-canonical low bits in word 0x{word:08x}")
        return Instruction(name, rd=f21, rs1=f16, rs2=f11)
    if spec.fmt == "I":
        imm = _decode_imm16(raw16, name)
        if name in SHIFT_IMMS and imm >= 32:
            raise DecodingError(f"{name}: shift amount {imm} out of range")
        if name == "lui" and f16:
            raise DecodingError(
                f"lui: non-canonical rs1 field in word 0x{word:08x}")
        rs1 = 0 if name == "lui" else f16
        return Instruction(name, rd=f21, rs1=rs1, imm=imm)
    if spec.fmt == "M":
        imm = _decode_imm16(raw16, name)
        if spec.is_store:
            return Instruction(name, rs2=f21, rs1=f16, imm=imm)
        return Instruction(name, rd=f21, rs1=f16, imm=imm)
    if spec.fmt == "B":
        offset = raw16 - 0x10000 if raw16 & 0x8000 else raw16
        return Instruction(name, rs1=f21, rs2=f16, imm=pc + 4 * offset)
    if spec.fmt == "J":
        return Instruction(name, imm=(word & IMM26_MASK) << 2)
    if spec.fmt == "JR":
        if raw16:
            raise DecodingError(
                f"{name}: non-canonical low bits in word 0x{word:08x}")
        if name == "jalr":
            return Instruction(name, rd=f21, rs1=f16)
        if f21:
            raise DecodingError(
                f"jr: non-canonical rd field in word 0x{word:08x}")
        return Instruction(name, rs1=f16)
    raise AssertionError(f"unhandled format {spec.fmt}")


def is_valid_word(word: int, pc: int = 0) -> bool:
    """True when ``word`` decodes to a well-formed instruction."""
    try:
        decode(word, pc)
    except DecodingError:
        return False
    return True
