"""SRISC disassembler — for debugging, traces and test diagnostics."""

from __future__ import annotations

from typing import Iterable, List

from ..errors import DecodingError
from .encoding import decode


def disassemble_word(word: int, pc: int = 0) -> str:
    """Render one 32-bit word as assembly text (or a .word fallback)."""
    try:
        return decode(word, pc).render()
    except DecodingError:
        return f".word 0x{word:08x}"


def disassemble(words: Iterable[int], base: int = 0) -> List[str]:
    """Disassemble a word sequence into annotated lines."""
    lines = []
    for index, word in enumerate(words):
        pc = base + 4 * index
        lines.append(f"{pc:08x}:  {word:08x}  {disassemble_word(word, pc)}")
    return lines


def dump(words: Iterable[int], base: int = 0) -> str:
    """Full-text disassembly listing."""
    return "\n".join(disassemble(words, base))
