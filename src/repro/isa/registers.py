"""SRISC register file names and ABI conventions.

SRISC (the SPARC-flavored RISC substrate standing in for the LEON3's
SPARCv8, see DESIGN.md) has 32 general-purpose 32-bit registers.  ``r0`` is
hard-wired to zero.  The ABI used by the assembler, the minicc compiler and
the examples:

====== ========= =====================================
reg    alias     role
====== ========= =====================================
r0     zero      constant zero
r1     ra        return address (written by call/jalr)
r2     sp        stack pointer (grows down)
r3     fp        frame pointer
r4-11  a0-a7     arguments / return value in a0
r12-19 t0-t7     caller-saved temporaries
r20-27 s0-s7     callee-saved
r28-30 t8-t10    extra caller-saved temporaries
r31    at        assembler/transformer scratch
====== ========= =====================================
"""

from __future__ import annotations

from typing import Dict

NUM_REGISTERS = 32

ZERO = 0
RA = 1
SP = 2
FP = 3
A0 = 4
T0 = 12
S0 = 20
AT = 31

#: alias -> register number
ALIASES: Dict[str, int] = {"zero": 0, "ra": 1, "sp": 2, "fp": 3, "at": 31}
ALIASES.update({f"a{i}": 4 + i for i in range(8)})
ALIASES.update({f"t{i}": 12 + i for i in range(8)})
ALIASES.update({f"s{i}": 20 + i for i in range(8)})
ALIASES.update({f"t{8 + i}": 28 + i for i in range(3)})
ALIASES.update({f"r{i}": i for i in range(NUM_REGISTERS)})

#: register number -> preferred disassembly name
NAMES = [f"r{i}" for i in range(NUM_REGISTERS)]
for _alias, _num in ALIASES.items():
    if not _alias.startswith("r"):
        NAMES[_num] = _alias


def parse_register(token: str) -> int:
    """Parse a register token (``r7``, ``a0``, ``sp``...) to its number."""
    reg = ALIASES.get(token.lower())
    if reg is None:
        raise ValueError(f"unknown register {token!r}")
    return reg


def register_name(number: int) -> str:
    """Preferred symbolic name for a register number."""
    if not 0 <= number < NUM_REGISTERS:
        raise ValueError(f"register number {number} out of range")
    return NAMES[number]
