"""CSV export of experiment data (figure-ready artifacts).

Each exporter turns one experiment's rows into a CSV file so downstream
users can plot the reproduction's figures with their own tooling (the
repository deliberately has no plotting dependency).
"""

from __future__ import annotations

import csv
import io
import json
from typing import Any, Dict, List, Optional, Sequence

from ..runner.export import atomic_write_text
from .experiments import (BlockSizePoint, CachePoint, FanInPoint)
from .overhead import OverheadRow


def _write(header: Sequence[str], rows: List[Sequence],
           path: Optional[str]) -> str:
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(header)
    writer.writerows(rows)
    text = buffer.getvalue()
    if path is not None:
        atomic_write_text(path, text)
    return text


def overhead_csv(rows: List[OverheadRow],
                 path: Optional[str] = None) -> str:
    """E2/E10 data: one row per workload."""
    return _write(
        ["workload", "vanilla_bytes", "sofia_bytes", "size_ratio",
         "vanilla_cycles", "sofia_cycles", "cycle_overhead",
         "exec_time_overhead", "blocks", "mux_blocks", "padding_nops"],
        [[r.workload, r.vanilla_bytes, r.sofia_bytes,
          round(r.size_ratio, 4), r.vanilla_cycles, r.sofia_cycles,
          round(r.cycle_overhead, 4), round(r.exec_time_overhead, 4),
          r.blocks, r.mux_blocks, r.padding_nops] for r in rows],
        path)


def muxtree_csv(points: List[FanInPoint],
                path: Optional[str] = None) -> str:
    """E7 data: multiplexor-tree cost vs fan-in."""
    return _write(
        ["fan_in", "tree_nodes", "mux_blocks", "code_bytes", "cycles"],
        [[p.fan_in, p.tree_nodes, p.mux_blocks, p.code_bytes, p.cycles]
         for p in points],
        path)


def blocksize_csv(points: List[BlockSizePoint],
                  path: Optional[str] = None) -> str:
    """E6 data: block geometry ablation."""
    return _write(
        ["block_words", "exec_capacity", "store_forbidden_slots",
         "size_ratio", "cycle_overhead"],
        [[p.block_words, p.exec_capacity,
          " ".join(map(str, p.store_forbidden)),
          round(p.row.size_ratio, 4), round(p.row.cycle_overhead, 4)]
         for p in points],
        path)


#: column order of the E16 detection-matrix CSV (one row per
#: family x target cell); kept here so figure tooling and the
#: attack-synthesis campaign agree on the schema
ATTACKSYNTH_CSV_HEADER = (
    "family", "target", "detected", "crashed", "survived_clean",
    "survived_divergent", "limit", "hijacked", "not_applicable", "total")


def attacksynth_csv(rows: Sequence[Dict[str, Any]],
                    path: Optional[str] = None) -> str:
    """E16 data: the attack-synthesis detection matrix, one cell per row.

    ``rows`` are plain dicts keyed by :data:`ATTACKSYNTH_CSV_HEADER`
    (produced by ``DetectionMatrix.csv_rows`` in
    :mod:`repro.attacksynth`), so this exporter stays decoupled from the
    campaign types.
    """
    return _write(ATTACKSYNTH_CSV_HEADER,
                  [[row.get(key, 0) for key in ATTACKSYNTH_CSV_HEADER]
                   for row in rows],
                  path)


def attacksynth_json(record: Dict[str, Any],
                     path: Optional[str] = None) -> str:
    """E16 campaign record as canonical JSON.

    Keys are sorted and no wall-clock or worker-count field is included,
    so the same campaign parameters produce byte-identical files at any
    ``--jobs`` value — the determinism contract the CLI tests pin.
    """
    text = json.dumps(record, indent=2, sort_keys=True) + "\n"
    if path is not None:
        atomic_write_text(path, text)
    return text


#: column order of the E17 Pareto-table CSV (one row per design point);
#: kept here so figure tooling and the DSE campaign agree on the schema
DSE_CSV_HEADER = (
    "profile", "cipher", "mac_bits", "renonce", "block_words",
    "schedule_stores", "size_ratio", "cycle_overhead", "si_years",
    "cfi_years", "synth_attempts", "synth_undetected", "detection_rate",
    "expected_collisions", "consistent", "fault_detected", "fault_sdc",
    "pareto", "error")

#: column order of the unified E17+hardware (E20) Pareto CSV: the E17
#: columns plus the profile-derived hardware axes, one row per
#: (design point, unroll factor); ``--hw`` off keeps the narrow header
#: so pre-hardware artifacts stay byte-identical
DSE_HW_CSV_HEADER = DSE_CSV_HEADER + (
    "unroll", "cipher_cycles", "datapath_slices", "slices", "clock_mhz",
    "path_ns", "area_delay", "hw_pareto")


def dse_csv(rows: Sequence[Dict[str, Any]],
            path: Optional[str] = None,
            header: Sequence[str] = DSE_CSV_HEADER) -> str:
    """E17/E20 data: the design-space Pareto table, one row per point.

    ``rows`` are plain dicts keyed by ``header`` — :data:`DSE_CSV_HEADER`
    (produced by ``DseReport.csv_rows``) or :data:`DSE_HW_CSV_HEADER`
    (``DseReport.hw_csv_rows``, one row per point x unroll) — so this
    exporter stays decoupled from the campaign types.
    """
    return _write(header,
                  [[row.get(key, "") for key in header]
                   for row in rows],
                  path)


def dse_json(record: Dict[str, Any], path: Optional[str] = None) -> str:
    """E17 campaign record as canonical JSON.

    Keys are sorted and no wall-clock or worker-count field is included,
    so the same sweep parameters produce byte-identical files at any
    ``--jobs`` value — the determinism contract the CI smoke pins.
    """
    text = json.dumps(record, indent=2, sort_keys=True) + "\n"
    if path is not None:
        atomic_write_text(path, text)
    return text


#: column order of the E18 batch-lockstep CSV (one row per measured
#: campaign workload); kept here so figure tooling and the benchmark
#: agree on the schema
BATCH_CSV_HEADER = (
    "workload", "specimens", "scalar_specimens_per_s",
    "batch_specimens_per_s", "speedup", "identical")


def batch_csv(rows: Sequence[Dict[str, Any]],
              path: Optional[str] = None) -> str:
    """E18 data: batch-vs-scalar campaign throughput, one workload per row.

    ``rows`` are plain dicts keyed by :data:`BATCH_CSV_HEADER` (produced
    by ``benchmarks/bench_batch_lockstep.py``), so this exporter stays
    decoupled from the benchmark internals.
    """
    return _write(BATCH_CSV_HEADER,
                  [[row.get(key, "") for key in BATCH_CSV_HEADER]
                   for row in rows],
                  path)


def batch_json(record: Dict[str, Any], path: Optional[str] = None) -> str:
    """E18 campaign record as canonical JSON.

    Only the deterministic fields (outcome counts, identity verdicts —
    never the measured throughputs) belong in ``record``: keys are
    sorted, so the same campaign parameters produce byte-identical
    files at any ``--jobs`` value or batch width — the contract the
    batch determinism suite pins.
    """
    text = json.dumps(record, indent=2, sort_keys=True) + "\n"
    if path is not None:
        atomic_write_text(path, text)
    return text


def cache_csv(points: List[CachePoint],
              path: Optional[str] = None) -> str:
    """E14 data: I-cache sensitivity."""
    return _write(
        ["icache_lines", "icache_bytes", "vanilla_cycles", "sofia_cycles",
         "cycle_overhead"],
        [[p.lines, p.cache_bytes, p.row.vanilla_cycles,
          p.row.sofia_cycles, round(p.row.cycle_overhead, 4)]
         for p in points],
        path)
