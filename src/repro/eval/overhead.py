"""Overhead measurement: one workload, both cores, all three paper metrics.

The paper's §IV-B reports three numbers for ADPCM, reproduced here for any
workload:

* **code size** — text-section bytes before/after transformation,
* **cycle overhead** — cycles on the SOFIA core vs the vanilla core,
* **total execution-time overhead** — cycle overhead compounded with the
  clock-frequency ratio from the hardware model (Table I):
  ``(1 + cycle_ovh) * (f_vanilla / f_sofia) - 1``.  With the paper's
  numbers this is exactly 1.137 * (92.3/50.1) - 1 = 1.095 ≈ 110 %.

Sweeps over many (workload, config, timing) points are expressed as
:class:`OverheadPoint` task lists and dispatched via
:func:`measure_many` through :mod:`repro.runner`; the per-process build
cache ensures each protected image is compiled/transformed/encrypted
once per distinct (workload, config, nonce) — points that only vary
timing parameters (e.g. the I-cache sweep) reuse the cached image.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..crypto.keys import DeviceKeys
from ..errors import SimulationError
from ..hwmodel.design import table1
from ..isa.assembler import assemble
from ..isa.program import Executable
from ..runner import DEFAULT_KEY_SEED, BuildSpec, build_cache, run_tasks
from ..sim.sofia import SofiaMachine
from ..sim.timing import DEFAULT_TIMING, TimingParams
from ..sim.vanilla import VanillaMachine
from ..transform.config import DEFAULT_CONFIG, TransformConfig
from ..transform.image import SofiaImage
from ..transform.profile import ProtectionProfile
from ..transform.transformer import transform
from ..workloads.base import Workload

_DEFAULT_KEYS = DeviceKeys.from_seed(DEFAULT_KEY_SEED)


@dataclass(frozen=True)
class OverheadRow:
    """All overhead metrics for one workload."""

    workload: str
    vanilla_bytes: int
    sofia_bytes: int
    vanilla_cycles: int
    sofia_cycles: int
    vanilla_instructions: int
    sofia_instructions: int
    clock_ratio: float
    blocks: int
    mux_blocks: int
    tree_nodes: int
    padding_nops: int

    @property
    def size_ratio(self) -> float:
        return self.sofia_bytes / self.vanilla_bytes

    @property
    def cycle_overhead(self) -> float:
        return self.sofia_cycles / self.vanilla_cycles - 1.0

    @property
    def exec_time_overhead(self) -> float:
        return (1.0 + self.cycle_overhead) * self.clock_ratio - 1.0


def _run_both(workload: Workload, exe: Executable, image: SofiaImage,
              keys: DeviceKeys, timing: TimingParams,
              max_instructions: int,
              engine: Optional[str] = None) -> OverheadRow:
    """Run both cores against a prepared build and assemble the row."""
    vanilla = VanillaMachine(exe, timing, engine=engine).run(max_instructions)
    if vanilla.output_ints != workload.expected_output:
        raise SimulationError(
            f"{workload.name}: vanilla output {vanilla.output_ints} != "
            f"golden {workload.expected_output}")
    sofia = SofiaMachine(image, keys, timing, engine=engine).run(
        max_instructions)
    if sofia.output_ints != workload.expected_output:
        raise SimulationError(
            f"{workload.name}: SOFIA output {sofia.output_ints} != "
            f"golden {workload.expected_output} ({sofia.summary()})")
    clocks = table1()
    stats = image.stats
    return OverheadRow(
        workload=workload.name,
        vanilla_bytes=exe.code_size_bytes,
        sofia_bytes=image.code_size_bytes,
        vanilla_cycles=vanilla.cycles,
        sofia_cycles=sofia.cycles,
        vanilla_instructions=vanilla.instructions,
        sofia_instructions=sofia.instructions,
        clock_ratio=clocks.clock_ratio,
        blocks=stats.total_blocks,
        mux_blocks=stats.mux_blocks,
        tree_nodes=stats.tree_nodes,
        padding_nops=stats.padding_nops)


def measure_overhead(workload: Workload,
                     keys: Optional[DeviceKeys] = None,
                     timing: TimingParams = DEFAULT_TIMING,
                     config: Optional[TransformConfig] = None,
                     nonce: int = 0x2016,
                     max_instructions: int = 50_000_000,
                     engine: Optional[str] = None,
                     profile: Optional[ProtectionProfile] = None
                     ) -> OverheadRow:
    """Compile, run on both cores, verify outputs, return the metrics.

    Rows are engine-independent by construction (the engines produce
    bit-identical cycle counts); ``engine`` exists so sweeps can pin the
    reference oracle when re-validating paper numbers.  ``profile``
    measures a non-default design point and provisions the keys for its
    cipher; passing a disagreeing ``config`` alongside it is an error
    (the transformer enforces agreement).
    """
    keys = keys or _DEFAULT_KEYS
    if profile is not None:
        keys = keys.for_profile(profile)
    compiled = workload.compile()
    exe = assemble(compiled.program)
    image = transform(compiled.program, keys, nonce=nonce, config=config,
                      profile=profile)
    return _run_both(workload, exe, image, keys, timing, max_instructions,
                     engine=engine)


@dataclass(frozen=True)
class OverheadPoint:
    """One (workload, build, timing) cell of an overhead sweep.

    Points are plain picklable values, so a sweep is a task list for
    :func:`repro.runner.run_tasks`; the build stages are memoized by the
    per-process cache keyed on the point's :class:`BuildSpec` fields.
    """

    workload: str
    scale: str = "small"
    key_seed: int = DEFAULT_KEY_SEED
    nonce: int = 0x2016
    timing: TimingParams = DEFAULT_TIMING
    config: TransformConfig = DEFAULT_CONFIG
    max_instructions: int = 50_000_000
    #: execution engine (None = the default predecoded engine); rows are
    #: bit-identical across engines, this pins one for A/B validation
    engine: Optional[str] = None
    #: full design point; supersedes ``config`` when set (E17 sweeps)
    profile: Optional[ProtectionProfile] = None

    @property
    def build_spec(self) -> BuildSpec:
        return BuildSpec(workload=self.workload, scale=self.scale,
                         key_seed=self.key_seed, nonce=self.nonce,
                         config=self.config, profile=self.profile)


def measure_point(point: OverheadPoint) -> OverheadRow:
    """Measure one sweep point through the per-process build cache.

    Identical to :func:`measure_overhead` on the equivalent arguments —
    the cached build pipeline is deterministic — but repeated points that
    share a build (e.g. a timing sweep) only transform/encrypt once.
    """
    workload, exe, image, keys = build_cache().protected(point.build_spec)
    return _run_both(workload, exe, image, keys, point.timing,
                     point.max_instructions, engine=point.engine)


def measure_many(points: List[OverheadPoint], *,
                 parallel: bool = False,
                 jobs: Optional[int] = None) -> List[OverheadRow]:
    """Measure a sweep, one row per point, in point order.

    Serial execution measures points in order through the shared cache;
    ``parallel=True`` fans points across worker processes (each worker
    caches its own builds).  Rows are deterministic either way.
    """
    return run_tasks(measure_point, points, jobs=jobs, parallel=parallel)


def format_overhead_rows(rows: List[OverheadRow]) -> str:
    header = (f"{'workload':<10s} {'size':>12s} {'ratio':>6s} "
              f"{'cycles(van)':>12s} {'cycles(sofia)':>13s} "
              f"{'cyc ovh':>8s} {'exec ovh':>9s}")
    lines = [header, "-" * len(header)]
    for r in rows:
        lines.append(
            f"{r.workload:<10s} {r.vanilla_bytes:>5d}->{r.sofia_bytes:<6d} "
            f"{r.size_ratio:>5.2f}x {r.vanilla_cycles:>12,d} "
            f"{r.sofia_cycles:>13,d} {r.cycle_overhead:>+7.1%} "
            f"{r.exec_time_overhead:>+8.1%}")
    return "\n".join(lines)
