"""Overhead measurement: one workload, both cores, all three paper metrics.

The paper's §IV-B reports three numbers for ADPCM, reproduced here for any
workload:

* **code size** — text-section bytes before/after transformation,
* **cycle overhead** — cycles on the SOFIA core vs the vanilla core,
* **total execution-time overhead** — cycle overhead compounded with the
  clock-frequency ratio from the hardware model (Table I):
  ``(1 + cycle_ovh) * (f_vanilla / f_sofia) - 1``.  With the paper's
  numbers this is exactly 1.137 * (92.3/50.1) - 1 = 1.095 ≈ 110 %.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..crypto.keys import DeviceKeys
from ..errors import SimulationError
from ..hwmodel.design import table1
from ..isa.assembler import assemble
from ..sim.sofia import SofiaMachine
from ..sim.timing import DEFAULT_TIMING, TimingParams
from ..sim.vanilla import VanillaMachine
from ..transform.config import DEFAULT_CONFIG, TransformConfig
from ..transform.transformer import transform
from ..workloads.base import Workload

_DEFAULT_KEYS = DeviceKeys.from_seed(0x50F1A)


@dataclass(frozen=True)
class OverheadRow:
    """All overhead metrics for one workload."""

    workload: str
    vanilla_bytes: int
    sofia_bytes: int
    vanilla_cycles: int
    sofia_cycles: int
    vanilla_instructions: int
    sofia_instructions: int
    clock_ratio: float
    blocks: int
    mux_blocks: int
    tree_nodes: int
    padding_nops: int

    @property
    def size_ratio(self) -> float:
        return self.sofia_bytes / self.vanilla_bytes

    @property
    def cycle_overhead(self) -> float:
        return self.sofia_cycles / self.vanilla_cycles - 1.0

    @property
    def exec_time_overhead(self) -> float:
        return (1.0 + self.cycle_overhead) * self.clock_ratio - 1.0


def measure_overhead(workload: Workload,
                     keys: Optional[DeviceKeys] = None,
                     timing: TimingParams = DEFAULT_TIMING,
                     config: TransformConfig = DEFAULT_CONFIG,
                     nonce: int = 0x2016,
                     max_instructions: int = 50_000_000) -> OverheadRow:
    """Compile, run on both cores, verify outputs, return the metrics."""
    keys = keys or _DEFAULT_KEYS
    compiled = workload.compile()
    exe = assemble(compiled.program)
    vanilla = VanillaMachine(exe, timing).run(max_instructions)
    if vanilla.output_ints != workload.expected_output:
        raise SimulationError(
            f"{workload.name}: vanilla output {vanilla.output_ints} != "
            f"golden {workload.expected_output}")
    image = transform(compiled.program, keys, nonce=nonce, config=config)
    sofia = SofiaMachine(image, keys, timing).run(max_instructions)
    if sofia.output_ints != workload.expected_output:
        raise SimulationError(
            f"{workload.name}: SOFIA output {sofia.output_ints} != "
            f"golden {workload.expected_output} ({sofia.summary()})")
    clocks = table1()
    stats = image.stats
    return OverheadRow(
        workload=workload.name,
        vanilla_bytes=exe.code_size_bytes,
        sofia_bytes=image.code_size_bytes,
        vanilla_cycles=vanilla.cycles,
        sofia_cycles=sofia.cycles,
        vanilla_instructions=vanilla.instructions,
        sofia_instructions=sofia.instructions,
        clock_ratio=clocks.clock_ratio,
        blocks=stats.total_blocks,
        mux_blocks=stats.mux_blocks,
        tree_nodes=stats.tree_nodes,
        padding_nops=stats.padding_nops)


def format_overhead_rows(rows: List[OverheadRow]) -> str:
    header = (f"{'workload':<10s} {'size':>12s} {'ratio':>6s} "
              f"{'cycles(van)':>12s} {'cycles(sofia)':>13s} "
              f"{'cyc ovh':>8s} {'exec ovh':>9s}")
    lines = [header, "-" * len(header)]
    for r in rows:
        lines.append(
            f"{r.workload:<10s} {r.vanilla_bytes:>5d}->{r.sofia_bytes:<6d} "
            f"{r.size_ratio:>5.2f}x {r.vanilla_cycles:>12,d} "
            f"{r.sofia_cycles:>13,d} {r.cycle_overhead:>+7.1%} "
            f"{r.exec_time_overhead:>+8.1%}")
    return "\n".join(lines)
