"""One-shot evaluation report: every experiment, one text artifact.

``full_report()`` regenerates E1–E11 and returns a single formatted
document (the CLI's ``experiments`` command runs subsets; this is the
"reproduce the whole paper" button).  ``write_report`` saves it to disk.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Optional

from ..attacks.harness import format_matrix, run_campaign
from ..crypto.keys import DeviceKeys
from ..faults.campaign import run_campaign as run_fault_campaign
from ..sim.timing import LEON3_MINIMAL_TIMING
from ..workloads.base import make_workload
from .experiments import (experiment_adpcm, experiment_blocksize,
                          experiment_muxtree, experiment_security,
                          experiment_table1, experiment_unroll,
                          experiment_workloads, render_blocksize,
                          render_muxtree, render_unroll)
from .overhead import format_overhead_rows


def _section(title: str, body: str) -> str:
    rule = "=" * 72
    return f"{rule}\n{title}\n{rule}\n{body}\n"


def full_report(scale: str = "tiny", fault_samples: int = 8,
                security_experiments: int = 100,
                seed: int = 2016) -> str:
    """Regenerate every experiment at the given scale."""
    parts = [
        f"SOFIA reproduction — full evaluation report "
        f"(scale={scale}, generated {time.strftime('%Y-%m-%d %H:%M:%S')})",
        "",
    ]
    parts.append(_section("E1 — Table I: hardware comparison",
                          experiment_table1().render()))
    parts.append(_section("E2 — ADPCM overheads (§IV-B)",
                          experiment_adpcm(scale).render()))
    parts.append(_section("E3/E4/E9 — security bounds + Monte-Carlo",
                          experiment_security(security_experiments).render()))
    parts.append(_section(
        "E6 — block-size ablation (Figs. 5/6)",
        render_blocksize(experiment_blocksize(scale, (6, 8)))))
    parts.append(_section(
        "E7 — multiplexor-tree fan-in (Fig. 9)",
        render_muxtree(experiment_muxtree((1, 2, 4, 8, 16)))))
    parts.append(_section("E8 — attack-detection matrix",
                          format_matrix(run_campaign(seed=seed))))
    parts.append(_section(
        "E10 — per-workload overheads (calibrated timing)",
        format_overhead_rows(
            experiment_workloads(scale, timing=LEON3_MINIMAL_TIMING))))
    workload = make_workload("crc32", scale)
    _, fault_summary = run_fault_campaign(
        workload.compile().program, DeviceKeys.from_seed(seed),
        workload.expected_output, per_model=fault_samples, seed=seed)
    parts.append(_section("E11 — fault-injection campaign (§V future work)",
                          fault_summary.render()))
    parts.append(_section("hardware design space — cipher unroll (§III)",
                          render_unroll(experiment_unroll())))
    return "\n".join(parts)


def write_report(path: str, scale: str = "tiny",
                 **kwargs) -> Optional[str]:
    """Generate and save the full report; returns the text."""
    text = full_report(scale=scale, **kwargs)
    Path(path).write_text(text)
    return text
