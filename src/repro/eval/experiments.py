"""Experiment runners — one per paper table/figure (see DESIGN.md index).

Each function regenerates the rows of its experiment and returns structured
data; ``render_*`` helpers print the same rows the paper reports, side by
side with the published values where applicable.

Experiments that iterate over independent cells (workloads, block sizes,
cache sizes, attack/target pairs, Monte-Carlo batches) express the loop
as a task list for :mod:`repro.runner` and accept ``parallel``/``jobs``;
the default ``parallel=False`` runs the historical serial loop with
identical results (the CLI's ``--jobs N`` flips these on).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..attacks.harness import AttackResult, run_campaign
from ..crypto.keys import DeviceKeys
from ..hwmodel.design import Table1, UnrollPoint, table1, unroll_ablation
from ..isa.assembler import parse
from ..isa.assembler import assemble
from ..security.bounds import SecurityReport, security_report
from ..security.montecarlo import (ForgeryScaling, forgery_scaling,
                                   tamper_detection)
from ..sim.sofia import SofiaMachine
from ..sim.timing import DEFAULT_TIMING, LEON3_MINIMAL_TIMING, TimingParams
from ..sim.vanilla import VanillaMachine
from ..transform.config import TransformConfig
from ..transform.transformer import transform
from ..workloads.base import make_workload, workload_names
from .overhead import (OverheadPoint, OverheadRow, format_overhead_rows,
                       measure_many, measure_overhead)

#: published §IV-B numbers for the ADPCM benchmark
PAPER_ADPCM = {
    "vanilla_bytes": 6_976,
    "sofia_bytes": 16_816,
    "size_ratio": 16_816 / 6_976,
    "vanilla_cycles": 114_188_673,
    "sofia_cycles": 130_840_013,
    "cycle_overhead": 130_840_013 / 114_188_673 - 1.0,
    "exec_time_overhead": 1.10,
}


# -- E1: Table I ------------------------------------------------------------

def experiment_table1() -> Table1:
    return table1()


# -- E2: ADPCM overheads (§IV-B) ----------------------------------------------

@dataclass(frozen=True)
class AdpcmComparison:
    measured: OverheadRow
    paper: Dict[str, float]

    def render(self) -> str:
        m, p = self.measured, self.paper
        return "\n".join([
            "ADPCM overheads (paper §IV-B)            measured      paper",
            f"  code size ratio                     {m.size_ratio:>8.2f}x"
            f"   {p['size_ratio']:>8.2f}x",
            f"  cycle overhead                      {m.cycle_overhead:>+8.1%}"
            f"   {p['cycle_overhead']:>+8.1%}",
            f"  total execution-time overhead       "
            f"{m.exec_time_overhead:>+8.1%}   {p['exec_time_overhead']:>+8.1%}",
        ])


def experiment_adpcm(scale: str = "small",
                     timing: Optional[TimingParams] = None) -> AdpcmComparison:
    """E2 with the LEON3-minimal timing calibration by default.

    The paper's baseline runs at an effective CPI well above 5 (114.2 M
    cycles for ADPCM on a minimal LEON3 config); SOFIA's extra fetch slots
    are diluted accordingly.  Pass ``timing=DEFAULT_TIMING`` for the
    low-CPI (aggressive-baseline) variant reported in EXPERIMENTS.md.
    """
    if timing is None:
        timing = LEON3_MINIMAL_TIMING
    row = measure_overhead(make_workload("adpcm", scale), timing=timing)
    return AdpcmComparison(measured=row, paper=PAPER_ADPCM)


# -- E3/E4/E9: security -----------------------------------------------------------

@dataclass(frozen=True)
class SecurityExperiment:
    bounds: SecurityReport
    scaling: List[ForgeryScaling]
    escape_rate: float
    escape_expected: float

    def render(self) -> str:
        lines = [self.bounds.render(), "",
                 "Monte-Carlo forgery scaling (truncated MACs):",
                 f"{'bits':>5s} {'mean trials':>12s} {'2^(n-1)':>10s} "
                 f"{'ratio':>6s}"]
        for s in self.scaling:
            lines.append(f"{s.bits:>5d} {s.mean_trials:>12.1f} "
                         f"{s.expected_trials:>10.1f} {s.ratio:>6.2f}")
        lines.append(f"tamper escape rate (8-bit MAC): "
                     f"{self.escape_rate:.4f} (expected "
                     f"{self.escape_expected:.4f})")
        return "\n".join(lines)


def experiment_security(experiments: int = 200,
                        parallel: bool = False,
                        jobs: Optional[int] = None) -> SecurityExperiment:
    escape = tamper_detection(bits=8, parallel=parallel, jobs=jobs)
    return SecurityExperiment(
        bounds=security_report(),
        scaling=forgery_scaling(experiments=experiments,
                                parallel=parallel, jobs=jobs),
        escape_rate=escape.escape_rate,
        escape_expected=escape.expected_rate)


# -- E6: block-size ablation (Figs. 5/6) ----------------------------------------

@dataclass(frozen=True)
class BlockSizePoint:
    block_words: int
    exec_capacity: int
    store_forbidden: tuple
    row: OverheadRow


def experiment_blocksize(scale: str = "small",
                         block_words: Sequence[int] = (6, 8),
                         workload: str = "adpcm",
                         parallel: bool = False,
                         jobs: Optional[int] = None) -> List[BlockSizePoint]:
    """Rebuild the binary at several block sizes (Fig. 5 vs Fig. 6).

    6-word blocks (4 instructions) fit entirely before the MA stage — no
    store restriction; 8-word blocks (6 instructions) forbid stores in the
    first two slots but amortize the MAC words over more instructions.
    """
    configs = [TransformConfig(block_words=bw) for bw in block_words]
    rows = measure_many(
        [OverheadPoint(workload=workload, scale=scale, config=config)
         for config in configs],
        parallel=parallel, jobs=jobs)
    return [BlockSizePoint(
        block_words=config.block_words, exec_capacity=config.exec_capacity,
        store_forbidden=config.exec_store_forbidden, row=row)
        for config, row in zip(configs, rows)]


def render_blocksize(points: List[BlockSizePoint]) -> str:
    lines = ["Block-size ablation (Figs. 5/6)",
             f"{'words':>6s} {'insts':>6s} {'store-forbidden':>16s} "
             f"{'size':>7s} {'cyc ovh':>8s}"]
    for p in points:
        lines.append(f"{p.block_words:>6d} {p.exec_capacity:>6d} "
                     f"{str(list(p.store_forbidden)):>16s} "
                     f"{p.row.size_ratio:>6.2f}x "
                     f"{p.row.cycle_overhead:>+8.1%}")
    return "\n".join(lines)


# -- E7: multiplexor-tree fan-in (Figs. 7/8/9) ------------------------------------

@dataclass(frozen=True)
class FanInPoint:
    fan_in: int
    tree_nodes: int
    mux_blocks: int
    code_bytes: int
    cycles: int


def _fan_in_program(k: int) -> str:
    calls = "\n".join("    call lib" for _ in range(k))
    return f"""
main:
{calls}
    halt
lib:
    addi a0, a0, 1
    ret
"""


def experiment_muxtree(fan_ins: Sequence[int] = (1, 2, 4, 8, 16, 32),
                       seed: int = 7) -> List[FanInPoint]:
    """Cost of multiplexor trees vs number of callers (paper Fig. 9)."""
    keys = DeviceKeys.from_seed(seed)
    points = []
    for k in fan_ins:
        program = parse(_fan_in_program(k))
        image = transform(program, keys, nonce=k + 1)
        result = SofiaMachine(image, keys).run()
        assert result.ok, result.summary()
        stats = image.stats
        points.append(FanInPoint(
            fan_in=k, tree_nodes=stats.tree_nodes,
            mux_blocks=stats.mux_blocks,
            code_bytes=image.code_size_bytes, cycles=result.cycles))
    return points


def render_muxtree(points: List[FanInPoint]) -> str:
    lines = ["Multiplexor-tree cost vs fan-in (Fig. 9)",
             f"{'callers':>8s} {'tree nodes':>11s} {'mux blocks':>11s} "
             f"{'code bytes':>11s} {'cycles':>8s}"]
    for p in points:
        lines.append(f"{p.fan_in:>8d} {p.tree_nodes:>11d} "
                     f"{p.mux_blocks:>11d} {p.code_bytes:>11d} "
                     f"{p.cycles:>8d}")
    return "\n".join(lines)


# -- E8: attack matrix ------------------------------------------------------------

def experiment_attacks(seed: int = 1337, parallel: bool = False,
                       jobs: Optional[int] = None) -> List[AttackResult]:
    return run_campaign(seed=seed, parallel=parallel, jobs=jobs)


# -- E10: workload sweep -----------------------------------------------------------

def experiment_workloads(scale: str = "small",
                         timing: TimingParams = DEFAULT_TIMING,
                         parallel: bool = False,
                         jobs: Optional[int] = None) -> List[OverheadRow]:
    return measure_many(
        [OverheadPoint(workload=name, scale=scale, timing=timing)
         for name in workload_names()],
        parallel=parallel, jobs=jobs)


def render_workloads(rows: List[OverheadRow]) -> str:
    return format_overhead_rows(rows)


# -- E14: I-cache sensitivity ---------------------------------------------------

@dataclass(frozen=True)
class CachePoint:
    lines: int
    cache_bytes: int
    row: OverheadRow


def experiment_cache(scale: str = "tiny",
                     line_counts: Sequence[int] = (8, 32, 128, 512),
                     workload: str = "adpcm",
                     parallel: bool = False,
                     jobs: Optional[int] = None) -> List[CachePoint]:
    """Cycle overhead vs I-cache size.

    SOFIA's ~2x code footprint stresses the I-cache harder than the
    vanilla binary, so small caches amplify the overhead — a deployment
    consideration the paper's single minimal configuration doesn't show.
    All points share one protected build, so the sweep hits the runner's
    image cache after the first point.
    """
    rows = measure_many(
        [OverheadPoint(workload=workload, scale=scale,
                       timing=TimingParams(icache_lines=lines))
         for lines in line_counts],
        parallel=parallel, jobs=jobs)
    return [CachePoint(lines=lines, cache_bytes=lines * 32, row=row)
            for lines, row in zip(line_counts, rows)]


def render_cache(points: List[CachePoint]) -> str:
    lines = ["I-cache sensitivity (cycle overhead vs cache size)",
             f"{'lines':>6s} {'bytes':>7s} {'van cycles':>11s} "
             f"{'sofia cycles':>13s} {'cyc ovh':>8s}"]
    for p in points:
        lines.append(f"{p.lines:>6d} {p.cache_bytes:>7d} "
                     f"{p.row.vanilla_cycles:>11,d} "
                     f"{p.row.sofia_cycles:>13,d} "
                     f"{p.row.cycle_overhead:>+8.1%}")
    return "\n".join(lines)


# -- hardware ablation -------------------------------------------------------------

def experiment_unroll() -> List[UnrollPoint]:
    return unroll_ablation()


def render_unroll(points: List[UnrollPoint]) -> str:
    lines = ["Cipher unroll ablation (design choice, §III)",
             f"{'unroll':>7s} {'slices':>7s} {'MHz':>7s} "
             f"{'cipher cyc':>11s} {'fetch ok':>9s}"]
    for p in points:
        lines.append(f"{p.unroll:>7d} {p.slices:>7d} {p.clock_mhz:>7.1f} "
                     f"{p.cipher_cycles:>11d} "
                     f"{'yes' if p.sustains_fetch else 'no':>9s}")
    return "\n".join(lines)
