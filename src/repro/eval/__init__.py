"""Evaluation harness: regenerates every paper table and figure."""

from .experiments import (AdpcmComparison, BlockSizePoint, CachePoint,
                          FanInPoint, PAPER_ADPCM, SecurityExperiment,
                          experiment_adpcm, experiment_attacks,
                          experiment_blocksize, experiment_cache,
                          experiment_muxtree, experiment_security,
                          experiment_table1, experiment_unroll,
                          experiment_workloads, render_blocksize,
                          render_cache, render_muxtree, render_unroll,
                          render_workloads)
from .export import (attacksynth_csv, attacksynth_json, batch_csv,
                     batch_json, blocksize_csv, cache_csv, dse_csv,
                     dse_json, muxtree_csv, overhead_csv)
from .overhead import (OverheadPoint, OverheadRow, format_overhead_rows,
                       measure_many, measure_overhead, measure_point)
from .report import full_report, write_report

__all__ = [
    "OverheadRow", "measure_overhead", "format_overhead_rows",
    "OverheadPoint", "measure_point", "measure_many",
    "experiment_table1", "experiment_adpcm", "experiment_security",
    "experiment_blocksize", "experiment_muxtree", "experiment_attacks",
    "experiment_workloads", "experiment_unroll",
    "render_blocksize", "render_muxtree", "render_workloads",
    "render_unroll", "AdpcmComparison", "SecurityExperiment",
    "BlockSizePoint", "FanInPoint", "PAPER_ADPCM",
    "full_report", "write_report",
    "experiment_cache", "render_cache", "CachePoint",
    "overhead_csv", "muxtree_csv", "blocksize_csv", "cache_csv",
    "attacksynth_csv", "attacksynth_json", "dse_csv", "dse_json",
    "batch_csv", "batch_json",
]
