"""Structured JSON export of campaign runs.

Every campaign — fault injection, attack matrix, Monte-Carlo security,
overhead sweep — can serialize its parameters and per-task results to
one self-describing JSON document, so downstream tooling (plotting,
regression tracking, distributed aggregation) consumes campaigns without
parsing the human-readable tables.

``to_jsonable`` converts the repo's result types generically: dataclasses
become objects, enums become their values, tuples become arrays.  A
campaign record looks like::

    {
      "campaign": "fault-injection",
      "parameters": {"workload": "crc32", "seed": 2016, ...},
      "jobs": 4,
      "elapsed_seconds": 1.93,
      "num_results": 90,
      "results": [{"model": "CodeBitFlip", "outcome": "detected", ...}]
    }
"""

from __future__ import annotations

import dataclasses
import enum
import json
import os
import tempfile
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence


def to_jsonable(value: Any) -> Any:
    """Recursively convert campaign data into JSON-serializable types."""
    if isinstance(value, enum.Enum):
        return value.value
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {f.name: to_jsonable(getattr(value, f.name))
                for f in dataclasses.fields(value)}
    if isinstance(value, dict):
        return {str(k): to_jsonable(v) for k, v in value.items()}
    if isinstance(value, (set, frozenset)):
        # canonical order: Python set iteration follows the per-interpreter
        # hash salt for strings, which would break the byte-identical
        # export invariant (and the shard-merge proof) across processes
        converted = [to_jsonable(v) for v in value]
        return sorted(converted,
                      key=lambda item: json.dumps(item, sort_keys=True))
    if isinstance(value, (list, tuple)):
        return [to_jsonable(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


def atomic_write_text(path, text: str) -> Path:
    """Write ``text`` to ``path`` atomically (temp file + ``os.replace``).

    A writer killed mid-call leaves either the previous content or
    nothing at the final path — never a truncated file that a later
    ``--resume`` would try to parse.
    """
    target = Path(path)
    fd, tmp_name = tempfile.mkstemp(dir=target.parent,
                                    prefix=target.name + ".", suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(text)
        os.replace(tmp_name, target)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return target


def campaign_record(name: str, parameters: Dict[str, Any],
                    results: Sequence[Any], *,
                    jobs: Optional[int] = None,
                    elapsed_seconds: Optional[float] = None
                    ) -> Dict[str, Any]:
    """The canonical JSON document for one campaign run."""
    record: Dict[str, Any] = {
        "campaign": name,
        "parameters": to_jsonable(parameters),
        "jobs": jobs,
        "num_results": len(results),
        "results": [to_jsonable(r) for r in results],
    }
    if elapsed_seconds is not None:
        record["elapsed_seconds"] = round(elapsed_seconds, 6)
    return record


def write_campaign(path, record: Dict[str, Any]) -> Path:
    """Write a campaign record as pretty-printed JSON; returns the path.

    The write is atomic: a campaign killed mid-export never leaves a
    truncated JSON document at the final path.
    """
    return atomic_write_text(
        path, json.dumps(record, indent=2, sort_keys=False) + "\n")
