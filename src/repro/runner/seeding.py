"""Deterministic per-task seed derivation.

A parallel campaign cannot share one ``random.Random`` stream across
workers — the interleaving would depend on scheduling.  Instead every
task derives its own seed from the campaign's base seed plus a stable
task identity (an index, a parameter tuple, ...), so the drawn numbers
depend only on *which* task is running, never on worker count or
completion order.  Serial replays of the same task decomposition are
therefore bit-identical to parallel ones.

Derivation hashes the components with SHA-256 rather than arithmetic
mixing: nearby base seeds and indices yield statistically independent
streams, and the mapping is stable across Python versions and processes
(unlike ``hash()``, which is salted per interpreter).
"""

from __future__ import annotations

import hashlib
import random

_SEED_BYTES = 8


def task_seed(base_seed: int, *components) -> int:
    """A 64-bit seed unique to (base_seed, components).

    Components may be ints, strings, or anything with a stable ``str``
    form (tuples of the former included).
    """
    material = ":".join(str(c) for c in (base_seed, *components))
    digest = hashlib.sha256(material.encode("utf-8")).digest()
    return int.from_bytes(digest[:_SEED_BYTES], "big")


def task_rng(base_seed: int, *components) -> random.Random:
    """A fresh ``random.Random`` seeded with :func:`task_seed`."""
    return random.Random(task_seed(base_seed, *components))
