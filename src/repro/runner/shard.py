"""Deterministic multi-host sharding of campaign task lists.

A sharded campaign splits one deterministic task list across ``n``
independent invocations (typically on ``n`` hosts): shard ``i`` of ``n``
executes exactly the tasks at positions ``j`` with ``j % n == i - 1``
and records their results in its own persistent
:class:`~repro.runner.store.ResultStore`.  The partition depends only on
the submission order and the shard spec — never on worker count,
scheduling, timing, or which results already sit in a store — so the
union of the ``n`` shard stores contains precisely the results a serial
run would have produced, result for result.

``merge_stores`` performs that union (``repro merge`` on the CLI); a
final ``--resume`` pass over the merged store then replays every task
from cache and emits the campaign artifact, byte-identical to an
uninterrupted serial run — the ``--jobs`` determinism invariant extended
across hosts.

Round-robin (rather than contiguous-range) assignment keeps shards
balanced under heterogeneous task costs: campaign task lists are
typically sorted by generation order, which correlates with size.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List, Sequence, TypeVar

T = TypeVar("T")

_SHARD_RE = re.compile(r"^(\d+)/(\d+)$")


@dataclass(frozen=True)
class ShardSpec:
    """Shard ``index`` (1-based) of ``count`` total shards."""

    index: int
    count: int

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ValueError(
                f"shard count must be >= 1, got {self.count}")
        if not 1 <= self.index <= self.count:
            raise ValueError(
                f"shard index must be in 1..{self.count}, got {self.index}")

    def owns(self, task_index: int) -> bool:
        """Does this shard execute the task at 0-based ``task_index``?"""
        return task_index % self.count == self.index - 1

    def owned_indices(self, num_tasks: int) -> List[int]:
        """The 0-based task positions this shard executes, in order."""
        return list(range(self.index - 1, num_tasks, self.count))

    @property
    def label(self) -> str:
        return f"{self.index}/{self.count}"


def parse_shard(text: str) -> ShardSpec:
    """Parse a CLI ``i/n`` shard spec (1-based, e.g. ``2/3``)."""
    match = _SHARD_RE.match(text.strip())
    if match is None:
        raise ValueError(
            f"shard spec must look like i/n (e.g. 2/3), got {text!r}")
    return ShardSpec(index=int(match.group(1)), count=int(match.group(2)))


def shard_partition(items: Sequence[T], shard: ShardSpec) -> List[T]:
    """The sub-list of ``items`` owned by ``shard`` (submission order)."""
    return [items[i] for i in shard.owned_indices(len(items))]


def merge_stores(dest, sources) -> "tuple[int, int]":
    """Union the source stores into ``dest``; returns (copied, present).

    Conflicting entries — the same key bound to a different result —
    raise: for deterministic campaigns they can only mean the shards ran
    different code versions or corrupted stores, and silently preferring
    one side would void the shard-union == serial-run proof.
    """
    from .store import ResultStore

    dest_store = dest if isinstance(dest, ResultStore) else \
        ResultStore(dest)
    copied = present = 0
    for source in sources:
        source_store = source if isinstance(source, ResultStore) else \
            ResultStore(source)
        added, kept = dest_store.absorb(source_store)
        copied += added
        present += kept
    return copied, present
