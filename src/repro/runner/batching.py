"""Deterministic batch planning for width-grouped campaign tasks.

The batch simulation engine (:mod:`repro.sim.batch`) processes specimens
in lockstep groups of up to :data:`~repro.sim.batch.BATCH_WIDTH`.  To
keep every campaign's byte-identical-at-any-``--jobs`` invariant, the
partition of a specimen list into groups must depend **only** on the
submission order and the batch width — never on worker count, scheduling
or timing.  This helper is the single home of that rule: campaigns batch
here, then fan the groups out through :func:`~repro.runner.pool.run_tasks`
(which already preserves submission order), so flattening the per-group
result lists reproduces the scalar result order exactly.
"""

from __future__ import annotations

from typing import List, Sequence, TypeVar

T = TypeVar("T")


def make_batches(items: Sequence[T], width: int) -> List[List[T]]:
    """Partition ``items`` into submission-order groups of ``width``.

    The final group holds the remainder; a width of 1 degenerates to one
    group per item (the scalar-equivalence test case W=1 == scalar).
    """
    if width < 1:
        raise ValueError(f"batch width must be >= 1, got {width}")
    items = list(items)
    return [items[start:start + width]
            for start in range(0, len(items), width)]
