"""Process-pool task dispatch with a bit-identical serial fallback.

``run_tasks`` is the single entry point: give it a picklable worker
function and an ordered list of picklable payloads and it returns the
results in submission order.  With ``parallel=False`` (or one worker, or
a single-task list) it degrades to a plain in-process loop — the same
calls in the same order as the pre-runner code paths, so serial results
are bit-identical to the historical campaign loops.

Workers that need expensive shared context (a protected image, a target
matrix) receive it through ``initializer``/``initargs``: the context is
pickled once per worker process, not once per task, and module-global
state installed by the initializer plays the role of the shared build
cache.  On POSIX the pool uses the ``fork`` start method, so large
read-only context is additionally shared copy-on-write.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Iterable, List, Optional, Sequence, Tuple, TypeVar

T = TypeVar("T")
R = TypeVar("R")

# worker-global task function for the instrumented parallel path; set by
# _obs_initializer in each worker process (mirrors the campaign modules'
# _WORKER_CTX idiom — fork-safe, pickled once per worker, not per task)
_OBS_FN: Optional[Callable] = None


def _obs_initializer(fn: Callable, initializer: Optional[Callable],
                     initargs: Tuple) -> None:
    """Pool initializer for instrumented runs: install the per-worker
    metrics registry, stash the task function, then run the campaign's
    own initializer."""
    global _OBS_FN
    from ..obs import worker as obs_worker
    obs_worker.install()
    _OBS_FN = fn
    if initializer is not None:
        initializer(*initargs)


def _obs_task(task):
    """Instrumented task wrapper: time the task and piggyback the
    worker's span (pid, timing, counter deltas) on the result."""
    from ..obs import worker as obs_worker
    start = time.perf_counter()
    result = _OBS_FN(task)
    return result, obs_worker.span(start, time.perf_counter())


def available_cpus() -> int:
    """CPUs actually usable by this process, and at least one.

    ``os.cpu_count()`` reports the machine's core count even inside a
    cgroup/affinity-limited container (CI runners routinely pin a 64-core
    host down to 2), so prefer the scheduler affinity mask where the
    platform provides it.
    """
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except AttributeError:  # pragma: no cover - non-Linux platforms
        return max(1, os.cpu_count() or 1)


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Worker count: ``None`` means one per available CPU, at least one."""
    if jobs is None:
        return available_cpus()
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    return jobs


def default_chunksize(num_tasks: int, jobs: int) -> int:
    """Tasks per pickle round-trip: ~4 chunks per worker.

    Small enough to load-balance tasks of uneven duration (fault runs
    range from a few hundred to millions of simulated instructions),
    large enough to amortize IPC for sub-millisecond tasks.
    """
    if num_tasks <= 0:
        return 1
    return max(1, num_tasks // (4 * jobs))


def _fork_context():
    """Prefer ``fork`` (cheap context sharing); fall back to the default."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context()


def run_tasks(fn: Callable[[T], R], tasks: Iterable[T], *,
              jobs: Optional[int] = None,
              parallel: bool = True,
              chunksize: Optional[int] = None,
              initializer: Optional[Callable] = None,
              initargs: Tuple = (),
              telemetry=None) -> List[R]:
    """Run ``fn`` over every task, returning results in task order.

    ``parallel=False`` (or a resolved worker count of one, or fewer than
    two tasks) executes ``[fn(t) for t in tasks]`` in-process after
    calling the initializer — the exact historical serial loop.  The
    parallel path fans the task list across ``jobs`` worker processes
    with chunked dispatch; ``ProcessPoolExecutor.map`` guarantees the
    result order matches the submission order regardless of which worker
    finishes first.

    ``telemetry`` (a :class:`repro.obs.Telemetry`, default ``None``)
    turns on per-task collection: each worker installs a process-local
    metrics registry, times every task, and returns ``(result, span)``
    through the same result channel; the parent strips the spans and
    folds them into the campaign telemetry in result order.  With
    ``telemetry=None`` this function is byte-for-byte the historical
    dispatch — no wrapper functions, no extra pickling.
    """
    task_list = list(tasks)
    workers = resolve_jobs(jobs)
    if not parallel or workers == 1 or len(task_list) < 2:
        if telemetry is None:
            if initializer is not None:
                initializer(*initargs)
            return [fn(task) for task in task_list]
        from ..obs import worker as obs_worker
        indices = telemetry.claim_indices(len(task_list))
        obs_worker.install()
        try:
            if initializer is not None:
                initializer(*initargs)
            results = []
            for index, task in zip(indices, task_list):
                start = time.perf_counter()
                result = fn(task)
                telemetry.task_completed(
                    obs_worker.span(start, time.perf_counter()), index)
                results.append(result)
            return results
        finally:
            obs_worker.uninstall()
    workers = min(workers, len(task_list))
    if chunksize is None:
        chunksize = default_chunksize(len(task_list), workers)
    if telemetry is None:
        with ProcessPoolExecutor(max_workers=workers,
                                 mp_context=_fork_context(),
                                 initializer=initializer,
                                 initargs=initargs) as pool:
            return list(pool.map(fn, task_list, chunksize=chunksize))
    indices = telemetry.claim_indices(len(task_list))
    with ProcessPoolExecutor(max_workers=workers,
                             mp_context=_fork_context(),
                             initializer=_obs_initializer,
                             initargs=(fn, initializer, initargs)) as pool:
        results = []
        for index, (result, span) in zip(
                indices, pool.map(_obs_task, task_list,
                                  chunksize=chunksize)):
            telemetry.task_completed(span, index)
            results.append(result)
        return results
