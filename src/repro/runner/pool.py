"""Process-pool task dispatch with a bit-identical serial fallback.

``run_tasks`` is the single entry point: give it a picklable worker
function and an ordered list of picklable payloads and it returns the
results in submission order.  With ``parallel=False`` (or one worker, or
a single-task list) it degrades to a plain in-process loop — the same
calls in the same order as the pre-runner code paths, so serial results
are bit-identical to the historical campaign loops.

Workers that need expensive shared context (a protected image, a target
matrix) receive it through ``initializer``/``initargs``: the context is
pickled once per worker process, not once per task, and module-global
state installed by the initializer plays the role of the shared build
cache.  On POSIX the pool uses the ``fork`` start method, so large
read-only context is additionally shared copy-on-write.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Iterable, List, Optional, Sequence, Tuple, TypeVar

T = TypeVar("T")
R = TypeVar("R")


def available_cpus() -> int:
    """CPUs actually usable by this process, and at least one.

    ``os.cpu_count()`` reports the machine's core count even inside a
    cgroup/affinity-limited container (CI runners routinely pin a 64-core
    host down to 2), so prefer the scheduler affinity mask where the
    platform provides it.
    """
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except AttributeError:  # pragma: no cover - non-Linux platforms
        return max(1, os.cpu_count() or 1)


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Worker count: ``None`` means one per available CPU, at least one."""
    if jobs is None:
        return available_cpus()
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    return jobs


def default_chunksize(num_tasks: int, jobs: int) -> int:
    """Tasks per pickle round-trip: ~4 chunks per worker.

    Small enough to load-balance tasks of uneven duration (fault runs
    range from a few hundred to millions of simulated instructions),
    large enough to amortize IPC for sub-millisecond tasks.
    """
    if num_tasks <= 0:
        return 1
    return max(1, num_tasks // (4 * jobs))


def _fork_context():
    """Prefer ``fork`` (cheap context sharing); fall back to the default."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context()


def run_tasks(fn: Callable[[T], R], tasks: Iterable[T], *,
              jobs: Optional[int] = None,
              parallel: bool = True,
              chunksize: Optional[int] = None,
              initializer: Optional[Callable] = None,
              initargs: Tuple = ()) -> List[R]:
    """Run ``fn`` over every task, returning results in task order.

    ``parallel=False`` (or a resolved worker count of one, or fewer than
    two tasks) executes ``[fn(t) for t in tasks]`` in-process after
    calling the initializer — the exact historical serial loop.  The
    parallel path fans the task list across ``jobs`` worker processes
    with chunked dispatch; ``ProcessPoolExecutor.map`` guarantees the
    result order matches the submission order regardless of which worker
    finishes first.
    """
    task_list = list(tasks)
    workers = resolve_jobs(jobs)
    if not parallel or workers == 1 or len(task_list) < 2:
        if initializer is not None:
            initializer(*initargs)
        return [fn(task) for task in task_list]
    workers = min(workers, len(task_list))
    if chunksize is None:
        chunksize = default_chunksize(len(task_list), workers)
    with ProcessPoolExecutor(max_workers=workers,
                             mp_context=_fork_context(),
                             initializer=initializer,
                             initargs=initargs) as pool:
        return list(pool.map(fn, task_list, chunksize=chunksize))
