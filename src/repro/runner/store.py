"""Persistent, content-addressed result store for campaign tasks.

Every campaign in this reproduction is an ordered list of *pure*,
deterministic tasks: a result is fully determined by (the code that
computed it, the shared worker context, the task payload, the execution
engine).  That is exactly the property that makes results safely
cacheable — so this module gives each task a content address

    ``sha256(campaign, code_version, context, task, engine)``

and persists its pickled result under that key in a directory store::

    <root>/objects/<key[:2]>/<key>.pkl

``run_tasks_stored`` is the campaign-facing seam: given the task list
and its keys it loads every cached result, executes only the missing
tasks (optionally restricted to one :class:`~repro.runner.shard.ShardSpec`
of the list), stores what it computed, and returns the results in
submission order.  Campaigns gain ``--resume`` (kill a sweep, rerun it,
only the unfinished tasks execute; the merged artifact is byte-identical
to a cold serial run) and ``--shard i/n`` (independent hosts each fill
their slice of one store; ``repro merge`` unions the stores and a final
``--resume`` pass emits the serial-identical artifact) without changing
how their workers or exports behave.

Keys embed :func:`code_version` — a digest of every ``repro/*.py``
source file — so any change to the code that could change a result
invalidates the whole store at once.  That policy is deliberately
coarse: stale results silently surviving a refactor would break the
byte-identical merge proof, while over-invalidation merely costs a warm
rerun.  ``REPRO_CODE_VERSION`` overrides the digest (pin it across a
heterogeneous fleet, or version a store by release tag).

Writes are atomic (temp file + ``os.replace``): a campaign killed
mid-``put`` leaves either a complete entry or none, never a truncated
pickle, so ``--resume`` can always trust what it finds.  Entries that
fail to load (foreign files, partial copies) are treated as missing and
recomputed.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import (Any, Callable, Iterator, List, Optional, Sequence,
                    TypeVar)

from .export import to_jsonable
from .shard import ShardSpec

T = TypeVar("T")

_CODE_VERSION: Optional[str] = None

#: sentinel distinguishing "absent" from a stored ``None``
_MISSING = object()


def code_version() -> str:
    """Digest of the repro package sources (the store invalidation key).

    Hashes every ``*.py`` file under ``src/repro/`` by relative path and
    content, memoized per process.  The ``REPRO_CODE_VERSION``
    environment variable overrides the computed digest.
    """
    override = os.environ.get("REPRO_CODE_VERSION")
    if override:
        return override
    global _CODE_VERSION
    if _CODE_VERSION is None:
        package_root = Path(__file__).resolve().parent.parent
        digest = hashlib.sha256()
        for path in sorted(package_root.rglob("*.py")):
            digest.update(path.relative_to(package_root).as_posix()
                          .encode("utf-8"))
            digest.update(b"\x00")
            digest.update(path.read_bytes())
            digest.update(b"\x00")
        _CODE_VERSION = digest.hexdigest()[:16]
    return _CODE_VERSION


def canonical_json(value: Any) -> str:
    """The canonical (sorted-keys, minimal) JSON form of ``value``.

    Built on :func:`~repro.runner.export.to_jsonable`, which orders sets
    canonically — the same digest on every interpreter and host.
    """
    return json.dumps(to_jsonable(value), sort_keys=True,
                      separators=(",", ":"))


def stable_digest(value: Any) -> str:
    """A host- and interpreter-independent SHA-256 of ``value``."""
    return hashlib.sha256(canonical_json(value).encode("utf-8")).hexdigest()


def task_key(campaign: str, context: Any, task: Any, *,
             engine: Optional[str] = None,
             code: Optional[str] = None) -> str:
    """The content address of one task's result.

    ``context`` is everything the worker context contributes to the
    result (build inputs, key material identity, budgets); ``task`` is
    the per-task payload.  Both must reduce to primitives under
    :func:`~repro.runner.export.to_jsonable` — pass explicit dicts of
    primitives, never objects whose ``str()`` embeds memory addresses.
    """
    material = {
        "campaign": campaign,
        "code": code if code is not None else code_version(),
        "context": to_jsonable(context),
        "task": to_jsonable(task),
        "engine": engine,
    }
    return hashlib.sha256(
        json.dumps(material, sort_keys=True, separators=(",", ":"))
        .encode("utf-8")).hexdigest()


@dataclass
class StoreStats:
    """Hit/miss/put counters (the warm-rerun-does-no-work proof hook)."""

    hits: int = 0
    misses: int = 0
    puts: int = 0

    def as_dict(self) -> "dict[str, int]":
        return {"hits": self.hits, "misses": self.misses,
                "puts": self.puts}


class ResultStore:
    """A directory of content-addressed pickled task results."""

    def __init__(self, root) -> None:
        self.root = Path(root)
        self._objects = self.root / "objects"
        self._objects.mkdir(parents=True, exist_ok=True)
        self.stats = StoreStats()

    def _path(self, key: str) -> Path:
        return self._objects / key[:2] / f"{key}.pkl"

    def __contains__(self, key: str) -> bool:
        return self._path(key).is_file()

    def __len__(self) -> int:
        return sum(1 for _ in self.keys())

    def keys(self) -> Iterator[str]:
        """Every stored key, in deterministic (sorted) order."""
        for path in sorted(self._objects.glob("*/*.pkl")):
            yield path.stem

    def get(self, key: str, default: Any = None) -> Any:
        """The stored result for ``key``, or ``default`` when absent.

        Unreadable entries (foreign files, torn copies from a non-atomic
        transport) count as absent: the task simply reruns and the entry
        is rewritten.
        """
        try:
            payload = self._path(key).read_bytes()
            value = pickle.loads(payload)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError,
                ImportError, IndexError):
            self.stats.misses += 1
            return default
        self.stats.hits += 1
        return value

    def put(self, key: str, value: Any) -> None:
        """Persist ``value`` under ``key`` atomically."""
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = pickle.dumps(value, protocol=4)
        fd, tmp_name = tempfile.mkstemp(dir=path.parent,
                                        prefix=path.name, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(payload)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self.stats.puts += 1

    def absorb(self, source: "ResultStore") -> "tuple[int, int]":
        """Copy every entry of ``source`` absent here; (copied, present).

        The same key holding a different payload raises — for
        deterministic tasks that means mismatched code versions or a
        corrupted store, and the merge proof forbids guessing.
        """
        copied = present = 0
        for key in source.keys():
            payload = source._path(key).read_bytes()
            path = self._path(key)
            if path.is_file():
                if path.read_bytes() != payload:
                    raise ValueError(
                        f"conflicting results for key {key}: the shard "
                        f"stores disagree (mixed code versions?)")
                present += 1
                continue
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp_name = tempfile.mkstemp(dir=path.parent,
                                            prefix=path.name,
                                            suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as handle:
                    handle.write(payload)
                os.replace(tmp_name, path)
            except BaseException:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
                raise
            copied += 1
        return copied, present


@dataclass
class StoredRun:
    """What :func:`run_tasks_stored` did: results + provenance counters."""

    #: result per task in submission order; ``None`` marks a task this
    #: invocation neither found cached nor owned (shard mode only)
    results: List[Any]
    hits: int = 0
    executed: int = 0
    skipped: int = 0
    shard: Optional[ShardSpec] = None

    @property
    def complete(self) -> bool:
        """Is every task's result present (loaded or computed)?"""
        return self.skipped == 0

    def summary(self) -> str:
        parts = [f"{len(self.results)} tasks", f"{self.hits} cached",
                 f"{self.executed} executed"]
        if self.skipped:
            parts.append(f"{self.skipped} owned by other shards")
        if self.shard is not None:
            parts.append(f"shard {self.shard.label}")
        return ", ".join(parts)


def run_tasks_stored(execute: Callable[[List[T]], List[Any]],
                     tasks: Sequence[T],
                     keys: Optional[Sequence[str]] = None, *,
                     store: Optional[ResultStore] = None,
                     shard: Optional[ShardSpec] = None,
                     telemetry=None) -> StoredRun:
    """Run ``tasks`` through ``execute`` with store-backed memoization.

    ``execute`` receives the (ordered) sub-list of tasks that must
    actually run and returns their results in the same order — campaigns
    pass a closure over :func:`~repro.runner.pool.run_tasks` so jobs,
    initializers and batching stay theirs.  With a ``store``, cached
    results are loaded first and fresh ones persisted; with a ``shard``,
    only missing tasks *owned* by the shard execute and the rest are
    reported as skipped.  Results always come back in submission order,
    so a complete run is indistinguishable from a plain
    ``execute(tasks)`` call.

    ``telemetry`` (a :class:`repro.obs.Telemetry`, default ``None``)
    records the dispatch plan, per-index store hits, shard/resume
    decisions, and store counters — purely observationally; it never
    changes which tasks run or what is stored.
    """
    task_list = list(tasks)
    if shard is not None and store is None:
        raise ValueError("sharding requires a result store "
                         "(--shard without --resume loses the results)")
    if store is None:
        if telemetry is not None and task_list:
            telemetry.plan(len(task_list))
            telemetry.expect_tasks(range(len(task_list)))
        results = execute(task_list) if task_list else []
        if len(results) != len(task_list):
            raise ValueError(f"execute returned {len(results)} results "
                             f"for {len(task_list)} tasks")
        return StoredRun(results=list(results), executed=len(task_list))
    key_list = list(keys or ())
    if len(key_list) != len(task_list):
        raise ValueError(f"{len(task_list)} tasks need exactly that many "
                         f"keys, got {len(key_list)}")
    results: List[Any] = [None] * len(task_list)
    missing: List[int] = []
    cached: List[int] = []
    hits = 0
    for index, key in enumerate(key_list):
        value = store.get(key, _MISSING)
        if value is _MISSING:
            missing.append(index)
        else:
            results[index] = value
            cached.append(index)
            hits += 1
    owned = [i for i in missing if shard is None or shard.owns(i)]
    skipped = len(missing) - len(owned)
    if telemetry is not None:
        telemetry.plan(len(task_list), cached=hits, skipped=skipped)
        telemetry.resume(store.root, hits=hits, missing=len(missing))
        if shard is not None:
            telemetry.shard_decision(shard.label, owned=len(owned),
                                     skipped=skipped)
        for index in cached:
            telemetry.store_hit(index)
        telemetry.expect_tasks(owned)
        telemetry.count("store.misses", len(missing))
    if owned:
        fresh = execute([task_list[i] for i in owned])
        if len(fresh) != len(owned):
            raise ValueError(f"execute returned {len(fresh)} results "
                             f"for {len(owned)} tasks")
        for index, value in zip(owned, fresh):
            store.put(key_list[index], value)
            results[index] = value
        if telemetry is not None:
            telemetry.count("store.puts", len(owned))
    return StoredRun(results=results, hits=hits, executed=len(owned),
                     skipped=skipped, shard=shard)
