"""Per-process build cache for protected images.

Compiling a workload, assembling it, and transforming + MAC'ing +
encrypting it into a :class:`~repro.transform.image.SofiaImage` costs
orders of magnitude more than a single fault or timing task, and the
whole pipeline is deterministic: the same (workload, scale, key seed,
nonce, config) always yields the same image.  The cache memoizes each
stage so a campaign builds every distinct image exactly once **per
process** — once overall in a serial run, once per worker in a parallel
run (workers forked after a parent-side build inherit the parent's cache
copy-on-write and build nothing at all).

The cache is deliberately process-global rather than passed around:
worker functions must be picklable module-level functions, and the memo
is exactly the state that must *not* travel through pickles.  Tests can
inspect hit/miss counters via :func:`build_cache` and reset the memo
with :func:`clear_build_cache`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from ..crypto.keys import DeviceKeys
from ..isa.assembler import assemble
from ..isa.program import Executable
from ..transform.config import DEFAULT_CONFIG, TransformConfig
from ..transform.image import SofiaImage
from ..transform.profile import ProtectionProfile
from ..transform.transformer import transform
from ..workloads.base import Workload, make_workload

#: key seed shared with :mod:`repro.eval.overhead`'s default keys
DEFAULT_KEY_SEED = 0x50F1A


@dataclass(frozen=True)
class BuildSpec:
    """Everything that determines one protected build of one workload."""

    workload: str
    scale: str = "small"
    key_seed: int = DEFAULT_KEY_SEED
    nonce: int = 0x2016
    config: TransformConfig = DEFAULT_CONFIG
    #: full design point (cipher/MAC width/renonce); ``None`` keeps the
    #: legacy config-only build, so existing specs hash identically
    profile: Optional[ProtectionProfile] = None


@dataclass
class CacheStats:
    """Hit/miss counters, split by pipeline stage."""

    compile_hits: int = 0
    compile_misses: int = 0
    image_hits: int = 0
    image_misses: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {"compile_hits": self.compile_hits,
                "compile_misses": self.compile_misses,
                "image_hits": self.image_hits,
                "image_misses": self.image_misses}


@dataclass
class BuildCache:
    """Memo of compiled workloads and protected images (one per process)."""

    stats: CacheStats = field(default_factory=CacheStats)
    _compiled: Dict[Tuple[str, str], Tuple[Workload, Executable]] = \
        field(default_factory=dict)
    _images: Dict[BuildSpec, SofiaImage] = field(default_factory=dict)
    _keys: Dict[int, DeviceKeys] = field(default_factory=dict)

    def keys_for(self, key_seed: int) -> DeviceKeys:
        keys = self._keys.get(key_seed)
        if keys is None:
            keys = DeviceKeys.from_seed(key_seed)
            self._keys[key_seed] = keys
        return keys

    def compiled(self, workload: str, scale: str) -> Tuple[Workload,
                                                           Executable]:
        """The instantiated workload and its linked vanilla executable."""
        key = (workload, scale)
        entry = self._compiled.get(key)
        if entry is None:
            self.stats.compile_misses += 1
            instance = make_workload(workload, scale)
            entry = (instance, assemble(instance.compile().program))
            self._compiled[key] = entry
        else:
            self.stats.compile_hits += 1
        return entry

    def protected(self, spec: BuildSpec) -> Tuple[Workload, Executable,
                                                  SofiaImage, DeviceKeys]:
        """The fully protected build for ``spec`` (memoized per stage).

        When the spec carries a :class:`ProtectionProfile` it supersedes
        the legacy ``config`` field entirely (the profile implies its
        config), and the returned keys are provisioned for the profile's
        cipher.
        """
        instance, exe = self.compiled(spec.workload, spec.scale)
        keys = self.keys_for(spec.key_seed)
        if spec.profile is not None:
            keys = keys.for_profile(spec.profile)
        image = self._images.get(spec)
        if image is None:
            self.stats.image_misses += 1
            image = transform(
                instance.compile().program, keys, nonce=spec.nonce,
                config=spec.config if spec.profile is None else None,
                profile=spec.profile)
            self._images[spec] = image
        else:
            self.stats.image_hits += 1
        return instance, exe, image, keys

    def clear(self) -> None:
        self._compiled.clear()
        self._images.clear()
        self._keys.clear()
        self.stats = CacheStats()


_CACHE = BuildCache()


def build_cache() -> BuildCache:
    """This process's build cache."""
    return _CACHE


def clear_build_cache() -> None:
    """Reset the memo and counters (test isolation)."""
    _CACHE.clear()
