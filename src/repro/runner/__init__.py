"""Parallel campaign orchestration (see DESIGN.md, "Campaign runner").

Every evaluation surface of the reproduction — fault-injection campaigns
(E11), the attack matrix (E8), Monte-Carlo security experiments (E9), and
workload x config overhead sweeps (E2/E6/E10/E14) — is embarrassingly
parallel: a campaign is an ordered list of independent, deterministic
tasks.  This package is the one seam through which all of them fan out
across CPU cores:

:mod:`repro.runner.pool`
    ``run_tasks`` — submit an ordered task list to a process pool (or run
    it serially, bit-identically, with ``parallel=False``), with chunked
    dispatch and ordered result aggregation.

:mod:`repro.runner.seeding`
    ``task_seed`` / ``task_rng`` — deterministic per-task seed derivation
    so randomized campaigns are reproducible independent of worker count
    and scheduling order.

:mod:`repro.runner.cache`
    ``build_cache`` — a per-process memo of compiled workloads and
    protected :class:`~repro.transform.image.SofiaImage` builds, so each
    image is compiled/transformed/encrypted once per (workload, config,
    nonce) per process instead of once per specimen.

:mod:`repro.runner.export`
    ``campaign_record`` / ``write_campaign`` — structured JSON export of
    any campaign's parameters and per-task results (atomic writes,
    canonically ordered sets).

:mod:`repro.runner.store`
    ``ResultStore`` / ``task_key`` / ``run_tasks_stored`` — a
    persistent, content-addressed result cache keyed by
    (code version, context digest, task digest, engine), making every
    campaign incremental and resumable (``--resume``).

:mod:`repro.runner.shard`
    ``ShardSpec`` / ``parse_shard`` / ``merge_stores`` — deterministic
    ``i/n`` partitioning of a campaign's task list across hosts, plus
    the store union behind ``repro merge``.

Design contract (every caller relies on these):

* **Determinism** — tasks must be pure functions of their payload plus
  per-process context installed by an initializer; given the same task
  list, serial and parallel execution return identical result lists.
* **Ordering** — results are returned in task-submission order, never in
  completion order.
* **Graceful degradation** — on a single-core host (or ``jobs=1``) the
  runner degrades to the serial path with zero multiprocessing overhead.

* **Durability** — store and export writes are atomic; a campaign
  killed at any instant leaves a store a ``--resume`` run can trust,
  and resumed/merged artifacts are byte-identical to a cold serial run.
"""

from .batching import make_batches
from .cache import (DEFAULT_KEY_SEED, BuildCache, BuildSpec, CacheStats,
                    build_cache, clear_build_cache)
from .export import (atomic_write_text, campaign_record, to_jsonable,
                     write_campaign)
from .pool import available_cpus, default_chunksize, resolve_jobs, run_tasks
from .seeding import task_rng, task_seed
from .shard import ShardSpec, merge_stores, parse_shard, shard_partition
from .store import (ResultStore, StoredRun, StoreStats, code_version,
                    run_tasks_stored, stable_digest, task_key)

__all__ = [
    "run_tasks", "resolve_jobs", "available_cpus", "default_chunksize",
    "make_batches",
    "task_seed", "task_rng",
    "BuildCache", "BuildSpec", "CacheStats", "build_cache",
    "clear_build_cache", "DEFAULT_KEY_SEED",
    "campaign_record", "write_campaign", "to_jsonable",
    "atomic_write_text",
    "ResultStore", "StoredRun", "StoreStats", "code_version",
    "run_tasks_stored", "stable_digest", "task_key",
    "ShardSpec", "parse_shard", "shard_partition", "merge_stores",
]
