"""The attack catalogue: code injection, tampering, relocation, code reuse.

Every attack is expressed against a :class:`~repro.attacks.systems.Target`
through the interfaces a real attacker has in the paper's threat model —
full control over program memory (``poke_code``), over input data, and
(for the PC-hijack model of an exploited indirect branch) over one control
transfer.  Attackers never see device keys.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List

from ..errors import ReproError
from ..isa.encoding import encode
from ..isa.instructions import Instruction
from ..isa.program import MMIO_ACTUATOR
from .victim import BUFFER_WORDS, RA_SLOT, UNLOCK_VALUE


@dataclass(frozen=True)
class Attack:
    """One attack: a name, a category, and a memory/state mutation."""

    name: str
    category: str    # "injection" | "tamper" | "relocation" | "reuse"
    description: str
    apply: Callable[[object, "Target"], None]  # (machine, target) -> None


def gadget_instructions() -> List[Instruction]:
    """The actuator-unlock gadget as instructions (5 slots).

    The canonical attacker payload: it works against *any* program (the
    actuator address is architectural, not program-specific), so the
    attack-synthesis engine injects it into arbitrary protected images
    and uses the actuator write as its program-independent hijack signal.
    """
    return [
        Instruction("lui", rd=12, imm=(MMIO_ACTUATOR >> 16) & 0xFFFF),
        Instruction("ori", rd=12, rs1=12, imm=MMIO_ACTUATOR & 0xFFFF),
        Instruction("lui", rd=13, imm=(UNLOCK_VALUE >> 16) & 0xFFFF),
        Instruction("ori", rd=13, rs1=13, imm=UNLOCK_VALUE & 0xFFFF),
        Instruction("sw", rs2=13, rs1=12, imm=0),
    ]


def gadget_words() -> List[int]:
    """Plaintext encoding of the actuator-unlock gadget (5 words)."""
    return [encode(i) for i in gadget_instructions()]


def _symbol(target, name: str) -> int:
    try:
        return target.symbols[name]
    except KeyError:
        raise ReproError(
            f"target {target.name!r} has no symbol {name!r}") from None


def attack_bit_flip(machine, target) -> None:
    """Flip one opcode bit inside the input-processing loop."""
    address = _symbol(target, "copy_loop")
    word = machine.memory.fetch_word(address)
    machine.memory.poke_code(address, word ^ 0x80)


def attack_inject_code(machine, target) -> None:
    """Write a plaintext actuator-unlock gadget over the patch site."""
    base = _symbol(target, "patch_site")
    for offset, word in enumerate(gadget_words()):
        machine.memory.poke_code(base + 4 * offset, word)


def attack_relocate_gadget(machine, target) -> None:
    """Copy the *encrypted* privileged routine onto the benign path.

    The copy granularity honours each defense's encryption unit: words for
    vanilla/XOR, aligned pairs for ECB, whole blocks for SOFIA.  Position-
    independent schemes (XOR, ECB) decrypt the relocated gadget correctly;
    SOFIA's address-bound CTR keystream does not.
    """
    source = target.unit_base(_symbol(target, "privileged"))
    destination = target.unit_base(_symbol(target, "patch_site"))
    skew = (_symbol(target, "privileged") - source) // 4
    words_to_copy = skew + 6  # cover the whole gadget body
    units = -(-words_to_copy // target.relocation_unit)
    for offset in range(0, 4 * units * target.relocation_unit, 4):
        word = machine.memory.fetch_word(source + offset)
        machine.memory.poke_code(destination + offset, word)


def attack_splice_blocks(machine, target) -> None:
    """Replay legitimate encrypted code at a different address."""
    source = target.unit_base(_symbol(target, "process_input"))
    destination = target.unit_base(_symbol(target, "patch_site"))
    for offset in range(0, 4 * target.relocation_unit, 4):
        word = machine.memory.fetch_word(source + offset)
        machine.memory.poke_code(destination + offset, word)


def attack_stack_smash(machine, target) -> None:
    """ROP-style data-only attack: overflow the stack buffer so that the
    saved return address becomes the privileged routine's entry."""
    input_addr = _symbol(target, "input")
    gadget = target.control_target(_symbol(target, "privileged"))
    memory = machine.memory
    memory.write_data_word(input_addr, RA_SLOT + 1)  # oversized length
    for i in range(BUFFER_WORDS):
        memory.write_data_word(input_addr + 4 * (1 + i), 0x41414141)
    memory.write_data_word(input_addr + 4 * (1 + RA_SLOT - 1), 0x42424242)
    memory.write_data_word(input_addr + 4 * (1 + RA_SLOT), gadget)


def attack_pc_hijack(machine, target) -> None:
    """Model of an exploited indirect branch: warp the PC to the gadget."""
    machine.state.pc = target.control_target(_symbol(target, "privileged"))


ATTACKS: List[Attack] = [
    Attack("bit-flip", "tamper",
           "flip one bit of an instruction word in program memory",
           attack_bit_flip),
    Attack("inject-code", "injection",
           "overwrite benign code with a plaintext unlock gadget",
           attack_inject_code),
    Attack("relocate-gadget", "relocation",
           "copy the encrypted privileged routine onto the benign path",
           attack_relocate_gadget),
    Attack("splice-blocks", "tamper",
           "replay legitimate encrypted code at a different address",
           attack_splice_blocks),
    Attack("stack-smash", "reuse",
           "overflow a stack buffer to redirect the return address",
           attack_stack_smash),
    Attack("pc-hijack", "reuse",
           "divert control flow directly to the privileged routine",
           attack_pc_hijack),
]
