"""Attack framework: victim, defenses, attack catalogue, campaign."""

from .actions import ATTACKS, Attack, gadget_instructions, gadget_words
from .harness import (AttackResult, Outcome, campaign_matrix, classify,
                      format_matrix, run_attack, run_campaign,
                      verify_benign)
from .systems import Target, build_targets
from .victim import (BENIGN_OUTPUT, BUFFER_WORDS, RA_SLOT, UNLOCK_VALUE,
                     VICTIM_ASM, victim_program)

__all__ = [
    "Attack", "ATTACKS", "gadget_words", "gadget_instructions",
    "AttackResult", "Outcome", "run_attack", "run_campaign",
    "campaign_matrix", "format_matrix", "classify", "verify_benign",
    "Target", "build_targets",
    "victim_program", "VICTIM_ASM", "UNLOCK_VALUE", "BENIGN_OUTPUT",
    "BUFFER_WORDS", "RA_SLOT",
]
