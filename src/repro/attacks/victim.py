"""The victim program used by the attack campaign.

A small bare-metal "controller" with the classic safety-critical shape the
paper motivates (§II-B2):

* ``main`` processes attacker-controllable input and prints a benign
  status value;
* ``process_input`` copies a length-prefixed word array from the ``input``
  global into a fixed 4-word stack buffer **without a bounds check** — the
  memory-corruption vulnerability;
* ``privileged`` writes an unlock value to the actuator MMIO port.  No
  legitimate path calls it (think: diagnostics code left in the image);
* ``patch_site`` is a benign callee whose body is 6 nops — the landing
  area that relocation attacks overwrite with encrypted gadget words.

The frame of ``process_input`` is laid out so that input word 5 overwrites
the saved return address (buffer at sp+0..15, filler at sp+16, saved ra at
sp+20): a 6-word input performs the ROP-style control-flow hijack.
"""

from __future__ import annotations

from ..isa.assembler import parse
from ..isa.program import AsmProgram, MMIO_ACTUATOR, MMIO_PUTINT

#: the value `privileged` writes to the actuator when (ab)used
UNLOCK_VALUE = 0x0BADCAFE

#: benign console output of an untampered run
BENIGN_OUTPUT = [7]

#: number of words the stack buffer holds legitimately
BUFFER_WORDS = 4

#: input word index that lands on the saved return address
RA_SLOT = 5

VICTIM_ASM = f"""
.entry main
.text
main:
    call process_input
    li t0, 0x{MMIO_PUTINT:08X}
    li t1, 7
    sw t1, 0(t0)
    call patch_site
    halt

# copies input[0] words from input[1..] into a 4-word stack buffer,
# trusting the attacker-supplied length — the overflow.
process_input:
    addi sp, sp, -24
    sw ra, 20(sp)
    la t0, input
    lw t1, 0(t0)          # attacker-controlled word count
    li t3, 0
copy_loop:
    bge t3, t1, copy_done
    addi t4, t3, 1
    slli t5, t4, 2
    add t5, t0, t5
    lw t6, 0(t5)          # input[1 + i]
    slli t5, t3, 2
    add t5, sp, t5
    sw t6, 0(t5)          # buf[i]  (sp+0 .. sp+12 are legitimate)
    addi t3, t3, 1
    jmp copy_loop
copy_done:
    lw ra, 20(sp)
    addi sp, sp, 24
    ret

# dormant diagnostics routine: unlocks the actuator.
privileged:
    li t0, 0x{MMIO_ACTUATOR:08X}
    li t1, 0x{UNLOCK_VALUE:08X}
    sw t1, 0(t0)
    ret

# benign callee with a nop body — relocation attacks overwrite this.
patch_site:
    nop
    nop
    nop
    nop
    nop
    nop
    ret

.data
input:
    .word {BUFFER_WORDS}, 11, 22, 33, 44, 0, 0, 0
"""


def victim_program() -> AsmProgram:
    """Parse a fresh copy of the victim."""
    return parse(VICTIM_ASM)
