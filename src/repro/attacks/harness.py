"""Attack campaign harness: run every attack against every defense.

Outcome classification (the attacker's goal is the actuator write, the
defender's goal is to prevent *any* effect of tampered code):

``DETECTED``   the defense stopped the program deliberately (SOFIA reset)
``CRASHED``    the attack derailed execution without a guarantee
               (illegal-instruction trap, bus error) — typical for ISR
``HIJACKED``   the actuator received the unlock value
``CORRUPTED``  the program "completed" but produced wrong output
``NO_EFFECT``  output identical to the benign run

The campaign is a task matrix (attack x target) dispatched through
:mod:`repro.runner`: each cell applies one attack to a fresh machine, so
cells are independent and ``run_campaign(parallel=True, jobs=N)`` fans
them across worker processes.  Workers rebuild the four targets once per
process from (seed, nonce) — the per-process build cache for this
campaign — and results return in matrix order, making parallel outcomes
identical to serial ones.
"""

from __future__ import annotations

import enum
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..runner import (campaign_record, resolve_jobs, run_tasks,
                      write_campaign)
from ..sim.result import Status
from .actions import ATTACKS, Attack
from .systems import Target, build_targets
from .victim import BENIGN_OUTPUT, UNLOCK_VALUE, victim_program

_MAX_INSTRUCTIONS = 200_000


class Outcome(enum.Enum):
    DETECTED = "detected"
    CRASHED = "crashed"
    HIJACKED = "hijacked"
    CORRUPTED = "corrupted"
    NO_EFFECT = "no-effect"


@dataclass
class AttackResult:
    attack: str
    category: str
    target: str
    outcome: Outcome
    status: Status
    detail: str = ""

    @property
    def prevented(self) -> bool:
        """True when the defense deterministically stopped the attack."""
        return self.outcome is Outcome.DETECTED


def classify(result, benign_output: List[int]) -> Outcome:
    mmio = result.mmio
    if mmio is not None and UNLOCK_VALUE in mmio.actuator:
        return Outcome.HIJACKED
    if result.status is Status.RESET:
        return Outcome.DETECTED
    if result.status is Status.TRAP:
        return Outcome.CRASHED
    if result.output_ints != benign_output:
        return Outcome.CORRUPTED
    return Outcome.NO_EFFECT


def run_attack(attack: Attack, target: Target,
               benign_output: Optional[List[int]] = None) -> AttackResult:
    """Apply one attack to a fresh instance of one target and classify."""
    machine = target.make()
    attack.apply(machine, target)
    result = machine.run(max_instructions=_MAX_INSTRUCTIONS)
    outcome = classify(result, benign_output or BENIGN_OUTPUT)
    detail = ""
    if result.violation is not None:
        detail = str(result.violation)
    elif result.trap_reason:
        detail = result.trap_reason
    return AttackResult(attack=attack.name, category=attack.category,
                        target=target.name, outcome=outcome,
                        status=result.status, detail=detail)


def verify_benign(targets: List[Target]) -> None:
    """Sanity check: every clean target produces the benign output."""
    for target in targets:
        result = target.make().run(max_instructions=_MAX_INSTRUCTIONS)
        if result.output_ints != BENIGN_OUTPUT or not result.ok:
            raise AssertionError(
                f"clean run of {target.name} broken: {result.summary()} "
                f"output={result.output_ints}")


# per-process target table, keyed by campaign seed.  The parent installs
# it after the benign check; fork-started workers inherit the built
# targets copy-on-write and never rebuild, while spawn-started workers
# rebuild once per process via the initializer.
_WORKER_TARGETS: Optional[Tuple[int, Dict[str, Target]]] = None


def _init_attack_worker(seed: int) -> None:
    global _WORKER_TARGETS
    if _WORKER_TARGETS is None or _WORKER_TARGETS[0] != seed:
        targets = build_targets(victim_program(), seed=seed)
        _WORKER_TARGETS = (seed, {t.name: t for t in targets})


def _attack_task(task: Tuple[int, str]) -> AttackResult:
    attack_index, target_name = task
    return run_attack(ATTACKS[attack_index],
                      _WORKER_TARGETS[1][target_name])


def run_campaign(seed: int = 1337, parallel: bool = False,
                 jobs: Optional[int] = None,
                 export_path=None) -> List[AttackResult]:
    """The full matrix: every attack against every defense.

    Each (attack, target) cell starts from a fresh machine, so the matrix
    parallelizes cell-by-cell; ``parallel=True`` dispatches it across
    ``jobs`` worker processes with results in matrix order (identical to
    the serial traversal).  ``export_path`` writes the campaign as JSON.
    """
    global _WORKER_TARGETS
    started = time.perf_counter()
    targets = build_targets(victim_program(), seed=seed)
    verify_benign(targets)
    _WORKER_TARGETS = (seed, {t.name: t for t in targets})
    tasks = [(attack_index, target.name)
             for attack_index in range(len(ATTACKS))
             for target in targets]
    try:
        results = run_tasks(_attack_task, tasks, jobs=jobs,
                            parallel=parallel,
                            initializer=_init_attack_worker,
                            initargs=(seed,))
    finally:
        _WORKER_TARGETS = None  # release the builds pinned for the pool
    if export_path is not None:
        write_campaign(export_path, campaign_record(
            "attack-matrix",
            {"seed": seed, "attacks": [a.name for a in ATTACKS],
             "targets": [t.name for t in targets]},
            results, jobs=resolve_jobs(jobs) if parallel else 1,
            elapsed_seconds=time.perf_counter() - started))
    return results


def campaign_matrix(results: List[AttackResult]) -> Dict[str, Dict[str, str]]:
    """attack -> target -> outcome string (for table rendering)."""
    matrix: Dict[str, Dict[str, str]] = {}
    for r in results:
        matrix.setdefault(r.attack, {})[r.target] = r.outcome.value
    return matrix


def format_matrix(results: List[AttackResult]) -> str:
    """Render the campaign as the E8 text table."""
    targets = sorted({r.target for r in results})
    matrix = campaign_matrix(results)
    width = max(len(t) for t in targets) + 2
    name_width = max(len(a) for a in matrix) + 2
    lines = ["".ljust(name_width) + "".join(t.ljust(width + 8) for t in targets)]
    for attack in matrix:
        row = attack.ljust(name_width)
        for target in targets:
            row += matrix[attack].get(target, "-").ljust(width + 8)
        lines.append(row)
    return "\n".join(lines)
