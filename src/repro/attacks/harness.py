"""Attack campaign harness: run every attack against every defense.

Outcome classification (the attacker's goal is the actuator write, the
defender's goal is to prevent *any* effect of tampered code):

``DETECTED``   the defense stopped the program deliberately (SOFIA reset)
``CRASHED``    the attack derailed execution without a guarantee
               (illegal-instruction trap, bus error) — typical for ISR
``HIJACKED``   the actuator received the unlock value
``CORRUPTED``  the program "completed" but produced wrong output
``NO_EFFECT``  output identical to the benign run
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..sim.result import Status
from .actions import ATTACKS, Attack
from .systems import Target, build_targets
from .victim import BENIGN_OUTPUT, UNLOCK_VALUE, victim_program

_MAX_INSTRUCTIONS = 200_000


class Outcome(enum.Enum):
    DETECTED = "detected"
    CRASHED = "crashed"
    HIJACKED = "hijacked"
    CORRUPTED = "corrupted"
    NO_EFFECT = "no-effect"


@dataclass
class AttackResult:
    attack: str
    category: str
    target: str
    outcome: Outcome
    status: Status
    detail: str = ""

    @property
    def prevented(self) -> bool:
        """True when the defense deterministically stopped the attack."""
        return self.outcome is Outcome.DETECTED


def classify(result, benign_output: List[int]) -> Outcome:
    mmio = result.mmio
    if mmio is not None and UNLOCK_VALUE in mmio.actuator:
        return Outcome.HIJACKED
    if result.status is Status.RESET:
        return Outcome.DETECTED
    if result.status is Status.TRAP:
        return Outcome.CRASHED
    if result.output_ints != benign_output:
        return Outcome.CORRUPTED
    return Outcome.NO_EFFECT


def run_attack(attack: Attack, target: Target,
               benign_output: Optional[List[int]] = None) -> AttackResult:
    """Apply one attack to a fresh instance of one target and classify."""
    machine = target.make()
    attack.apply(machine, target)
    result = machine.run(max_instructions=_MAX_INSTRUCTIONS)
    outcome = classify(result, benign_output or BENIGN_OUTPUT)
    detail = ""
    if result.violation is not None:
        detail = str(result.violation)
    elif result.trap_reason:
        detail = result.trap_reason
    return AttackResult(attack=attack.name, category=attack.category,
                        target=target.name, outcome=outcome,
                        status=result.status, detail=detail)


def verify_benign(targets: List[Target]) -> None:
    """Sanity check: every clean target produces the benign output."""
    for target in targets:
        result = target.make().run(max_instructions=_MAX_INSTRUCTIONS)
        if result.output_ints != BENIGN_OUTPUT or not result.ok:
            raise AssertionError(
                f"clean run of {target.name} broken: {result.summary()} "
                f"output={result.output_ints}")


def run_campaign(seed: int = 1337) -> List[AttackResult]:
    """The full matrix: every attack against every defense."""
    targets = build_targets(victim_program(), seed=seed)
    verify_benign(targets)
    results = []
    for attack in ATTACKS:
        for target in targets:
            results.append(run_attack(attack, target))
    return results


def campaign_matrix(results: List[AttackResult]) -> Dict[str, Dict[str, str]]:
    """attack -> target -> outcome string (for table rendering)."""
    matrix: Dict[str, Dict[str, str]] = {}
    for r in results:
        matrix.setdefault(r.attack, {})[r.target] = r.outcome.value
    return matrix


def format_matrix(results: List[AttackResult]) -> str:
    """Render the campaign as the E8 text table."""
    targets = sorted({r.target for r in results})
    matrix = campaign_matrix(results)
    width = max(len(t) for t in targets) + 2
    name_width = max(len(a) for a in matrix) + 2
    lines = ["".ljust(name_width) + "".join(t.ljust(width + 8) for t in targets)]
    for attack in matrix:
        row = attack.ljust(name_width)
        for target in targets:
            row += matrix[attack].get(target, "-").ljust(width + 8)
        lines.append(row)
    return "\n".join(lines)
