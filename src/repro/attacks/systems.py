"""Target systems for the attack campaign: one victim, four defenses."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..baselines.isr import EcbIsrMachine, XorIsrMachine
from ..crypto.keys import DeviceKeys, derive_key
from ..isa.assembler import assemble
from ..isa.program import AsmProgram, Executable
from ..sim.sofia import SofiaMachine
from ..sim.vanilla import VanillaMachine
from ..transform.image import SofiaImage
from ..transform.transformer import transform


@dataclass
class Target:
    """One defended (or undefended) instantiation of the victim."""

    name: str
    make: Callable[[], object]        # fresh machine per attack run
    #: symbol -> runtime entry address (per-defense address space)
    symbols: Dict[str, int]
    code_base: int
    code_words: int                   # text-section length in words
    #: granularity (in words) at which code relocation is meaningful
    relocation_unit: int
    executable: Optional[Executable] = None
    image: Optional[SofiaImage] = None

    def unit_base(self, address: int) -> int:
        """Start address of the encryption unit containing ``address``."""
        unit_bytes = 4 * self.relocation_unit
        return address - (address - self.code_base) % unit_bytes

    def control_target(self, address: int) -> int:
        """The address an attacker diverts control to for a gadget.

        On SOFIA the only plausible entries are block entry points, so the
        attacker aims at the containing block's base; elsewhere the gadget
        instruction's own address is the target.
        """
        if self.image is not None:
            return self.unit_base(address)
        return address


def build_targets(program: AsmProgram, seed: int = 1337,
                  nonce: int = 0x50F1,
                  engine: Optional[str] = None) -> List[Target]:
    """Instantiate the victim under every defense.

    ``engine`` pins the execution engine for every target machine (the
    attack matrix is engine-independent; see :mod:`repro.sim.engine`).
    """
    exe = assemble(program)
    keys = DeviceKeys.from_seed(seed)
    image = transform(program, keys, nonce=nonce)
    xor_key = derive_key(seed, "xor-isr") & 0xFFFFFFFF
    ecb_key = derive_key(seed, "ecb-isr")

    targets = [
        Target(name="vanilla",
               make=lambda: VanillaMachine(exe, engine=engine),
               symbols=dict(exe.symbols), code_base=exe.code_base,
               code_words=len(exe.code_words), relocation_unit=1,
               executable=exe),
        Target(name="xor-isr",
               make=lambda: XorIsrMachine(exe, xor_key, engine=engine),
               symbols=dict(exe.symbols), code_base=exe.code_base,
               code_words=len(exe.code_words), relocation_unit=1,
               executable=exe),
        Target(name="ecb-isr",
               make=lambda: EcbIsrMachine(exe, ecb_key, engine=engine),
               symbols=dict(exe.symbols), code_base=exe.code_base,
               code_words=len(exe.code_words), relocation_unit=2,
               executable=exe),
        Target(name="sofia",
               make=lambda: SofiaMachine(image, keys, engine=engine),
               symbols=dict(image.symbols), code_base=image.code_base,
               code_words=len(image.words),
               relocation_unit=image.block_words,
               image=image),
    ]
    return targets
