"""Functional execution semantics of SRISC instructions.

``execute`` interprets one decoded instruction against a :class:`CPUState`
and a :class:`~repro.sim.memory.Memory`.  It is shared verbatim by the
vanilla machine and the SOFIA machine — SOFIA changes *what gets fetched
and whether it may execute*, never the ISA semantics.

All register values are canonical unsigned 32-bit integers; helpers convert
to signed views where the ISA requires signed comparisons or arithmetic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..errors import SimulationError
from ..isa.instructions import Instruction
from ..isa.program import STACK_TOP
from ..isa.registers import NUM_REGISTERS, RA, SP
from .memory import Memory

MASK32 = 0xFFFFFFFF


def to_signed(value: int) -> int:
    value &= MASK32
    return value - 0x100000000 if value & 0x80000000 else value


def _trunc_div(a: int, b: int) -> int:
    """Integer division truncating toward zero (C/SPARC semantics)."""
    quotient = abs(a) // abs(b)
    return -quotient if (a < 0) != (b < 0) else quotient


@dataclass
class CPUState:
    """Architectural register state."""

    regs: List[int] = field(default_factory=lambda: [0] * NUM_REGISTERS)
    pc: int = 0

    @classmethod
    def reset(cls, entry: int, stack_top: int = STACK_TOP) -> "CPUState":
        state = cls(pc=entry)
        state.regs[SP] = stack_top
        return state

    def read(self, reg: int) -> int:
        return self.regs[reg]

    def write(self, reg: int, value: int) -> None:
        if reg != 0:
            self.regs[reg] = value & MASK32


@dataclass(frozen=True)
class ExecOutcome:
    """Result of executing one instruction."""

    next_pc: Optional[int] = None  # None -> sequential (pc + 4)
    halted: bool = False
    branch_taken: bool = False


_LOAD_SIZES = {"lw": (4, False), "lh": (2, True), "lhu": (2, False),
               "lb": (1, True), "lbu": (1, False)}
_STORE_SIZES = {"sw": 4, "sh": 2, "sb": 1}


def execute(instr: Instruction, state: CPUState, memory: Memory,
            pc: int) -> ExecOutcome:
    """Execute ``instr`` located at address ``pc``."""
    name = instr.mnemonic
    regs = state.regs

    if name == "nop":
        return ExecOutcome()
    if name == "halt":
        return ExecOutcome(halted=True)

    # register ALU -------------------------------------------------------
    if name == "add":
        state.write(instr.rd, regs[instr.rs1] + regs[instr.rs2])
        return ExecOutcome()
    if name == "sub":
        state.write(instr.rd, regs[instr.rs1] - regs[instr.rs2])
        return ExecOutcome()
    if name == "and":
        state.write(instr.rd, regs[instr.rs1] & regs[instr.rs2])
        return ExecOutcome()
    if name == "or":
        state.write(instr.rd, regs[instr.rs1] | regs[instr.rs2])
        return ExecOutcome()
    if name == "xor":
        state.write(instr.rd, regs[instr.rs1] ^ regs[instr.rs2])
        return ExecOutcome()
    if name == "sll":
        state.write(instr.rd, regs[instr.rs1] << (regs[instr.rs2] & 31))
        return ExecOutcome()
    if name == "srl":
        state.write(instr.rd, (regs[instr.rs1] & MASK32) >> (regs[instr.rs2] & 31))
        return ExecOutcome()
    if name == "sra":
        state.write(instr.rd, to_signed(regs[instr.rs1]) >> (regs[instr.rs2] & 31))
        return ExecOutcome()
    if name == "mul":
        state.write(instr.rd, regs[instr.rs1] * regs[instr.rs2])
        return ExecOutcome()
    if name == "div":
        divisor = to_signed(regs[instr.rs2])
        if divisor == 0:
            state.write(instr.rd, MASK32)  # RISC-V-style div-by-zero result
        else:
            state.write(instr.rd, _trunc_div(to_signed(regs[instr.rs1]), divisor))
        return ExecOutcome()
    if name == "rem":
        divisor = to_signed(regs[instr.rs2])
        if divisor == 0:
            state.write(instr.rd, regs[instr.rs1])
        else:
            dividend = to_signed(regs[instr.rs1])
            state.write(instr.rd, dividend - divisor * _trunc_div(dividend, divisor))
        return ExecOutcome()
    if name == "slt":
        state.write(instr.rd,
                    int(to_signed(regs[instr.rs1]) < to_signed(regs[instr.rs2])))
        return ExecOutcome()
    if name == "sltu":
        state.write(instr.rd, int(regs[instr.rs1] < regs[instr.rs2]))
        return ExecOutcome()

    # immediate ALU -------------------------------------------------------
    if name == "addi":
        state.write(instr.rd, regs[instr.rs1] + instr.imm)
        return ExecOutcome()
    if name == "andi":
        state.write(instr.rd, regs[instr.rs1] & instr.imm)
        return ExecOutcome()
    if name == "ori":
        state.write(instr.rd, regs[instr.rs1] | instr.imm)
        return ExecOutcome()
    if name == "xori":
        state.write(instr.rd, regs[instr.rs1] ^ instr.imm)
        return ExecOutcome()
    if name == "slli":
        state.write(instr.rd, regs[instr.rs1] << (instr.imm & 31))
        return ExecOutcome()
    if name == "srli":
        state.write(instr.rd, (regs[instr.rs1] & MASK32) >> (instr.imm & 31))
        return ExecOutcome()
    if name == "srai":
        state.write(instr.rd, to_signed(regs[instr.rs1]) >> (instr.imm & 31))
        return ExecOutcome()
    if name == "slti":
        state.write(instr.rd, int(to_signed(regs[instr.rs1]) < instr.imm))
        return ExecOutcome()
    if name == "sltiu":
        state.write(instr.rd, int(regs[instr.rs1] < (instr.imm & MASK32)))
        return ExecOutcome()
    if name == "lui":
        state.write(instr.rd, instr.imm << 16)
        return ExecOutcome()

    # memory ---------------------------------------------------------------
    if name in _LOAD_SIZES:
        size, signed = _LOAD_SIZES[name]
        address = (regs[instr.rs1] + instr.imm) & MASK32
        state.write(instr.rd, memory.load(address, size, signed))
        return ExecOutcome()
    if name in _STORE_SIZES:
        size = _STORE_SIZES[name]
        address = (regs[instr.rs1] + instr.imm) & MASK32
        memory.store(address, regs[instr.rs2], size)
        return ExecOutcome()

    # control transfer ------------------------------------------------------
    if name in ("beq", "bne", "blt", "bge", "bltu", "bgeu"):
        a, b = regs[instr.rs1], regs[instr.rs2]
        if name == "beq":
            taken = a == b
        elif name == "bne":
            taken = a != b
        elif name == "blt":
            taken = to_signed(a) < to_signed(b)
        elif name == "bge":
            taken = to_signed(a) >= to_signed(b)
        elif name == "bltu":
            taken = a < b
        else:  # bgeu
            taken = a >= b
        if taken:
            return ExecOutcome(next_pc=instr.imm & MASK32, branch_taken=True)
        return ExecOutcome()
    if name == "jmp":
        return ExecOutcome(next_pc=instr.imm & MASK32)
    if name == "call":
        state.write(RA, pc + 4)
        return ExecOutcome(next_pc=instr.imm & MASK32)
    if name == "jr":
        return ExecOutcome(next_pc=regs[instr.rs1])
    if name == "jalr":
        target = regs[instr.rs1]
        state.write(instr.rd, pc + 4)
        return ExecOutcome(next_pc=target)

    raise SimulationError(f"no semantics for mnemonic {instr.mnemonic!r}")
