"""Cycle-accounting model of the 7-stage LEON3-like pipeline.

We do not tick a pipeline cycle-by-cycle; instead each committed
instruction is charged its issue slot plus well-known penalties, and each
fetched word is charged I-cache fill penalties.  This reproduces the shape
of the paper's overhead numbers (DESIGN.md, substitution table): SOFIA's
cycle overhead comes from (a) the MAC words occupying fetch slots (they are
nop'd into the pipeline, paper §II-B1), (b) alignment/padding nops, (c)
multiplexor-tree hops, and (d) extra I-cache pressure from the ~2.4x code
footprint.

The decrypt path adds no per-word stall: the unrolled two-cycle RECTANGLE
alternates CTR and CBC operations every other cycle and is fully pipelined
with fetch (paper §III) — it costs *clock frequency* (see
:mod:`repro.hwmodel.profilecost`), not cycles.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..isa.instructions import Instruction


@dataclass(frozen=True)
class TimingParams:
    """Tunable constants of the cycle model."""

    #: extra cycles when a conditional branch is taken (pipeline refill)
    branch_taken_penalty: int = 2
    #: extra cycles for unconditional transfers (jmp/call/jr/jalr)
    jump_penalty: int = 2
    #: cycles to refill one I-cache line from program memory
    icache_miss_penalty: int = 10
    #: I-cache geometry
    icache_lines: int = 128
    icache_line_words: int = 8
    #: cycles a MAC word spends in the fetch stage (it becomes a nop)
    mac_word_cycles: int = 1
    #: extra wait states on every data load/store (slow external memory)
    memory_wait_states: int = 0


DEFAULT_TIMING = TimingParams()

#: Calibrated to the paper's baseline: the minimal LEON3 configuration runs
#: ADPCM at an effective CPI well above 5 (114.2 M cycles, §IV-B), which is
#: only explainable with uncached data memory and slow program memory.  A
#: high-CPI baseline dilutes SOFIA's one-cycle MAC/padding fetch slots —
#: this is precisely why the paper's cycle overhead (13.7 %) is far below
#: the ~33 % a naive 2-extra-words-per-6-instructions estimate gives.
LEON3_MINIMAL_TIMING = TimingParams(
    branch_taken_penalty=3,
    jump_penalty=3,
    icache_miss_penalty=25,
    memory_wait_states=5,
)


def instruction_cycles(instr: Instruction, params: TimingParams,
                       branch_taken: bool = False) -> int:
    """Issue cycles charged for one committed instruction."""
    spec = instr.spec
    cycles = spec.cycles
    if spec.is_branch and branch_taken:
        cycles += params.branch_taken_penalty
    elif spec.is_jump or spec.is_call or spec.is_indirect:
        cycles += params.jump_penalty
    if spec.is_load or spec.is_store:
        cycles += params.memory_wait_states
    return cycles


def cycle_costs(instr: Instruction, params: TimingParams) -> tuple:
    """Both possible :func:`instruction_cycles` values, precomputed.

    Returns ``(not_taken, taken)`` for the predecoded engine: only a
    conditional branch has two distinct costs; unconditional transfers
    carry the jump penalty in both slots (they always "take"), and every
    other instruction costs the same either way.
    """
    spec = instr.spec
    base = spec.cycles
    if spec.is_load or spec.is_store:
        base += params.memory_wait_states
    if spec.is_branch:
        return base, base + params.branch_taken_penalty
    if spec.is_jump or spec.is_call or spec.is_indirect:
        taken = base + params.jump_penalty
        return taken, taken
    return base, base
