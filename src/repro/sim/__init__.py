"""Processor simulation substrate (vanilla LEON3-like core + SOFIA core)."""

from .batch import (BATCH_WIDTH, LockstepLeader, adopt_caches, fork_machine,
                    warm_front_end)
from .cache import CacheStats, DirectMappedCache
from .core import CPUState, ExecOutcome, execute, to_signed
from .engine import (CAMPAIGN_ENGINES, DEFAULT_ENGINE, ENGINES,
                     compile_handler, predecode, resolve_engine)
from .fused import compile_sofia_block, compile_vanilla_run
from .memory import Memory, MMIODevice
from .result import ExecutionResult, Status, ViolationRecord
from .sofia import SofiaMachine, run_image
from .trace import (TraceEntry, diff_traces, list_image, trace_sofia,
                    trace_vanilla)
from .timing import (DEFAULT_TIMING, LEON3_MINIMAL_TIMING, TimingParams,
                     cycle_costs, instruction_cycles)
from .vanilla import VanillaMachine, run_executable

__all__ = [
    "CPUState", "ExecOutcome", "execute", "to_signed",
    "Memory", "MMIODevice",
    "DirectMappedCache", "CacheStats",
    "ExecutionResult", "Status", "ViolationRecord",
    "VanillaMachine", "run_executable",
    "SofiaMachine", "run_image",
    "DEFAULT_ENGINE", "ENGINES", "CAMPAIGN_ENGINES", "resolve_engine",
    "BATCH_WIDTH", "LockstepLeader", "warm_front_end", "fork_machine",
    "adopt_caches",
    "compile_sofia_block", "compile_vanilla_run",
    "compile_handler", "predecode",
    "TimingParams", "DEFAULT_TIMING", "LEON3_MINIMAL_TIMING",
    "instruction_cycles", "cycle_costs",
    "TraceEntry", "trace_vanilla", "trace_sofia", "diff_traces",
    "list_image",
]
