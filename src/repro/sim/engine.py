"""Predecoded execution engine: compile instructions once, step closures.

:func:`repro.sim.core.execute` is the *reference semantics oracle*: a
~40-arm mnemonic dispatch that re-reads every operand field, allocates a
fresh :class:`~repro.sim.core.ExecOutcome` and re-derives
:func:`~repro.sim.timing.instruction_cycles` on every step.  That is the
right shape for auditing the ISA against the paper, and the wrong shape
for the millions of steps a fault campaign or overhead sweep executes.

This module compiles each decoded :class:`~repro.isa.instructions.
Instruction` exactly once into a specialized *handler* — a closure drawn
from a per-mnemonic dispatch table that binds the operand indices,
immediates and masks as default arguments (locals, not cell lookups) —
paired with its two precomputed cycle costs from
:func:`~repro.sim.timing.cycle_costs`.  The machines then step cached
handlers; ``engine="reference"`` keeps the oracle loop selectable.

Handler contract
----------------
``handler(regs, memory, pc) -> Optional[int]`` where the return value is

* ``None``        — sequential flow (``pc + 4`` / next payload slot); the
  not-taken cycle cost applies;
* :data:`HALT`    — a ``halt`` committed (``-1``, unreachable as a real
  address because architectural values are masked to 32 bits);
* any other int   — the next PC; the taken cycle cost applies.

The mapping to the oracle is exact: a handler returns non-``None`` iff
``execute`` returns an outcome with ``next_pc is not None`` or ``halted``,
and a *branch* handler returns non-``None`` iff ``branch_taken`` — so
charging the taken cost on non-``None`` reproduces
``instruction_cycles(instr, timing, outcome.branch_taken)`` bit for bit
(unconditional transfers bake the jump penalty into both costs).
Handlers raise the same :class:`~repro.errors.SimulationError` as the
oracle for bus errors, MMIO violations and misaligned accesses, because
they call the same :class:`~repro.sim.memory.Memory` methods.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

from ..errors import SimulationError
from ..isa.instructions import Instruction
from .memory import Memory
from .timing import TimingParams, cycle_costs

MASK32 = 0xFFFFFFFF
SIGN_BIT = 0x80000000

#: sentinel returned by a compiled ``halt`` handler (no architectural
#: address can be negative, so it never collides with a branch target)
HALT = -1

#: the engines a machine can run; the predecoded engine is the default,
#: ``"reference"`` selects the original ``core.execute`` oracle loop,
#: ``"batch"`` the bit-slice-warmed front end (:mod:`repro.sim.batch`)
#: whose runs execute fused, and ``"fused"`` the superblock engine that
#: source-compiles each straight-line run into one call
#: (:mod:`repro.sim.fused`).  This tuple is the single home of the engine
#: name surface: CLI choices, fuzz-oracle axes and campaign plumbing all
#: derive from it.
ENGINES = ("predecoded", "reference", "batch", "fused")
DEFAULT_ENGINE = "predecoded"

#: the engines campaign drivers accept beyond the default: everything that
#: is not the default scalar loop or the reference oracle (derived, never
#: repeated as a literal tuple elsewhere)
CAMPAIGN_ENGINES = tuple(e for e in ENGINES
                         if e not in (DEFAULT_ENGINE, "reference"))

Handler = Callable[[list, Memory, int], Optional[int]]


def resolve_engine(engine: Optional[str]) -> str:
    """Validate an engine name (``None`` selects the default)."""
    if engine is None:
        return DEFAULT_ENGINE
    if engine not in ENGINES:
        raise ValueError(
            f"unknown execution engine {engine!r}; choose from {ENGINES}")
    return engine


# -- handler compilers ----------------------------------------------------
#
# One compiler per mnemonic.  Each binds everything the hot path needs as
# default arguments; writes to r0 are compiled out entirely (the oracle
# discards them in CPUState.write with no other side effect).

def _run_nop(regs, memory, pc):
    return None


def _run_halt(regs, memory, pc):
    return HALT


def _c_nop(i: Instruction) -> Handler:
    return _run_nop


def _c_halt(i: Instruction) -> Handler:
    return _run_halt


def _c_add(i):
    rd, a, b = i.rd, i.rs1, i.rs2
    if rd == 0:
        return _run_nop

    def run(regs, memory, pc, rd=rd, a=a, b=b, M=MASK32):
        regs[rd] = (regs[a] + regs[b]) & M
        return None
    return run


def _c_sub(i):
    rd, a, b = i.rd, i.rs1, i.rs2
    if rd == 0:
        return _run_nop

    def run(regs, memory, pc, rd=rd, a=a, b=b, M=MASK32):
        regs[rd] = (regs[a] - regs[b]) & M
        return None
    return run


def _c_and(i):
    rd, a, b = i.rd, i.rs1, i.rs2
    if rd == 0:
        return _run_nop

    def run(regs, memory, pc, rd=rd, a=a, b=b):
        regs[rd] = regs[a] & regs[b]
        return None
    return run


def _c_or(i):
    rd, a, b = i.rd, i.rs1, i.rs2
    if rd == 0:
        return _run_nop

    def run(regs, memory, pc, rd=rd, a=a, b=b):
        regs[rd] = regs[a] | regs[b]
        return None
    return run


def _c_xor(i):
    rd, a, b = i.rd, i.rs1, i.rs2
    if rd == 0:
        return _run_nop

    def run(regs, memory, pc, rd=rd, a=a, b=b):
        regs[rd] = regs[a] ^ regs[b]
        return None
    return run


def _c_sll(i):
    rd, a, b = i.rd, i.rs1, i.rs2
    if rd == 0:
        return _run_nop

    def run(regs, memory, pc, rd=rd, a=a, b=b, M=MASK32):
        regs[rd] = (regs[a] << (regs[b] & 31)) & M
        return None
    return run


def _c_srl(i):
    rd, a, b = i.rd, i.rs1, i.rs2
    if rd == 0:
        return _run_nop

    def run(regs, memory, pc, rd=rd, a=a, b=b):
        regs[rd] = regs[a] >> (regs[b] & 31)
        return None
    return run


def _c_sra(i):
    rd, a, b = i.rd, i.rs1, i.rs2
    if rd == 0:
        return _run_nop

    def run(regs, memory, pc, rd=rd, a=a, b=b, M=MASK32, S=SIGN_BIT):
        v = regs[a]
        if v & S:
            v -= 0x100000000
        regs[rd] = (v >> (regs[b] & 31)) & M
        return None
    return run


def _c_mul(i):
    rd, a, b = i.rd, i.rs1, i.rs2
    if rd == 0:
        return _run_nop

    def run(regs, memory, pc, rd=rd, a=a, b=b, M=MASK32):
        regs[rd] = (regs[a] * regs[b]) & M
        return None
    return run


def _c_div(i):
    rd, a, b = i.rd, i.rs1, i.rs2

    def run(regs, memory, pc, rd=rd, a=a, b=b, M=MASK32, S=SIGN_BIT):
        divisor = regs[b]
        if divisor & S:
            divisor -= 0x100000000
        if rd:
            if divisor == 0:
                regs[rd] = M
            else:
                dividend = regs[a]
                if dividend & S:
                    dividend -= 0x100000000
                quotient = abs(dividend) // abs(divisor)
                if (dividend < 0) != (divisor < 0):
                    quotient = -quotient
                regs[rd] = quotient & M
        return None
    return run


def _c_rem(i):
    rd, a, b = i.rd, i.rs1, i.rs2

    def run(regs, memory, pc, rd=rd, a=a, b=b, M=MASK32, S=SIGN_BIT):
        divisor = regs[b]
        if divisor & S:
            divisor -= 0x100000000
        if rd:
            if divisor == 0:
                regs[rd] = regs[a]
            else:
                dividend = regs[a]
                if dividend & S:
                    dividend -= 0x100000000
                quotient = abs(dividend) // abs(divisor)
                if (dividend < 0) != (divisor < 0):
                    quotient = -quotient
                regs[rd] = (dividend - divisor * quotient) & M
        return None
    return run


def _c_slt(i):
    # signed compare via sign-bit bias: (x ^ 0x80000000) orders unsigned
    # 32-bit values exactly like to_signed(x) orders them signed
    rd, a, b = i.rd, i.rs1, i.rs2
    if rd == 0:
        return _run_nop

    def run(regs, memory, pc, rd=rd, a=a, b=b, S=SIGN_BIT):
        regs[rd] = 1 if (regs[a] ^ S) < (regs[b] ^ S) else 0
        return None
    return run


def _c_sltu(i):
    rd, a, b = i.rd, i.rs1, i.rs2
    if rd == 0:
        return _run_nop

    def run(regs, memory, pc, rd=rd, a=a, b=b):
        regs[rd] = 1 if regs[a] < regs[b] else 0
        return None
    return run


def _c_addi(i):
    rd, a, imm = i.rd, i.rs1, i.imm
    if rd == 0:
        return _run_nop

    def run(regs, memory, pc, rd=rd, a=a, imm=imm, M=MASK32):
        regs[rd] = (regs[a] + imm) & M
        return None
    return run


def _c_andi(i):
    rd, a, imm = i.rd, i.rs1, i.imm
    if rd == 0:
        return _run_nop

    def run(regs, memory, pc, rd=rd, a=a, imm=imm, M=MASK32):
        regs[rd] = (regs[a] & imm) & M
        return None
    return run


def _c_ori(i):
    rd, a, imm = i.rd, i.rs1, i.imm
    if rd == 0:
        return _run_nop

    def run(regs, memory, pc, rd=rd, a=a, imm=imm, M=MASK32):
        regs[rd] = (regs[a] | imm) & M
        return None
    return run


def _c_xori(i):
    rd, a, imm = i.rd, i.rs1, i.imm
    if rd == 0:
        return _run_nop

    def run(regs, memory, pc, rd=rd, a=a, imm=imm, M=MASK32):
        regs[rd] = (regs[a] ^ imm) & M
        return None
    return run


def _c_slli(i):
    rd, a, sh = i.rd, i.rs1, i.imm & 31
    if rd == 0:
        return _run_nop

    def run(regs, memory, pc, rd=rd, a=a, sh=sh, M=MASK32):
        regs[rd] = (regs[a] << sh) & M
        return None
    return run


def _c_srli(i):
    rd, a, sh = i.rd, i.rs1, i.imm & 31
    if rd == 0:
        return _run_nop

    def run(regs, memory, pc, rd=rd, a=a, sh=sh):
        regs[rd] = regs[a] >> sh
        return None
    return run


def _c_srai(i):
    rd, a, sh = i.rd, i.rs1, i.imm & 31
    if rd == 0:
        return _run_nop

    def run(regs, memory, pc, rd=rd, a=a, sh=sh, M=MASK32, S=SIGN_BIT):
        v = regs[a]
        if v & S:
            v -= 0x100000000
        regs[rd] = (v >> sh) & M
        return None
    return run


def _c_slti(i):
    rd, a = i.rd, i.rs1
    biased = (i.imm + SIGN_BIT)  # exact: Python ints don't wrap
    if rd == 0:
        return _run_nop

    def run(regs, memory, pc, rd=rd, a=a, biased=biased, S=SIGN_BIT):
        regs[rd] = 1 if (regs[a] ^ S) < biased else 0
        return None
    return run


def _c_sltiu(i):
    rd, a, cmp = i.rd, i.rs1, i.imm & MASK32
    if rd == 0:
        return _run_nop

    def run(regs, memory, pc, rd=rd, a=a, cmp=cmp):
        regs[rd] = 1 if regs[a] < cmp else 0
        return None
    return run


def _c_lui(i):
    rd, value = i.rd, (i.imm << 16) & MASK32
    if rd == 0:
        return _run_nop

    def run(regs, memory, pc, rd=rd, value=value):
        regs[rd] = value
        return None
    return run


def _c_load(size: int, signed: bool):
    def compiler(i):
        rd, base, off = i.rd, i.rs1, i.imm

        def run(regs, memory, pc, rd=rd, base=base, off=off,
                size=size, signed=signed, M=MASK32):
            # the access must happen even for rd == r0: bus errors and
            # MMIO loads trap exactly like the oracle
            value = memory.load((regs[base] + off) & M, size, signed)
            if rd:
                regs[rd] = value
            return None
        return run
    return compiler


def _c_store(size: int):
    def compiler(i):
        data, base, off = i.rs2, i.rs1, i.imm

        def run(regs, memory, pc, data=data, base=base, off=off,
                size=size, M=MASK32):
            memory.store((regs[base] + off) & M, regs[data], size)
            return None
        return run
    return compiler


def _c_beq(i):
    a, b, target = i.rs1, i.rs2, i.imm & MASK32

    def run(regs, memory, pc, a=a, b=b, target=target):
        return target if regs[a] == regs[b] else None
    return run


def _c_bne(i):
    a, b, target = i.rs1, i.rs2, i.imm & MASK32

    def run(regs, memory, pc, a=a, b=b, target=target):
        return target if regs[a] != regs[b] else None
    return run


def _c_blt(i):
    a, b, target = i.rs1, i.rs2, i.imm & MASK32

    def run(regs, memory, pc, a=a, b=b, target=target, S=SIGN_BIT):
        return target if (regs[a] ^ S) < (regs[b] ^ S) else None
    return run


def _c_bge(i):
    a, b, target = i.rs1, i.rs2, i.imm & MASK32

    def run(regs, memory, pc, a=a, b=b, target=target, S=SIGN_BIT):
        return target if (regs[a] ^ S) >= (regs[b] ^ S) else None
    return run


def _c_bltu(i):
    a, b, target = i.rs1, i.rs2, i.imm & MASK32

    def run(regs, memory, pc, a=a, b=b, target=target):
        return target if regs[a] < regs[b] else None
    return run


def _c_bgeu(i):
    a, b, target = i.rs1, i.rs2, i.imm & MASK32

    def run(regs, memory, pc, a=a, b=b, target=target):
        return target if regs[a] >= regs[b] else None
    return run


def _c_jmp(i):
    target = i.imm & MASK32

    def run(regs, memory, pc, target=target):
        return target
    return run


def _c_call(i):
    target = i.imm & MASK32

    def run(regs, memory, pc, target=target, M=MASK32):
        regs[1] = (pc + 4) & M  # RA
        return target
    return run


def _c_jr(i):
    a = i.rs1

    def run(regs, memory, pc, a=a):
        return regs[a]
    return run


def _c_jalr(i):
    rd, a = i.rd, i.rs1

    def run(regs, memory, pc, rd=rd, a=a, M=MASK32):
        # target is read before the link write (jalr rd == rs1)
        target = regs[a]
        if rd:
            regs[rd] = (pc + 4) & M
        return target
    return run


#: the per-mnemonic dispatch table: consulted once per decoded
#: instruction, never on the hot path
COMPILERS: Dict[str, Callable[[Instruction], Handler]] = {
    "nop": _c_nop, "halt": _c_halt,
    "add": _c_add, "sub": _c_sub, "and": _c_and, "or": _c_or,
    "xor": _c_xor, "sll": _c_sll, "srl": _c_srl, "sra": _c_sra,
    "mul": _c_mul, "div": _c_div, "rem": _c_rem,
    "slt": _c_slt, "sltu": _c_sltu,
    "addi": _c_addi, "andi": _c_andi, "ori": _c_ori, "xori": _c_xori,
    "slli": _c_slli, "srli": _c_srli, "srai": _c_srai,
    "slti": _c_slti, "sltiu": _c_sltiu, "lui": _c_lui,
    "lw": _c_load(4, False), "lh": _c_load(2, True),
    "lhu": _c_load(2, False), "lb": _c_load(1, True),
    "lbu": _c_load(1, False),
    "sw": _c_store(4), "sh": _c_store(2), "sb": _c_store(1),
    "beq": _c_beq, "bne": _c_bne, "blt": _c_blt, "bge": _c_bge,
    "bltu": _c_bltu, "bgeu": _c_bgeu,
    "jmp": _c_jmp, "call": _c_call, "jr": _c_jr, "jalr": _c_jalr,
}


def compile_handler(instr: Instruction) -> Handler:
    """Compile one instruction into its specialized handler."""
    try:
        compiler = COMPILERS[instr.mnemonic]
    except KeyError:
        raise SimulationError(
            f"no semantics for mnemonic {instr.mnemonic!r}") from None
    return compiler(instr)


#: predecoded step:
#: (handler, cycles_not_taken, cycles_taken, is_store, instruction).
#: ``is_store`` gates the MMIO-exit poll: only a store can set the exit
#: register, so every other step skips the device read entirely.
PredecodedStep = Tuple[Handler, int, int, bool, Instruction]


def predecode(instr: Instruction, timing: TimingParams) -> PredecodedStep:
    """Compile an instruction and precompute both cycle costs."""
    seq, taken = cycle_costs(instr, timing)
    return (compile_handler(instr), seq, taken, instr.spec.is_store, instr)


#: step kinds for the SOFIA inner loop: what a committed step can do
#: beyond writing registers/RAM.  INERT handlers provably return ``None``
#: and cannot end the block, so the fast (hook-less) loop skips every
#: post-commit check for them.
KIND_INERT = 0   # ALU / load / nop: no control effect, cannot set exit
KIND_STORE = 1   # may write the MMIO exit register
KIND_CTI = 2     # ends the block: branch / jump / call / indirect
KIND_HALT = 3    # handler returns HALT

#: predecoded SOFIA payload slot:
#: (handler, cycles_not_taken, cycles_taken, kind, address, instruction)
BlockStep = Tuple[Handler, int, int, int, int, Instruction]


def step_kind(instr: Instruction) -> int:
    spec = instr.spec
    if spec.is_cti:
        return KIND_CTI
    if spec.is_store:
        return KIND_STORE
    if spec.is_halt:
        return KIND_HALT
    return KIND_INERT


def predecode_payload(payload, timing: TimingParams) -> Tuple[BlockStep, ...]:
    """Compile a verified block's payload into handler steps.

    ``payload`` is the :class:`~repro.sim.sofia._VerifiedBlock` payload:
    ``(instr, address, slot)`` triples in fetch order.
    """
    steps = []
    for instr, address, _slot in payload:
        seq, taken = cycle_costs(instr, timing)
        steps.append((compile_handler(instr), seq, taken,
                      step_kind(instr), address, instr))
    return tuple(steps)


#: one fetch "run": consecutive block words on the same I-cache line,
#: as (line_index, line_tag, word_count)
FetchRun = Tuple[int, int, int]


def compile_fetch_runs(addresses, line_shift: int, lines_mask: int,
                       lines_shift: int) -> Tuple[FetchRun, ...]:
    """Group a block's fetch addresses into same-cache-line runs.

    Touching one line ``count`` times in a row behaves exactly like one
    tag check: the first access decides hit-or-fill, the rest must hit.
    Collapsing the per-word loop into per-run checks therefore preserves
    bit-identical hit/miss statistics and miss penalties while doing one
    tag comparison per line instead of one per word (a block usually
    occupies a single line).
    """
    runs = []
    prev_line = None
    for address in addresses:
        line = address >> line_shift
        if line == prev_line:
            runs[-1][2] += 1
        else:
            runs.append([line & lines_mask, line >> lines_shift, 1])
            prev_line = line
    return tuple(tuple(run) for run in runs)
