"""The SOFIA machine: CFI decryption + SI verification in front of the core.

This simulates the hardware of paper Fig. 1: encrypted instructions are
fetched from program memory, decrypted with the control-flow-dependent CTR
keystream, the run-time CBC-MAC over the decrypted instructions is compared
against the decrypted MAC words, and the processor is reset before any
effect of a tampered block commits (the store-slot restriction guarantees
that in hardware; the functional simulator achieves the same by executing a
block's payload only after it verifies).

Entry classification implements §II-E's call-site convention via block
alignment (DESIGN.md): a transfer to ``base+0`` executes an execution
block, ``base+4`` selects multiplexor path 1 (fetch starts at ``M1e1`` and
skips ``M1e2``), ``base+8`` selects path 2 (fetch starts at ``M1e2``);
every other offset is an invalid entry and pulls reset.

Per-edge decrypt/verify results are memoized — a valid execution decrypts a
given (prevPC, entry) pair identically every time, so loops pay for the
cipher once.  Any write to program memory flushes the memo, exactly like
hardware where each fetch re-decrypts and re-verifies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..crypto.ctr import EdgeKeystream
from ..crypto.keys import DeviceKeys
from ..errors import DecodingError, SimulationError
from ..isa.encoding import decode
from ..isa.instructions import Instruction
from ..obs import hook as obs_hook
from ..transform.config import RESET_PREV_PC
from ..transform.encrypt import unseal_block
from ..transform.image import SofiaImage
from .cache import DirectMappedCache
from .core import CPUState, execute
from .engine import compile_fetch_runs, predecode_payload, resolve_engine
from .memory import Memory
from .result import ExecutionResult, Status, ViolationRecord
from .timing import DEFAULT_TIMING, TimingParams, instruction_cycles


@dataclass
class _VerifiedBlock:
    """Memoized outcome of decrypting + verifying one (edge, entry)."""

    ok: bool
    base: int
    kind: str                      # "exec" | "mux"
    fetch_addresses: Tuple[int, ...] = ()
    mac_slots: int = 0
    payload: Tuple[Tuple[Instruction, int, int], ...] = ()  # (instr, addr, slot)
    violation: Optional[ViolationRecord] = None
    decode_failure: Optional[Tuple[int, str]] = None  # (slot, reason)
    #: everything the predecoded engine needs per traversal, precompiled
    #: into one tuple on the block's first traversal (dies with the block
    #: on any code write); see ``SofiaMachine._compile_hot``
    hot: Optional[tuple] = None
    #: the fused-superblock run handlers (repro.sim.fused): the whole
    #: payload source-compiled into one call, cached exactly like ``hot``
    #: (and invalidated with it); ``fused_hook`` is the traced/generic
    #: variant, compiled lazily only when a hook or pending exit needs it.
    #: Handlers bind no machine state, so forks sharing block objects
    #: share the compiled code too.
    fused: Optional[Callable] = None
    fused_hook: Optional[Callable] = None


class SofiaMachine:
    """Functional + cycle-accounting simulator of the SOFIA core."""

    def __init__(self, image: SofiaImage, keys: DeviceKeys,
                 timing: TimingParams = DEFAULT_TIMING,
                 memoize: bool = True,
                 engine: Optional[str] = None,
                 profile=None) -> None:
        self.image = image
        #: the design point every structural front-end check derives
        #: from (seal width, geometry, store slots) — never module
        #: constants.  Pass ``profile`` to model strict hardware whose
        #: check parameters are fused at provisioning; by default it is
        #: read from the image header, which models the paper's
        #: boot-configuration convention (ω lives in the binary too) but
        #: means a header tamper can *downgrade* the seal width — see
        #: DESIGN.md "Threat model and known limits".  The *cipher* is
        #: never taken from the image either way: the datapath is
        #: physical device hardware, so it comes with the provisioned
        #: ``keys`` (bind them with ``keys.for_profile(profile)`` when
        #: the device is provisioned for a design point).
        self.profile = profile if profile is not None else image.profile
        self.keys = keys
        self.timing = timing
        self.memoize = memoize
        self.engine = resolve_engine(engine)
        self.memory = Memory(image.words, code_base=image.code_base,
                             data=image.data, data_base=image.data_base)
        self.icache = DirectMappedCache(timing.icache_lines,
                                        timing.icache_line_words)
        self.keystream = EdgeKeystream(self.keys.encryption_cipher,
                                       image.nonce)
        self.state = CPUState.reset(image.entry)
        self.prev_pc = RESET_PREV_PC
        self._config = self.profile.to_config(code_base=image.code_base)
        self._block_cache: Dict[Tuple[int, int], _VerifiedBlock] = {}
        #: flat edge -> fused-run-handler memos so the fused hot loop is a
        #: single dict probe (rebuilt lazily from the block memos; forks
        #: start empty but reuse the handlers shared via the blocks)
        self._fused_edges: Dict[Tuple[int, int], Callable] = {}
        self._fused_hook_edges: Dict[Tuple[int, int], Callable] = {}
        #: edges seen exactly once by the fused engine: the first
        #: traversal is interpreted over the predecoded hot tuple, only
        #: the second pays the source compile (one-shot code never does)
        self._fused_heat: Dict[Tuple[int, int], int] = {}
        self.memory.add_code_listener(self._on_code_write)
        #: fault-injection hooks (see repro.faults): a glitched comparator
        #: accepts this many failing MAC checks; a transient fetch glitch
        #: restores program memory after the next block traversal.
        self.verify_skip_budget = 0
        self.pending_fetch_restore: Optional[Tuple[int, int]] = None
        #: pure seal memo (kind, payload words) -> computed MAC, shared
        #: across forked/donor machines by the batch engine; ``None``
        #: keeps the scalar per-traversal recompute path
        self._mac_cache: Optional[Dict[Tuple[str, Tuple[int, ...]],
                                       Tuple[int, ...]]] = None
        #: optional tracing hook, called as on_commit(pc, instr) after each
        #: committed instruction (see repro.sim.trace)
        self.on_commit = None
        #: telemetry sink captured once at construction (repro.obs.hook);
        #: ``None`` by default — every reporting site is a cold path
        #: guarded by one ``is not None`` check, the hot loops never look
        self._obs = obs_hook.SIM

    def _on_code_write(self, _address: int) -> None:
        self._block_cache.clear()
        self._fused_edges.clear()
        self._fused_hook_edges.clear()
        self._fused_heat.clear()
        self.keystream = EdgeKeystream(self.keys.encryption_cipher,
                                       self.image.nonce)

    # -- the fetch/decrypt/verify unit -----------------------------------

    def _classify(self, entry_pc: int) -> Optional[Tuple[str, int, int]]:
        """Map an entry address to (kind, base, entry word index)."""
        offset = (entry_pc - self.image.code_base) % self.image.block_bytes
        if offset == 0:
            return "exec", entry_pc, 0
        if offset == 4:
            return "mux", entry_pc - 4, 0   # path 1 starts at M1e1
        if offset == 8:
            return "mux", entry_pc - 8, 1   # path 2 starts at M1e2
        return None

    def decrypt_and_verify(self, prev_pc: int, entry_pc: int) -> _VerifiedBlock:
        """The hardware pipeline front-end for one block traversal."""
        key = (prev_pc, entry_pc)
        cached = self._block_cache.get(key) if self.memoize else None
        if cached is not None:
            return cached
        block = self._decrypt_and_verify_uncached(prev_pc, entry_pc)
        if (not block.ok and block.violation is not None
                and block.violation.kind == "integrity"
                and self.verify_skip_budget > 0):
            # a glitched comparator accepts the failing check once; the
            # result is transient and deliberately not memoized
            self.verify_skip_budget -= 1
            return self._decrypt_and_verify_uncached(prev_pc, entry_pc,
                                                     force_accept=True)
        if self.memoize:
            self._block_cache[key] = block
        return block

    def _decrypt_and_verify_uncached(self, prev_pc: int, entry_pc: int,
                                     force_accept: bool = False
                                     ) -> _VerifiedBlock:
        # telemetry: each call is one block-memo miss; memo *hits* are
        # never counted here (the hit path is hot) — derive them as
        # blocks_executed - sim.frontend.decrypts
        obs = self._obs
        if obs is not None:
            obs.count("sim.frontend.decrypts")
        classified = self._classify(entry_pc)
        if classified is None:
            violation = ViolationRecord("invalid-entry", entry_pc, prev_pc,
                                        "entry offset is not 0, 4 or 8")
            return _VerifiedBlock(ok=False, base=entry_pc, kind="?",
                                  violation=violation)
        kind, base, entry_word = classified
        bw = self.image.block_words
        if kind == "exec":
            word_indices = list(range(bw))
        elif entry_word == 0:   # path 1: fetch M1e1, skip M1e2
            word_indices = [0] + list(range(2, bw))
        else:                   # path 2: fetch starts at M1e2
            word_indices = list(range(1, bw))
        mac_words_count = self.profile.mac_count(kind)

        addresses = []
        ciphertext = []
        try:
            for index in word_indices:
                address = base + 4 * index
                addresses.append(address)
                ciphertext.append(self.memory.fetch_word(address))
        except SimulationError as exc:
            violation = ViolationRecord("fetch-fault", entry_pc, prev_pc,
                                        str(exc))
            return _VerifiedBlock(ok=False, base=base, kind=kind,
                                  fetch_addresses=tuple(addresses),
                                  violation=violation)

        # decrypt: the entry word chains on the inbound edge; M2 of a mux
        # block always chains on addr(M1e2) = base+4 (Fig. 8); every other
        # word chains on its canonical predecessor word.
        if obs is not None:
            keystream_cached = self.keystream.cache_size()
            mac_cached = len(self._mac_cache) \
                if self._mac_cache is not None else 0
        plaintext = []
        for position, index in enumerate(word_indices):
            address = base + 4 * index
            if position == 0:
                prev = prev_pc
            elif kind == "mux" and index == 2:
                prev = base + 4
            else:
                prev = base + 4 * (index - 1)
            plaintext.append(self.keystream.decrypt_word(
                ciphertext[position], prev, address))

        # in fetch order both block kinds present the stored seal first
        # (the entry's M1 copy, then M2..Mw), so the unseal split is
        # uniform; mac_slots counts the seal words occupying fetch slots.
        payload_words, stored, expected = unseal_block(
            kind, plaintext, self.keys, self.profile.mac_words,
            mac_cache=self._mac_cache)
        if obs is not None:
            # keystream/MAC memo misses show up as cache growth; hits =
            # lookups - misses (rates derived at `repro stats` time)
            obs.count("sim.keystream.words", len(word_indices))
            obs.count("sim.keystream.memo_misses",
                      self.keystream.cache_size() - keystream_cached)
            if self._mac_cache is not None:
                obs.count("sim.mac.memo_lookups")
                obs.count("sim.mac.memo_misses",
                          len(self._mac_cache) - mac_cached)
        mac_slots = self.profile.mac_words
        if expected != stored and not force_accept:
            run_hex = "".join(f"{w:08x}" for w in expected)
            stored_hex = "".join(f"{w:08x}" for w in stored)
            violation = ViolationRecord(
                "integrity", entry_pc, prev_pc,
                f"run-time MAC {run_hex} != stored {stored_hex}")
            return _VerifiedBlock(ok=False, base=base, kind=kind,
                                  fetch_addresses=tuple(addresses),
                                  mac_slots=mac_slots, violation=violation)

        # decode the verified payload
        capacity = bw - mac_words_count
        payload: List[Tuple[Instruction, int, int]] = []
        decode_failure = None
        for slot, word in enumerate(payload_words):
            address = base + 4 * (mac_words_count + slot)
            try:
                instr = decode(word, address)
            except DecodingError as exc:
                decode_failure = (slot, str(exc))
                break
            payload.append((instr, address, slot))

        # hardware store-slot check (paper §III: reset when a store is in a
        # forbidden slot) and the single-exit rule (CTIs only at the last
        # payload slot).
        forbidden = self._config.store_forbidden_slots(capacity)
        for instr, address, slot in payload:
            if instr.is_store and slot in forbidden:
                violation = ViolationRecord(
                    "store-slot", entry_pc, prev_pc,
                    f"store in payload slot {slot} at 0x{address:08x}")
                return _VerifiedBlock(ok=False, base=base, kind=kind,
                                      fetch_addresses=tuple(addresses),
                                      mac_slots=mac_slots,
                                      violation=violation)
            if instr.is_cti and slot != capacity - 1:
                violation = ViolationRecord(
                    "structure", entry_pc, prev_pc,
                    f"control transfer in mid-block slot {slot}")
                return _VerifiedBlock(ok=False, base=base, kind=kind,
                                      fetch_addresses=tuple(addresses),
                                      mac_slots=mac_slots,
                                      violation=violation)
        return _VerifiedBlock(ok=True, base=base, kind=kind,
                              fetch_addresses=tuple(addresses),
                              mac_slots=mac_slots, payload=tuple(payload),
                              decode_failure=decode_failure)

    # -- the machine loop ---------------------------------------------------

    def run(self, max_instructions: int = 50_000_000) -> ExecutionResult:
        if self.engine == "reference":
            result = self._run_reference(max_instructions)
        elif self.engine == "predecoded":
            result = self._run_predecoded(max_instructions)
        else:
            if self.engine == "batch" and self._mac_cache is None:
                # batch engine == the fused run loop over a front end
                # warmed in one bit-sliced sweep (lazy import: cycle)
                from .batch import warm_front_end
                warm_front_end(self)
            result = self._run_fused(max_instructions)
        obs = self._obs
        if obs is not None:
            # run-level throughput counters, read off the finished
            # result — the engine loops themselves are untouched
            engine = self.engine
            obs.count(f"sim.runs.{engine}")
            obs.count(f"sim.instructions.{engine}", result.instructions)
            obs.count(f"sim.cycles.{engine}", result.cycles)
            obs.count(f"sim.blocks.{engine}", result.blocks_executed)
        return result

    def _run_reference(self, max_instructions: int) -> ExecutionResult:
        """The oracle loop: one ``core.execute`` call per payload slot."""
        state = self.state
        timing = self.timing
        icache = self.icache
        mmio = self.memory.mmio
        block_bytes = self.image.block_bytes
        pc = state.pc
        prev_pc = self.prev_pc
        cycles = 0
        executed = 0
        blocks_executed = 0
        mac_fetch_cycles = 0
        status: Optional[Status] = None
        trap_reason = ""
        violation: Optional[ViolationRecord] = None

        while executed < max_instructions:
            block = self.decrypt_and_verify(prev_pc, pc)
            blocks_executed += 1
            # Fetch side of the bottleneck model: every word of the block
            # (MAC words included — they become pipeline nops) occupies one
            # fetch slot, plus line-fill penalties.
            fetch_cycles = len(block.fetch_addresses)
            for address in block.fetch_addresses:
                if not icache.access(address):
                    fetch_cycles += timing.icache_miss_penalty
            mac_fetch_cycles += timing.mac_word_cycles * block.mac_slots
            if not block.ok:
                cycles += fetch_cycles
                status = Status.RESET
                violation = block.violation
                break

            transferred = False
            exec_cycles = 0
            for instr, address, slot in block.payload:
                if (block.decode_failure is not None
                        and slot == block.decode_failure[0]):
                    break
                try:
                    outcome = execute(instr, state, self.memory, address)
                except SimulationError as exc:
                    status, trap_reason = Status.TRAP, str(exc)
                    break
                executed += 1
                exec_cycles += instruction_cycles(instr, timing,
                                                  outcome.branch_taken)
                if self.on_commit is not None:
                    self.on_commit(address, instr)
                if outcome.halted:
                    status = Status.HALT
                    break
                if mmio.exit_requested:
                    status = Status.EXIT
                    break
                if instr.is_cti:
                    prev_pc = address
                    pc = (outcome.next_pc if outcome.next_pc is not None
                          else block.base + block_bytes)
                    transferred = True
                    break
            # The block costs whichever side is the bottleneck: with a
            # high-CPI baseline (multi-cycle memory ops) the MAC words and
            # padding nops hide inside execution stalls — exactly why the
            # paper measures 13.7 % instead of a naive +2-words-per-6.
            cycles += max(fetch_cycles, exec_cycles)
            if self.pending_fetch_restore is not None:
                # transient fetch glitch: the corrupted word lived for one
                # block-traversal window; restore the stored ciphertext
                address, original = self.pending_fetch_restore
                self.pending_fetch_restore = None
                self.memory.poke_code(address, original)
            if status is not None:
                break
            if block.decode_failure is not None and not transferred:
                status = Status.TRAP
                trap_reason = (f"illegal instruction in verified block: "
                               f"{block.decode_failure[1]}")
                break
            if not transferred:
                # sequential fall-through into the next block
                prev_pc = block.base + block_bytes - 4
                pc = block.base + block_bytes

        self.state.pc = pc
        self.prev_pc = prev_pc
        return ExecutionResult(
            status=status if status is not None else Status.LIMIT,
            cycles=cycles, instructions=executed,
            exit_code=mmio.exit_code, mmio=mmio, violation=violation,
            trap_reason=trap_reason, icache=icache.stats,
            blocks_executed=blocks_executed,
            mac_fetch_cycles=mac_fetch_cycles)

    def _compile_hot(self, block: _VerifiedBlock) -> tuple:
        """Precompile one verified block for the predecoded engine.

        Returns ``(ok, n_fetch, fetch_runs, mac_cycles, steps,
        fallthrough_prev, fallthrough_pc, violation, trap_reason)`` — the
        whole per-traversal working set in one tuple, so the run loop
        unpacks once instead of walking dataclass attributes.
        """
        icache = self.icache
        runs = compile_fetch_runs(block.fetch_addresses,
                                  icache.line_bytes.bit_length() - 1,
                                  icache.lines - 1,
                                  icache.lines.bit_length() - 1)
        steps = predecode_payload(block.payload, self.timing)
        block_bytes = self.image.block_bytes
        trap_reason = None
        if block.decode_failure is not None:
            trap_reason = (f"illegal instruction in verified block: "
                           f"{block.decode_failure[1]}")
        return (block.ok, len(block.fetch_addresses), runs,
                self.timing.mac_word_cycles * block.mac_slots, steps,
                block.base + block_bytes - 4, block.base + block_bytes,
                block.violation, trap_reason)

    def _run_predecoded(self, max_instructions: int) -> ExecutionResult:
        """The fast loop: verified blocks carry precompiled hot tuples.

        Behaviour is bit-identical to :meth:`_run_reference` — same
        commit/hook ordering, same cycle, MAC-slot and I-cache accounting,
        same reset/trap points.  The decrypt/verify front-end is shared
        (and memoized) with the reference engine; each verified block
        additionally caches a hot tuple (:meth:`_compile_hot`) holding its
        compiled payload steps and its fetch addresses collapsed into
        same-cache-line runs (one tag check per line instead of per word,
        with identical statistics).  When no ``on_commit`` hook is
        installed (bind it before calling :meth:`run`), an inner loop
        specialized by step kind skips every post-commit check an inert
        step provably cannot need; the generic inner loop mirrors the
        reference ordering check for check.
        """
        state = self.state
        icache = self.icache
        memory = self.memory
        mmio = memory.mmio
        regs = state.regs
        on_commit = self.on_commit
        get_block = self._block_cache.get
        miss_penalty = self.timing.icache_miss_penalty
        tags = icache._tags
        hits = 0
        misses = 0
        pc = state.pc
        prev_pc = self.prev_pc
        cycles = 0
        executed = 0
        blocks_executed = 0
        mac_fetch_cycles = 0
        status: Optional[Status] = None
        trap_reason = ""
        violation: Optional[ViolationRecord] = None
        # a resumed run can start with the exit register already written;
        # the oracle still executes one instruction before noticing — the
        # generic loop polls unconditionally, so take it in that case
        generic = (on_commit is not None) or mmio.exit_code is not None

        while executed < max_instructions:
            block = get_block((prev_pc, pc))
            if block is None:
                block = self.decrypt_and_verify(prev_pc, pc)
            hot = block.hot
            if hot is None:
                hot = block.hot = self._compile_hot(block)
            (ok, fetch_cycles, runs, mac_cycles, steps,
             fallthrough_prev, fallthrough_pc, block_violation,
             block_trap) = hot
            blocks_executed += 1
            for index, tag, count in runs:
                if tags[index] == tag:
                    hits += count
                else:
                    tags[index] = tag
                    misses += 1
                    hits += count - 1
                    fetch_cycles += miss_penalty
            mac_fetch_cycles += mac_cycles
            if not ok:
                cycles += fetch_cycles
                status = Status.RESET
                violation = block_violation
                break

            transferred = False
            exec_cycles = 0
            if generic:
                for run_h, cyc_seq, cyc_taken, kind, address, instr in steps:
                    try:
                        target = run_h(regs, memory, address)
                    except SimulationError as exc:
                        status, trap_reason = Status.TRAP, str(exc)
                        break
                    executed += 1
                    exec_cycles += cyc_seq if target is None else cyc_taken
                    if on_commit is not None:
                        on_commit(address, instr)
                    if target == -1:  # engine.HALT
                        status = Status.HALT
                        break
                    if mmio.exit_code is not None:
                        status = Status.EXIT
                        break
                    if kind == 2:  # KIND_CTI
                        prev_pc = address
                        pc = target if target is not None else fallthrough_pc
                        transferred = True
                        break
            else:
                for run_h, cyc_seq, cyc_taken, kind, address, instr in steps:
                    try:
                        target = run_h(regs, memory, address)
                    except SimulationError as exc:
                        status, trap_reason = Status.TRAP, str(exc)
                        break
                    executed += 1
                    if kind == 0:          # inert: target is always None
                        exec_cycles += cyc_seq
                        continue
                    if kind == 1:          # store: may have set exit
                        exec_cycles += cyc_seq
                        if mmio.exit_code is not None:
                            status = Status.EXIT
                            break
                        continue
                    if kind == 2:          # CTI: always ends the block
                        if target is None:
                            exec_cycles += cyc_seq
                            pc = fallthrough_pc
                        else:
                            exec_cycles += cyc_taken
                            pc = target
                        prev_pc = address
                        transferred = True
                        break
                    exec_cycles += cyc_seq  # halt
                    status = Status.HALT
                    break
            cycles += fetch_cycles if fetch_cycles > exec_cycles \
                else exec_cycles
            if self.pending_fetch_restore is not None:
                address, original = self.pending_fetch_restore
                self.pending_fetch_restore = None
                memory.poke_code(address, original)
            if status is not None:
                break
            if block_trap is not None and not transferred:
                status = Status.TRAP
                trap_reason = block_trap
                break
            if not transferred:
                # sequential fall-through into the next block
                prev_pc = fallthrough_prev
                pc = fallthrough_pc
        self.state.pc = pc
        self.prev_pc = prev_pc
        icache.stats.hits += hits
        icache.stats.misses += misses
        return ExecutionResult(
            status=status if status is not None else Status.LIMIT,
            cycles=cycles, instructions=executed,
            exit_code=mmio.exit_code, mmio=mmio, violation=violation,
            trap_reason=trap_reason, icache=icache.stats,
            blocks_executed=blocks_executed,
            mac_fetch_cycles=mac_fetch_cycles)

    def _run_fused(self, max_instructions: int) -> ExecutionResult:
        """The fused-superblock loop: one compiled call per block.

        Bit-identical to :meth:`_run_predecoded` (and thus to the
        reference oracle): each verified block's payload is
        source-compiled into a single run handler
        (:func:`repro.sim.fused.compile_sofia_block`) cached on the block
        right next to the predecoded ``hot`` tuple, with the same
        lifetime — any code write drops the block memo and the handler
        with it.  Mid-run traps, MMIO exits, halts, taken/not-taken
        costs, I-cache statistics and the block-level
        ``max(fetch, exec)`` bottleneck are all folded into the handler's
        compile-time constants (see the module docstring of
        :mod:`repro.sim.fused` for the trap-equivalence argument).
        Compiles are cold paths: the ``sim.fused_compile`` counter fires
        only there, so telemetry-off runs never touch the sink.
        """
        state = self.state
        icache = self.icache
        memory = self.memory
        mmio = memory.mmio
        regs = state.regs
        ld = memory.load
        st = memory.store
        ram = memory.ram
        on_commit = self.on_commit
        tags = icache._tags
        hits = 0
        misses = 0
        cycles = 0
        executed = 0
        blocks_executed = 0
        mac_fetch_cycles = 0
        status: Optional[Status] = None
        trap_reason = ""
        violation: Optional[ViolationRecord] = None
        # same rule as the predecoded loop: a hook or an already-written
        # exit register selects the generic (polling) variant
        generic = (on_commit is not None) or mmio.exit_code is not None
        get_edge = (self._fused_hook_edges if generic
                    else self._fused_edges).get
        # every handler returns its successor edge as a compile-time
        # constant (or None when the run ends), so the hot path below is
        # one dict probe, one call and one unpack per verified block
        key = (self.prev_pc, state.pc)
        # a transient fetch glitch (pending_fetch_restore) can only be
        # armed before the run or while a block is decrypted — i.e. on the
        # cold path — so the hot loop polls the attribute only then
        restore_check = self.pending_fetch_restore is not None

        while executed < max_instructions:
            fn = get_edge(key)
            if fn is None:
                fn = self._fused_handler(key, generic)
                restore_check = True
            if generic:
                n, cyc, h, mr, mc, key2, arg = fn(regs, ld, st, mmio,
                                                  tags, ram, on_commit)
            else:
                n, cyc, h, mr, mc, key2, arg = fn(regs, ld, st, mmio,
                                                  tags, ram)
            blocks_executed += 1
            executed += n
            cycles += cyc
            hits += h
            misses += mr
            mac_fetch_cycles += mc
            if restore_check:
                restore_check = False
                if self.pending_fetch_restore is not None:
                    address, original = self.pending_fetch_restore
                    self.pending_fetch_restore = None
                    memory.poke_code(address, original)
            if key2 is not None:
                key = key2
                continue
            code, payload = arg
            if code == 2:
                status = Status.HALT
            elif code == 3:
                status = Status.EXIT
            elif code == 4:
                status = Status.TRAP
                trap_reason = payload
            else:
                status = Status.RESET
                violation = payload
            break
        # terminal handlers return no successor, leaving pc/prev_pc at the
        # block entry — exactly where the predecoded loop leaves them
        self.prev_pc, self.state.pc = key
        icache.stats.hits += hits
        icache.stats.misses += misses
        return ExecutionResult(
            status=status if status is not None else Status.LIMIT,
            cycles=cycles, instructions=executed,
            exit_code=mmio.exit_code, mmio=mmio, violation=violation,
            trap_reason=trap_reason, icache=icache.stats,
            blocks_executed=blocks_executed,
            mac_fetch_cycles=mac_fetch_cycles)

    def _fused_handler(self, key: Tuple[int, int], generic: bool):
        """Cold path of :meth:`_run_fused`: produce one edge's handler.

        Warm-up policy: the first ``COMPILE_THRESHOLD - 1`` traversals of
        an edge are executed by :meth:`_fused_interp` — the predecoded
        inner loop itself, speaking the fused return protocol — and only
        a genuinely hot edge pays the source compile, so one-shot and
        lukewarm code never compiles at all.  Compiled
        handlers are cached on the block (forks sharing block objects
        share the code) and memoized in the flat edge dict probed by the
        hot loop.  Transient blocks — a glitched comparator's one-shot
        force-accept, or any block on a ``memoize=False`` machine — are
        always interpreted and never reach the edge dict, preserving
        their re-verify-next-traversal semantics.
        """
        from .fused import COMPILE_THRESHOLD, compile_sofia_block
        block = self._block_cache.get(key)
        transient = False
        if block is None:
            block = self.decrypt_and_verify(*key)
            transient = self._block_cache.get(key) is not block
        fn = block.fused_hook if generic else block.fused
        if fn is None:
            heat = self._fused_heat.get(key, 0) + 1
            if transient or heat < COMPILE_THRESHOLD:
                if not transient:
                    self._fused_heat[key] = heat
                if generic:
                    return (lambda r, ld, st, mmio, tags, ram, h,
                            _b=block: self._fused_interp(_b, True))
                return (lambda r, ld, st, mmio, tags, ram,
                        _b=block: self._fused_interp(_b, False))
            self._fused_heat.pop(key, None)
            fn = compile_sofia_block(
                block, self.timing, self.icache, self.memory,
                self.image.block_bytes, hooked=generic)
            if generic:
                block.fused_hook = fn
            else:
                block.fused = fn
            if self._obs is not None:
                self._obs.count("sim.fused_compile")
        (self._fused_hook_edges if generic
         else self._fused_edges)[key] = fn
        return fn

    def _fused_interp(self, block: _VerifiedBlock, generic: bool):
        """One predecoded traversal of ``block``, fused return protocol.

        This is the inner block body of :meth:`_run_predecoded`
        transliterated (same hot tuple, same step handlers, same
        ordering), used by :meth:`_fused_handler` to warm an edge up
        before spending a source compile on it.  Returns the same
        ``(n, cycles, hits, misses, mac_cycles, next_key, arg)`` a
        compiled handler would.
        """
        hot = block.hot
        if hot is None:
            hot = block.hot = self._compile_hot(block)
        (ok, fetch_cycles, runs, mac_cycles, steps,
         fallthrough_prev, fallthrough_pc, block_violation,
         block_trap) = hot
        memory = self.memory
        mmio = memory.mmio
        regs = self.state.regs
        tags = self.icache._tags
        miss_penalty = self.timing.icache_miss_penalty
        hits = 0
        misses = 0
        for index, tag, count in runs:
            if tags[index] == tag:
                hits += count
            else:
                tags[index] = tag
                misses += 1
                hits += count - 1
                fetch_cycles += miss_penalty
        if not ok:
            return (0, fetch_cycles, hits, misses, mac_cycles,
                    None, (5, block_violation))

        on_commit = self.on_commit
        executed = 0
        exec_cycles = 0
        arg = None
        key2 = None
        if generic:
            for run_h, cyc_seq, cyc_taken, kind, address, instr in steps:
                try:
                    target = run_h(regs, memory, address)
                except SimulationError as exc:
                    arg = (4, str(exc))
                    break
                executed += 1
                exec_cycles += cyc_seq if target is None else cyc_taken
                if on_commit is not None:
                    on_commit(address, instr)
                if target == -1:  # engine.HALT
                    arg = (2, None)
                    break
                if mmio.exit_code is not None:
                    arg = (3, None)
                    break
                if kind == 2:  # KIND_CTI
                    key2 = (address, target if target is not None
                            else fallthrough_pc)
                    break
        else:
            for run_h, cyc_seq, cyc_taken, kind, address, instr in steps:
                try:
                    target = run_h(regs, memory, address)
                except SimulationError as exc:
                    arg = (4, str(exc))
                    break
                executed += 1
                if kind == 0:          # inert: target is always None
                    exec_cycles += cyc_seq
                    continue
                if kind == 1:          # store: may have set exit
                    exec_cycles += cyc_seq
                    if mmio.exit_code is not None:
                        arg = (3, None)
                        break
                    continue
                if kind == 2:          # CTI: always ends the block
                    if target is None:
                        exec_cycles += cyc_seq
                        key2 = (address, fallthrough_pc)
                    else:
                        exec_cycles += cyc_taken
                        key2 = (address, target)
                    break
                exec_cycles += cyc_seq  # halt
                arg = (2, None)
                break
        cycles = fetch_cycles if fetch_cycles > exec_cycles else exec_cycles
        if arg is None and key2 is None:
            # ran off the payload end: decode-failure trap or sequential
            # fall-through into the next block
            if block_trap is not None:
                arg = (4, block_trap)
            else:
                key2 = (fallthrough_prev, fallthrough_pc)
        return (executed, cycles, hits, misses, mac_cycles, key2, arg)


def run_image(image: SofiaImage, keys: DeviceKeys,
              timing: TimingParams = DEFAULT_TIMING,
              max_instructions: int = 50_000_000,
              engine: Optional[str] = None) -> ExecutionResult:
    """Convenience one-shot runner."""
    return SofiaMachine(image, keys, timing, engine=engine).run(
        max_instructions)
