"""Instruction cache model.

A direct-mapped I-cache with configurable geometry.  The default (128 lines
of 8 words = 4 KiB) matches a minimal LEON3 configuration and has a
convenient property for SOFIA: a cache line equals one 8-word block, so a
block traversal costs at most one line fill.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0


class DirectMappedCache:
    """Tag-only direct-mapped cache (we model timing, not contents)."""

    def __init__(self, lines: int = 128, line_words: int = 8) -> None:
        if lines <= 0 or line_words <= 0:
            raise ValueError("cache geometry must be positive")
        if lines & (lines - 1) or line_words & (line_words - 1):
            raise ValueError("cache geometry must be powers of two")
        self.lines = lines
        self.line_words = line_words
        self.line_bytes = 4 * line_words
        self._tags = [-1] * lines
        self.stats = CacheStats()

    def access(self, address: int) -> bool:
        """Touch ``address``; returns True on hit (and fills on miss)."""
        line_number = address // self.line_bytes
        index = line_number % self.lines
        tag = line_number // self.lines
        if self._tags[index] == tag:
            self.stats.hits += 1
            return True
        self._tags[index] = tag
        self.stats.misses += 1
        return False

    def flush(self) -> None:
        self._tags = [-1] * self.lines
