"""Bit-sliced batch simulation: lockstep campaign specimens (engine E18).

Campaign runs (fault injection, attack synthesis, DSE grid points) execute
thousands of *near-identical* specimens: each one replays the same clean
prefix of the same protected image before diverging — at a fault trigger,
a tampered block, a detection reset.  This module batches that common work
two ways:

**Bit-sliced front end** — :func:`warm_front_end` enumerates every sealed
static edge of the image (the per-word chaining scheme of
:func:`~repro.transform.encrypt.chain_prev_pcs`) and fills the machine's
per-edge keystream memo with one :func:`~repro.crypto.bitslice.encrypt_batch`
sweep (up to 64 counters per cipher pass), then batch-MACs every block's
plaintext payload into a shared seal memo — so the scalar run loop never
touches the cipher again.  Both memos are *pure*: keystream words depend
only on (cipher, nonce, edge) and seal values only on (keys, kind,
payload), so pre-warming and sharing them is observationally invisible
(the existing memoization cycle-neutrality tests gate exactly this).

**Lockstep leader** — :class:`LockstepLeader` runs the clean prefix once,
in stints, and :func:`fork_machine` peels a byte-exact specimen machine
off at each trigger point.  Soundness of stinted advancement: ``run()``
only ever stops at a block-commit boundary, overshooting its budget to
the *first boundary >= budget*; the boundary sequence of the
deterministic clean run is fixed, so advancing to ascending triggers
``t1 <= t2 <= ...`` visits exactly the states a fresh scalar
``run(max_instructions=t_i)`` would reach.  The leader stops advancing at
any terminal (non-LIMIT) status because re-running a halted machine
re-executes block payload — forks made after that point replicate the
terminal state, exactly like the scalar path.

Specimens resume on the fused-superblock engine (one compiled call per
verified block, bit-identical to the scalar predecoded loop — see
:mod:`repro.sim.fused`), so every per-commit observable (registers, PC,
memory, cycles, I-cache stats) is byte-identical to a fresh scalar run —
the batch differential suite and the W=1 == scalar determinism tests gate
this, and the peel-off suffixes no longer pay the per-instruction
dispatch that capped E18.

``SofiaMachine(..., engine="batch")`` means: the fused run loop over a
batch-warmed front end (warmed lazily on the first ``run()``).
"""

from __future__ import annotations

from ..crypto.bitslice import WIDTH, batch_mac_stream, encrypt_batch
from ..crypto.ctr import pack_counter
from ..crypto.primitives import MASK32
from ..transform.encrypt import block_mac_cipher
from .result import Status
from .sofia import SofiaMachine
from .timing import DEFAULT_TIMING, TimingParams

#: specimens per lockstep chunk — one per bit-slice lane.
BATCH_WIDTH = WIDTH


def warm_front_end(machine: SofiaMachine) -> int:
    """Batch-fill ``machine``'s keystream and seal memos for every sealed
    static edge; returns the number of edges warmed.

    Images without block metadata (e.g. geometric ``--image`` mode) have
    no static edge list to enumerate and warm nothing — the scalar lazy
    path still works, it just pays per edge.
    """
    if machine._mac_cache is None:
        machine._mac_cache = {}
    image = machine.image
    if not image.blocks:
        return 0

    # -- keystream plane: every (prevPC, PC) pair a valid traversal uses
    bw = image.block_words
    pairs = []
    for block in image.blocks:
        base = block.base
        entries = block.entry_prev_pcs
        if block.kind == "exec":
            for prev in entries:
                pairs.append((prev, base))
            start = 1
        else:
            # mux entry words: path 1 chains M1e1 (base), path 2 M1e2
            # (base+4); interior words chain on their predecessor, with
            # index 2 on addr(M1e2) == base+4 — the generic rule already
            if entries:
                pairs.append((entries[0], base))
            if len(entries) > 1:
                pairs.append((entries[1], base + 4))
            start = 2
        for i in range(start, bw):
            pairs.append((base + 4 * (i - 1), base + 4 * i))
    cache = machine.keystream._cache
    todo = [pair for pair in dict.fromkeys(pairs) if pair not in cache]
    nonce = machine.keystream.nonce
    counters = [pack_counter(nonce, prev, pc) for prev, pc in todo]
    for pair, word in zip(todo, encrypt_batch(machine.keystream.cipher,
                                              counters)):
        cache[pair] = word & MASK32

    # -- seal plane: batch-MAC each block's plaintext payload (grouped by
    # kind and length so lanes line up), keyed the way unseal_block looks
    # them up on traversal
    mac_cache = machine._mac_cache
    groups = {}
    for block in image.blocks:
        payload = block.plain_payload
        if not payload or (block.kind, payload) in mac_cache:
            continue
        groups.setdefault((block.kind, len(payload)), set()).add(payload)
    mac_words = machine.profile.mac_words
    for (kind, _length), payloads in sorted(groups.items()):
        ordered = sorted(payloads)
        macs = batch_mac_stream(block_mac_cipher(machine.keys, kind),
                                ordered, mac_words)
        for payload, mac in zip(ordered, macs):
            mac_cache[(kind, payload)] = mac
    obs = machine._obs
    if obs is not None:
        obs.count("sim.batch.warms")
        obs.count("sim.batch.edges_warmed", len(todo))
    return len(todo)


def adopt_caches(machine: SofiaMachine, donor: SofiaMachine) -> None:
    """Seed a fresh machine's pure front-end memos from a warmed donor.

    Only memos whose values cannot differ between the two machines are
    shared: the keystream memo requires the same cipher *and* nonce
    (renonce'd images keep their own), the seal memo the same keys and
    profile.  The per-(edge, code) block cache is never shared — it
    depends on the image words, which is exactly what attack instances
    mutate.
    """
    if (donor.keystream.nonce == machine.keystream.nonce
            and donor.keystream.cipher is machine.keystream.cipher):
        machine.keystream._cache = donor.keystream._cache
    if donor.keys is machine.keys and donor.profile == machine.profile:
        if donor._mac_cache is None:
            donor._mac_cache = {}
        machine._mac_cache = donor._mac_cache


def fork_machine(source: SofiaMachine) -> SofiaMachine:
    """A byte-exact, independently runnable copy of ``source``.

    The architectural state (registers, PC, prevPC, code, RAM, MMIO logs,
    I-cache tags and stats, fault hooks) is copied; the pure keystream and
    seal memos are shared (additions are value-identical on every sharer,
    and a code write detaches a machine onto a fresh keystream); the
    block cache is copied, not shared — a specimen that tampers with code
    clears and repopulates *its own* copy from its own memory.
    """
    clone = SofiaMachine(source.image, source.keys, timing=source.timing,
                         memoize=source.memoize, engine="fused",
                         profile=source.profile)
    clone.state.regs[:] = source.state.regs
    clone.state.pc = source.state.pc
    clone.prev_pc = source.prev_pc
    memory, donor = clone.memory, source.memory
    memory.code[:] = donor.code
    memory.ram[:] = donor.ram
    mmio, donor_mmio = memory.mmio, donor.mmio
    mmio.chars[:] = donor_mmio.chars
    mmio.ints[:] = donor_mmio.ints
    mmio.words[:] = donor_mmio.words
    mmio.actuator[:] = donor_mmio.actuator
    mmio.exit_code = donor_mmio.exit_code
    clone.icache._tags[:] = source.icache._tags
    clone.icache.stats.hits = source.icache.stats.hits
    clone.icache.stats.misses = source.icache.stats.misses
    clone.keystream._cache = source.keystream._cache
    clone._block_cache = dict(source._block_cache)
    clone._mac_cache = source._mac_cache
    clone.verify_skip_budget = source.verify_skip_budget
    clone.pending_fetch_restore = source.pending_fetch_restore
    return clone


class LockstepLeader:
    """One shared clean run; per-specimen machines fork off at triggers.

    ``fork_at`` must be called with non-decreasing trigger instruction
    counts (sort the specimens first); each call advances the leader by a
    stint and returns a fork whose state is byte-identical to a fresh
    scalar machine run for ``trigger`` instructions.
    """

    def __init__(self, image, keys, timing: TimingParams = DEFAULT_TIMING,
                 profile=None, warm: bool = True) -> None:
        self.machine = SofiaMachine(image, keys, timing=timing,
                                    engine="fused", profile=profile)
        if warm:
            warm_front_end(self.machine)
        self.executed = 0
        self.halted = False

    def fork_at(self, trigger: int) -> SofiaMachine:
        if not self.halted and trigger > self.executed:
            result = self.machine.run(max_instructions=trigger - self.executed)
            self.executed += result.instructions
            if result.status is not Status.LIMIT:
                # terminal state: re-running would re-execute the block,
                # so later forks replicate this state instead
                self.halted = True
        obs = self.machine._obs
        if obs is not None:
            obs.count("sim.lockstep.forks")
        return fork_machine(self.machine)
