"""Execution tracing and image listing utilities.

Debug tooling around the simulators:

* :func:`trace_vanilla` / :func:`trace_sofia` — single-step a machine and
  record every committed instruction (pc, disassembly, changed register);
* :func:`diff_traces` — align a vanilla trace with a SOFIA trace by
  filtering the padding nops, to localize the first divergence when a
  transformation bug is suspected;
* :func:`list_image` — a decrypted disassembly listing of a SOFIA image
  (requires the device keys), block by block, with MAC words and entry
  prevPCs annotated — the view the software provider's tooling shows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..crypto.keys import DeviceKeys
from ..errors import DecodingError
from ..isa.encoding import decode
from ..isa.registers import register_name
from ..transform.image import SofiaImage
from ..transform.verify import ImageVerifier
from .sofia import SofiaMachine
from .vanilla import VanillaMachine


@dataclass(frozen=True)
class TraceEntry:
    """One committed instruction."""

    index: int
    pc: int
    text: str
    changed_reg: Optional[int] = None
    new_value: Optional[int] = None

    def render(self) -> str:
        line = f"{self.index:>6d}  {self.pc:08x}  {self.text:<28s}"
        if self.changed_reg is not None:
            line += (f"{register_name(self.changed_reg)} <- "
                     f"0x{self.new_value:08x}")
        return line


def _record_via_hook(machine, max_instructions: int) -> List[TraceEntry]:
    """Run a machine with the on_commit hook recording every instruction.

    The hook fires identically under both execution engines (see
    :mod:`repro.sim.engine`): once per committed instruction, after its
    register/memory effects and before the PC advances — so traces are
    engine-independent, which is exactly what the lockstep differential
    suite (``tests/test_engine_differential.py``) relies on.
    """
    trace: List[TraceEntry] = []
    last_regs = list(machine.state.regs)

    def hook(pc: int, instr) -> None:
        changed_reg = None
        new_value = None
        regs = machine.state.regs
        for reg in range(32):
            if regs[reg] != last_regs[reg]:
                if changed_reg is None:
                    changed_reg, new_value = reg, regs[reg]
                last_regs[reg] = regs[reg]
        trace.append(TraceEntry(index=len(trace), pc=pc,
                                text=instr.render(),
                                changed_reg=changed_reg,
                                new_value=new_value))

    machine.on_commit = hook
    try:
        machine.run(max_instructions=max_instructions)
    finally:
        machine.on_commit = None
    return trace


def trace_vanilla(machine: VanillaMachine,
                  max_instructions: int = 10_000) -> List[TraceEntry]:
    """Run a vanilla machine, recording each committed instruction."""
    return _record_via_hook(machine, max_instructions)


def trace_sofia(machine: SofiaMachine, keys: Optional[DeviceKeys] = None,
                max_instructions: int = 10_000) -> List[TraceEntry]:
    """Run a SOFIA machine, recording each committed instruction.

    The instruction text comes straight from the decrypt-verify unit
    (the hook receives decoded instructions), so no keys are needed —
    the ``keys`` parameter is kept for API symmetry with the listing
    tools and ignored.
    """
    return _record_via_hook(machine, max_instructions)


def diff_traces(vanilla: List[TraceEntry],
                sofia: List[TraceEntry]) -> Optional[Tuple[int, str]]:
    """First semantic divergence between the two traces, if any.

    Padding nops in the SOFIA trace are skipped; entries are compared by
    instruction text and register effect (addresses necessarily differ).
    Returns ``None`` when the filtered traces agree, else
    ``(index, explanation)``.
    """
    meaningful = [e for e in sofia if e.text != "nop"]
    plain = [e for e in vanilla if e.text != "nop"]
    for i, (a, b) in enumerate(zip(plain, meaningful)):
        same_effect = (a.changed_reg == b.changed_reg
                       and a.new_value == b.new_value)
        if a.text.split()[0] != b.text.split()[0] or not same_effect:
            return i, (f"vanilla[{a.index}] {a.render()} vs "
                       f"sofia[{b.index}] {b.render()}")
    if len(plain) != len(meaningful):
        return min(len(plain), len(meaningful)), "trace lengths differ"
    return None


def list_image(image: SofiaImage, keys: DeviceKeys) -> str:
    """Decrypted, annotated disassembly listing of a SOFIA image."""
    verifier = ImageVerifier(image, keys)
    lines = [f"SOFIA image: {image.num_blocks} blocks, nonce=0x{image.nonce:04x}, "
             f"entry=0x{image.entry:08x}"]
    for record in image.blocks:
        labels = f" <{', '.join(record.labels)}>" if record.labels else ""
        prevs = ", ".join(f"0x{p:08x}" for p in record.entry_prev_pcs)
        lines.append(f"\nblock @ 0x{record.base:08x} [{record.kind}]"
                     f"{labels}  sealed prevPC: {prevs or 'unreachable'}")
        mac_count = image.block_words - record.capacity
        if record.entry_prev_pcs:
            words = verifier._decrypt_block(record, 0,
                                            record.entry_prev_pcs[0])
        else:
            words = [0] * image.block_words
        for j in range(mac_count):
            if record.kind == "mux":
                # mux heads duplicate M1 as the two entry points
                name = ("M1e1", "M1e2")[j] if j < 2 else f"M{j}"
            else:
                name = f"M{j + 1}"
            lines.append(f"  {record.base + 4 * j:08x}:  "
                         f"{words[j]:08x}  ; MAC word {name}")
        for slot in range(record.capacity):
            address = record.base + 4 * (mac_count + slot)
            word = words[mac_count + slot]
            try:
                text = decode(word, address).render()
            except DecodingError:
                text = f".word 0x{word:08x}"
            lines.append(f"  {address:08x}:  {word:08x}  {text}")
    return "\n".join(lines)
