"""Fused-superblock execution engine: one compiled call per straight-line run.

The predecoded engine (:mod:`repro.sim.engine`) removed per-step re-decoding
but still pays one Python closure call, one tuple unpack and one kind/store
check **per instruction**.  This module removes that too: each straight-line
run — a SOFIA ``_VerifiedBlock`` payload, or the vanilla per-PC chain up to
and including the next CTI / store / halt — is *source-compiled* into a
single specialized Python function.  The same operand/immediate constant
binding ``engine.py`` does per instruction is inlined into one body, cycle
costs are folded into compile-time run constants, and the I-cache tag
checks collapse to one literal comparison per cache line.

Run-handler contract
--------------------
A SOFIA block handler is called as ``fn(regs, load, store, mmio, tags)``
(plus ``hook`` for the traced variant) and returns a 7-tuple
``(n, cycles, hits, miss_runs, mac_cycles, next_key, arg)``:

* ``n``          — instructions committed (the k-th trap commits exactly k);
* ``cycles``     — ``max(fetch_cycles, exec_cycles)`` for the whole block,
  the bottleneck model of ``SofiaMachine._run_predecoded`` verbatim.  The
  possible values are a *compile-time constant tuple* indexed by the miss
  count, so the hot path does no cycle arithmetic at all;
* ``hits``/``miss_runs`` — I-cache accounting (``hits = n_fetch - mr``);
* ``mac_cycles`` — the block's constant seal-fetch charge;
* ``next_key``   — the next block-cache edge ``(prev_pc, pc)`` or ``None``
  when the run ends.  Fall-through and direct-CTI successors are constant
  tuples baked at compile time, so the driving loop allocates nothing;
* ``arg``        — ``None`` while running, else the terminal
  ``(code, payload)``: 2 halt, 3 MMIO exit, 4 trap (payload is the
  reason), 5 reset (payload is the violation; the block never verified
  and only fetch slots were charged).

A vanilla run handler returns ``(n, cycles, hits, misses, code, arg)`` with
per-instruction ``max(fetch, exec)`` charging and code 1 continue-at-`arg`,
2 halt, 3 exit, 4 trap.

Trap equivalence
----------------
A ``SimulationError`` raised by the k-th fused instruction must leave regs,
RAM, the cycle count and the I-cache exactly as k stepped iterations would.
Every memory access is therefore wrapped in its own ``try`` whose handler
returns the run-constants of the first k instructions: cycles are summed as
compile-time constants per prefix (the trapping instruction's execution
cycles are *not* charged, its fetch *is* tag-checked and counted, and a
line fill it triggered stands — all exactly like the predecoded loop).
Register writes are in-place on the shared ``regs`` list, so the committed
prefix needs no replay.

Self-modifying code invalidates fused handlers exactly like predecoded
steps: SOFIA handlers live on the ``_VerifiedBlock`` (dies with the block
memo on any code write), vanilla handlers live in per-start-PC dicts popped
by the same code-write listener.  Stores always terminate a vanilla run, so
a code write can never outrun its own compiled suffix.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..errors import DecodingError, SimulationError
from ..isa.instructions import Instruction
from .engine import MASK32, compile_fetch_runs
from .timing import TimingParams, cycle_costs

#: vanilla straight-line runs are capped so a single compile stays small
#: and the budget-boundary tail (delegated back to the predecoded loop)
#: stays short
MAX_RUN = 64

#: a SOFIA edge is interpreted (predecoded hot-tuple stepping) this many
#: traversals before its block is source-compiled: a CPython compile costs
#: on the order of 100 µs while a fused traversal only saves a couple of
#: µs over an interpreted one, so compiling pays off only for genuinely
#: hot blocks — warm-up traversals run at predecoded speed regardless
COMPILE_THRESHOLD = 16

_M = "4294967295"       # MASK32 literal
_S = "2147483648"       # SIGN_BIT literal

_LOADS = {"lw": (4, False), "lh": (2, True), "lhu": (2, False),
          "lb": (1, True), "lbu": (1, False)}
_STORES = {"sw": 4, "sh": 2, "sb": 1}
_BRANCHES = {"beq", "bne", "blt", "bge", "bltu", "bgeu"}


def _sdiv(x: int, y: int) -> int:
    """32-bit signed division, semantics of ``engine._c_div`` verbatim."""
    if y >= 0x80000000:
        y -= 0x100000000
    if y == 0:
        return 0xFFFFFFFF
    if x >= 0x80000000:
        x -= 0x100000000
    quotient = abs(x) // abs(y)
    if (x < 0) != (y < 0):
        quotient = -quotient
    return quotient & 0xFFFFFFFF


def _srem(x: int, y: int) -> int:
    """32-bit signed remainder, semantics of ``engine._c_rem`` verbatim."""
    if y >= 0x80000000:
        y -= 0x100000000
    if y == 0:
        return x
    if x >= 0x80000000:
        x -= 0x100000000
    quotient = abs(x) // abs(y)
    if (x < 0) != (y < 0):
        quotient = -quotient
    return (x - y * quotient) & 0xFFFFFFFF


def _mem_source(instr: Instruction, data_base: int, ram_size: int):
    """The four code pieces of one load/store.

    Returns ``(pre, cond, fast, slow)``: address/offset setup, the inline
    fast-path guard (aligned access fully inside data RAM — the exact
    condition ``Memory.load``/``Memory.store`` use), the direct-bytearray
    body, and the fallback call into the memory system (MMIO, code reads,
    traps).  Only the ``slow`` call can raise.  With a shadowed RAM
    window (``ram_size < 0``) the guard is constant-false and ``cond`` is
    ``None`` — the caller emits the fallback alone, exactly the predecoded
    behaviour.  Register values are already 32-bit masked, so ``imm == 0``
    addresses skip the mask.
    """
    m = instr.mnemonic
    rd, a, b, imm = instr.rd, instr.rs1, instr.rs2, instr.imm
    pre = [f"a = r[{a}]" if imm == 0
           else f"a = (r[{a}] + {imm}) & {_M}"]
    if m in _LOADS:
        size, signed = _LOADS[m]
        slow = [f"r[{rd}] = ld(a, {size}, {signed})" if rd
                else f"ld(a, {size}, {signed})"]
        if ram_size < 0:
            return pre, None, [], slow
        pre.append(f"o = a - {data_base}")
        align = "" if size == 1 else f"not (a & {size - 1}) and "
        cond = f"{align}0 <= o <= {ram_size - size}"
        if not rd:
            # r0 loads keep their trap/MMIO effects; an in-RAM read is
            # side-effect-free, so the fast path is a no-op
            return pre, cond, ["pass"], slow
        if m == "lbu":
            fast = [f"r[{rd}] = ram[o]"]
        elif m == "lb":
            fast = ["v = ram[o]",
                    f"r[{rd}] = v + 4294967040 if v & 128 else v"]
        elif m == "lhu":
            fast = [f"r[{rd}] = (ram[o] << 8) | ram[o + 1]"]
        elif m == "lh":
            fast = ["v = (ram[o] << 8) | ram[o + 1]",
                    f"r[{rd}] = v + 4294901760 if v & 32768 else v"]
        else:
            fast = [f"r[{rd}] = (ram[o] << 24) | (ram[o + 1] << 16) | "
                    "(ram[o + 2] << 8) | ram[o + 3]"]
        return pre, cond, fast, slow
    size = _STORES[m]
    slow = [f"st(a, r[{b}], {size})"]
    if ram_size < 0:
        return pre, None, [], slow
    pre.append(f"o = a - {data_base}")
    align = "" if size == 1 else f"not (a & {size - 1}) and "
    cond = f"{align}0 <= o <= {ram_size - size}"
    if m == "sb":
        fast = [f"ram[o] = r[{b}] & 255"]
    elif m == "sh":
        fast = [f"v = r[{b}]",
                "ram[o] = (v >> 8) & 255",
                "ram[o + 1] = v & 255"]
    else:
        fast = [f"v = r[{b}]",
                "ram[o] = v >> 24",
                "ram[o + 1] = (v >> 16) & 255",
                "ram[o + 2] = (v >> 8) & 255",
                "ram[o + 3] = v & 255"]
    return pre, cond, fast, slow


def _op_source(instr: Instruction) -> Tuple[List[str], bool]:
    """Statements for one non-CTI, non-halt, non-memory instruction.

    Mirrors the per-mnemonic compilers in :mod:`repro.sim.engine`
    exactly: r0 writes are compiled out.  Loads/stores go through
    :func:`_mem_source` instead.
    """
    m = instr.mnemonic
    rd, a, b, imm = instr.rd, instr.rs1, instr.rs2, instr.imm
    if m == "nop" or rd == 0:
        # div/rem with rd == r0 also have no architectural effect
        return [], False
    if m == "add":
        return [f"r[{rd}] = (r[{a}] + r[{b}]) & {_M}"], False
    if m == "sub":
        return [f"r[{rd}] = (r[{a}] - r[{b}]) & {_M}"], False
    if m == "and":
        return [f"r[{rd}] = r[{a}] & r[{b}]"], False
    if m == "or":
        return [f"r[{rd}] = r[{a}] | r[{b}]"], False
    if m == "xor":
        return [f"r[{rd}] = r[{a}] ^ r[{b}]"], False
    if m == "sll":
        return [f"r[{rd}] = (r[{a}] << (r[{b}] & 31)) & {_M}"], False
    if m == "srl":
        return [f"r[{rd}] = r[{a}] >> (r[{b}] & 31)"], False
    if m == "sra":
        return [f"v = r[{a}]",
                f"r[{rd}] = (((v - 4294967296) >> (r[{b}] & 31)) & {_M}) "
                f"if v & {_S} else v >> (r[{b}] & 31)"], False
    if m == "mul":
        return [f"r[{rd}] = (r[{a}] * r[{b}]) & {_M}"], False
    if m == "div":
        return [f"r[{rd}] = _sdiv(r[{a}], r[{b}])"], False
    if m == "rem":
        return [f"r[{rd}] = _srem(r[{a}], r[{b}])"], False
    if m == "slt":
        return [f"r[{rd}] = 1 if (r[{a}] ^ {_S}) < (r[{b}] ^ {_S}) "
                f"else 0"], False
    if m == "sltu":
        return [f"r[{rd}] = 1 if r[{a}] < r[{b}] else 0"], False
    if m == "addi":
        return [f"r[{rd}] = (r[{a}] + {imm}) & {_M}"], False
    if m == "andi":
        return [f"r[{rd}] = (r[{a}] & {imm}) & {_M}"], False
    if m == "ori":
        return [f"r[{rd}] = (r[{a}] | {imm}) & {_M}"], False
    if m == "xori":
        return [f"r[{rd}] = (r[{a}] ^ {imm}) & {_M}"], False
    if m == "slli":
        return [f"r[{rd}] = (r[{a}] << {imm & 31}) & {_M}"], False
    if m == "srli":
        return [f"r[{rd}] = r[{a}] >> {imm & 31}"], False
    if m == "srai":
        return [f"v = r[{a}]",
                f"r[{rd}] = (((v - 4294967296) >> {imm & 31}) & {_M}) "
                f"if v & {_S} else v >> {imm & 31}"], False
    if m == "slti":
        return [f"r[{rd}] = 1 if (r[{a}] ^ {_S}) < {imm + 0x80000000} "
                f"else 0"], False
    if m == "sltiu":
        return [f"r[{rd}] = 1 if r[{a}] < {imm & MASK32} else 0"], False
    if m == "lui":
        return [f"r[{rd}] = {(imm << 16) & MASK32}"], False
    raise SimulationError(f"no semantics for mnemonic {m!r}")


def _branch_cond(instr: Instruction) -> str:
    m = instr.mnemonic
    a, b = instr.rs1, instr.rs2
    if m == "beq":
        return f"r[{a}] == r[{b}]"
    if m == "bne":
        return f"r[{a}] != r[{b}]"
    if m == "blt":
        return f"(r[{a}] ^ {_S}) < (r[{b}] ^ {_S})"
    if m == "bge":
        return f"(r[{a}] ^ {_S}) >= (r[{b}] ^ {_S})"
    if m == "bltu":
        return f"r[{a}] < r[{b}]"
    return f"r[{a}] >= r[{b}]"


def _compile(lines: List[str], namespace: dict):
    source = "\n".join(lines) + "\n"
    exec(compile(source, "<fused-run>", "exec"), namespace)
    fn = namespace["_fused"]
    fn.__fused_source__ = source  # debugging / test introspection
    return fn


# -- SOFIA verified-block compiler ----------------------------------------

def compile_sofia_block(block, timing: TimingParams, icache, memory,
                        block_bytes: int, hooked: bool = False):
    """Compile one ``_VerifiedBlock`` into a single run-handler.

    Returns the handler function, cached on the block (the same place
    ``_compile_hot`` memoizes predecoded steps, with the same lifetime:
    any code write drops the block and the handler with it).  Everything
    the driving loop needs — I-cache accounting, the seal-fetch charge,
    the successor edge key, the terminal status — comes back in the
    handler's return tuple; the block-level ``max(fetch, exec)``
    bottleneck collapses to a constant tuple indexed by the miss count.

    ``hooked=True`` builds the traced variant mirroring the *generic*
    predecoded inner loop — hook after every commit, unconditional MMIO
    exit poll — used whenever ``on_commit`` is installed or a resumed run
    starts with the exit register already written.
    """
    runs = compile_fetch_runs(block.fetch_addresses,
                              icache.line_bytes.bit_length() - 1,
                              icache.lines - 1,
                              icache.lines.bit_length() - 1)
    n_fetch = len(block.fetch_addresses)
    pen = timing.icache_miss_penalty
    mc = timing.mac_word_cycles * block.mac_slots
    ft_prev = block.base + block_bytes - 4
    ft_pc = block.base + block_bytes
    ft_key = f"({ft_prev}, {ft_pc})"
    block_trap = None
    if block.decode_failure is not None:
        block_trap = ("illegal instruction in verified block: "
                      f"{block.decode_failure[1]}")

    namespace = {"SimulationError": SimulationError,
                 "_sdiv": _sdiv, "_srem": _srem,
                 "_TRAP": block_trap, "_VIOL": block.violation}
    out = []
    if hooked:
        namespace["_INSTRS"] = tuple(i for i, _, _ in block.payload)
        out.append("def _fused(r, ld, st, mmio, tags, ram, h, _i=_INSTRS):")
    else:
        out.append("def _fused(r, ld, st, mmio, tags, ram):")
    if len(runs) == 1:
        (index, tag, _count), = runs
        out.append(f"    if tags[{index}] != {tag}:")
        out.append(f"        tags[{index}] = {tag}")
        out.append("        mr = 1")
        out.append("    else:")
        out.append("        mr = 0")
    else:
        out.append("    mr = 0")
        for index, tag, _count in runs:
            out.append(f"    if tags[{index}] != {tag}:")
            out.append(f"        tags[{index}] = {tag}")
            out.append("        mr += 1")

    def cyc(ec: int) -> str:
        # block-level bottleneck max(fetch_cycles, exec_cycles) for every
        # possible miss count, folded into one constant tuple lookup
        table = tuple(max(n_fetch + m * pen, ec)
                      for m in range(len(runs) + 1))
        return f"{table}[mr]"

    def ret(n: int, ec: int, key2: str, arg: str) -> str:
        return (f"return ({n}, {cyc(ec)}, {n_fetch} - mr, mr, {mc}, "
                f"{key2}, {arg})")

    if not block.ok:
        # never verified: fetch slots were charged, nothing executed
        out.append("    " + ret(0, 0, "None", "(5, _VIOL)"))
        return _compile(out, namespace)

    def hook(indent: str, k: int, address: int) -> None:
        out.append(f"{indent}if h is not None:")
        out.append(f"{indent}    h({address}, _i[{k}])")

    ec = 0       # constant exec cycles committed so far
    count = 0    # instructions committed so far
    for instr, address, _slot in block.payload:
        seq, taken = cycle_costs(instr, timing)
        spec = instr.spec
        if spec.is_halt:
            if hooked:
                hook("    ", count, address)
                out.append("    " + ret(count + 1, ec + taken,
                                        "None", "(2, None)"))
            else:
                out.append("    " + ret(count + 1, ec + seq,
                                        "None", "(2, None)"))
            break
        if spec.is_cti:
            n = count + 1
            if spec.is_branch:
                cond = _branch_cond(instr)
                target = instr.imm & MASK32
                out.append(f"    if {cond}:")
                if hooked:
                    hook("        ", count, address)
                    out.append("        if mmio.exit_code is not None:")
                    out.append("            " + ret(n, ec + taken,
                                                    "None", "(3, None)"))
                out.append("        " + ret(n, ec + taken,
                                            f"({ft_prev}, {target})",
                                            "None"))
                if hooked:
                    hook("    ", count, address)
                    out.append("    if mmio.exit_code is not None:")
                    out.append("        " + ret(n, ec + seq,
                                                "None", "(3, None)"))
                out.append("    " + ret(n, ec + seq, ft_key, "None"))
            else:
                if spec.is_indirect:
                    out.append(f"    t = r[{instr.rs1}]")
                    if instr.mnemonic == "jalr" and instr.rd:
                        out.append(f"    r[{instr.rd}] = "
                                   f"{(address + 4) & MASK32}")
                    key2 = f"({ft_prev}, t)"
                else:
                    if spec.is_call:
                        out.append(f"    r[1] = {(address + 4) & MASK32}")
                    key2 = f"({ft_prev}, {instr.imm & MASK32})"
                if hooked:
                    hook("    ", count, address)
                    out.append("    if mmio.exit_code is not None:")
                    out.append("        " + ret(n, ec + taken,
                                                "None", "(3, None)"))
                out.append("    " + ret(n, ec + taken, key2, "None"))
            break
        if spec.is_load or spec.is_store:
            pre, cond, fast, slow = _mem_source(instr, memory.data_base,
                                                memory._ram_size)
            trap_ret = ret(count, ec, "None", "(4, str(e))")
            for stmt in pre:
                out.append("    " + stmt)
            if cond is None:
                out.append("    try:")
                for stmt in slow:
                    out.append("        " + stmt)
                out.append("    except SimulationError as e:")
                out.append("        " + trap_ret)
                if not hooked and spec.is_store:
                    out.append("    if mmio.exit_code is not None:")
                    out.append("        " + ret(count + 1, ec + seq,
                                                "None", "(3, None)"))
            else:
                out.append(f"    if {cond}:")
                for stmt in fast:
                    out.append("        " + stmt)
                out.append("    else:")
                out.append("        try:")
                for stmt in slow:
                    out.append("            " + stmt)
                out.append("        except SimulationError as e:")
                out.append("            " + trap_ret)
                if not hooked and spec.is_store:
                    # an in-RAM store can never flip the exit register,
                    # so the fast path needs no poll (the non-hooked loop
                    # only runs with the register clear)
                    out.append("        if mmio.exit_code is not None:")
                    out.append("            " + ret(count + 1, ec + seq,
                                                    "None", "(3, None)"))
        else:
            stmts, _ = _op_source(instr)
            for stmt in stmts:
                out.append("    " + stmt)
        if hooked:
            hook("    ", count, address)
            out.append("    if mmio.exit_code is not None:")
            out.append("        " + ret(count + 1, ec + seq,
                                        "None", "(3, None)"))
        ec += seq
        count += 1
    else:
        # ran off the payload end: sequential fall-through, or the
        # decode-failure trap when decode stopped short of a terminator
        if block_trap is not None:
            out.append("    " + ret(count, ec, "None", "(4, _TRAP)"))
        else:
            out.append("    " + ret(count, ec, ft_key, "None"))

    return _compile(out, namespace)


# -- vanilla straight-line-run compiler -----------------------------------

def compile_vanilla_run(machine, start_pc: int,
                        hooked: bool = False) -> tuple:
    """Walk the per-PC chain at ``start_pc`` and compile it into one call.

    The run covers consecutive PCs up to and *including* the first CTI,
    store or halt (stores terminate runs so self-modifying code can never
    execute a stale compiled suffix), capped at :data:`MAX_RUN`.  A decode
    or fetch fault *past* the first instruction truncates the run — the
    faulting PC becomes its own (trapping) run, preserving the predecoded
    loop's exact trap point and reason.

    Returns ``(fn, n_max, covered_addresses)``; when the first fetch/decode
    itself faults, ``(None, trap_reason, (start_pc,))``.
    """
    timing = machine.timing
    icache = machine.icache
    instrs: List[Instruction] = []
    pc = start_pc
    while len(instrs) < MAX_RUN:
        try:
            instr = machine._fetch_decode(pc)
        except (DecodingError, SimulationError) as exc:
            if not instrs:
                return (None, str(exc), (start_pc,))
            break
        instrs.append(instr)
        spec = instr.spec
        if spec.is_cti or spec.is_halt or spec.is_store:
            break
        pc += 4

    n = len(instrs)
    covered = tuple(start_pc + 4 * k for k in range(n))
    line_shift = icache.line_bytes.bit_length() - 1
    lines_mask = icache.lines - 1
    lines_shift = icache.lines.bit_length() - 1
    pen = timing.icache_miss_penalty
    # unmasked on purpose: the predecoded loop advances ``pc += 4`` without
    # wrapping, and bit-identity beats tidiness
    next_pc = start_pc + 4 * n

    namespace = {"SimulationError": SimulationError,
                 "_sdiv": _sdiv, "_srem": _srem}
    memory = machine.memory
    out = []
    if hooked:
        namespace["_INSTRS"] = tuple(instrs)
        out.append("def _fused(r, ld, st, mmio, tags, ram, h, _i=_INSTRS):")
    else:
        out.append("def _fused(r, ld, st, mmio, tags, ram):")
    out.append("    mr = 0")
    out.append("    xc = 0")

    def charge(base: int, flag_extra: int = 0) -> str:
        expr = "xc" if base == 0 else f"{base} + xc"
        if flag_extra:
            expr += f" + ({flag_extra} if m else 0)"
        return expr

    cyc = 0            # constant hit-path cycles committed so far
    prev_line = None
    for k, instr in enumerate(instrs):
        address = start_pc + 4 * k
        line = address >> line_shift
        head = line != prev_line
        prev_line = line
        idx = line & lines_mask
        tag = line >> lines_shift
        seq, taken = cycle_costs(instr, timing)
        spec = instr.spec
        # per-instruction bottleneck: max(fetch, exec); a hit fetches in 1
        hc_seq = seq if seq > 1 else 1
        hc_taken = taken if taken > 1 else 1
        extra_seq = max(1 + pen, seq) - hc_seq
        extra_taken = max(1 + pen, taken) - hc_taken
        may_trap = spec.is_load or spec.is_store
        branch_flag = 0
        if head:
            if may_trap and extra_seq:
                # the miss extra must not be charged if this very
                # instruction traps (the fill itself still stands)
                out.append(f"    if tags[{idx}] != {tag}:")
                out.append(f"        tags[{idx}] = {tag}")
                out.append("        mr += 1")
                out.append(f"        m = {extra_seq}")
                out.append("    else:")
                out.append("        m = 0")
            elif spec.is_branch and extra_seq != extra_taken:
                branch_flag = 1
                out.append(f"    if tags[{idx}] != {tag}:")
                out.append(f"        tags[{idx}] = {tag}")
                out.append("        mr += 1")
                out.append("        m = 1")
                out.append("    else:")
                out.append("        m = 0")
            else:
                extra = extra_taken if (spec.is_cti or spec.is_halt) \
                    else extra_seq
                out.append(f"    if tags[{idx}] != {tag}:")
                out.append(f"        tags[{idx}] = {tag}")
                out.append("        mr += 1")
                if extra:
                    out.append(f"        xc += {extra}")

        if spec.is_halt:
            if hooked:
                out.append(f"    h({address}, _i[{k}])")
            out.append(f"    return ({n}, {charge(cyc + hc_taken)}, "
                       f"{n} - mr, mr, 2, None)")
            break
        if spec.is_cti:
            if spec.is_branch:
                cond = _branch_cond(instr)
                target = instr.imm & MASK32
                taken_charge = charge(
                    cyc + hc_taken,
                    extra_taken if branch_flag else 0)
                seq_charge = charge(
                    cyc + hc_seq, extra_seq if branch_flag else 0)
                out.append(f"    if {cond}:")
                if hooked:
                    out.append(f"        h({address}, _i[{k}])")
                out.append(f"        return ({n}, {taken_charge}, "
                           f"{n} - mr, mr, 1, {target})")
                if hooked:
                    out.append(f"    h({address}, _i[{k}])")
                out.append(f"    return ({n}, {seq_charge}, "
                           f"{n} - mr, mr, 1, {next_pc})")
            else:
                if spec.is_indirect:
                    out.append(f"    t = r[{instr.rs1}]")
                    if instr.mnemonic == "jalr" and instr.rd:
                        out.append(f"    r[{instr.rd}] = "
                                   f"{(address + 4) & MASK32}")
                    target = "t"
                else:
                    if spec.is_call:
                        out.append(f"    r[1] = {(address + 4) & MASK32}")
                    target = str(instr.imm & MASK32)
                if hooked:
                    out.append(f"    h({address}, _i[{k}])")
                out.append(f"    return ({n}, {charge(cyc + hc_taken)}, "
                           f"{n} - mr, mr, 1, {target})")
            break
        if may_trap:
            pre, cond, fast, slow = _mem_source(instr, memory.data_base,
                                                memory._ram_size)
            trap_ret = (f"return ({k}, {charge(cyc)}, "
                        f"{k + 1} - mr, mr, 4, str(e))")
            for stmt in pre:
                out.append("    " + stmt)
            if cond is None:
                out.append("    try:")
                for stmt in slow:
                    out.append("        " + stmt)
                out.append("    except SimulationError as e:")
                out.append("        " + trap_ret)
            else:
                out.append(f"    if {cond}:")
                for stmt in fast:
                    out.append("        " + stmt)
                out.append("    else:")
                out.append("        try:")
                for stmt in slow:
                    out.append("            " + stmt)
                out.append("        except SimulationError as e:")
                out.append("            " + trap_ret)
            if head and extra_seq:
                out.append("    xc += m")
        else:
            stmts, _ = _op_source(instr)
            for stmt in stmts:
                out.append("    " + stmt)
        if hooked:
            out.append(f"    h({address}, _i[{k}])")
        cyc += hc_seq
        if spec.is_store:
            out.append("    if mmio.exit_code is not None:")
            out.append(f"        return ({n}, {charge(cyc)}, "
                       f"{n} - mr, mr, 3, None)")
            out.append(f"    return ({n}, {charge(cyc)}, "
                       f"{n} - mr, mr, 1, {next_pc})")
            break
    else:
        # capped or truncated before a faulting PC: plain continue
        out.append(f"    return ({n}, {charge(cyc)}, "
                   f"{n} - mr, mr, 1, {next_pc})")

    return (_compile(out, namespace), n, covered)
