"""Simulated memory system: program memory, data RAM, MMIO devices.

The memory map follows :mod:`repro.isa.program`: code at ``CODE_BASE``
(word-granular, backing either a plaintext executable or an encrypted SOFIA
image), a 1 MiB data RAM from ``DATA_BASE`` up to ``STACK_TOP`` (the stack
grows down from the top), and a small MMIO window at ``MMIO_BASE`` for
console/exit devices (bare-metal programs have no OS to call into).

Writes to the code region are allowed — that is exactly what a code
injection attack does — and notify registered listeners so the SOFIA
machine can invalidate its decrypt/verify caches, mirroring hardware where
every fetch re-decrypts and re-verifies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from ..errors import SimulationError
from ..isa.program import (CODE_BASE, DATA_BASE, MMIO_ACTUATOR, MMIO_BASE,
                           MMIO_EXIT, MMIO_PUTCHAR, MMIO_PUTINT,
                           MMIO_PUTWORD, STACK_TOP)

MASK32 = 0xFFFFFFFF


@dataclass
class MMIODevice:
    """Console + exit device at the top of the address space."""

    chars: List[str] = field(default_factory=list)
    ints: List[int] = field(default_factory=list)
    words: List[int] = field(default_factory=list)
    actuator: List[int] = field(default_factory=list)
    exit_code: Optional[int] = None

    @property
    def exit_requested(self) -> bool:
        return self.exit_code is not None

    def text(self) -> str:
        return "".join(self.chars)

    def store(self, address: int, value: int) -> None:
        value &= MASK32
        if address == MMIO_PUTCHAR:
            self.chars.append(chr(value & 0xFF))
        elif address == MMIO_PUTINT:
            signed = value - 0x100000000 if value & 0x80000000 else value
            self.ints.append(signed)
        elif address == MMIO_EXIT:
            self.exit_code = value
        elif address == MMIO_PUTWORD:
            self.words.append(value)
        elif address == MMIO_ACTUATOR:
            self.actuator.append(value)
        else:
            raise SimulationError(f"store to unmapped MMIO 0x{address:08x}")

    def load(self, address: int) -> int:
        raise SimulationError(f"load from write-only MMIO 0x{address:08x}")


class Memory:
    """Byte-addressable memory with a word-granular code region."""

    def __init__(self, code_words: List[int], code_base: int = CODE_BASE,
                 data: bytes = b"", data_base: int = DATA_BASE,
                 data_limit: int = STACK_TOP,
                 mmio: Optional[MMIODevice] = None) -> None:
        self.code = list(code_words)
        self.code_base = code_base
        self.data_base = data_base
        self.data_limit = data_limit
        self.ram = bytearray(data_limit - data_base)
        self.ram[:len(data)] = data
        self.mmio = mmio if mmio is not None else MMIODevice()
        self._code_listeners: List[Callable[[int], None]] = []
        # the code region never grows or shrinks (poke_code writes in
        # place), so its limit is a plain attribute, not a recomputation
        self.code_limit = code_base + 4 * len(self.code)
        # the load/store fast path may only claim an address when the RAM
        # window cannot shadow the code region or MMIO; otherwise disable
        # it (impossible range) and let the canonical region checks decide
        if self.code_limit <= data_base and data_limit <= MMIO_BASE:
            self._ram_size = len(self.ram)
        else:
            self._ram_size = -1

    # -- code region -----------------------------------------------------

    def in_code(self, address: int) -> bool:
        return self.code_base <= address < self.code_limit

    def add_code_listener(self, listener: Callable[[int], None]) -> None:
        """Register a callback invoked with the address of any code write."""
        self._code_listeners.append(listener)

    def fetch_word(self, address: int) -> int:
        """Instruction fetch (no MMIO, code region only)."""
        if address % 4:
            raise SimulationError(f"misaligned fetch at 0x{address:08x}")
        if not self.in_code(address):
            raise SimulationError(f"fetch outside code at 0x{address:08x}")
        return self.code[(address - self.code_base) >> 2]

    def poke_code(self, address: int, word: int) -> None:
        """Write a code word (the attack surface; notifies listeners)."""
        if address % 4:
            raise SimulationError(f"misaligned code write 0x{address:08x}")
        if not self.in_code(address):
            raise SimulationError(f"code write outside text 0x{address:08x}")
        self.code[(address - self.code_base) >> 2] = word & MASK32
        for listener in self._code_listeners:
            listener(address)

    # -- data loads/stores -------------------------------------------------

    def _ram_offset(self, address: int, size: int) -> int:
        offset = address - self.data_base
        if not 0 <= offset <= len(self.ram) - size:
            raise SimulationError(f"bus error at 0x{address:08x}")
        return offset

    def load(self, address: int, size: int, signed: bool) -> int:
        if address % size:
            raise SimulationError(f"misaligned load at 0x{address:08x}")
        # fast path: an aligned access inside data RAM (the overwhelmingly
        # common case); everything else falls through to the region checks
        # with their original error behaviour
        offset = address - self.data_base
        if 0 <= offset <= self._ram_size - size:
            raw = int.from_bytes(self.ram[offset:offset + size], "big")
            if signed:
                sign_bit = 1 << (8 * size - 1)
                if raw & sign_bit:
                    raw -= 1 << (8 * size)
            return raw & MASK32
        if address >= MMIO_BASE:
            return self.mmio.load(address)
        if self.in_code(address):
            if size != 4:
                raise SimulationError(
                    f"sub-word load from code at 0x{address:08x}")
            return self.code[(address - self.code_base) >> 2]
        offset = self._ram_offset(address, size)
        raw = int.from_bytes(self.ram[offset:offset + size], "big")
        if signed:
            sign_bit = 1 << (8 * size - 1)
            if raw & sign_bit:
                raw -= 1 << (8 * size)
        return raw & MASK32

    def store(self, address: int, value: int, size: int) -> None:
        if address % size:
            raise SimulationError(f"misaligned store at 0x{address:08x}")
        offset = address - self.data_base
        if 0 <= offset <= self._ram_size - size:
            self.ram[offset:offset + size] = (
                (value & ((1 << (8 * size)) - 1)).to_bytes(size, "big"))
            return
        if address >= MMIO_BASE:
            if size != 4:
                raise SimulationError("MMIO stores must be word sized")
            self.mmio.store(address, value)
            return
        if self.in_code(address):
            if size != 4:
                raise SimulationError(
                    f"sub-word store to code at 0x{address:08x}")
            self.poke_code(address, value)
            return
        offset = self._ram_offset(address, size)
        self.ram[offset:offset + size] = (
            (value & ((1 << (8 * size)) - 1)).to_bytes(size, "big"))

    # -- test/debug helpers -------------------------------------------------

    def read_data_word(self, address: int) -> int:
        return self.load(address, 4, signed=False) & MASK32

    def write_data_word(self, address: int, value: int) -> None:
        self.store(address, value, 4)
