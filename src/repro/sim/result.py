"""Execution results shared by the vanilla and SOFIA machines."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional

from .cache import CacheStats
from .memory import MMIODevice


class Status(enum.Enum):
    """How a simulation ended."""

    HALT = "halt"          # executed a halt instruction
    EXIT = "exit"          # program wrote the MMIO exit register
    TRAP = "trap"          # illegal instruction / bus error / misalignment
    RESET = "reset"        # SOFIA integrity violation -> processor reset
    LIMIT = "limit"        # hit the step/cycle budget


@dataclass
class ViolationRecord:
    """What the SOFIA hardware knew when it pulled the reset line."""

    kind: str      # "integrity" | "invalid-entry" | "store-slot" | "structure"
    pc: int
    prev_pc: int
    detail: str = ""

    def __str__(self) -> str:
        return (f"{self.kind} violation at pc=0x{self.pc:08x} "
                f"(prevPC=0x{self.prev_pc:08x}) {self.detail}".rstrip())


@dataclass
class ExecutionResult:
    """Outcome and metrics of one simulated run."""

    status: Status
    cycles: int
    instructions: int
    exit_code: Optional[int] = None
    mmio: Optional[MMIODevice] = None
    violation: Optional[ViolationRecord] = None
    trap_reason: str = ""
    icache: Optional[CacheStats] = None
    #: SOFIA only: number of block traversals and MAC-word fetch slots
    blocks_executed: int = 0
    mac_fetch_cycles: int = 0

    @property
    def ok(self) -> bool:
        """True when the program finished normally."""
        return self.status in (Status.HALT, Status.EXIT)

    @property
    def detected(self) -> bool:
        """True when the SOFIA hardware detected a violation."""
        return self.status is Status.RESET

    @property
    def output_ints(self) -> List[int]:
        return list(self.mmio.ints) if self.mmio else []

    @property
    def output_text(self) -> str:
        return self.mmio.text() if self.mmio else ""

    def summary(self) -> str:
        parts = [f"status={self.status.value}",
                 f"cycles={self.cycles}",
                 f"instructions={self.instructions}"]
        if self.exit_code is not None:
            parts.append(f"exit={self.exit_code}")
        if self.violation:
            parts.append(str(self.violation))
        if self.trap_reason:
            parts.append(f"trap={self.trap_reason}")
        return " ".join(parts)
