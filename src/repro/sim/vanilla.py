"""Vanilla (unprotected) LEON3-like machine.

Executes a plain :class:`~repro.isa.program.Executable` with the shared
functional core and cycle model.  This is the paper's baseline processor:
it happily runs injected or tampered code — the attack suite uses exactly
that property for its differential experiments.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..errors import DecodingError, SimulationError
from ..isa.encoding import decode
from ..isa.instructions import Instruction
from ..isa.program import Executable
from .cache import DirectMappedCache
from .core import CPUState, execute
from .memory import Memory
from .result import ExecutionResult, Status
from .timing import DEFAULT_TIMING, TimingParams, instruction_cycles


class VanillaMachine:
    """Functional + cycle-accounting simulator of the unmodified core."""

    def __init__(self, executable: Executable,
                 timing: TimingParams = DEFAULT_TIMING) -> None:
        self.executable = executable
        self.timing = timing
        self.memory = Memory(executable.code_words,
                             code_base=executable.code_base,
                             data=executable.data,
                             data_base=executable.data_base)
        self.icache = DirectMappedCache(timing.icache_lines,
                                        timing.icache_line_words)
        self.state = CPUState.reset(executable.entry)
        self._decoded: Dict[int, Instruction] = {}
        #: optional tracing hook, called as on_commit(pc, instr) after each
        #: committed instruction (see repro.sim.trace)
        self.on_commit = None
        # any code write invalidates decoded instructions (self-modifying
        # code / injection attacks must see their new bytes)
        self.memory.add_code_listener(self._on_code_write)

    def _on_code_write(self, address: int) -> None:
        self._decoded.pop(address, None)

    def _fetch_decode(self, pc: int) -> Instruction:
        cached = self._decoded.get(pc)
        if cached is not None:
            return cached
        word = self.memory.fetch_word(pc)
        instr = decode(word, pc)
        self._decoded[pc] = instr
        return instr

    def run(self, max_instructions: int = 50_000_000) -> ExecutionResult:
        """Run to completion (halt/exit/trap) or the instruction budget."""
        state = self.state
        memory = self.memory
        timing = self.timing
        icache = self.icache
        mmio = memory.mmio
        cycles = 0
        executed = 0
        status = Status.LIMIT
        trap_reason = ""
        while executed < max_instructions:
            pc = state.pc
            try:
                instr = self._fetch_decode(pc)
            except (DecodingError, SimulationError) as exc:
                status, trap_reason = Status.TRAP, str(exc)
                break
            fetch_cycles = 1
            if not icache.access(pc):
                fetch_cycles += timing.icache_miss_penalty
            try:
                outcome = execute(instr, state, memory, pc)
            except SimulationError as exc:
                status, trap_reason = Status.TRAP, str(exc)
                break
            executed += 1
            # bottleneck model (same as the SOFIA core): the fetch of this
            # word overlaps with execution stalls of earlier instructions
            cycles += max(fetch_cycles,
                          instruction_cycles(instr, timing,
                                             outcome.branch_taken))
            if self.on_commit is not None:
                self.on_commit(pc, instr)
            if outcome.halted:
                status = Status.HALT
                break
            if mmio.exit_requested:
                status = Status.EXIT
                break
            state.pc = outcome.next_pc if outcome.next_pc is not None else pc + 4
        return ExecutionResult(status=status, cycles=cycles,
                               instructions=executed,
                               exit_code=mmio.exit_code, mmio=mmio,
                               trap_reason=trap_reason,
                               icache=icache.stats)


def run_executable(executable: Executable,
                   timing: TimingParams = DEFAULT_TIMING,
                   max_instructions: int = 50_000_000) -> ExecutionResult:
    """Convenience one-shot runner."""
    return VanillaMachine(executable, timing).run(max_instructions)
