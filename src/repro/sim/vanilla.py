"""Vanilla (unprotected) LEON3-like machine.

Executes a plain :class:`~repro.isa.program.Executable` with the shared
functional core and cycle model.  This is the paper's baseline processor:
it happily runs injected or tampered code — the attack suite uses exactly
that property for its differential experiments.

Two execution engines drive the same architectural model (see
:mod:`repro.sim.engine`): the default ``"predecoded"`` engine steps
per-PC-cached compiled handlers, and the ``"reference"`` engine steps
:func:`repro.sim.core.execute` — the semantics oracle the differential
suite locksteps against.  Both produce bit-identical
:class:`~repro.sim.result.ExecutionResult`\\ s.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..errors import DecodingError, SimulationError
from ..isa.encoding import decode
from ..isa.instructions import Instruction
from ..isa.program import Executable
from ..obs import hook as obs_hook
from .cache import DirectMappedCache
from .core import CPUState, execute
from .engine import PredecodedStep, predecode, resolve_engine
from .memory import Memory
from .result import ExecutionResult, Status
from .timing import DEFAULT_TIMING, TimingParams, instruction_cycles


class VanillaMachine:
    """Functional + cycle-accounting simulator of the unmodified core."""

    def __init__(self, executable: Executable,
                 timing: TimingParams = DEFAULT_TIMING,
                 engine: Optional[str] = None) -> None:
        self.executable = executable
        self.timing = timing
        self.engine = resolve_engine(engine)
        self.memory = Memory(executable.code_words,
                             code_base=executable.code_base,
                             data=executable.data,
                             data_base=executable.data_base)
        self.icache = DirectMappedCache(timing.icache_lines,
                                        timing.icache_line_words)
        self.state = CPUState.reset(executable.entry)
        self._decoded: Dict[int, Instruction] = {}
        self._predecoded: Dict[int, PredecodedStep] = {}
        #: fused-superblock run handlers (repro.sim.fused), keyed by the
        #: run's start PC; ``_fused_cover`` maps every covered address back
        #: to its start PCs so one code write invalidates exactly the runs
        #: that compiled that word (mirroring the per-PC predecode pops)
        self._fused_runs: Dict[int, tuple] = {}
        self._fused_hook_runs: Dict[int, tuple] = {}
        self._fused_cover: Dict[int, set] = {}
        #: optional tracing hook, called as on_commit(pc, instr) after each
        #: committed instruction (see repro.sim.trace); fires identically
        #: under both engines
        self.on_commit = None
        #: telemetry sink captured once at construction (repro.obs.hook);
        #: ``None`` by default, consulted only at the end of run()
        self._obs = obs_hook.SIM
        # any code write invalidates decoded instructions (self-modifying
        # code / injection attacks must see their new bytes)
        self.memory.add_code_listener(self._on_code_write)

    def _on_code_write(self, address: int) -> None:
        self._decoded.pop(address, None)
        self._predecoded.pop(address, None)
        starts = self._fused_cover.pop(address, None)
        if starts:
            fused_runs = self._fused_runs
            hook_runs = self._fused_hook_runs
            for start in starts:
                fused_runs.pop(start, None)
                hook_runs.pop(start, None)

    def _flush_decoded(self) -> None:
        """Drop every cached decode/predecode (coupled-word encodings)."""
        self._decoded.clear()
        self._predecoded.clear()
        self._fused_runs.clear()
        self._fused_hook_runs.clear()
        self._fused_cover.clear()

    def _fetch_decode(self, pc: int) -> Instruction:
        cached = self._decoded.get(pc)
        if cached is not None:
            return cached
        word = self.memory.fetch_word(pc)
        instr = decode(word, pc)
        self._decoded[pc] = instr
        return instr

    def run(self, max_instructions: int = 50_000_000) -> ExecutionResult:
        """Run to completion (halt/exit/trap) or the instruction budget."""
        if self.engine == "reference":
            result = self._run_reference(max_instructions)
        elif self.engine == "fused":
            result = self._run_fused(max_instructions)
        else:
            result = self._run_predecoded(max_instructions)
        obs = self._obs
        if obs is not None:
            engine = self.engine
            obs.count(f"sim.vanilla.runs.{engine}")
            obs.count(f"sim.vanilla.instructions.{engine}",
                      result.instructions)
            obs.count(f"sim.vanilla.cycles.{engine}", result.cycles)
        return result

    def _run_reference(self, max_instructions: int) -> ExecutionResult:
        """The oracle loop: one ``core.execute`` call per instruction."""
        state = self.state
        memory = self.memory
        timing = self.timing
        icache = self.icache
        mmio = memory.mmio
        cycles = 0
        executed = 0
        status = Status.LIMIT
        trap_reason = ""
        while executed < max_instructions:
            pc = state.pc
            try:
                instr = self._fetch_decode(pc)
            except (DecodingError, SimulationError) as exc:
                status, trap_reason = Status.TRAP, str(exc)
                break
            fetch_cycles = 1
            if not icache.access(pc):
                fetch_cycles += timing.icache_miss_penalty
            try:
                outcome = execute(instr, state, memory, pc)
            except SimulationError as exc:
                status, trap_reason = Status.TRAP, str(exc)
                break
            executed += 1
            # bottleneck model (same as the SOFIA core): the fetch of this
            # word overlaps with execution stalls of earlier instructions
            cycles += max(fetch_cycles,
                          instruction_cycles(instr, timing,
                                             outcome.branch_taken))
            if self.on_commit is not None:
                self.on_commit(pc, instr)
            if outcome.halted:
                status = Status.HALT
                break
            if mmio.exit_requested:
                status = Status.EXIT
                break
            state.pc = outcome.next_pc if outcome.next_pc is not None else pc + 4
        return ExecutionResult(status=status, cycles=cycles,
                               instructions=executed,
                               exit_code=mmio.exit_code, mmio=mmio,
                               trap_reason=trap_reason,
                               icache=icache.stats)

    def _run_predecoded(self, max_instructions: int) -> ExecutionResult:
        """The fast loop: step per-PC-cached compiled handlers.

        Observable behaviour is bit-identical to :meth:`_run_reference`
        at every commit: same register/memory effects, same cycle and
        I-cache accounting, same hook firing order, same trap points.
        Loop invariants are hoisted hard: the I-cache lookup is inlined
        (local tag list and hit/miss counters flushed to ``icache.stats``
        on exit), the ``on_commit`` hook and register file are bound once
        (install the hook before calling :meth:`run`), and the MMIO exit
        poll only runs after stores — the only steps that can set it.
        """
        state = self.state
        memory = self.memory
        timing = self.timing
        icache = self.icache
        mmio = memory.mmio
        regs = state.regs
        on_commit = self.on_commit
        get_step = self._predecoded.get
        predecoded = self._predecoded
        miss_penalty = timing.icache_miss_penalty
        tags = icache._tags
        line_shift = icache.line_bytes.bit_length() - 1
        lines_mask = icache.lines - 1
        lines_shift = icache.lines.bit_length() - 1
        hits = 0
        misses = 0
        cycles = 0
        executed = 0
        status = Status.LIMIT
        trap_reason = ""
        pc = state.pc
        # a resumed run can start with the exit register already written;
        # the oracle still executes one instruction before noticing
        force_exit = mmio.exit_code is not None
        while executed < max_instructions:
            step = get_step(pc)
            if step is None:
                try:
                    instr = self._fetch_decode(pc)
                except (DecodingError, SimulationError) as exc:
                    status, trap_reason = Status.TRAP, str(exc)
                    break
                step = predecode(instr, timing)
                predecoded[pc] = step
            run_h, cyc_seq, cyc_taken, is_store, instr = step
            line_number = pc >> line_shift
            index = line_number & lines_mask
            tag = line_number >> lines_shift
            if tags[index] == tag:
                hits += 1
                fetch_cycles = 1
            else:
                tags[index] = tag
                misses += 1
                fetch_cycles = 1 + miss_penalty
            try:
                target = run_h(regs, memory, pc)
            except SimulationError as exc:
                status, trap_reason = Status.TRAP, str(exc)
                break
            executed += 1
            if target is None:
                cycles += fetch_cycles if fetch_cycles > cyc_seq else cyc_seq
                if on_commit is not None:
                    on_commit(pc, instr)
                if (is_store or force_exit) and mmio.exit_code is not None:
                    status = Status.EXIT
                    break
                pc += 4
                state.pc = pc
            else:
                cycles += fetch_cycles if fetch_cycles > cyc_taken else cyc_taken
                if on_commit is not None:
                    on_commit(pc, instr)
                if target == -1:  # engine.HALT
                    status = Status.HALT
                    break
                if (is_store or force_exit) and mmio.exit_code is not None:
                    status = Status.EXIT
                    break
                pc = target
                state.pc = pc
        icache.stats.hits += hits
        icache.stats.misses += misses
        return ExecutionResult(status=status, cycles=cycles,
                               instructions=executed,
                               exit_code=mmio.exit_code, mmio=mmio,
                               trap_reason=trap_reason,
                               icache=icache.stats)

    def _run_fused(self, max_instructions: int) -> ExecutionResult:
        """The fused-superblock loop: one compiled call per straight run.

        Bit-identical to :meth:`_run_predecoded`: each straight-line chain
        up to the next CTI/store/halt is source-compiled into one handler
        (:func:`repro.sim.fused.compile_vanilla_run`) cached per start PC
        and invalidated by the same code-write listener that pops
        predecoded steps.  Two predecoded behaviours are delegated rather
        than re-implemented, both by running the predecoded loop itself so
        equivalence is by construction: a resumed run whose exit register
        is already written (the per-instruction ``force_exit`` poll), and
        the tail of a run that would overshoot the instruction budget
        (the predecoded loop is per-instruction exact; fused runs only
        whole runs).
        """
        memory = self.memory
        mmio = memory.mmio
        if mmio.exit_code is not None:
            return self._run_predecoded(max_instructions)
        from .fused import compile_vanilla_run
        state = self.state
        icache = self.icache
        regs = state.regs
        ld = memory.load
        st = memory.store
        ram = memory.ram
        on_commit = self.on_commit
        hooked = on_commit is not None
        runs = self._fused_hook_runs if hooked else self._fused_runs
        get_run = runs.get
        cover = self._fused_cover
        tags = icache._tags
        obs = self._obs
        hits = 0
        misses = 0
        cycles = 0
        executed = 0
        status = Status.LIMIT
        trap_reason = ""
        pc = state.pc
        while executed < max_instructions:
            entry = get_run(pc)
            if entry is None:
                fn, n_max, covered = compile_vanilla_run(self, pc,
                                                         hooked=hooked)
                entry = (fn, n_max)
                runs[pc] = entry
                for address in covered:
                    starts = cover.get(address)
                    if starts is None:
                        cover[address] = starts = set()
                    starts.add(pc)
                if obs is not None:
                    obs.count("sim.fused_compile")
            fn, n_max = entry
            if fn is None:
                # the first fetch/decode of this run faults every time;
                # n_max carries the (deterministic) trap reason
                status, trap_reason = Status.TRAP, n_max
                break
            if n_max > max_instructions - executed:
                # budget boundary inside the run: hand the exact
                # per-instruction tail to the predecoded loop
                icache.stats.hits += hits
                icache.stats.misses += misses
                state.pc = pc
                tail = self._run_predecoded(max_instructions - executed)
                return ExecutionResult(
                    status=tail.status, cycles=cycles + tail.cycles,
                    instructions=executed + tail.instructions,
                    exit_code=mmio.exit_code, mmio=mmio,
                    trap_reason=tail.trap_reason, icache=icache.stats)
            if hooked:
                n, cyc, h, mr, code, arg = fn(regs, ld, st, mmio, tags,
                                              ram, on_commit)
            else:
                n, cyc, h, mr, code, arg = fn(regs, ld, st, mmio, tags,
                                              ram)
            executed += n
            cycles += cyc
            hits += h
            misses += mr
            if code == 1:
                pc = arg
                state.pc = pc
                continue
            if code == 2:
                status = Status.HALT
                state.pc = pc + 4 * (n - 1)
            elif code == 3:
                status = Status.EXIT
                state.pc = pc + 4 * (n - 1)
            else:
                status = Status.TRAP
                trap_reason = arg
                state.pc = pc + 4 * n
            break
        icache.stats.hits += hits
        icache.stats.misses += misses
        return ExecutionResult(status=status, cycles=cycles,
                               instructions=executed,
                               exit_code=mmio.exit_code, mmio=mmio,
                               trap_reason=trap_reason,
                               icache=icache.stats)


def run_executable(executable: Executable,
                   timing: TimingParams = DEFAULT_TIMING,
                   max_instructions: int = 50_000_000,
                   engine: Optional[str] = None) -> ExecutionResult:
    """Convenience one-shot runner."""
    return VanillaMachine(executable, timing, engine=engine).run(
        max_instructions)
