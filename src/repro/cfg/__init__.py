"""Instruction-granularity control flow graphs for SOFIA."""

from .analysis import (CFGStats, fan_in, multi_predecessor_nodes, stats,
                       unreachable_nodes)
from .builder import build_cfg, function_ranges, is_return, returns_of
from .graph import ControlFlowGraph, Edge, RESET_NODE

__all__ = [
    "ControlFlowGraph", "Edge", "RESET_NODE",
    "build_cfg", "function_ranges", "is_return", "returns_of",
    "CFGStats", "stats", "fan_in", "multi_predecessor_nodes",
    "unreachable_nodes",
]
