"""Instruction-granularity control flow graph.

SOFIA enforces CFI at the finest possible granularity: the CFG's nodes are
*individual instructions* and its edges are the legal (prevPC -> PC)
transitions.  This module holds the graph container; :mod:`repro.cfg.builder`
constructs graphs from parsed programs.

Edge kinds:

``fall``    sequential fall-through
``taken``   conditional branch taken
``jump``    unconditional direct jump
``call``    direct call edge (caller -> callee entry)
``icall``   indirect call/jump edge (from a ``.targets`` annotation)
``return``  callee ``ret`` -> return point after a call site
``reset``   the virtual edge from processor reset to the program entry
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Set, Tuple

EDGE_KINDS = ("fall", "taken", "jump", "call", "icall", "return", "reset")

#: Node id used as the source of the reset edge.
RESET_NODE = -1


@dataclass(frozen=True)
class Edge:
    """One control-flow edge between instruction indices."""

    src: int
    dst: int
    kind: str

    def __post_init__(self) -> None:
        if self.kind not in EDGE_KINDS:
            raise ValueError(f"unknown edge kind {self.kind!r}")


@dataclass
class ControlFlowGraph:
    """A precise instruction-level CFG over ``num_nodes`` instructions."""

    num_nodes: int
    entry: int
    edges: Set[Edge] = field(default_factory=set)

    def add_edge(self, src: int, dst: int, kind: str) -> None:
        if not (src == RESET_NODE or 0 <= src < self.num_nodes):
            raise ValueError(f"edge source {src} out of range")
        if not 0 <= dst < self.num_nodes:
            raise ValueError(f"edge destination {dst} out of range")
        self.edges.add(Edge(src, dst, kind))

    def successors(self, node: int) -> List[Edge]:
        return sorted((e for e in self.edges if e.src == node),
                      key=lambda e: (e.dst, e.kind))

    def predecessors(self, node: int) -> List[Edge]:
        return sorted((e for e in self.edges if e.dst == node),
                      key=lambda e: (e.src, e.kind))

    def predecessor_map(self) -> Dict[int, List[Edge]]:
        """dst -> inbound edges, for every node with at least one pred."""
        result: Dict[int, List[Edge]] = {}
        for edge in self.edges:
            result.setdefault(edge.dst, []).append(edge)
        for edges in result.values():
            edges.sort(key=lambda e: (e.src, e.kind))
        return result

    def successor_map(self) -> Dict[int, List[Edge]]:
        result: Dict[int, List[Edge]] = {}
        for edge in self.edges:
            result.setdefault(edge.src, []).append(edge)
        for edges in result.values():
            edges.sort(key=lambda e: (e.dst, e.kind))
        return result

    def edge_set(self) -> FrozenSet[Tuple[int, int]]:
        """The bare (src, dst) relation, ignoring kinds."""
        return frozenset((e.src, e.dst) for e in self.edges)

    def reachable(self, start: Iterable[int] = ()) -> Set[int]:
        """Nodes reachable from ``start`` (default: the entry node)."""
        frontier = list(start) or [self.entry]
        succ = self.successor_map()
        seen: Set[int] = set()
        while frontier:
            node = frontier.pop()
            if node in seen or node == RESET_NODE:
                continue
            seen.add(node)
            frontier.extend(e.dst for e in succ.get(node, ()))
        return seen
