"""CFG analyses used by the transformer, the evaluation and the tests."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from .graph import ControlFlowGraph, RESET_NODE


@dataclass(frozen=True)
class CFGStats:
    """Summary statistics of an instruction-level CFG."""

    num_nodes: int
    num_edges: int
    reachable_nodes: int
    multi_pred_nodes: int
    max_fan_in: int
    max_fan_out: int

    def __str__(self) -> str:
        return (f"nodes={self.num_nodes} edges={self.num_edges} "
                f"reachable={self.reachable_nodes} "
                f"multi-pred={self.multi_pred_nodes} "
                f"max-fan-in={self.max_fan_in} max-fan-out={self.max_fan_out}")


def fan_in(cfg: ControlFlowGraph) -> Dict[int, int]:
    """Number of inbound edges per node (the mux-tree driver metric)."""
    counts: Dict[int, int] = {}
    for edge in cfg.edges:
        counts[edge.dst] = counts.get(edge.dst, 0) + 1
    return counts


def multi_predecessor_nodes(cfg: ControlFlowGraph) -> List[int]:
    """Nodes needing multiplexor blocks (more than one predecessor)."""
    return sorted(node for node, count in fan_in(cfg).items() if count > 1)


def unreachable_nodes(cfg: ControlFlowGraph) -> List[int]:
    reachable = cfg.reachable()
    return sorted(set(range(cfg.num_nodes)) - reachable)


def stats(cfg: ControlFlowGraph) -> CFGStats:
    """Compute summary statistics."""
    inbound = fan_in(cfg)
    outbound: Dict[int, int] = {}
    for edge in cfg.edges:
        if edge.src != RESET_NODE:
            outbound[edge.src] = outbound.get(edge.src, 0) + 1
    return CFGStats(
        num_nodes=cfg.num_nodes,
        num_edges=len(cfg.edges),
        reachable_nodes=len(cfg.reachable()),
        multi_pred_nodes=sum(1 for c in inbound.values() if c > 1),
        max_fan_in=max(inbound.values(), default=0),
        max_fan_out=max(outbound.values(), default=0),
    )
