"""Build a precise instruction-level CFG from a parsed program.

The builder implements the control-flow model shared by the SOFIA
transformer and the simulator:

* plain instructions fall through to their successor;
* conditional branches have a taken edge and a fall-through edge;
* ``jmp``/``call`` have direct edges to their label;
* a direct ``call`` additionally induces ``return`` edges from every ``ret``
  of the callee to the instruction after the call (its *return point*);
* indirect CTIs must carry a ``.targets`` annotation; an annotated ``jalr``
  induces call edges to each target and return edges from each target's
  rets;
* ``halt`` terminates; ``jr ra`` (``ret``) has only the return edges
  attached at its call sites;
* a virtual ``reset`` edge enters the program entry.

Precision requirements (paper §II-D: "this mechanism only works when
control flow can be modeled accurately") are enforced with
:class:`~repro.errors.CFGError`: unannotated indirect CTIs, jumps that cross
function boundaries (tail calls), and code that falls off the end of the
program are rejected.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import CFGError
from ..isa.instructions import Instruction
from ..isa.program import AsmProgram, split_functions
from ..isa.registers import RA
from .graph import ControlFlowGraph, RESET_NODE


def is_return(instr: Instruction) -> bool:
    """True for the canonical return instruction ``jr ra``."""
    return instr.mnemonic == "jr" and instr.rs1 == RA


def function_ranges(program: AsmProgram) -> Dict[str, Tuple[int, int]]:
    """name -> (start, end) index range for every function."""
    return {name: (start, end)
            for name, start, end in split_functions(program)}


def function_of(index: int, ranges: Dict[str, Tuple[int, int]]) -> Optional[str]:
    for name, (start, end) in ranges.items():
        if start <= index < end:
            return name
    return None


def returns_of(program: AsmProgram, start: int, end: int) -> List[int]:
    """Indices of every ``ret`` in the instruction range [start, end)."""
    return [i for i in range(start, end)
            if is_return(program.instructions[i])]


def build_cfg(program: AsmProgram, check_tail_calls: bool = True) -> ControlFlowGraph:
    """Construct the precise instruction-level CFG of ``program``."""
    program.validate()
    instructions = program.instructions
    n = len(instructions)
    if n == 0:
        raise CFGError("cannot build a CFG for an empty program")
    entry_index = program.labels[program.entry]
    if entry_index >= n:
        # same fuzzer-found class as trailing CTI targets below: an
        # entry label bound past the last instruction names no code
        raise CFGError(
            f"entry label {program.entry!r} points past the end of "
            f"the program")
    cfg = ControlFlowGraph(num_nodes=n, entry=entry_index)
    cfg.add_edge(RESET_NODE, cfg.entry, "reset")

    ranges = function_ranges(program)
    rets_by_function = {name: returns_of(program, start, end)
                        for name, (start, end) in ranges.items()}

    def target_index(instr: Instruction, symbol: str) -> int:
        index = program.labels.get(symbol)
        if index is None:
            raise CFGError(
                f"CTI at index targets unknown label {symbol!r} "
                f"(line {instr.line})")
        if index >= n:
            # a trailing label parses and assembles (the vanilla core
            # would fetch-fault there), but it names no instruction, so
            # no precise CFG exists — fuzzer-found totality bug: this
            # used to escape as a raw ValueError from add_edge
            raise CFGError(
                f"CTI targets label {symbol!r} past the end of the "
                f"program (line {instr.line})")
        return index

    for i, instr in enumerate(instructions):
        spec = instr.spec
        if spec.is_halt:
            continue
        if spec.is_branch:
            if instr.symbol is None:
                raise CFGError(f"branch without symbolic target (line {instr.line})")
            cfg.add_edge(i, target_index(instr, instr.symbol), "taken")
            _add_fallthrough(cfg, i, n, instr)
            continue
        if spec.is_jump:  # jmp
            if instr.symbol is None:
                raise CFGError(f"jmp without symbolic target (line {instr.line})")
            dst = target_index(instr, instr.symbol)
            if check_tail_calls:
                src_fn = function_of(i, ranges)
                dst_fn = function_of(dst, ranges)
                if src_fn != dst_fn:
                    raise CFGError(
                        f"jmp from function {src_fn!r} into {dst_fn!r} "
                        f"(tail call) is not supported (line {instr.line})")
            cfg.add_edge(i, dst, "jump")
            continue
        if spec.is_call and not spec.is_indirect:  # call
            if instr.symbol is None:
                raise CFGError(f"call without symbolic target (line {instr.line})")
            callee = instr.symbol
            entry_index = target_index(instr, callee)
            cfg.add_edge(i, entry_index, "call")
            _add_return_edges(cfg, program, i, callee, ranges,
                              rets_by_function, n, instr)
            continue
        if spec.is_indirect:
            if is_return(instr):
                continue  # return edges were attached at call sites
            if not instr.targets:
                raise CFGError(
                    f"indirect {instr.mnemonic} without .targets annotation "
                    f"(line {instr.line}); SOFIA requires a precise CFG")
            for symbol in instr.targets:
                dst = target_index(instr, symbol)
                cfg.add_edge(i, dst, "icall")
                if spec.is_call:
                    _add_return_edges(cfg, program, i, symbol, ranges,
                                      rets_by_function, n, instr)
            continue
        # plain instruction
        _add_fallthrough(cfg, i, n, instr)
    return cfg


def _add_fallthrough(cfg: ControlFlowGraph, i: int, n: int,
                     instr: Instruction) -> None:
    if i + 1 >= n:
        raise CFGError(
            f"control falls off the end of the program after "
            f"{instr.mnemonic!r} (line {instr.line})")
    cfg.add_edge(i, i + 1, "fall")


def _add_return_edges(cfg: ControlFlowGraph, program: AsmProgram,
                      call_index: int, callee: str,
                      ranges: Dict[str, Tuple[int, int]],
                      rets_by_function: Dict[str, List[int]],
                      n: int, instr: Instruction) -> None:
    if call_index + 1 >= n:
        raise CFGError(
            f"call at the end of the program has no return point "
            f"(line {instr.line})")
    if callee not in ranges:
        raise CFGError(
            f"call target {callee!r} is not a function entry (line {instr.line})")
    for ret_index in rets_by_function[callee]:
        cfg.add_edge(ret_index, call_index + 1, "return")
