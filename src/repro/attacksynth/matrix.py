"""The detection matrix: attack family x target -> outcome counts.

The matrix is the campaign's figure-ready aggregate (experiment E16): it
generalizes the hand-written attack table (E8) from one victim to the
whole program space the fuzz generators cover.  Cells count observed
outcomes; ``hijacked`` additionally counts runs whose actuator received
the unlock value (a subset of the survived/crashed cells).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from .model import (FAMILIES, OBSERVED, OBS_CRASHED, OBS_DETECTED,
                    OBS_LIMIT, OBS_NA, OBS_SURVIVED_CLEAN,
                    OBS_SURVIVED_DIVERGENT, TARGET_ECB, TARGET_SOFIA,
                    TARGET_VANILLA, TARGET_XOR)

#: canonical column order
_TARGET_ORDER = (TARGET_SOFIA, TARGET_VANILLA, TARGET_XOR, TARGET_ECB)

#: matrix-cell outcome -> CSV column name
_CSV_FIELD = {
    OBS_DETECTED: "detected",
    OBS_CRASHED: "crashed",
    OBS_SURVIVED_CLEAN: "survived_clean",
    OBS_SURVIVED_DIVERGENT: "survived_divergent",
    OBS_LIMIT: "limit",
    OBS_NA: "not_applicable",
}


class DetectionMatrix:
    """Accumulates (family, target, outcome) observations."""

    def __init__(self) -> None:
        self._cells: Dict[Tuple[str, str], Dict[str, int]] = {}
        self._hijacked: Dict[Tuple[str, str], int] = {}

    def observe(self, family: str, target: str, outcome: str,
                hijacked: bool = False) -> None:
        cell = self._cells.setdefault((family, target),
                                      {o: 0 for o in OBSERVED})
        cell[outcome] = cell.get(outcome, 0) + 1
        if hijacked:
            key = (family, target)
            self._hijacked[key] = self._hijacked.get(key, 0) + 1

    def families(self) -> List[str]:
        present = {family for family, _ in self._cells}
        ordered = [f for f in FAMILIES if f in present]
        return ordered + sorted(present - set(FAMILIES))

    def targets(self) -> List[str]:
        present = {target for _, target in self._cells}
        ordered = [t for t in _TARGET_ORDER if t in present]
        return ordered + sorted(present - set(_TARGET_ORDER))

    def cell(self, family: str, target: str) -> Dict[str, int]:
        return dict(self._cells.get((family, target),
                                    {o: 0 for o in OBSERVED}))

    def total(self, family: str, target: str) -> int:
        return sum(self._cells.get((family, target), {}).values())

    def hijack_count(self, family: str, target: str) -> int:
        return self._hijacked.get((family, target), 0)

    def csv_rows(self) -> List[Dict[str, int]]:
        """Rows for :func:`repro.eval.export.attacksynth_csv`."""
        rows = []
        for family in self.families():
            for target in self.targets():
                if (family, target) not in self._cells:
                    continue
                cell = self.cell(family, target)
                row = {"family": family, "target": target,
                       "hijacked": self.hijack_count(family, target),
                       "total": self.total(family, target)}
                for outcome, field in _CSV_FIELD.items():
                    row[field] = cell.get(outcome, 0)
                rows.append(row)
        return rows

    def to_record(self) -> Dict[str, Dict[str, Dict[str, int]]]:
        """Nested dict for the canonical JSON export (family>target)."""
        record: Dict[str, Dict[str, Dict[str, int]]] = {}
        for family in self.families():
            record[family] = {}
            for target in self.targets():
                if (family, target) not in self._cells:
                    continue
                cell = {outcome: count
                        for outcome, count in self.cell(family,
                                                        target).items()
                        if count}
                cell["hijacked"] = self.hijack_count(family, target)
                cell["total"] = self.total(family, target)
                record[family][target] = cell
        return record

    def render(self) -> str:
        """Human-readable table, one line per populated cell."""
        header = (f"{'family':<18} {'target':<9} {'det':>5} {'crash':>5} "
                  f"{'clean':>5} {'diverg':>6} {'limit':>5} {'hijack':>6} "
                  f"{'total':>5}")
        lines = [header, "-" * len(header)]
        for family in self.families():
            for target in self.targets():
                if (family, target) not in self._cells:
                    continue
                cell = self.cell(family, target)
                if self.total(family, target) == cell[OBS_NA]:
                    continue  # the family has no analogue on this target
                lines.append(
                    f"{family:<18} {target:<9} "
                    f"{cell[OBS_DETECTED]:>5} {cell[OBS_CRASHED]:>5} "
                    f"{cell[OBS_SURVIVED_CLEAN]:>5} "
                    f"{cell[OBS_SURVIVED_DIVERGENT]:>6} "
                    f"{cell[OBS_LIMIT]:>5} "
                    f"{self.hijack_count(family, target):>6} "
                    f"{self.total(family, target):>5}")
        return "\n".join(lines)
