"""Mechanical attack enumeration from an image's CFG and layout.

Given *any* protected image (a hand workload or a fuzz-generated program),
:func:`enumerate_instances` derives concrete attack instances straight
from the block metadata the transformer records:

* **control-flow bends** — every CTI in the image can be diverted to
  every block entry (``base`` of execution blocks, ``base+4``/``base+8``
  of multiplexors).  A diverted edge that is *sealed* is a legitimate CFG
  edge (``edge-ok``); every other diversion must garble the
  control-flow-dependent decryption and fail MAC verification
  (``detected``).
* **wrong-entry bends** — transfers to entry offsets that mismatch the
  block kind (offset 4/8 of an execution block, offset 0/12 of a
  multiplexor) and to addresses past the image: invalid-entry,
  wrong-MAC-key and fetch-fault detection paths.
* **block replay / splice** — substitute the authenticated ciphertext of
  one block over another block of the same image.  Detected when the
  victim block is on the clean execution's path; provably benign
  (bit-identical run) when it is not.
* **stale-nonce replay** — re-seal the image under a fresh nonce (the
  ``renonce`` software-update path), then splice one *old-epoch* block
  back in: the cross-version replay the paper's unique-ω requirement
  exists to stop.
* **code injection** — the plaintext actuator-unlock gadget
  (:func:`repro.attacks.actions.gadget_words`) and the same gadget
  encrypted under *attacker-chosen* keys, written over blocks on the
  execution path.
* **store-slot / CTI-slot forgeries** — payloads re-sealed with the
  *real* device keys (modelling a successful MAC forgery) whose store or
  control transfer sits in a forbidden slot: the hardware's structural
  checks must catch what MAC verification cannot.

Every instance carries a plaintext-analogue materialization (addresses
mapped into the vanilla executable's smaller address space) so the same
logical attack also runs against the undefended and ISR-baseline cores.
Enumeration is pure: the same image, executable and RNG state always
yield the same instance list, which is what keeps campaigns
deterministic at any ``--jobs`` value.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..attacks.actions import gadget_instructions, gadget_words
from ..crypto.keys import DeviceKeys
from ..errors import DecodingError
from ..isa.encoding import decode, encode
from ..isa.instructions import Instruction, make_nop
from ..isa.program import Executable
from ..isa.registers import SP
from ..transform.encrypt import reseal_block
from ..transform.image import BlockRecord, SofiaImage
from .model import (AttackInstance, EXPECT_BENIGN, EXPECT_DETECTED,
                    EXPECT_EDGE_OK)

#: per-family instance quotas for one program (the default plan)
DEFAULT_PLAN: Dict[str, int] = {
    "bend": 5,
    "bend-benign": 1,
    "bend-entry-offset": 3,
    "replay": 2,
    "replay-benign": 1,
    "stale-nonce": 1,
    "stale-nonce-benign": 1,
    "inject-plain": 2,
    "inject-enc": 1,
    "forge-store-slot": 1,
    "forge-cti-slot": 1,
}

#: fixed offset mixed into the device-key seed to derive the attacker's
#: (guessed, necessarily wrong) keys for encrypted injection
ATTACKER_SEED_SALT = 0xA77ACC


def sealed_edges(image: SofiaImage) -> Set[Tuple[int, int]]:
    """All (prevPC, entry) pairs the image's keystream seals."""
    edges: Set[Tuple[int, int]] = set()
    for record in image.blocks:
        if record.kind == "exec":
            for prev in record.entry_prev_pcs:
                edges.add((prev, record.base))
        else:
            for slot, prev in enumerate(record.entry_prev_pcs):
                edges.add((prev, record.base + 4 * (slot + 1)))
    return edges


def block_entries(image: SofiaImage) -> List[Tuple[BlockRecord, int]]:
    """Every valid entry address of the image, with its block record."""
    entries: List[Tuple[BlockRecord, int]] = []
    for record in image.blocks:
        if record.kind == "exec":
            entries.append((record, record.base))
        else:
            entries.append((record, record.base + 4))
            entries.append((record, record.base + 8))
    return entries


def cti_sources(image: SofiaImage) -> List[int]:
    """Addresses of every control-transfer instruction in the image.

    The layout pins CTIs to the final payload slot, i.e. the last word of
    their block — these are exactly the points an attacker can divert.
    """
    sources: List[int] = []
    for record in image.blocks:
        if not record.plain_payload:
            continue
        address = record.base + image.block_bytes - 4
        try:
            instr = decode(record.plain_payload[-1], address)
        except DecodingError:
            continue
        if instr.is_cti:
            sources.append(address)
    return sources


def _map_plain_word(address: int, image: SofiaImage,
                    exe: Executable) -> int:
    """Map an image address onto the vanilla executable's text section."""
    n_words = len(exe.code_words)
    index = ((address - image.code_base) // 4) % max(1, n_words)
    return exe.code_base + 4 * index


def _map_plain_span(address: int, count: int, image: SofiaImage,
                    exe: Executable) -> Optional[int]:
    """Like :func:`_map_plain_word` but clamped so ``count`` words fit."""
    n_words = len(exe.code_words)
    if count > n_words:
        return None
    index = ((address - image.code_base) // 4) % n_words
    index = min(index, n_words - count)
    return exe.code_base + 4 * index


def _plain_pokes(base_address: Optional[int],
                 words: Sequence[int]) -> Tuple[Tuple[int, int], ...]:
    if base_address is None:
        return ()
    return tuple((base_address + 4 * k, word & 0xFFFFFFFF)
                 for k, word in enumerate(words))


def _image_pokes(base: int,
                 words: Sequence[int]) -> Tuple[Tuple[int, int], ...]:
    return tuple((base + 4 * k, word & 0xFFFFFFFF)
                 for k, word in enumerate(words))


def _sample(rng: random.Random, population: List, count: int) -> List:
    if count >= len(population):
        return list(population)
    return rng.sample(population, count)


def _forged_payload(kind: str, capacity: int,
                    entry: int) -> Optional[List[Instruction]]:
    """Payload for the slot-abuse forgeries, or None if inexpressible."""
    if capacity < 2:
        return None
    if kind == "store":
        first = Instruction("sw", rs2=0, rs1=SP, imm=-4)
    else:
        first = Instruction("jmp", imm=entry)
    return ([first] + [make_nop()] * (capacity - 2)
            + [Instruction("halt")])


def enumerate_instances(image: SofiaImage, exe: Executable,
                        keys: DeviceKeys, traversed: Set[int],
                        rng: random.Random, key_seed: int,
                        plan: Optional[Dict[str, int]] = None
                        ) -> List[AttackInstance]:
    """Enumerate concrete attacks against one metadata-carrying image.

    ``traversed`` is the set of block bases the *clean* run fetches —
    it decides whether a block substitution is expected ``detected``
    (the tampered block will be fetched and must fail verification) or
    ``benign`` (it provably cannot influence the run).
    """
    quotas = dict(DEFAULT_PLAN)
    quotas.update(plan or {})
    # every structural expectation (store slots, seal width, renonce
    # surface) derives from the image's embedded design point
    profile = image.profile
    config = profile.to_config(code_base=image.code_base)
    sealed = sealed_edges(image)
    entries = block_entries(image)
    sources = cti_sources(image)
    bases = [record.base for record in image.blocks]
    records = {record.base: record for record in image.blocks}
    traversed_bases = [b for b in bases if b in traversed]
    untraversed_bases = [b for b in bases if b not in traversed]
    instances: List[AttackInstance] = []

    # -- control-flow bends ------------------------------------------------
    bend_candidates = [(src, target) for src in sources
                       for _record, target in entries]
    detected_bends = [c for c in bend_candidates if c not in sealed]
    sealed_bends = [c for c in bend_candidates if c in sealed]
    for src, target in _sample(rng, detected_bends, quotas["bend"]):
        instances.append(AttackInstance(
            family="bend", name=f"bend-{src:06x}-{target:06x}",
            description=f"divert CTI at 0x{src:08x} to entry 0x{target:08x}",
            expected=EXPECT_DETECTED, prev_pc=src, entry_pc=target,
            plain_entry=_map_plain_word(target, image, exe)))
    for src, target in _sample(rng, sealed_bends, quotas["bend-benign"]):
        instances.append(AttackInstance(
            family="bend", name=f"bend-sealed-{src:06x}-{target:06x}",
            description=(f"take the sealed edge 0x{src:08x} -> "
                         f"0x{target:08x} (legitimate CFG edge)"),
            expected=EXPECT_EDGE_OK, prev_pc=src, entry_pc=target,
            plain_entry=_map_plain_word(target, image, exe)))

    # -- wrong entry offsets ----------------------------------------------
    if sources:
        offset_candidates: List[Tuple[int, str]] = []
        for record in image.blocks:
            wrong = (4, 8, 12) if record.kind == "exec" else (0, 12)
            for offset in wrong:
                target = record.base + offset
                offset_candidates.append(
                    (target, f"offset {offset} of a {record.kind} block"))
        end_of_image = image.code_base + 4 * len(image.words)
        offset_candidates.append((end_of_image, "first address past the image"))
        for target, why in _sample(rng, offset_candidates,
                                   quotas["bend-entry-offset"]):
            src = rng.choice(sources)
            instances.append(AttackInstance(
                family="bend-entry-offset",
                name=f"bendoff-{src:06x}-{target:06x}",
                description=f"divert CTI at 0x{src:08x} to {why}",
                expected=EXPECT_DETECTED, prev_pc=src, entry_pc=target,
                plain_entry=_map_plain_word(target, image, exe)))

    # -- block replay / splice --------------------------------------------
    def replay_instance(victim: int, expected: str,
                        suffix: str) -> Optional[AttackInstance]:
        donors = [b for b in bases if b != victim]
        if not donors:
            return None
        donor = rng.choice(donors)
        words = image.block_words_at(donor)
        plain_span = _map_plain_span(victim, image.block_words, image, exe)
        donor_span = _map_plain_span(donor, image.block_words, image, exe)
        plain_writes = ()
        if plain_span is not None and donor_span is not None:
            donor_index = (donor_span - exe.code_base) // 4
            plain_writes = _plain_pokes(
                plain_span,
                exe.code_words[donor_index:donor_index + image.block_words])
        return AttackInstance(
            family="replay", name=f"replay{suffix}-{donor:06x}-{victim:06x}",
            description=(f"splice authenticated block 0x{donor:08x} over "
                         f"block 0x{victim:08x}"),
            expected=expected, writes=_image_pokes(victim, words),
            plain_writes=plain_writes,
            plain_applicable=bool(plain_writes))

    for victim in _sample(rng, traversed_bases, quotas["replay"]):
        instance = replay_instance(victim, EXPECT_DETECTED, "")
        if instance is not None:
            instances.append(instance)
    for victim in _sample(rng, untraversed_bases, quotas["replay-benign"]):
        instance = replay_instance(victim, EXPECT_BENIGN, "-dead")
        if instance is not None:
            instances.append(instance)

    # -- stale-nonce replay across renonce epochs -------------------------
    # the cross-epoch surface only exists when the deployment rotates its
    # nonce; a fixed-nonce profile has no old-epoch ciphertext to replay
    entry_base = image.block_base_of(image.entry)
    if profile.supports_renonce:
        new_nonce = profile.next_nonce(image.nonce)

        def stale_instance(victim: int, expected: str,
                           suffix: str) -> AttackInstance:
            return AttackInstance(
                family="stale-nonce", name=f"stale{suffix}-{victim:06x}",
                description=(f"after renonce to ω=0x{new_nonce:04x}, replay "
                             f"epoch-ω=0x{image.nonce:04x} ciphertext of "
                             f"block 0x{victim:08x}"),
                expected=expected, renonce=new_nonce,
                writes=_image_pokes(victim, image.block_words_at(victim)),
                plain_applicable=False)

        if quotas["stale-nonce"] > 0:
            instances.append(stale_instance(entry_base, EXPECT_DETECTED, ""))
        for victim in _sample(rng, untraversed_bases,
                              quotas["stale-nonce-benign"]):
            instances.append(stale_instance(victim, EXPECT_BENIGN, "-dead"))

    # -- plaintext gadget injection ---------------------------------------
    gadget = gadget_words()
    inject_targets = [entry_base] if quotas["inject-plain"] > 0 else []
    other_traversed = [b for b in traversed_bases if b != entry_base]
    inject_targets += _sample(rng, other_traversed,
                              max(0, quotas["inject-plain"] - 1))
    for position, base in enumerate(inject_targets):
        if position == 0:
            # at the program entry the gadget runs first on an undefended
            # core: the one instance whose plaintext-analogue verdict is
            # pinned ("viable" = actuator unlocked / output diverged)
            entry_index = (exe.entry - exe.code_base) // 4
            fits = entry_index + len(gadget) <= len(exe.code_words)
            plain_base = exe.entry if fits else None
            expected_plain = "viable" if fits else None
        else:
            plain_base = _map_plain_span(base, len(gadget), image, exe)
            expected_plain = None
        instances.append(AttackInstance(
            family="inject-plain", name=f"inject-plain-{base:06x}",
            description=(f"write the plaintext unlock gadget over "
                         f"block 0x{base:08x}"),
            expected=EXPECT_DETECTED, writes=_image_pokes(base, gadget),
            plain_writes=_plain_pokes(plain_base, gadget),
            plain_applicable=plain_base is not None,
            expected_plain=expected_plain))

    # -- attacker-encrypted injection -------------------------------------
    entry_record = records[entry_base]
    if quotas["inject-enc"] > 0:
        attacker_keys = DeviceKeys.from_seed(key_seed ^ ATTACKER_SEED_SALT)
        payload = list(gadget_instructions())[:entry_record.capacity - 1]
        while len(payload) < entry_record.capacity - 1:
            payload.append(make_nop())
        payload.append(Instruction("halt"))
        forged = reseal_block(image, entry_record, payload, attacker_keys)
        plain_base = _map_plain_span(entry_base, len(forged), image, exe)
        instances.append(AttackInstance(
            family="inject-enc", name=f"inject-enc-{entry_base:06x}",
            description=("seal the gadget over the entry block under "
                         "attacker-guessed keys"),
            expected=EXPECT_DETECTED,
            writes=_image_pokes(entry_base, forged),
            plain_writes=_plain_pokes(plain_base, forged),
            plain_applicable=plain_base is not None))

    # -- slot-abuse forgeries (successful-forgery model, real keys) -------
    for kind, family, quota_key in (
            ("store", "forge-store-slot", "forge-store-slot"),
            ("cti", "forge-cti-slot", "forge-cti-slot")):
        if quotas[quota_key] <= 0:
            continue
        if kind == "store" and not config.store_forbidden_slots(
                entry_record.capacity):
            continue  # 6-word geometry: no forbidden slots to abuse (E6)
        payload = _forged_payload(kind, entry_record.capacity, image.entry)
        if payload is None:
            continue
        forged = reseal_block(image, entry_record, payload, keys)
        plain_words = [encode(instr) for instr in payload]
        plain_base = _map_plain_span(entry_base, len(plain_words),
                                     image, exe)
        what = ("a store in a forbidden slot" if kind == "store"
                else "a control transfer in a mid-block slot")
        instances.append(AttackInstance(
            family=family, name=f"{family}-{entry_base:06x}",
            description=(f"forge a validly-MACed entry block carrying "
                         f"{what}"),
            expected=EXPECT_DETECTED,
            writes=_image_pokes(entry_base, forged),
            plain_writes=_plain_pokes(plain_base, plain_words),
            plain_applicable=plain_base is not None))

    return instances


def enumerate_geometric(image: SofiaImage, rng: random.Random,
                        plan: Optional[Dict[str, int]] = None
                        ) -> List[AttackInstance]:
    """Metadata-less enumeration over a raw ``.sofia`` image.

    Deserialized images carry no block records, so expected verdicts are
    unknown (``None``) and only the geometric families apply: bends
    between block-shaped addresses, same-image replay, and plaintext
    injection at the entry block.  Outcomes are purely observational.
    """
    quotas = dict(DEFAULT_PLAN)
    quotas.update(plan or {})
    block_bytes = image.block_bytes
    bases = [image.code_base + block_bytes * i
             for i in range(image.num_blocks)]
    if not bases:
        return []
    sources = [base + block_bytes - 4 for base in bases]
    targets = [base + offset for base in bases for offset in (0, 4, 8, 12)]
    instances: List[AttackInstance] = []
    bend_quota = quotas["bend"] + quotas["bend-entry-offset"]
    candidates = [(s, t) for s in sources for t in targets]
    for src, target in _sample(rng, candidates, bend_quota):
        instances.append(AttackInstance(
            family="bend", name=f"bend-{src:06x}-{target:06x}",
            description=f"divert 0x{src:08x} to 0x{target:08x}",
            expected=None, prev_pc=src, entry_pc=target,
            plain_applicable=False))
    for _ in range(quotas["replay"]):
        if len(bases) < 2:
            break
        donor, victim = rng.sample(bases, 2)
        instances.append(AttackInstance(
            family="replay", name=f"replay-{donor:06x}-{victim:06x}",
            description=(f"splice block 0x{donor:08x} over "
                         f"0x{victim:08x}"),
            expected=None,
            writes=_image_pokes(victim, image.block_words_at(donor)),
            plain_applicable=False))
    if quotas["inject-plain"] > 0:
        entry_base = image.block_base_of(image.entry)
        instances.append(AttackInstance(
            family="inject-plain",
            name=f"inject-plain-{entry_base:06x}",
            description=("write the plaintext unlock gadget over the "
                         "entry block"),
            expected=None, writes=_image_pokes(entry_base, gadget_words()),
            plain_applicable=False))
    return instances
