"""repro.attacksynth — systematic attack synthesis (ISSUE 4, E16).

The paper's headline claim is that SOFIA detects *every* control-flow
bend, code injection and block replay.  The hand-written campaign
(:mod:`repro.attacks`, E8) argues this with one victim; this package
argues it over the program space: it takes **any** protected image —
a hand workload or a fuzz-generated specimen — and mechanically
enumerates concrete attack instances from its CFG and layout metadata,
each with an analytically expected verdict, then runs every instance
against the SOFIA core, the undefended core and (optionally) the ISR
baselines, cross-checking prediction against observation.

:mod:`repro.attacksynth.model`
    instance/outcome dataclasses, expected-verdict and matrix-cell
    vocabulary.

:mod:`repro.attacksynth.enumerate`
    the enumerator: control-flow bends, wrong-entry-offset bends, block
    replay/splice, stale-nonce replay across ``renonce`` epochs,
    plaintext and attacker-encrypted gadget injection, and
    store-slot/CTI-slot forgeries sealed with real keys (the
    successful-forgery model that isolates the structural checks).

:mod:`repro.attacksynth.classify`
    materialization (image mutation hooks + PC warps) and observational
    outcome classification against the clean run.

:mod:`repro.attacksynth.matrix`
    the E16 detection matrix (family x target -> outcome counts).

:mod:`repro.attacksynth.campaign`
    deterministic campaigns over :mod:`repro.runner`; drives the
    ``repro attacksynth`` CLI and exports JSON/CSV through
    :mod:`repro.eval.export`.

Quickstart::

    from repro.attacksynth import run_attacksynth
    report = run_attacksynth(programs=50, seed=7)
    assert report.ok, report.render()      # no instance beats SOFIA
"""

from .campaign import (DEFAULT_PROGRAMS, DEFAULT_SEED, SynthReport,
                       run_attacksynth, run_attacksynth_image)
from .classify import (classify_result, materialize_image, observables,
                       run_plain_instance, run_sofia_instance)
from .enumerate import (DEFAULT_PLAN, block_entries, cti_sources,
                        enumerate_geometric, enumerate_instances,
                        sealed_edges)
from .matrix import DetectionMatrix
from .model import (AttackInstance, FAMILIES, InstanceResult,
                    ProgramOutcome)

__all__ = [
    "run_attacksynth", "run_attacksynth_image", "SynthReport",
    "DEFAULT_SEED", "DEFAULT_PROGRAMS",
    "AttackInstance", "InstanceResult", "ProgramOutcome", "FAMILIES",
    "enumerate_instances", "enumerate_geometric", "sealed_edges",
    "block_entries", "cti_sources", "DEFAULT_PLAN",
    "classify_result", "observables", "materialize_image",
    "run_sofia_instance", "run_plain_instance",
    "DetectionMatrix",
]
