"""Data model of the attack-synthesis engine.

An :class:`AttackInstance` is one *concrete, mechanically derived* attack
against one protected program: a control-flow warp, a set of program-memory
writes, or both — materialized in the SOFIA image's address space and (when
the attack has a plaintext analogue) in the vanilla/ISR address space.  The
enumerator (:mod:`repro.attacksynth.enumerate`) attaches an **expected
verdict** derived analytically from the image's CFG/layout metadata; the
classifier (:mod:`repro.attacksynth.classify`) attaches **observed
outcomes** per target; the campaign cross-checks the two.

Expected verdicts (what the SOFIA model *predicts*):

``detected``
    the mutation is SI/CFI-violating; the hardware must reset before any
    effect commits.  Every such instance is one online forgery attempt in
    the sense of paper §IV-A, so the campaign's aggregate detection rate
    is held against :func:`repro.security.bounds.empirical_check`.
``benign``
    the mutation provably cannot influence the run (e.g. it rewrites a
    block the clean execution never fetches); the run must be
    observably identical to the clean one.
``edge-ok``
    a control-flow bend along a *sealed* edge: the front-end must accept
    the first traversal (it is a legitimate CFG edge), after which the
    run may do anything the program allows.
``None``
    unknown — metadata-less enumeration over a raw ``.sofia`` file.

Observed outcomes per target are the strings in :data:`OBSERVED`; an
instance with ``expected == "detected"`` whose SOFIA outcome is anything
but ``detected`` is **viable against SOFIA** — the finding class the whole
engine exists to prove empty.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

#: attack families the enumerator emits, in canonical matrix order
FAMILIES: Tuple[str, ...] = (
    "bend", "bend-entry-offset", "replay", "stale-nonce",
    "inject-plain", "inject-enc", "forge-store-slot", "forge-cti-slot")

#: expected-verdict values
EXPECT_DETECTED = "detected"
EXPECT_BENIGN = "benign"
EXPECT_EDGE_OK = "edge-ok"

#: observed-outcome values (matrix cells)
OBS_DETECTED = "detected"
OBS_CRASHED = "crashed"
OBS_SURVIVED_CLEAN = "survived-clean"
OBS_SURVIVED_DIVERGENT = "survived-divergent"
OBS_LIMIT = "limit"
OBS_NA = "n/a"

OBSERVED: Tuple[str, ...] = (
    OBS_DETECTED, OBS_CRASHED, OBS_SURVIVED_CLEAN, OBS_SURVIVED_DIVERGENT,
    OBS_LIMIT, OBS_NA)

#: target names (matrix columns)
TARGET_SOFIA = "sofia"
TARGET_VANILLA = "vanilla"
TARGET_XOR = "xor-isr"
TARGET_ECB = "ecb-isr"


@dataclass(frozen=True)
class AttackInstance:
    """One concrete attack, materialized for every target address space."""

    family: str
    name: str                       # unique within its program
    description: str
    expected: Optional[str]         # expected SOFIA verdict (see module doc)
    #: control-flow warp in image space: start the machine at
    #: ``entry_pc`` with ``prev_pc`` as the inbound edge (a diverted CTI)
    prev_pc: Optional[int] = None
    entry_pc: Optional[int] = None
    #: program-memory writes in image space (address, ciphertext word)
    writes: Tuple[Tuple[int, int], ...] = ()
    #: run against the image re-sealed under this nonce (stale-nonce
    #: replay: ``writes`` then splice *old*-epoch ciphertext back in)
    renonce: Optional[int] = None
    #: plaintext-analogue materialization (vanilla / ISR machines)
    plain_entry: Optional[int] = None
    plain_writes: Tuple[Tuple[int, int], ...] = ()
    plain_applicable: bool = True
    #: expected verdict against the *undefended* core ("viable" when the
    #: attack must succeed there, e.g. gadget injection at the entry)
    expected_plain: Optional[str] = None


@dataclass
class InstanceResult:
    """Observed outcomes of one instance across all targets."""

    family: str
    name: str
    description: str
    expected: Optional[str]
    expected_plain: Optional[str]
    #: target name -> observed outcome string
    outcomes: Dict[str, str] = field(default_factory=dict)
    #: targets whose actuator received the unlock value
    hijacked: Tuple[str, ...] = ()
    #: SOFIA violation kind when detected ("integrity", "store-slot", ...)
    violation: Optional[str] = None
    #: for bends: did the bent edge itself pass the front-end?
    edge_ok: Optional[bool] = None

    @property
    def missed(self) -> bool:
        """Viable against SOFIA: predicted detected, not detected."""
        return (self.expected == EXPECT_DETECTED
                and self.outcomes.get(TARGET_SOFIA) != OBS_DETECTED)

    @property
    def benign_anomaly(self) -> bool:
        """Predicted no-effect, but the run observably changed."""
        return (self.expected == EXPECT_BENIGN
                and self.outcomes.get(TARGET_SOFIA) != OBS_SURVIVED_CLEAN)

    @property
    def edge_anomaly(self) -> bool:
        """A sealed (legitimate) edge the front-end refused."""
        return self.expected == EXPECT_EDGE_OK and self.edge_ok is False

    @property
    def plain_anomaly(self) -> bool:
        """Pinned-viable plaintext analogue that failed to succeed.

        The entry-point gadget injection must beat the undefended core
        (actuator unlocked or output diverged) — it is the structural
        witness for the campaign's nonzero vanilla success rate.
        """
        if self.expected_plain != "viable":
            return False
        outcome = self.outcomes.get(TARGET_VANILLA)
        if outcome is None:
            return False  # vanilla target not run (image mode)
        return not (outcome == OBS_SURVIVED_DIVERGENT
                    or TARGET_VANILLA in self.hijacked)


@dataclass
class ProgramOutcome:
    """Everything one worker returns for one protected program."""

    index: int
    label: str                      # e.g. "loop/5f2e... bw=8"
    blocks: int = 0
    instances: List[InstanceResult] = field(default_factory=list)
    build_error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.build_error is None
