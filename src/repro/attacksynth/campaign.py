"""Attack-synthesis campaigns over the parallel runner (experiment E16).

One *task* is one protected program: the worker builds it (generate →
assemble → transform), runs the clean baselines, enumerates its attack
instances and runs every instance against every target, returning a
picklable :class:`ProgramOutcome`.  All aggregation — the detection
matrix, anomaly lists, the empirical-vs-analytic bound cross-check —
happens in the parent in task order, so a campaign is deterministic in
every knob: the same ``seed``/``programs`` produce byte-identical JSON
and CSV artifacts at any ``--jobs`` value (the export deliberately
carries no wall-clock or worker-count field).

Program sources, in precedence order:

* an explicit ``.sofia`` image (:func:`run_attacksynth_image`) —
  metadata-less, purely observational;
* a fuzzing corpus directory (``corpus_dir``) — coverage-selected
  specimens from :mod:`repro.fuzz` become the victims, topped up with
  fresh genomes when the corpus is smaller than ``programs``;
* fresh fuzz genomes drawn deterministically from the campaign seed.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..baselines.isr import EcbIsrMachine, XorIsrMachine
from ..crypto.keys import DeviceKeys, derive_key
from ..errors import ReproError
from ..eval.export import attacksynth_csv, attacksynth_json
from ..fuzz.corpus import Corpus
from ..fuzz.generators import Genome, generate, random_genome
from ..fuzz.oracle import build_program
from ..isa.assembler import assemble
from ..obs import phase as obs_phase
from ..runner import (ResultStore, ShardSpec, run_tasks, run_tasks_stored,
                      task_key, task_rng)
from ..runner.cache import DEFAULT_KEY_SEED
from ..security.bounds import EmpiricalCheck, empirical_check
from ..sim.sofia import SofiaMachine
from ..sim.vanilla import VanillaMachine
from ..transform.image import SofiaImage
from ..transform.profile import DEFAULT_PROFILE, ProtectionProfile
from ..transform.transformer import transform
from .classify import (PLAIN_BUDGET, SOFIA_BUDGET, observables,
                       run_plain_instance, run_sofia_instance)
from .enumerate import enumerate_geometric, enumerate_instances
from .matrix import DetectionMatrix
from .model import (EXPECT_BENIGN, EXPECT_DETECTED, EXPECT_EDGE_OK,
                    InstanceResult, OBS_NA, OBS_SURVIVED_DIVERGENT,
                    ProgramOutcome, TARGET_ECB, TARGET_SOFIA,
                    TARGET_VANILLA, TARGET_XOR)

DEFAULT_SEED = 0xA77AC2
DEFAULT_PROGRAMS = 200

# per-process context installed by the pool initializer
_WORKER_CTX: Optional[tuple] = None


def _init_synth_worker(key_seed: int, campaign_seed: int,
                       per_program: Optional[int],
                       include_baselines: bool,
                       profile: ProtectionProfile,
                       engine: Optional[str] = None) -> None:
    global _WORKER_CTX
    # provision the device for the campaign's design point: the keys
    # bind to the profile's cipher exactly as a manufactured device would
    keys = DeviceKeys.from_seed(key_seed).for_profile(profile)
    xor_key = derive_key(key_seed, "xor-isr") & 0xFFFFFFFF
    ecb_key = derive_key(key_seed, "ecb-isr")
    _WORKER_CTX = (keys, key_seed, campaign_seed, per_program,
                   include_baselines, xor_key, ecb_key, profile, engine)


def _clean_sofia(image: SofiaImage, keys: DeviceKeys,
                 engine: Optional[str] = None):
    """Clean run + the traversed block bases + the machine itself.

    With ``engine="batch"`` the clean machine bit-slice-warms the image's
    whole front end on its first ``run()``; the caller then reuses it as
    the cache donor for every attack-instance machine.
    """
    machine = SofiaMachine(image, keys, engine=engine)
    traversed = set()
    block_base_of = image.block_base_of
    machine.on_commit = lambda pc, _instr: traversed.add(block_base_of(pc))
    result = machine.run(max_instructions=SOFIA_BUDGET)
    return result, traversed, machine


def _program_label(index: int, genome: Genome) -> str:
    return (f"p{index:03d}:{genome.shape}/s{genome.seed:x}"
            f"/bw{genome.block_words}")


def _sofia_instance_result(instance, image: SofiaImage, keys: DeviceKeys,
                           clean_obs, donor=None
                           ) -> Tuple[InstanceResult, bool]:
    """Run one instance on the SOFIA core into a fresh result record."""
    result = InstanceResult(
        family=instance.family, name=instance.name,
        description=instance.description, expected=instance.expected,
        expected_plain=instance.expected_plain)
    sofia_out, hijacked, violation, edge_ok = run_sofia_instance(
        instance, image, keys, clean_obs, donor=donor)
    result.outcomes[TARGET_SOFIA] = sofia_out
    result.violation = violation
    result.edge_ok = edge_ok
    return result, hijacked


def _synth_task(task: Tuple[int, Genome]) -> ProgramOutcome:
    """Worker: build one program, enumerate and run all its attacks."""
    (keys, key_seed, campaign_seed, per_program,
     include_baselines, xor_key, ecb_key, profile, engine) = _WORKER_CTX
    index, genome = task
    outcome = ProgramOutcome(index=index,
                             label=_program_label(index, genome))
    try:
        program = build_program(generate(genome))
        exe = assemble(program)
        image = transform(
            program, keys, nonce=genome.nonce,
            profile=profile.with_block_words(genome.block_words))
    except ReproError as exc:
        outcome.build_error = f"{type(exc).__name__}: {exc}"
        return outcome
    outcome.blocks = image.num_blocks

    plain_targets = [(TARGET_VANILLA,
                      lambda: VanillaMachine(exe))]
    if include_baselines:
        plain_targets.append(
            (TARGET_XOR, lambda: XorIsrMachine(exe, xor_key)))
        plain_targets.append(
            (TARGET_ECB, lambda: EcbIsrMachine(exe, ecb_key)))

    sofia_clean, traversed, clean_machine = _clean_sofia(image, keys,
                                                         engine=engine)
    donor = clean_machine if engine == "batch" else None
    plain_clean = {}
    for name, make in plain_targets:
        plain_clean[name] = make().run(max_instructions=PLAIN_BUDGET)
    if not sofia_clean.ok:
        outcome.build_error = (f"clean SOFIA run failed: "
                               f"{sofia_clean.summary()}")
        return outcome
    for name, _make in plain_targets:
        if not plain_clean[name].ok:
            outcome.build_error = (f"clean {name} run failed: "
                                   f"{plain_clean[name].summary()}")
            return outcome
    sofia_obs = observables(sofia_clean)
    plain_obs = {name: observables(result)
                 for name, result in plain_clean.items()}

    rng = task_rng(campaign_seed, "attacksynth", index)
    instances = enumerate_instances(image, exe, keys, traversed, rng,
                                    key_seed)
    if per_program is not None:
        instances = instances[:per_program]

    for instance in instances:
        result, hij = _sofia_instance_result(instance, image, keys,
                                             sofia_obs, donor=donor)
        hijacked = [TARGET_SOFIA] if hij else []
        for name, make in plain_targets:
            if not instance.plain_applicable:
                result.outcomes[name] = OBS_NA
                continue
            plain_out, plain_hij = run_plain_instance(
                instance, make, plain_obs[name])
            result.outcomes[name] = plain_out
            if plain_hij:
                hijacked.append(name)
        result.hijacked = tuple(hijacked)
        outcome.instances.append(result)
    return outcome


@dataclass
class SynthReport:
    """Everything one campaign produced, with the cross-checks applied."""

    seed: int
    key_seed: int
    source: str                       # "generated" | "corpus" | "image"
    per_program: Optional[int]
    include_baselines: bool
    #: the design point the victims were sealed under; the §IV-A bound
    #: cross-check uses its actual mac_bits, not the paper constant
    profile: ProtectionProfile = DEFAULT_PROFILE
    programs: List[ProgramOutcome] = field(default_factory=list)
    elapsed_seconds: float = 0.0
    #: ``False`` for a sharded invocation that skipped tasks owned by
    #: other shards: aggregation covers only the programs present, and
    #: no campaign artifact is exported until a merged store completes it
    complete: bool = True

    # -- aggregation -----------------------------------------------------

    @property
    def instances(self) -> int:
        return sum(len(p.instances) for p in self.programs)

    @property
    def build_errors(self) -> List[Tuple[str, str]]:
        return [(p.label, p.build_error) for p in self.programs
                if p.build_error is not None]

    def _iter_results(self):
        for program in self.programs:
            for result in program.instances:
                yield program, result

    def matrix(self) -> DetectionMatrix:
        matrix = DetectionMatrix()
        for _program, result in self._iter_results():
            for target, outcome in sorted(result.outcomes.items()):
                matrix.observe(result.family, target, outcome,
                               hijacked=target in result.hijacked)
        return matrix

    def expected_counts(self) -> Dict[str, int]:
        counts = {EXPECT_DETECTED: 0, EXPECT_BENIGN: 0, EXPECT_EDGE_OK: 0,
                  "unknown": 0}
        for _program, result in self._iter_results():
            counts[result.expected or "unknown"] += 1
        return counts

    @property
    def missed(self) -> List[Tuple[str, str]]:
        """Viable against SOFIA: predicted detected, not detected."""
        return [(p.label, r.name) for p, r in self._iter_results()
                if r.missed]

    @property
    def benign_anomalies(self) -> List[Tuple[str, str]]:
        return [(p.label, r.name) for p, r in self._iter_results()
                if r.benign_anomaly]

    @property
    def edge_anomalies(self) -> List[Tuple[str, str]]:
        """Sealed (legitimate) edges the front-end refused."""
        return [(p.label, r.name) for p, r in self._iter_results()
                if r.edge_anomaly]

    @property
    def plain_anomalies(self) -> List[Tuple[str, str]]:
        """Pinned-viable plaintext analogues that failed to succeed."""
        return [(p.label, r.name) for p, r in self._iter_results()
                if r.plain_anomaly]

    @property
    def ok(self) -> bool:
        return (not self.missed and not self.benign_anomalies
                and not self.edge_anomalies and not self.plain_anomalies
                and not self.build_errors)

    def vanilla_stats(self) -> Tuple[int, int]:
        """(applicable, successes) of instances against the vanilla core."""
        applicable = successes = 0
        for _program, result in self._iter_results():
            outcome = result.outcomes.get(TARGET_VANILLA)
            if outcome is None or outcome == OBS_NA:
                continue
            applicable += 1
            if (outcome == OBS_SURVIVED_DIVERGENT
                    or TARGET_VANILLA in result.hijacked):
                successes += 1
        return applicable, successes

    def bounds(self) -> EmpiricalCheck:
        """Empirical detection rate vs the §IV-A forgery bound.

        The analytic expectation is ``attempts * 2^-n`` at the
        *profile's* seal width: a truncated 32-bit campaign has a small
        but nonzero expected-collision count, a widened 96-bit one an
        even smaller one than the paper's 64-bit point.
        """
        attempts = self.expected_counts()[EXPECT_DETECTED]
        return empirical_check(attempts, len(self.missed),
                               mac_bits=self.profile.mac_bits)

    # -- presentation ----------------------------------------------------

    def to_record(self) -> Dict:
        """Canonical JSON document (wall-clock- and jobs-free)."""
        expected = self.expected_counts()
        applicable, successes = self.vanilla_stats()
        bounds = self.bounds()
        return {
            "campaign": "attacksynth",
            "parameters": {
                "seed": self.seed,
                "key_seed": self.key_seed,
                "source": self.source,
                "per_program": self.per_program,
                "baselines": self.include_baselines,
                "programs": len(self.programs),
                "profile": self.profile.label,
            },
            "instances": self.instances,
            "expected": expected,
            "matrix": self.matrix().to_record(),
            "anomalies": {
                "missed": [list(pair) for pair in self.missed],
                "benign": [list(pair) for pair in self.benign_anomalies],
                "edge": [list(pair) for pair in self.edge_anomalies],
                "plain": [list(pair) for pair in self.plain_anomalies],
                "build": [list(pair) for pair in self.build_errors],
            },
            "vanilla": {
                "applicable": applicable,
                "successes": successes,
                "rate": round(successes / applicable, 4) if applicable
                        else None,
            },
            "bounds": {
                "attempts": bounds.attempts,
                "undetected": bounds.undetected,
                "mac_bits": bounds.mac_bits,
                "expected": bounds.expected,
                "consistent": bounds.consistent,
            },
        }

    def render(self) -> str:
        expected = self.expected_counts()
        applicable, successes = self.vanilla_stats()
        lines = [
            "Attack synthesis (E16)",
            f"  programs    {len(self.programs)}  (source: {self.source}, "
            f"seed {self.seed:#x}, profile {self.profile.label})",
            f"  instances   {self.instances}  "
            f"(expect detected {expected[EXPECT_DETECTED]}, "
            f"benign {expected[EXPECT_BENIGN]}, "
            f"edge-ok {expected[EXPECT_EDGE_OK]}, "
            f"unknown {expected['unknown']})",
            "",
            self.matrix().render(),
            "",
            f"  SOFIA misses      {len(self.missed)}",
            f"  benign anomalies  {len(self.benign_anomalies)}",
            f"  edge anomalies    {len(self.edge_anomalies)}",
            f"  plain anomalies   {len(self.plain_anomalies)}",
            f"  vanilla success   {successes}/{applicable}",
            f"  bound cross-check {self.bounds().render()}",
        ]
        for label, name in (self.missed + self.benign_anomalies
                            + self.edge_anomalies + self.plain_anomalies):
            lines.append(f"    ANOMALY {label} {name}")
        for label, error in self.build_errors:
            lines.append(f"    BUILD   {label} {error}")
        return "\n".join(lines)


def _campaign_genomes(programs: int, seed: int,
                      corpus_dir) -> Tuple[str, List[Genome]]:
    """Victim programs: corpus entries first, fresh genomes after."""
    genomes: List[Genome] = []
    source = "generated"
    if corpus_dir is not None:
        genomes = Corpus.load(corpus_dir).genomes()[:programs]
        if genomes:
            source = "corpus"
    index = 0
    while len(genomes) < programs:
        genomes.append(random_genome(task_rng(seed, "attacksynth-gen",
                                              index)))
        index += 1
    return source, genomes


def run_attacksynth(programs: int = DEFAULT_PROGRAMS, *,
                    seed: int = DEFAULT_SEED,
                    per_program: Optional[int] = None,
                    parallel: bool = False, jobs: Optional[int] = None,
                    corpus_dir=None,
                    include_baselines: bool = False,
                    key_seed: int = DEFAULT_KEY_SEED,
                    profile: Optional[ProtectionProfile] = None,
                    export_path=None, csv_path=None,
                    engine: Optional[str] = None,
                    store_dir=None,
                    shard: Optional[ShardSpec] = None,
                    telemetry=None) -> SynthReport:
    """Enumerate and run attacks over ``programs`` protected programs.

    ``profile`` seals every victim under that design point (the genome
    still picks the block geometry); the enumerator and the §IV-A bound
    cross-check adapt to the image's actual profile.

    ``engine="batch"`` bit-slice-warms each victim's front end once on
    the clean run and shares the pure keystream/seal memos with every
    attack-instance machine; the report and its exports stay
    byte-identical (the export carries no engine field by design).

    ``store_dir`` memoizes each program's full :class:`ProgramOutcome`
    in a persistent :class:`~repro.runner.store.ResultStore` (one entry
    per victim, keyed by code version + campaign context + genome), so
    a killed campaign resumes where it stopped and a warm rerun
    simulates nothing; ``shard`` executes one deterministic ``i/n``
    slice of the victim list (requires a store) — exports are skipped
    until a merged store completes the campaign, and are then
    byte-identical to an uninterrupted serial run.

    ``telemetry`` (a :class:`repro.obs.Telemetry`, default ``None``)
    records phases, per-victim spans, and simulator counters — strictly
    observationally: the report and exports are byte-identical either
    way.
    """
    started = time.perf_counter()
    profile = profile or DEFAULT_PROFILE
    with obs_phase(telemetry, "plan"):
        source, genomes = _campaign_genomes(programs, seed, corpus_dir)
    report = SynthReport(seed=seed, key_seed=key_seed, source=source,
                         per_program=per_program,
                         include_baselines=include_baselines,
                         profile=profile)
    tasks = list(enumerate(genomes))
    store = ResultStore(store_dir) if store_dir is not None else None
    keys = None
    if store is not None:
        context = {"seed": seed, "key_seed": key_seed,
                   "per_program": per_program,
                   "baselines": include_baselines, "profile": profile}
        keys = [task_key("attacksynth", context,
                         {"index": index, "genome": genome},
                         engine=engine) for index, genome in tasks]

    def execute(missing: List[Tuple[int, Genome]]) -> List[ProgramOutcome]:
        return run_tasks(
            _synth_task, missing, jobs=jobs, parallel=parallel,
            initializer=_init_synth_worker,
            initargs=(key_seed, seed, per_program, include_baselines,
                      profile, engine), telemetry=telemetry)

    with obs_phase(telemetry, "execute"):
        run = run_tasks_stored(execute, tasks, keys, store=store,
                               shard=shard, telemetry=telemetry)
    report.programs = [outcome for outcome in run.results
                       if outcome is not None]
    report.complete = run.complete
    report.elapsed_seconds = time.perf_counter() - started
    if run.complete:
        with obs_phase(telemetry, "export"):
            _export(report, export_path, csv_path)
    return report


def run_attacksynth_image(image: SofiaImage, *, seed: int = DEFAULT_SEED,
                          per_program: Optional[int] = None,
                          key_seed: int = DEFAULT_KEY_SEED,
                          export_path=None, csv_path=None,
                          engine: Optional[str] = None) -> SynthReport:
    """Observational sweep over one explicit (metadata-less) image.

    Deserialized images carry no layout metadata, so enumeration is
    geometric and every expected verdict is unknown; the report records
    what the hardware model actually did, cell by cell.
    """
    started = time.perf_counter()
    # provision for the image's embedded design point (cipher included)
    keys = DeviceKeys.from_seed(key_seed).for_profile(image.profile)
    report = SynthReport(seed=seed, key_seed=key_seed, source="image",
                         per_program=per_program, include_baselines=False,
                         profile=image.profile)
    outcome = ProgramOutcome(index=0, label="image")
    outcome.blocks = image.num_blocks
    clean_machine = SofiaMachine(image, keys, engine=engine)
    clean = clean_machine.run(max_instructions=SOFIA_BUDGET)
    if not clean.ok:
        # without a clean baseline every mutated run "detects" too — a
        # wrong key seed must be an error, not a perfect-looking matrix
        outcome.build_error = (
            f"clean run of the image failed: {clean.summary()} "
            f"(wrong --key-seed, or a corrupt image?)")
        report.programs = [outcome]
        report.elapsed_seconds = time.perf_counter() - started
        return report
    clean_obs = observables(clean)
    donor = clean_machine if engine == "batch" else None
    rng = task_rng(seed, "attacksynth-image")
    instances = enumerate_geometric(image, rng)
    if per_program is not None:
        instances = instances[:per_program]
    for instance in instances:
        result, hij = _sofia_instance_result(instance, image, keys,
                                             clean_obs, donor=donor)
        result.hijacked = (TARGET_SOFIA,) if hij else ()
        outcome.instances.append(result)
    report.programs = [outcome]
    report.elapsed_seconds = time.perf_counter() - started
    _export(report, export_path, csv_path)
    return report


def _export(report: SynthReport, export_path, csv_path) -> None:
    if report.instances == 0:
        return  # an empty campaign is an error, not an artifact
    if export_path is not None:
        attacksynth_json(report.to_record(), export_path)
    if csv_path is not None:
        attacksynth_csv(report.matrix().csv_rows(), csv_path)
