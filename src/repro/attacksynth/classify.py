"""Materialize one attack instance per target and classify the outcome.

Classification is purely observational and identical for every target:

* ``detected``            — the machine pulled reset (SOFIA only; the
                            undefended cores have nothing to pull)
* ``crashed``             — illegal instruction / bus error trap: the
                            attack derailed execution with no guarantee
* ``survived-clean``      — ran to completion with observables identical
                            to the clean run (the attack had no effect)
* ``survived-divergent``  — ran to completion with *different*
                            observables: the attack changed behaviour
                            without being stopped — a success against
                            that target
* ``limit``               — exhausted the step budget

Observables are the program's externally visible behaviour (status,
console ints/text/words, actuator writes, exit code).  Registers, PC and
raw RAM are deliberately excluded — the protected layout legally changes
code addresses, which leak into ``ra`` and spilled return addresses
(same rule as the fuzzing oracle's cross-core axis).
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..attacks.victim import UNLOCK_VALUE
from ..crypto.keys import DeviceKeys
from ..sim.result import ExecutionResult, Status
from ..sim.sofia import SofiaMachine
from ..transform.image import SofiaImage
from ..transform.renonce import reencrypt
from .model import (AttackInstance, OBS_CRASHED, OBS_DETECTED, OBS_LIMIT,
                    OBS_SURVIVED_CLEAN, OBS_SURVIVED_DIVERGENT)

#: step budgets; a clean run of a generated program takes well under a
#: thousand instructions, so these classify wandering post-attack runs
#: as ``limit`` quickly instead of simulating millions of steps
SOFIA_BUDGET = 200_000
PLAIN_BUDGET = 20_000

Observables = Tuple


def observables(result: ExecutionResult) -> Observables:
    """The externally visible behaviour of one run, as a comparable."""
    return (result.status.value,
            tuple(result.output_ints),
            result.output_text,
            tuple(result.mmio.words) if result.mmio else (),
            tuple(result.mmio.actuator) if result.mmio else (),
            result.exit_code)


def classify_result(result: ExecutionResult,
                    clean: Observables) -> str:
    """Map one run to its matrix cell."""
    if result.status is Status.RESET:
        return OBS_DETECTED
    if result.status is Status.TRAP:
        return OBS_CRASHED
    if result.status is Status.LIMIT:
        return OBS_LIMIT
    if observables(result) == clean:
        return OBS_SURVIVED_CLEAN
    return OBS_SURVIVED_DIVERGENT


def hijacked(result: ExecutionResult) -> bool:
    """Did the actuator receive the unlock value?"""
    return result.mmio is not None and UNLOCK_VALUE in result.mmio.actuator


def materialize_image(instance: AttackInstance, image: SofiaImage,
                      keys: DeviceKeys) -> SofiaImage:
    """The mutated image an instance runs against (the original is kept)."""
    base = image
    if instance.renonce is not None:
        base = reencrypt(image, keys, instance.renonce)
    if instance.writes:
        words = list(base.words)
        for address, word in instance.writes:
            words[(address - base.code_base) // 4] = word & 0xFFFFFFFF
        base = base.with_words(words)
    return base


def run_sofia_instance(instance: AttackInstance, image: SofiaImage,
                       keys: DeviceKeys, clean: Observables,
                       max_instructions: int = SOFIA_BUDGET,
                       donor: Optional[SofiaMachine] = None
                       ) -> Tuple[str, bool, Optional[str], Optional[bool]]:
    """Run one instance on the SOFIA core.

    Returns ``(outcome, hijacked, violation_kind, edge_ok)`` where
    ``edge_ok`` (bend instances only) reports whether the *bent edge
    itself* passed the decrypt/verify front-end — a reset on the very
    first block traversal means it did not.

    ``donor`` (batch-engine campaigns) seeds the instance machine's pure
    keystream/seal memos from an already-warmed clean machine via
    :func:`~repro.sim.batch.adopt_caches`; the sharing rules there
    guarantee the classification is byte-identical to a cold run.
    """
    machine = SofiaMachine(materialize_image(instance, image, keys), keys)
    if donor is not None:
        from ..sim.batch import adopt_caches
        adopt_caches(machine, donor)
    if instance.entry_pc is not None:
        machine.state.pc = instance.entry_pc
        if instance.prev_pc is not None:
            machine.prev_pc = instance.prev_pc
    result = machine.run(max_instructions=max_instructions)
    violation = result.violation.kind if result.violation else None
    edge_ok = None
    if instance.entry_pc is not None:
        edge_ok = not (result.status is Status.RESET
                       and result.blocks_executed == 1)
    return (classify_result(result, clean), hijacked(result), violation,
            edge_ok)


def run_plain_instance(instance: AttackInstance, make_machine,
                       clean: Observables,
                       max_instructions: int = PLAIN_BUDGET
                       ) -> Tuple[str, bool]:
    """Run the plaintext-analogue materialization on one undefended core.

    ``make_machine`` builds a fresh vanilla or ISR machine; the pokes go
    through ``Memory.poke_code`` — the same program-memory write surface
    the hand-written attack catalogue uses.
    """
    machine = make_machine()
    for address, word in instance.plain_writes:
        machine.memory.poke_code(address, word)
    if instance.plain_entry is not None:
        machine.state.pc = instance.plain_entry
    result = machine.run(max_instructions=max_instructions)
    return classify_result(result, clean), hijacked(result)
