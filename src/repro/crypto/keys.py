"""Device key material.

Every SOFIA device is provisioned with three 80-bit keys known only to the
software provider and accessible only to the on-chip cipher:

* ``k1`` — CTR-mode instruction encryption,
* ``k2`` — CBC-MAC of execution blocks,
* ``k3`` — CBC-MAC of multiplexor blocks.

Using distinct MAC keys per block type is the paper's fix for CBC-MAC's
variable-length weakness (one key per message length).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from .rectangle import KEY_BITS, Rectangle80

_KEY_MASK = (1 << KEY_BITS) - 1


def derive_key(seed: int, label: str) -> int:
    """Deterministically derive an 80-bit key from a seed and a label.

    This is a provisioning convenience for tests and examples, not a KDF
    with security claims; production devices would be injected with random
    keys at manufacturing time.
    """
    material = f"{seed}:{label}".encode()
    value = 0xCAFEBABE
    for byte in material:
        value = (value * 0x100000001B3 + byte) & ((1 << 128) - 1)
        value ^= value >> 29
    return value & _KEY_MASK


@dataclass(frozen=True)
class DeviceKeys:
    """The three per-device keys and their cipher instances.

    ``cipher_factory`` selects the block-cipher implementation shared by
    CTR decryption and the CBC-MACs; the default is RECTANGLE-80 (the
    paper's choice), and :class:`repro.crypto.present.Present80` is the
    drop-in alternative for the cipher-agility study.
    """

    k1: int
    k2: int
    k3: int
    cipher_factory: type = Rectangle80
    _ciphers: dict = field(default_factory=dict, repr=False, compare=False)

    def __post_init__(self) -> None:
        for name in ("k1", "k2", "k3"):
            key = getattr(self, name)
            if key < 0 or key >> KEY_BITS:
                raise ValueError(f"{name} must be an unsigned {KEY_BITS}-bit integer")

    @classmethod
    def from_seed(cls, seed: int,
                  cipher_factory: type = Rectangle80) -> "DeviceKeys":
        """Derive a full key set from one integer seed (tests/examples)."""
        return cls(
            k1=derive_key(seed, "sofia-ctr-encryption"),
            k2=derive_key(seed, "sofia-cbcmac-execution"),
            k3=derive_key(seed, "sofia-cbcmac-multiplexor"),
            cipher_factory=cipher_factory,
        )

    def for_profile(self, profile) -> "DeviceKeys":
        """This key set re-bound to ``profile``'s cipher.

        The provisioned secrets are cipher-agnostic 80-bit values; the
        profile (any object with a ``cipher_factory`` attribute, see
        :class:`repro.transform.profile.ProtectionProfile`) selects which
        datapath consumes them.  Returns ``self`` when the factory
        already matches, so the default profile keeps the cached cipher
        instances.
        """
        factory = profile.cipher_factory
        if factory is self.cipher_factory:
            return self
        return DeviceKeys(k1=self.k1, k2=self.k2, k3=self.k3,
                          cipher_factory=factory)

    def _cipher(self, name: str, key: int):
        cipher = self._ciphers.get(name)
        if cipher is None:
            cipher = self.cipher_factory(key)
            self._ciphers[name] = cipher
        return cipher

    @property
    def encryption_cipher(self) -> Rectangle80:
        """Cipher instance keyed with k1 (CTR instruction encryption)."""
        return self._cipher("k1", self.k1)

    @property
    def exec_mac_cipher(self) -> Rectangle80:
        """Cipher instance keyed with k2 (execution-block CBC-MAC)."""
        return self._cipher("k2", self.k2)

    @property
    def mux_mac_cipher(self) -> Rectangle80:
        """Cipher instance keyed with k3 (multiplexor-block CBC-MAC)."""
        return self._cipher("k3", self.k3)

    def __iter__(self) -> Iterator[int]:
        return iter((self.k1, self.k2, self.k3))
