"""PRESENT-80 block cipher (Bogdanov et al., CHES 2007).

An alternative 64-bit/80-bit lightweight cipher for the cipher-agility
study: the paper's companion work on single-cycle block ciphers (Maene &
Verbauwhede [36]) evaluates exactly RECTANGLE and PRESENT as SOFIA-class
datapaths.  PRESENT has 31 rounds of AddRoundKey, a 4-bit S-box layer and
a bit permutation (``P(i) = 16*i mod 63``), with a final key addition.

Unlike RECTANGLE (no offline vectors available), PRESENT's published test
vector is well known and pinned in the test-suite:

    K = 0^80, P = 0^64  ->  C = 0x5579C1387B228445

Performance: the round function runs on precomputed fused tables — for
each of the 8 byte positions, ``table[pos][byte]`` is the 64-bit image
of that byte through sLayer followed by pLayer (the two commute into one
lookup because pLayer only moves bits), so a round is 8 lookups XORed
together instead of 16 S-box substitutions plus a 64-bit bit scatter.
The tables are built lazily on first use and shared by all instances;
the loop-based layers remain as the reference the table path is tested
against.
"""

from __future__ import annotations

from typing import List, Optional

from .primitives import MASK64

SBOX = (0xC, 0x5, 0x6, 0xB, 0x9, 0x0, 0xA, 0xD,
        0x3, 0xE, 0xF, 0x8, 0x4, 0x7, 0x1, 0x2)
SBOX_INV = tuple(SBOX.index(i) for i in range(16))

ROUNDS = 31
KEY_BITS = 80

#: bit permutation: output position of input bit i
PERMUTATION = tuple(63 if i == 63 else (16 * i) % 63 for i in range(64))
PERMUTATION_INV = tuple(PERMUTATION.index(i) for i in range(64))


def _sbox_layer(state: int, table) -> int:
    out = 0
    for nibble in range(16):
        out |= table[(state >> (4 * nibble)) & 0xF] << (4 * nibble)
    return out


def _permute(state: int, table) -> int:
    out = 0
    for i in range(64):
        if (state >> i) & 1:
            out |= 1 << table[i]
    return out


#: fused sLayer+pLayer tables for the forward round (one 256-entry table
#: per byte position: the S-box is byte-local and the permutation is
#: bit-linear, so the pair collapses into one lookup), plus plain
#: per-byte tables for the inverse permutation (the inverse S-box runs
#: *after* the gather, where nibbles mix source bytes, so it cannot be
#: fused and stays a nibble loop).  Built lazily on first use.
_FWD_TABLES: Optional[List[List[int]]] = None
_INV_PERM_TABLES: Optional[List[List[int]]] = None


def _build_fused_tables() -> None:
    global _FWD_TABLES, _INV_PERM_TABLES
    fwd: List[List[int]] = []
    inv_perm: List[List[int]] = []
    for pos in range(8):
        fwd_row = []
        inv_row = []
        for byte in range(256):
            # substitute the byte's own two nibbles only — the S-box is
            # not zero-preserving, so running the full layer over the
            # spread word would pollute the other 14 nibble positions
            sboxed = SBOX[byte & 0xF] | (SBOX[byte >> 4] << 4)
            fwd_row.append(_permute(sboxed << (8 * pos), PERMUTATION))
            inv_row.append(_permute(byte << (8 * pos), PERMUTATION_INV))
        fwd.append(fwd_row)
        inv_perm.append(inv_row)
    _FWD_TABLES = fwd
    _INV_PERM_TABLES = inv_perm


class Present80:
    """PRESENT with an 80-bit key (drop-in alternative to Rectangle80)."""

    def __init__(self, key: int) -> None:
        if key < 0 or key >> KEY_BITS:
            raise ValueError(f"key must be an unsigned {KEY_BITS}-bit integer")
        self.key = key
        self._round_keys = self._expand_key(key)

    @staticmethod
    def _expand_key(key: int) -> List[int]:
        register = key
        round_keys = []
        for round_counter in range(1, ROUNDS + 1):
            round_keys.append(register >> 16)        # leftmost 64 bits
            # rotate the 80-bit register left by 61
            register = ((register << 61) | (register >> 19)) & ((1 << 80) - 1)
            # S-box on the top nibble
            top = SBOX[(register >> 76) & 0xF]
            register = (register & ~(0xF << 76)) | (top << 76)
            # XOR the round counter into bits 19..15
            register ^= round_counter << 15
        round_keys.append(register >> 16)
        return round_keys

    def encrypt(self, block: int) -> int:
        if _FWD_TABLES is None:
            _build_fused_tables()
        (t0, t1, t2, t3, t4, t5, t6, t7) = _FWD_TABLES
        state = block & MASK64
        for key in self._round_keys[:ROUNDS]:
            state ^= key
            state = (t0[state & 0xFF]
                     ^ t1[(state >> 8) & 0xFF]
                     ^ t2[(state >> 16) & 0xFF]
                     ^ t3[(state >> 24) & 0xFF]
                     ^ t4[(state >> 32) & 0xFF]
                     ^ t5[(state >> 40) & 0xFF]
                     ^ t6[(state >> 48) & 0xFF]
                     ^ t7[state >> 56])
        return state ^ self._round_keys[ROUNDS]

    def decrypt(self, block: int) -> int:
        if _INV_PERM_TABLES is None:
            _build_fused_tables()
        (t0, t1, t2, t3, t4, t5, t6, t7) = _INV_PERM_TABLES
        state = (block & MASK64) ^ self._round_keys[ROUNDS]
        keys = self._round_keys
        for rnd in range(ROUNDS - 1, -1, -1):
            state = (t0[state & 0xFF]
                     ^ t1[(state >> 8) & 0xFF]
                     ^ t2[(state >> 16) & 0xFF]
                     ^ t3[(state >> 24) & 0xFF]
                     ^ t4[(state >> 32) & 0xFF]
                     ^ t5[(state >> 40) & 0xFF]
                     ^ t6[(state >> 48) & 0xFF]
                     ^ t7[state >> 56])
            state = _sbox_layer(state, SBOX_INV)
            state ^= keys[rnd]
        return state
