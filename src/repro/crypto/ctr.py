"""Control-flow-dependent CTR-mode keystream (paper Alg. 1).

Each 32-bit instruction word at address ``PC``, reached from the word at
address ``prevPC``, is XORed with the low 32 bits of
``E_k1(omega || prevPC || PC)``:

* ``omega``   — 16-bit per-binary nonce (unique per program and version),
* ``prevPC``  — 24-bit *word* address of the previously fetched word,
* ``PC``      — 24-bit *word* address of this word.

The 16+24+24 packing fills RECTANGLE's 64-bit block exactly (DESIGN.md,
"Counter packing") and supports a 64 MiB code space.

Keystream values are memoized per (prevPC, PC) edge: during a valid
execution every traversal of a CFG edge uses the same counter, so loops pay
for the cipher only once per static edge.
"""

from __future__ import annotations

from typing import Dict, Tuple

from .primitives import MASK32
from .rectangle import Rectangle80

NONCE_BITS = 16
ADDR_BITS = 24
#: Code addresses are byte addresses of 4-byte-aligned words.
MAX_CODE_BYTES = 1 << (ADDR_BITS + 2)


def pack_counter(nonce: int, prev_pc: int, pc: int) -> int:
    """Pack ``{omega || prevPC || PC}`` into a 64-bit cipher input block.

    ``prev_pc`` and ``pc`` are byte addresses; they must be word aligned and
    fit in the 24-bit word-address space.
    """
    if nonce >> NONCE_BITS:
        raise ValueError(f"nonce 0x{nonce:x} exceeds {NONCE_BITS} bits")
    for name, addr in (("prevPC", prev_pc), ("PC", pc)):
        if addr % 4:
            raise ValueError(f"{name}=0x{addr:x} is not word aligned")
        if addr >= MAX_CODE_BYTES:
            raise ValueError(f"{name}=0x{addr:x} exceeds the 24-bit word space")
    return (nonce << (2 * ADDR_BITS)) | ((prev_pc >> 2) << ADDR_BITS) | (pc >> 2)


class EdgeKeystream:
    """Generates (and memoizes) per-edge 32-bit keystream words."""

    def __init__(self, cipher: Rectangle80, nonce: int) -> None:
        if nonce >> NONCE_BITS:
            raise ValueError(f"nonce 0x{nonce:x} exceeds {NONCE_BITS} bits")
        self.cipher = cipher
        self.nonce = nonce
        self._cache: Dict[Tuple[int, int], int] = {}

    def keystream(self, prev_pc: int, pc: int) -> int:
        """32-bit keystream word for the edge ``prev_pc -> pc``."""
        key = (prev_pc, pc)
        cached = self._cache.get(key)
        if cached is None:
            counter = pack_counter(self.nonce, prev_pc, pc)
            cached = self.cipher.encrypt(counter) & MASK32
            self._cache[key] = cached
        return cached

    def encrypt_word(self, word: int, prev_pc: int, pc: int) -> int:
        """Encrypt a plaintext 32-bit word for the given control-flow edge."""
        return (word ^ self.keystream(prev_pc, pc)) & MASK32

    def decrypt_word(self, cword: int, prev_pc: int, pc: int) -> int:
        """Decrypt a ciphertext word; identical to encryption (XOR stream)."""
        return (cword ^ self.keystream(prev_pc, pc)) & MASK32

    def cache_size(self) -> int:
        """Number of distinct edges decrypted so far (diagnostics)."""
        return len(self._cache)
