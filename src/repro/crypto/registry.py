"""Cipher registry: the design-space axis for cipher agility.

SOFIA's hardware datapath is cipher-agnostic — it needs a single-cycle
64-bit PRP with an 80-bit key (the companion work, Maene & Verbauwhede
[36], evaluates exactly RECTANGLE and PRESENT as SOFIA-class datapaths).
The registry names each implementation so a
:class:`~repro.transform.profile.ProtectionProfile` can select the
cipher by a stable string, and images can embed the choice as a small
integer code (see ``ProtectionProfile.to_code``).

Codes are part of the on-disk image format: once assigned, a cipher's
code must never change.  Code 0 is RECTANGLE-80, the paper's cipher, so
a zeroed header field decodes to the paper's design point.
"""

from __future__ import annotations

from typing import Dict, List

from .present import Present80
from .rectangle import Rectangle80

#: name -> cipher class (the constructor takes the 80-bit key)
CIPHERS: Dict[str, type] = {
    "rectangle-80": Rectangle80,
    "present-80": Present80,
}

#: name -> stable serialization code (part of the image format)
CIPHER_CODES: Dict[str, int] = {
    "rectangle-80": 0,
    "present-80": 1,
}

#: the paper's cipher
DEFAULT_CIPHER = "rectangle-80"


def cipher_names() -> List[str]:
    """Registered cipher names, in registration order."""
    return list(CIPHERS)


def get_cipher(name: str) -> type:
    """The cipher class registered under ``name``."""
    try:
        return CIPHERS[name]
    except KeyError:
        raise ValueError(
            f"unknown cipher {name!r}; known: {cipher_names()}") from None


def cipher_name(factory: type) -> str:
    """The registered name of a cipher class (inverse of get_cipher)."""
    for name, cls in CIPHERS.items():
        if cls is factory:
            return name
    raise ValueError(f"cipher class {factory!r} is not registered")


def cipher_code(name: str) -> int:
    """The stable serialization code of a registered cipher."""
    get_cipher(name)  # validates the name
    return CIPHER_CODES[name]


def cipher_from_code(code: int) -> str:
    """The cipher name for a serialization code (inverse of cipher_code)."""
    for name, value in CIPHER_CODES.items():
        if value == code:
            return name
    raise ValueError(f"unknown cipher code {code}")
