"""Bit-sliced batch evaluation of RECTANGLE-80 and PRESENT-80.

The batch simulation engine (:mod:`repro.sim.batch`) wants to pay the
cipher's Python interpretation overhead once per *batch* of blocks, not
once per block.  Both ciphers are substitution-permutation networks over
4-bit S-boxes, so the classic bit-slicing transform applies: pack bit
``b`` of up to :data:`WIDTH` independent blocks ("lanes") into one
Python big-int plane, then run the round function on planes — XORs for
AddRoundKey, a shared ~60-gate sum-of-minterms circuit for the S-box
layer, and pure shifts for the linear layer — so one pass encrypts the
whole batch.  RECTANGLE is itself specified bit-sliced (its ShiftRow
rotates bit-planes), which is exactly why the paper's companion work
picked it; this module applies the same idiom one level up.

Layouts
-------
* Lane/plane conversion is a 64x64 bit-matrix *transpose* of one
  4096-bit integer, done in 6 masked delta-swap steps (the
  Hacker's-Delight block transpose, generalized to any power-of-two
  ``n`` for the property tests).
* RECTANGLE runs *wide-resident*: the state is 4 row planes of
  ``16 * WIDTH`` bits — column ``c`` of lane ``j`` at bit ``c*WIDTH+j``
  — so AddRoundKey is 4 XORs against precomputed wide key masks and
  ShiftRow is a rotation by ``rot*WIDTH`` bits.
* PRESENT keeps 64 individual planes: its pLayer is then a free
  permutation of the plane list, and the S-layer gathers the planes
  into 4 nibble-indexed wides for the shared circuit.

Correctness is gated lane-for-lane against the scalar ciphers
(including PRESENT's published vector) by the batch differential suite.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from .present import PERMUTATION
from .present import ROUNDS as PRESENT_ROUNDS
from .present import SBOX as PRESENT_SBOX
from .present import Present80
from .primitives import MASK16, MASK64, block_to_words, words_to_blocks
from .rectangle import ROUNDS as RECTANGLE_ROUNDS
from .rectangle import SBOX as RECTANGLE_SBOX
from .rectangle import Rectangle80

#: lanes per batch — one bit of every plane per specimen.
WIDTH = 64

_ONES = MASK64
_STATE_BITS = 16 * WIDTH
_STATE_MASK = (1 << _STATE_BITS) - 1


# -- generic n x n bit-matrix transpose ------------------------------------
#
# One n^2-bit integer holds the matrix row-major (bit r*n+c = row r,
# column c).  Each delta-swap step s exchanges bit s of every (row,
# column) index pair; the steps touch disjoint index bits, so their
# composition in any order is the full transpose.

_TRANSPOSE_STEPS: Dict[int, Tuple[Tuple[int, int], ...]] = {}


def _transpose_steps(n: int) -> Tuple[Tuple[int, int], ...]:
    steps = _TRANSPOSE_STEPS.get(n)
    if steps is None:
        if n < 1 or n & (n - 1):
            raise ValueError(f"transpose size must be a power of two, got {n}")
        built = []
        s = n >> 1
        while s:
            delta = s * (n - 1)
            mask = 0
            for r in range(n):
                if r & s:
                    continue
                for c in range(n):
                    if c & s:
                        mask |= 1 << (r * n + c)
            built.append((delta, mask))
            s >>= 1
        steps = _TRANSPOSE_STEPS[n] = tuple(built)
    return steps


def transpose_bits(x: int, n: int = WIDTH) -> int:
    """Transpose an ``n x n`` bit matrix packed row-major into ``x``."""
    for delta, mask in _transpose_steps(n):
        t = (x ^ (x >> delta)) & mask
        x ^= t | (t << delta)
    return x


def pack_planes(blocks: Sequence[int], n: int = WIDTH) -> List[int]:
    """Lane values -> bit planes: bit ``j`` of plane ``b`` = bit ``b``
    of ``blocks[j]``.  Missing lanes (``len(blocks) < n``) pack as zero.
    """
    if len(blocks) > n:
        raise ValueError(f"at most {n} lanes, got {len(blocks)}")
    mask = (1 << n) - 1
    x = 0
    for j, block in enumerate(blocks):
        x |= (block & mask) << (n * j)
    t = transpose_bits(x, n)
    return [(t >> (n * b)) & mask for b in range(n)]


def unpack_planes(planes: Sequence[int], lanes: int, n: int = WIDTH) -> List[int]:
    """Inverse of :func:`pack_planes`: recover the first ``lanes`` values."""
    if len(planes) != n:
        raise ValueError(f"expected {n} planes, got {len(planes)}")
    x = 0
    for b, plane in enumerate(planes):
        x |= plane << (n * b)
    t = transpose_bits(x, n)
    mask = (1 << n) - 1
    return [(t >> (n * j)) & mask for j in range(lanes)]


# -- shared 4-bit S-box circuit --------------------------------------------

def make_sbox_layer(sbox: Sequence[int]):
    """Compile a 4-bit S-box table into a wide sum-of-minterms circuit.

    The returned callable maps four input bit planes (plus an all-ones
    plane of the same width) to four output planes: 16 disjoint minterms
    are built from the shared half-products of ``(a1, a0)`` and
    ``(a3, a2)``, and output bit ``b`` ORs the minterms whose S-box
    image has bit ``b`` set — ~60 big-int operations for any table.
    """
    rows = tuple(tuple(v for v in range(16) if (sbox[v] >> bit) & 1)
                 for bit in range(4))

    def layer(a0: int, a1: int, a2: int, a3: int, ones: int):
        n0 = a0 ^ ones
        n1 = a1 ^ ones
        n2 = a2 ^ ones
        n3 = a3 ^ ones
        lo = (n1 & n0, n1 & a0, a1 & n0, a1 & a0)
        hi = (n3 & n2, n3 & a2, a3 & n2, a3 & a2)
        minterms = [hi[v >> 2] & lo[v & 3] for v in range(16)]
        out = []
        for bits in rows:
            acc = 0
            for v in bits:
                acc |= minterms[v]
            out.append(acc)
        return out

    return layer


# -- RECTANGLE-80, wide-resident -------------------------------------------

class BitslicedRectangle80:
    """Batch evaluator sharing the scalar cipher's key schedule."""

    def __init__(self, cipher: Rectangle80) -> None:
        self._layer = make_sbox_layer(RECTANGLE_SBOX)
        # round key row r expanded to a 16*WIDTH-bit mask: every set
        # column bit becomes a full lane group of ones
        wide_keys = []
        for round_key in cipher._round_keys:
            masks = []
            for r in range(4):
                key_row = (round_key >> (16 * r)) & MASK16
                mask = 0
                for c in range(16):
                    if (key_row >> c) & 1:
                        mask |= _ONES << (c * WIDTH)
                masks.append(mask)
            wide_keys.append(tuple(masks))
        self._wide_keys = tuple(wide_keys)

    def encrypt_batch(self, blocks: Sequence[int]) -> List[int]:
        lanes = len(blocks)
        planes = pack_planes(blocks)
        # wide row r: column c's lane group at bits [c*WIDTH, (c+1)*WIDTH)
        rows = []
        for r in range(4):
            base = 16 * r
            acc = 0
            for c in range(16):
                acc |= planes[base + c] << (c * WIDTH)
            rows.append(acc)
        r0, r1, r2, r3 = rows
        layer = self._layer
        wide_keys = self._wide_keys
        for rnd in range(RECTANGLE_ROUNDS):
            k0, k1, k2, k3 = wide_keys[rnd]
            r0, r1, r2, r3 = layer(r0 ^ k0, r1 ^ k1, r2 ^ k2, r3 ^ k3,
                                   _STATE_MASK)
            # ShiftRow: rotate the column groups left by (0, 1, 12, 13)
            r1 = ((r1 << WIDTH) | (r1 >> (15 * WIDTH))) & _STATE_MASK
            r2 = ((r2 << (12 * WIDTH)) | (r2 >> (4 * WIDTH))) & _STATE_MASK
            r3 = ((r3 << (13 * WIDTH)) | (r3 >> (3 * WIDTH))) & _STATE_MASK
        k0, k1, k2, k3 = wide_keys[RECTANGLE_ROUNDS]
        rows = (r0 ^ k0, r1 ^ k1, r2 ^ k2, r3 ^ k3)
        out_planes = [0] * WIDTH
        for r in range(4):
            wide = rows[r]
            base = 16 * r
            for c in range(16):
                out_planes[base + c] = (wide >> (c * WIDTH)) & _ONES
        return unpack_planes(out_planes, lanes)


# -- PRESENT-80, plane-resident --------------------------------------------

class BitslicedPresent80:
    """Batch evaluator sharing the scalar cipher's key schedule."""

    def __init__(self, cipher: Present80) -> None:
        self._layer = make_sbox_layer(PRESENT_SBOX)
        self._key_bits = tuple(
            tuple(b for b in range(64) if (key >> b) & 1)
            for key in cipher._round_keys)

    def encrypt_batch(self, blocks: Sequence[int]) -> List[int]:
        lanes = len(blocks)
        planes = pack_planes(blocks)
        layer = self._layer
        key_bits = self._key_bits
        perm = PERMUTATION
        for rnd in range(PRESENT_ROUNDS):
            for b in key_bits[rnd]:
                planes[b] ^= _ONES
            # gather nibble bit k of the 16 nibbles into wide k
            w0 = w1 = w2 = w3 = 0
            for i in range(16):
                shift = i * WIDTH
                base = 4 * i
                w0 |= planes[base] << shift
                w1 |= planes[base + 1] << shift
                w2 |= planes[base + 2] << shift
                w3 |= planes[base + 3] << shift
            w0, w1, w2, w3 = layer(w0, w1, w2, w3, _STATE_MASK)
            # scatter back through the (free) pLayer permutation
            out = [0] * 64
            for i in range(16):
                shift = i * WIDTH
                base = 4 * i
                out[perm[base]] = (w0 >> shift) & _ONES
                out[perm[base + 1]] = (w1 >> shift) & _ONES
                out[perm[base + 2]] = (w2 >> shift) & _ONES
                out[perm[base + 3]] = (w3 >> shift) & _ONES
            planes = out
        for b in key_bits[PRESENT_ROUNDS]:
            planes[b] ^= _ONES
        return unpack_planes(planes, lanes)


# -- batch front door ------------------------------------------------------

_BITSLICED: Dict[Tuple[type, int], object] = {}


def bitsliced_for(cipher) -> Optional[object]:
    """The (memoized) batch evaluator for ``cipher``, or ``None``."""
    key = (type(cipher), cipher.key)
    engine = _BITSLICED.get(key)
    if engine is None:
        if isinstance(cipher, Rectangle80):
            engine = BitslicedRectangle80(cipher)
        elif isinstance(cipher, Present80):
            engine = BitslicedPresent80(cipher)
        else:
            return None
        _BITSLICED[key] = engine
    return engine


def encrypt_batch(cipher, blocks: Sequence[int]) -> List[int]:
    """Encrypt ``blocks`` lane-for-lane equal to ``cipher.encrypt``.

    Batches wider than :data:`WIDTH` are split; unknown cipher types
    fall back to the scalar path, so callers never need to special-case.
    """
    engine = bitsliced_for(cipher)
    if engine is None:
        return [cipher.encrypt(block) for block in blocks]
    out: List[int] = []
    for start in range(0, len(blocks), WIDTH):
        out.extend(engine.encrypt_batch(blocks[start:start + WIDTH]))
    return out


def batch_mac_stream(cipher, payloads: Sequence[Sequence[int]],
                     count: int, iv: int = 0) -> List[Tuple[int, ...]]:
    """:func:`~repro.crypto.cbcmac.mac_stream` over many equal-length
    word payloads at once (one batched cipher call per CBC step)."""
    if not payloads:
        return []
    lanes = [words_to_blocks(words) for words in payloads]
    depth = len(lanes[0])
    if any(len(lane) != depth for lane in lanes):
        raise ValueError("batch MAC lanes must have equal block counts")
    states = [iv & MASK64] * len(lanes)
    for t in range(depth):
        states = encrypt_batch(
            cipher, [state ^ lane[t] for state, lane in zip(states, lanes)])
    outs = [list(block_to_words(state)) for state in states]
    while len(outs[0]) < count:
        states = encrypt_batch(cipher, states)
        for out, state in zip(outs, states):
            out.extend(block_to_words(state))
    return [tuple(out[:count]) for out in outs]
