"""RECTANGLE-80 lightweight block cipher (Zhang et al., 2014).

SOFIA uses RECTANGLE-80 — a bit-slice SPN cipher with a 64-bit block, an
80-bit key and 25 rounds — as the single cipher shared by its CTR-mode
instruction decryption and its CBC-MAC software-integrity check.

State model
-----------
The 64-bit block is viewed as a 4x16 bit matrix of rows ``r0..r3``; ``r0``
holds the least-significant 16 bits of the block.  One round applies:

* ``AddRoundKey`` — XOR the 64-bit round key (also 4x16) into the state,
* ``SubColumn``   — a 4-bit S-box applied to each of the 16 columns,
* ``ShiftRow``    — rows rotated left by 0, 1, 12 and 13 bits.

After 25 rounds a final ``AddRoundKey`` with the 26th round key is applied.

The 80-bit key is a 5x16 matrix; each round key is rows 0..3.  The schedule
applies the S-box to the four low-order columns of the top four rows, a
generalized Feistel mix of the five rows, and a 5-bit LFSR round constant.

Offline note (documented in DESIGN.md): the official test vectors were not
available in this environment, so the implementation is validated by
structural properties (invertibility, avalanche, key sensitivity) rather
than published vectors.  SOFIA's security argument only requires a 64-bit
PRP, which these properties evidence.

Performance: ``SubColumn`` is implemented with precomputed 16-bit spread /
substitute / gather tables so a full encryption costs a few hundred Python
operations instead of 16x25 per-column loops.  The tables are built lazily
on first use.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from .primitives import MASK16, MASK64, rotl16

#: RECTANGLE 4-bit S-box and its inverse.
SBOX = (0x6, 0x5, 0xC, 0xA, 0x1, 0xE, 0x7, 0x9,
        0xB, 0x0, 0x3, 0xD, 0x8, 0xF, 0x4, 0x2)
SBOX_INV = tuple(SBOX.index(i) for i in range(16))

#: Left-rotation amounts for ShiftRow, per row.
ROW_ROTATIONS = (0, 1, 12, 13)

ROUNDS = 25
KEY_BITS = 80
BLOCK_BITS = 64


def round_constants(count: int = ROUNDS) -> List[int]:
    """Generate the 5-bit LFSR round constants RC[0..count-1].

    The LFSR starts at 0b00001 and clocks ``rc <- (rc << 1) | (rc4 ^ rc2)``
    over 5-bit state, the feedback polynomial used by the RECTANGLE spec.
    """
    constants = []
    rc = 0x1
    for _ in range(count):
        constants.append(rc)
        feedback = ((rc >> 4) ^ (rc >> 2)) & 1
        rc = ((rc << 1) | feedback) & 0x1F
    return constants


_RC = tuple(round_constants())

# --- bit-slice acceleration tables (built lazily) -------------------------
#
# _SPREAD[x]   : 16-bit row -> 64-bit value with bit i of x at position 4*i.
# _SUB16[x]    : 16-bit chunk holding 4 column nibbles -> S-boxed chunk.
# _SUB16_INV[x]: inverse substitution chunk table.
# _GATHER[k][x]: 16-bit chunk -> the 4 bits at nibble-offset k, packed.

_SPREAD: Optional[List[int]] = None
_SUB16: Optional[List[int]] = None
_SUB16_INV: Optional[List[int]] = None
_GATHER: Optional[List[List[int]]] = None


def _build_tables() -> None:
    global _SPREAD, _SUB16, _SUB16_INV, _GATHER
    if _SPREAD is not None:
        return
    spread = [0] * 65536
    for x in range(65536):
        v = 0
        bits = x
        pos = 0
        while bits:
            if bits & 1:
                v |= 1 << pos
            bits >>= 1
            pos += 4
        spread[x] = v
    sub16 = [0] * 65536
    sub16_inv = [0] * 65536
    for x in range(65536):
        s = (SBOX[x & 0xF]
             | (SBOX[(x >> 4) & 0xF] << 4)
             | (SBOX[(x >> 8) & 0xF] << 8)
             | (SBOX[(x >> 12) & 0xF] << 12))
        sub16[x] = s
        t = (SBOX_INV[x & 0xF]
             | (SBOX_INV[(x >> 4) & 0xF] << 4)
             | (SBOX_INV[(x >> 8) & 0xF] << 8)
             | (SBOX_INV[(x >> 12) & 0xF] << 12))
        sub16_inv[x] = t
    gather = [[0] * 65536 for _ in range(4)]
    for x in range(65536):
        for k in range(4):
            g = 0
            for nib in range(4):
                if (x >> (4 * nib + k)) & 1:
                    g |= 1 << nib
            gather[k][x] = g
    _SPREAD, _SUB16, _SUB16_INV, _GATHER = spread, sub16, sub16_inv, gather


def _sub_column(rows: List[int], inverse: bool = False) -> List[int]:
    """Apply the S-box to all 16 columns of the 4x16 state in parallel."""
    _build_tables()
    assert _SPREAD is not None and _SUB16 is not None
    assert _SUB16_INV is not None and _GATHER is not None
    cols = (_SPREAD[rows[0]]
            | (_SPREAD[rows[1]] << 1)
            | (_SPREAD[rows[2]] << 2)
            | (_SPREAD[rows[3]] << 3))
    table = _SUB16_INV if inverse else _SUB16
    c0 = table[cols & 0xFFFF]
    c1 = table[(cols >> 16) & 0xFFFF]
    c2 = table[(cols >> 32) & 0xFFFF]
    c3 = table[(cols >> 48) & 0xFFFF]
    out = []
    for k in range(4):
        g = _GATHER[k]
        out.append(g[c0] | (g[c1] << 4) | (g[c2] << 8) | (g[c3] << 12))
    return out


def _block_to_rows(block: int) -> List[int]:
    block &= MASK64
    return [(block >> (16 * i)) & MASK16 for i in range(4)]


def _rows_to_block(rows: Sequence[int]) -> int:
    return (rows[0] | (rows[1] << 16) | (rows[2] << 32) | (rows[3] << 48)) & MASK64


class Rectangle80:
    """RECTANGLE with an 80-bit key; encrypts/decrypts 64-bit blocks.

    The key schedule is computed once at construction; `encrypt` and
    `decrypt` are then cheap enough for the simulator's per-edge keystream
    memoization to keep whole-program runs fast.
    """

    def __init__(self, key: int) -> None:
        if key < 0 or key >> KEY_BITS:
            raise ValueError(f"key must be an unsigned {KEY_BITS}-bit integer")
        self.key = key
        self._round_keys = self._expand_key(key)

    @classmethod
    def from_bytes(cls, key: bytes) -> "Rectangle80":
        """Build a cipher from a 10-byte (80-bit) big-endian key."""
        if len(key) != KEY_BITS // 8:
            raise ValueError(f"key must be {KEY_BITS // 8} bytes")
        return cls(int.from_bytes(key, "big"))

    @staticmethod
    def _expand_key(key: int) -> List[int]:
        """Derive the 26 round keys from the 80-bit master key."""
        rows = [(key >> (16 * i)) & MASK16 for i in range(5)]
        round_keys = []
        for rnd in range(ROUNDS):
            round_keys.append(_rows_to_block(rows[:4]))
            # S-box on the intersection of rows 0..3 and columns 0..3.
            for col in range(4):
                nibble = (((rows[3] >> col) & 1) << 3
                          | ((rows[2] >> col) & 1) << 2
                          | ((rows[1] >> col) & 1) << 1
                          | ((rows[0] >> col) & 1))
                sub = SBOX[nibble]
                for bit in range(4):
                    if (sub >> bit) & 1:
                        rows[bit] |= 1 << col
                    else:
                        rows[bit] &= ~(1 << col) & MASK16
            # Generalized Feistel mix of the five rows.
            new_rows = [
                (rotl16(rows[0], 8) ^ rows[1]) & MASK16,
                rows[2],
                rows[3],
                (rotl16(rows[3], 12) ^ rows[4]) & MASK16,
                rows[0],
            ]
            rows = new_rows
            rows[0] ^= _RC[rnd]
        round_keys.append(_rows_to_block(rows[:4]))
        return round_keys

    def encrypt(self, block: int) -> int:
        """Encrypt one 64-bit block."""
        rows = _block_to_rows(block)
        keys = self._round_keys
        for rnd in range(ROUNDS):
            rk = keys[rnd]
            rows[0] ^= rk & MASK16
            rows[1] ^= (rk >> 16) & MASK16
            rows[2] ^= (rk >> 32) & MASK16
            rows[3] ^= (rk >> 48) & MASK16
            rows = _sub_column(rows)
            rows = [rotl16(rows[i], ROW_ROTATIONS[i]) for i in range(4)]
        rk = keys[ROUNDS]
        rows[0] ^= rk & MASK16
        rows[1] ^= (rk >> 16) & MASK16
        rows[2] ^= (rk >> 32) & MASK16
        rows[3] ^= (rk >> 48) & MASK16
        return _rows_to_block(rows)

    def decrypt(self, block: int) -> int:
        """Decrypt one 64-bit block (inverse of :meth:`encrypt`)."""
        rows = _block_to_rows(block)
        keys = self._round_keys
        rk = keys[ROUNDS]
        rows[0] ^= rk & MASK16
        rows[1] ^= (rk >> 16) & MASK16
        rows[2] ^= (rk >> 32) & MASK16
        rows[3] ^= (rk >> 48) & MASK16
        for rnd in range(ROUNDS - 1, -1, -1):
            rows = [rotl16(rows[i], 16 - ROW_ROTATIONS[i]) for i in range(4)]
            rows = _sub_column(rows, inverse=True)
            rk = keys[rnd]
            rows[0] ^= rk & MASK16
            rows[1] ^= (rk >> 16) & MASK16
            rows[2] ^= (rk >> 32) & MASK16
            rows[3] ^= (rk >> 48) & MASK16
        return _rows_to_block(rows)
