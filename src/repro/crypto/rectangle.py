"""RECTANGLE-80 lightweight block cipher (Zhang et al., 2014).

SOFIA uses RECTANGLE-80 — a bit-slice SPN cipher with a 64-bit block, an
80-bit key and 25 rounds — as the single cipher shared by its CTR-mode
instruction decryption and its CBC-MAC software-integrity check.

State model
-----------
The 64-bit block is viewed as a 4x16 bit matrix of rows ``r0..r3``; ``r0``
holds the least-significant 16 bits of the block.  One round applies:

* ``AddRoundKey`` — XOR the 64-bit round key (also 4x16) into the state,
* ``SubColumn``   — a 4-bit S-box applied to each of the 16 columns,
* ``ShiftRow``    — rows rotated left by 0, 1, 12 and 13 bits.

After 25 rounds a final ``AddRoundKey`` with the 26th round key is applied.

The 80-bit key is a 5x16 matrix; each round key is rows 0..3.  The schedule
applies the S-box to the four low-order columns of the top four rows, a
generalized Feistel mix of the five rows, and a 5-bit LFSR round constant.

Offline note (documented in DESIGN.md): the official test vectors were not
available in this environment, so the implementation is validated by
structural properties (invertibility, avalanche, key sensitivity) rather
than published vectors.  SOFIA's security argument only requires a 64-bit
PRP, which these properties evidence.

Performance: the round loops run in *column space* — nibble ``i`` of the
working 64-bit value holds column ``i`` of the state — built on
precomputed 16-bit spread / substitute / gather tables, so a full
encryption costs a few hundred Python operations instead of 16x25
per-column loops.  The tables are built lazily on first use.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from .primitives import MASK16, MASK64, rotl16

#: RECTANGLE 4-bit S-box and its inverse.
SBOX = (0x6, 0x5, 0xC, 0xA, 0x1, 0xE, 0x7, 0x9,
        0xB, 0x0, 0x3, 0xD, 0x8, 0xF, 0x4, 0x2)
SBOX_INV = tuple(SBOX.index(i) for i in range(16))

#: Left-rotation amounts for ShiftRow, per row.
ROW_ROTATIONS = (0, 1, 12, 13)

ROUNDS = 25
KEY_BITS = 80
BLOCK_BITS = 64


def round_constants(count: int = ROUNDS) -> List[int]:
    """Generate the 5-bit LFSR round constants RC[0..count-1].

    The LFSR starts at 0b00001 and clocks ``rc <- (rc << 1) | (rc4 ^ rc2)``
    over 5-bit state, the feedback polynomial used by the RECTANGLE spec.
    """
    constants = []
    rc = 0x1
    for _ in range(count):
        constants.append(rc)
        feedback = ((rc >> 4) ^ (rc >> 2)) & 1
        rc = ((rc << 1) | feedback) & 0x1F
    return constants


_RC = tuple(round_constants())

# --- bit-slice acceleration tables (built lazily) -------------------------
#
# _SPREAD[x]   : 16-bit row -> 64-bit value with bit i of x at position 4*i.
# _SUB16[x]    : 16-bit chunk holding 4 column nibbles -> S-boxed chunk.
# _SUB16_INV[x]: inverse substitution chunk table.
# _GATHER[k][x]: 16-bit chunk -> the 4 bits at nibble-offset k, packed.

_SPREAD: Optional[List[int]] = None
_SUB16: Optional[List[int]] = None
_SUB16_INV: Optional[List[int]] = None
_GATHER: Optional[List[List[int]]] = None


def _build_tables() -> None:
    global _SPREAD, _SUB16, _SUB16_INV, _GATHER
    if _SPREAD is not None:
        return
    spread = [0] * 65536
    for x in range(65536):
        v = 0
        bits = x
        pos = 0
        while bits:
            if bits & 1:
                v |= 1 << pos
            bits >>= 1
            pos += 4
        spread[x] = v
    sub16 = [0] * 65536
    sub16_inv = [0] * 65536
    for x in range(65536):
        s = (SBOX[x & 0xF]
             | (SBOX[(x >> 4) & 0xF] << 4)
             | (SBOX[(x >> 8) & 0xF] << 8)
             | (SBOX[(x >> 12) & 0xF] << 12))
        sub16[x] = s
        t = (SBOX_INV[x & 0xF]
             | (SBOX_INV[(x >> 4) & 0xF] << 4)
             | (SBOX_INV[(x >> 8) & 0xF] << 8)
             | (SBOX_INV[(x >> 12) & 0xF] << 12))
        sub16_inv[x] = t
    gather = [[0] * 65536 for _ in range(4)]
    for x in range(65536):
        for k in range(4):
            g = 0
            for nib in range(4):
                if (x >> (4 * nib + k)) & 1:
                    g |= 1 << nib
            gather[k][x] = g
    _SPREAD, _SUB16, _SUB16_INV, _GATHER = spread, sub16, sub16_inv, gather


def _rows_to_block(rows: Sequence[int]) -> int:
    return (rows[0] | (rows[1] << 16) | (rows[2] << 32) | (rows[3] << 48)) & MASK64


class Rectangle80:
    """RECTANGLE with an 80-bit key; encrypts/decrypts 64-bit blocks.

    The key schedule is computed once at construction; `encrypt` and
    `decrypt` are then cheap enough for the simulator's per-edge keystream
    memoization to keep whole-program runs fast.
    """

    def __init__(self, key: int) -> None:
        if key < 0 or key >> KEY_BITS:
            raise ValueError(f"key must be an unsigned {KEY_BITS}-bit integer")
        self.key = key
        self._round_keys = self._expand_key(key)
        _build_tables()
        # round keys pre-converted to column space for the round loop:
        # bit i of row r sits at position 4*i + r, like _SPREAD lays out
        self._col_keys = tuple(
            (_SPREAD[rk & MASK16]
             | (_SPREAD[(rk >> 16) & MASK16] << 1)
             | (_SPREAD[(rk >> 32) & MASK16] << 2)
             | (_SPREAD[(rk >> 48) & MASK16] << 3))
            for rk in self._round_keys)

    @classmethod
    def from_bytes(cls, key: bytes) -> "Rectangle80":
        """Build a cipher from a 10-byte (80-bit) big-endian key."""
        if len(key) != KEY_BITS // 8:
            raise ValueError(f"key must be {KEY_BITS // 8} bytes")
        return cls(int.from_bytes(key, "big"))

    @staticmethod
    def _expand_key(key: int) -> List[int]:
        """Derive the 26 round keys from the 80-bit master key."""
        rows = [(key >> (16 * i)) & MASK16 for i in range(5)]
        round_keys = []
        for rnd in range(ROUNDS):
            round_keys.append(_rows_to_block(rows[:4]))
            # S-box on the intersection of rows 0..3 and columns 0..3.
            for col in range(4):
                nibble = (((rows[3] >> col) & 1) << 3
                          | ((rows[2] >> col) & 1) << 2
                          | ((rows[1] >> col) & 1) << 1
                          | ((rows[0] >> col) & 1))
                sub = SBOX[nibble]
                for bit in range(4):
                    if (sub >> bit) & 1:
                        rows[bit] |= 1 << col
                    else:
                        rows[bit] &= ~(1 << col) & MASK16
            # Generalized Feistel mix of the five rows.
            new_rows = [
                (rotl16(rows[0], 8) ^ rows[1]) & MASK16,
                rows[2],
                rows[3],
                (rotl16(rows[3], 12) ^ rows[4]) & MASK16,
                rows[0],
            ]
            rows = new_rows
            rows[0] ^= _RC[rnd]
        round_keys.append(_rows_to_block(rows[:4]))
        return round_keys

    def encrypt(self, block: int) -> int:
        """Encrypt one 64-bit block.

        The round loop is the hot path of every SOFIA image decrypt and
        MAC check, so it runs fully inlined in *column space*: nibble
        ``i`` of the working value holds column ``i`` of the 4x16 state
        (bit ``r`` of the nibble = row ``r``, the `_SPREAD` layout).
        There SubColumn is four `_SUB16` chunk lookups, AddRoundKey is
        one XOR with a pre-converted key, and ShiftRow — rotating row
        ``r`` left by ``ROW_ROTATIONS[r]`` — becomes a rotation of the
        row's bit-plane by four bits per column, so the state never
        round-trips through row form until the final gather.
        """
        r = block & MASK64
        spread = _SPREAD
        sub = _SUB16
        col_keys = self._col_keys
        c = (spread[r & 0xFFFF]
             | (spread[(r >> 16) & 0xFFFF] << 1)
             | (spread[(r >> 32) & 0xFFFF] << 2)
             | (spread[r >> 48] << 3))
        for rnd in range(ROUNDS):
            c ^= col_keys[rnd]
            c = (sub[c & 0xFFFF]
                 | (sub[(c >> 16) & 0xFFFF] << 16)
                 | (sub[(c >> 32) & 0xFFFF] << 32)
                 | (sub[c >> 48] << 48))
            p1 = c & 0x2222222222222222
            p2 = c & 0x4444444444444444
            p3 = c & 0x8888888888888888
            c = ((c & 0x1111111111111111)
                 | (((p1 << 4) | (p1 >> 60)) & MASK64)
                 | (((p2 << 48) | (p2 >> 16)) & MASK64)
                 | (((p3 << 52) | (p3 >> 12)) & MASK64))
        c ^= col_keys[ROUNDS]
        g0, g1, g2, g3 = _GATHER
        c0 = c & 0xFFFF
        c1 = (c >> 16) & 0xFFFF
        c2 = (c >> 32) & 0xFFFF
        c3 = c >> 48
        return ((g0[c0] | (g0[c1] << 4) | (g0[c2] << 8) | (g0[c3] << 12))
                | ((g1[c0] | (g1[c1] << 4) | (g1[c2] << 8)
                    | (g1[c3] << 12)) << 16)
                | ((g2[c0] | (g2[c1] << 4) | (g2[c2] << 8)
                    | (g2[c3] << 12)) << 32)
                | ((g3[c0] | (g3[c1] << 4) | (g3[c2] << 8)
                    | (g3[c3] << 12)) << 48))

    def decrypt(self, block: int) -> int:
        """Decrypt one 64-bit block (inverse of :meth:`encrypt`)."""
        r = block & MASK64
        spread = _SPREAD
        sub_inv = _SUB16_INV
        col_keys = self._col_keys
        c = (spread[r & 0xFFFF]
             | (spread[(r >> 16) & 0xFFFF] << 1)
             | (spread[(r >> 32) & 0xFFFF] << 2)
             | (spread[r >> 48] << 3))
        c ^= col_keys[ROUNDS]
        for rnd in range(ROUNDS - 1, -1, -1):
            # inverse ShiftRow: rotate the bit-planes right instead
            p1 = c & 0x2222222222222222
            p2 = c & 0x4444444444444444
            p3 = c & 0x8888888888888888
            c = ((c & 0x1111111111111111)
                 | (((p1 >> 4) | (p1 << 60)) & MASK64)
                 | (((p2 >> 48) | (p2 << 16)) & MASK64)
                 | (((p3 >> 52) | (p3 << 12)) & MASK64))
            c = (sub_inv[c & 0xFFFF]
                 | (sub_inv[(c >> 16) & 0xFFFF] << 16)
                 | (sub_inv[(c >> 32) & 0xFFFF] << 32)
                 | (sub_inv[c >> 48] << 48))
            c ^= col_keys[rnd]
        g0, g1, g2, g3 = _GATHER
        c0 = c & 0xFFFF
        c1 = (c >> 16) & 0xFFFF
        c2 = (c >> 32) & 0xFFFF
        c3 = c >> 48
        return ((g0[c0] | (g0[c1] << 4) | (g0[c2] << 8) | (g0[c3] << 12))
                | ((g1[c0] | (g1[c1] << 4) | (g1[c2] << 8)
                    | (g1[c3] << 12)) << 16)
                | ((g2[c0] | (g2[c1] << 4) | (g2[c2] << 8)
                    | (g2[c3] << 12)) << 32)
                | ((g3[c0] | (g3[c1] << 4) | (g3[c2] << 8)
                    | (g3[c3] << 12)) << 48))
