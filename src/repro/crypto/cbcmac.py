"""CBC-MAC over 32-bit instruction words (ISO/IEC 9797-1 style).

SOFIA computes a 64-bit CBC-MAC over the plaintext instruction words of each
block.  CBC-MAC is only secure for fixed-length messages, so the
architecture dedicates one key per block type (k2 for 6-word execution
blocks, k3 for 5-word multiplexor blocks); this module is agnostic and just
MACs word sequences.

Message packing: consecutive 32-bit words are packed big-word-first into
64-bit cipher blocks; an odd trailing word is padded with a zero word (the
multiplexor-block rule from DESIGN.md).  The MAC is the final CBC state,
returned either as a 64-bit integer or as the two 32-bit words (M1, M2) that
get interleaved into the code stream; M1 is the most-significant word.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from .primitives import MASK64, block_to_words, words_to_blocks
from .rectangle import Rectangle80


def cbc_mac(cipher: Rectangle80, words: Sequence[int], iv: int = 0) -> int:
    """Compute the 64-bit CBC-MAC of a sequence of 32-bit words."""
    state = iv & MASK64
    for block in words_to_blocks(list(words)):
        state = cipher.encrypt(state ^ block)
    return state


def mac_stream(cipher: Rectangle80, words: Sequence[int],
               count: int, iv: int = 0) -> Tuple[int, ...]:
    """The first ``count`` 32-bit seal words derived from the CBC-MAC.

    This is the parametric-MAC-width primitive behind
    :class:`~repro.transform.profile.ProtectionProfile`:

    * ``count == 2`` is the paper's 64-bit MAC, bit-identical to
      :func:`mac_words` (the final CBC state split MSW-first);
    * ``count == 1`` is the truncated 32-bit seal (``M1``, the MSW);
    * ``count > 2`` widens the seal by clocking the cipher over the
      final state (an OFB-style output extension: each further 64-bit
      chunk is ``E_k`` of the previous one), so every extra word costs
      one cipher call and remains a PRF of the message.
    """
    if count < 1:
        raise ValueError("MAC word count must be positive")
    state = cbc_mac(cipher, words, iv)
    out = list(block_to_words(state))
    while len(out) < count:
        state = cipher.encrypt(state)
        out.extend(block_to_words(state))
    return tuple(out[:count])


def mac_words(cipher: Rectangle80, words: Sequence[int]) -> Tuple[int, int]:
    """CBC-MAC returned as the two 32-bit MAC words ``(M1, M2)``."""
    return block_to_words(cbc_mac(cipher, words))


def verify(cipher: Rectangle80, words: Sequence[int], m1: int, m2: int) -> bool:
    """Check a precomputed (M1, M2) pair against the message words."""
    return mac_words(cipher, words) == (m1 & 0xFFFFFFFF, m2 & 0xFFFFFFFF)
