"""Low-level bit/word utilities shared by the crypto substrate.

All SOFIA quantities are 16/32/64-bit unsigned integers; these helpers keep
masking explicit and centralized so the cipher and MAC code stays readable.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

MASK16 = 0xFFFF
MASK32 = 0xFFFFFFFF
MASK64 = 0xFFFFFFFFFFFFFFFF


def rotl16(value: int, amount: int) -> int:
    """Rotate a 16-bit value left by ``amount`` bits."""
    amount %= 16
    value &= MASK16
    return ((value << amount) | (value >> (16 - amount))) & MASK16


def rotr16(value: int, amount: int) -> int:
    """Rotate a 16-bit value right by ``amount`` bits."""
    return rotl16(value, 16 - (amount % 16))


def rotl32(value: int, amount: int) -> int:
    """Rotate a 32-bit value left by ``amount`` bits."""
    amount %= 32
    value &= MASK32
    return ((value << amount) | (value >> (32 - amount))) & MASK32


def words_to_block(high: int, low: int) -> int:
    """Pack two 32-bit words into a 64-bit block (``high`` is the MSW)."""
    return ((high & MASK32) << 32) | (low & MASK32)


def block_to_words(block: int) -> "tuple[int, int]":
    """Split a 64-bit block into (high word, low word)."""
    block &= MASK64
    return (block >> 32) & MASK32, block & MASK32


def bytes_to_block(data: bytes) -> int:
    """Interpret 8 big-endian bytes as a 64-bit block."""
    if len(data) != 8:
        raise ValueError(f"expected 8 bytes, got {len(data)}")
    return int.from_bytes(data, "big")


def block_to_bytes(block: int) -> bytes:
    """Serialize a 64-bit block as 8 big-endian bytes."""
    return (block & MASK64).to_bytes(8, "big")


def words_to_blocks(words: Sequence[int]) -> List[int]:
    """Pack a sequence of 32-bit words into 64-bit blocks.

    An odd trailing word is padded with a zero low word.  This is the padding
    rule used for multiplexor-block CBC-MAC messages (see DESIGN.md).
    """
    blocks = []
    for i in range(0, len(words), 2):
        high = words[i]
        low = words[i + 1] if i + 1 < len(words) else 0
        blocks.append(words_to_block(high, low))
    return blocks


def hamming_weight(value: int) -> int:
    """Number of set bits in ``value``."""
    return bin(value & MASK64).count("1")


def xor_words(a: Iterable[int], b: Iterable[int]) -> List[int]:
    """Element-wise XOR of two equal-length 32-bit word sequences."""
    result = [(x ^ y) & MASK32 for x, y in zip(a, b)]
    return result
