"""Cryptographic substrate: RECTANGLE-80, CTR keystream, CBC-MAC, keys."""

from .cbcmac import cbc_mac, mac_words, verify
from .ctr import EdgeKeystream, pack_counter
from .keys import DeviceKeys, derive_key
from .present import Present80
from .rectangle import Rectangle80

__all__ = [
    "Rectangle80",
    "Present80",
    "EdgeKeystream",
    "pack_counter",
    "cbc_mac",
    "mac_words",
    "verify",
    "DeviceKeys",
    "derive_key",
]
