"""Cryptographic substrate: cipher registry, CTR keystream, CBC-MAC, keys."""

from .bitslice import (WIDTH, batch_mac_stream, bitsliced_for, encrypt_batch,
                       pack_planes, transpose_bits, unpack_planes)
from .cbcmac import cbc_mac, mac_stream, mac_words, verify
from .ctr import EdgeKeystream, pack_counter
from .keys import DeviceKeys, derive_key
from .present import Present80
from .rectangle import Rectangle80
from .registry import (CIPHERS, DEFAULT_CIPHER, cipher_code,
                       cipher_from_code, cipher_name, cipher_names,
                       get_cipher)

__all__ = [
    "Rectangle80",
    "Present80",
    "EdgeKeystream",
    "pack_counter",
    "cbc_mac",
    "mac_stream",
    "WIDTH",
    "encrypt_batch",
    "batch_mac_stream",
    "bitsliced_for",
    "pack_planes",
    "unpack_planes",
    "transpose_bits",
    "mac_words",
    "verify",
    "DeviceKeys",
    "derive_key",
    "CIPHERS",
    "DEFAULT_CIPHER",
    "get_cipher",
    "cipher_name",
    "cipher_names",
    "cipher_code",
    "cipher_from_code",
]
