"""Profile-grid construction and CLI spec parsing for the E17 sweep.

Two spec languages, both tiny and both round-tripping through
``ProtectionProfile.label``:

* **profile spec** — one design point as colon-separated tokens in any
  order: a registered cipher name, ``mac<bits>``, a renonce policy,
  optionally ``bw<N>`` and ``sched``.  ``rectangle-80/mac64/sequential``
  (a label) parses too, so a label printed by any report can be fed
  straight back to ``--profiles``.
* **grid spec** — cartesian axes separated by ``:``, values by ``,``:
  ``<ciphers>:<mac_bits>:<renonce>[:<block_words>]``, e.g.
  ``rectangle-80,present-80:32,64:sequential,fixed``.
"""

from __future__ import annotations

import re
from typing import List, Optional

from ..crypto.registry import cipher_names
from ..transform.profile import (ProtectionProfile, RENONCE_POLICIES,
                                 profile_grid)

_MAC_RE = re.compile(r"^mac(\d+)$")
_BW_RE = re.compile(r"^bw(\d+)$")


def parse_profile_spec(spec: str) -> ProtectionProfile:
    """Parse one design-point spec (or a profile label) into a profile."""
    fields = {}
    for token in re.split(r"[:/]", spec.strip()):
        token = token.strip()
        if not token:
            continue
        mac = _MAC_RE.match(token)
        bw = _BW_RE.match(token)
        if token in cipher_names():
            fields["cipher"] = token
        elif mac:
            bits = int(mac.group(1))
            if bits % 32:
                raise ValueError(
                    f"mac width must be a multiple of 32 bits, got {bits}")
            fields["mac_words"] = bits // 32
        elif token in RENONCE_POLICIES:
            fields["renonce"] = token
        elif bw:
            fields["block_words"] = int(bw.group(1))
        elif token == "sched":
            fields["schedule_stores"] = True
        else:
            raise ValueError(
                f"unknown profile token {token!r} in {spec!r} (expected a "
                f"cipher {cipher_names()}, mac<bits>, a renonce policy "
                f"{list(RENONCE_POLICIES)}, bw<N> or sched)")
    return ProtectionProfile(**fields)


def parse_profiles(specs: str) -> List[ProtectionProfile]:
    """Parse a comma-separated list of profile specs.

    Commas separate *profiles* here; within one profile the tokens are
    colon- or slash-separated (labels use slashes).
    """
    profiles = [parse_profile_spec(part) for part in specs.split(",")
                if part.strip()]
    if not profiles:
        raise ValueError("empty profile list")
    return profiles


def parse_grid(spec: str) -> List[ProtectionProfile]:
    """Parse a cartesian grid spec into its profile list."""
    axes = [axis.strip() for axis in spec.split(":")]
    if len(axes) < 3 or len(axes) > 4:
        raise ValueError(
            f"grid spec needs 3 or 4 axes "
            f"(ciphers:mac_bits:renonce[:block_words]), got {len(axes)}")
    ciphers = [c.strip() for c in axes[0].split(",") if c.strip()]
    mac_bits = [int(b) for b in axes[1].split(",") if b.strip()]
    renonce = [r.strip() for r in axes[2].split(",") if r.strip()]
    block_words = ([int(b) for b in axes[3].split(",") if b.strip()]
                   if len(axes) == 4 else [8])
    return profile_grid(ciphers=ciphers, mac_bits=mac_bits,
                        renonce=renonce, block_words=block_words)


def default_grid() -> List[ProtectionProfile]:
    """The E17 grid: 2 ciphers x {32,64,96}-bit seals x both policies."""
    return profile_grid()


def resolve_profiles(profiles: Optional[str] = None,
                     grid: Optional[str] = None
                     ) -> List[ProtectionProfile]:
    """CLI argument resolution: explicit points, a grid, or the default."""
    if profiles and grid:
        raise ValueError("--profiles and --grid are mutually exclusive")
    if profiles:
        return parse_profiles(profiles)
    if grid:
        return parse_grid(grid)
    return default_grid()
