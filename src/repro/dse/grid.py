"""Profile-grid construction and CLI spec parsing for the E17 sweep.

Two spec languages, both tiny and both round-tripping through
``ProtectionProfile.label``:

* **profile spec** — one design point as colon-separated tokens in any
  order: a registered cipher name, ``mac<bits>``, a renonce policy,
  optionally ``bw<N>`` and ``sched``.  ``rectangle-80/mac64/sequential``
  (a label) parses too, so a label printed by any report can be fed
  straight back to ``--profiles``.
* **grid spec** — cartesian axes separated by ``:``, values by ``,``:
  ``<ciphers>:<mac_bits>:<renonce>[:<block_words>]``, e.g.
  ``rectangle-80,present-80:32,64:sequential,fixed``.

Hardware design points (the E20 front) carry a third language on top: a
profile spec/label plus an ``@u<N>`` unroll suffix, e.g.
``rectangle-80/mac64/sequential@u13`` — :func:`parse_hw_point` round-trips
the labels :func:`repro.hwmodel.hw_point_label` prints.

Numeric fields are validated *here*, at parse time, with messages that
name the offending token: ``mac0`` (zero is a multiple of 32),
non-positive or absurd ``bw`` values and the like are rejected before
they reach :class:`~repro.transform.profile.ProtectionProfile` (which
refuses them too, with constructor-level messages).
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple

from ..crypto.registry import cipher_names
from ..transform.profile import (MAX_BLOCK_WORDS, ProtectionProfile,
                                 RENONCE_POLICIES, profile_grid)

_MAC_RE = re.compile(r"^mac(\d+)$")
_BW_RE = re.compile(r"^bw(\d+)$")
_UNROLL_RE = re.compile(r"^u(\d+)$")


def _parse_mac_bits(bits: int) -> int:
    """Seal width in bits -> ``mac_words``, with parse-time messages."""
    if bits <= 0 or bits % 32:
        raise ValueError(
            f"mac width must be a positive multiple of 32 bits, "
            f"got {bits}")
    return bits // 32


def _check_block_words(value: int) -> int:
    if not 0 < value <= MAX_BLOCK_WORDS:
        raise ValueError(
            f"block_words must be in 1..{MAX_BLOCK_WORDS}, got {value}")
    return value


def parse_profile_spec(spec: str) -> ProtectionProfile:
    """Parse one design-point spec (or a profile label) into a profile."""
    fields = {}
    for token in re.split(r"[:/]", spec.strip()):
        token = token.strip()
        if not token:
            continue
        mac = _MAC_RE.match(token)
        bw = _BW_RE.match(token)
        if token in cipher_names():
            fields["cipher"] = token
        elif mac:
            fields["mac_words"] = _parse_mac_bits(int(mac.group(1)))
        elif token in RENONCE_POLICIES:
            fields["renonce"] = token
        elif bw:
            fields["block_words"] = _check_block_words(int(bw.group(1)))
        elif token == "sched":
            fields["schedule_stores"] = True
        else:
            raise ValueError(
                f"unknown profile token {token!r} in {spec!r} (expected a "
                f"cipher {cipher_names()}, mac<bits>, a renonce policy "
                f"{list(RENONCE_POLICIES)}, bw<N> or sched)")
    return ProtectionProfile(**fields)


def parse_hw_point(spec: str) -> Tuple[ProtectionProfile, int]:
    """Parse ``<profile spec>[@u<N>]`` into (profile, unroll).

    Without a suffix the unroll is the profile's minimum legal
    (fetch-sustaining) factor; with one, the factor is validated against
    the cipher's legal range.  Inverse of
    :func:`repro.hwmodel.hw_point_label`.
    """
    from ..hwmodel.profilecost import legal_unrolls, min_legal_unroll
    base, sep, suffix = spec.strip().partition("@")
    profile = parse_profile_spec(base)
    if not sep:
        return profile, min_legal_unroll(profile)
    match = _UNROLL_RE.match(suffix.strip())
    if not match:
        raise ValueError(
            f"bad unroll suffix {suffix!r} in {spec!r} (expected u<N>)")
    unroll = int(match.group(1))
    legal = legal_unrolls(profile)
    if unroll not in legal:
        raise ValueError(
            f"unroll {unroll} is not legal for {profile.cipher} "
            f"(fetch-sustaining range {legal.start}..{legal[-1]})")
    return profile, unroll


def parse_profiles(specs: str) -> List[ProtectionProfile]:
    """Parse a comma-separated list of profile specs.

    Commas separate *profiles* here; within one profile the tokens are
    colon- or slash-separated (labels use slashes).
    """
    profiles = [parse_profile_spec(part) for part in specs.split(",")
                if part.strip()]
    if not profiles:
        raise ValueError("empty profile list")
    return profiles


def parse_grid(spec: str) -> List[ProtectionProfile]:
    """Parse a cartesian grid spec into its profile list."""
    axes = [axis.strip() for axis in spec.split(":")]
    if len(axes) < 3 or len(axes) > 4:
        raise ValueError(
            f"grid spec needs 3 or 4 axes "
            f"(ciphers:mac_bits:renonce[:block_words]), got {len(axes)}")
    ciphers = [c.strip() for c in axes[0].split(",") if c.strip()]
    mac_bits = [32 * _parse_mac_bits(int(b))
                for b in axes[1].split(",") if b.strip()]
    renonce = [r.strip() for r in axes[2].split(",") if r.strip()]
    block_words = ([_check_block_words(int(b))
                    for b in axes[3].split(",") if b.strip()]
                   if len(axes) == 4 else [8])
    return profile_grid(ciphers=ciphers, mac_bits=mac_bits,
                        renonce=renonce, block_words=block_words)


def default_grid() -> List[ProtectionProfile]:
    """The E17 grid: 2 ciphers x {32,64,96}-bit seals x both policies."""
    return profile_grid()


def resolve_profiles(profiles: Optional[str] = None,
                     grid: Optional[str] = None
                     ) -> List[ProtectionProfile]:
    """CLI argument resolution: explicit points, a grid, or the default."""
    if profiles and grid:
        raise ValueError("--profiles and --grid are mutually exclusive")
    if profiles:
        return parse_profiles(profiles)
    if grid:
        return parse_grid(grid)
    return default_grid()
