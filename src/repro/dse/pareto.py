"""Pareto-front computation over design points (experiment E17).

A design point is *dominated* when another point is at least as good on
every objective and strictly better on at least one.  The E17 objectives:

* minimize mean cycle overhead (performance cost),
* minimize mean code-size ratio (memory cost),
* maximize the §IV-A online-forgery bound (security).

The front is computed on exact values (no tolerance): two points that tie
on every objective dominate each other on none, so both survive — which
is what a sweep wants when, say, two ciphers yield identical overheads at
the same seal width.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

#: objective vector: (cycle_overhead, size_ratio, si_years)
Objectives = Tuple[float, float, float]


def dominates(a: Objectives, b: Objectives) -> bool:
    """True when ``a`` Pareto-dominates ``b`` (min, min, max order)."""
    no_worse = (a[0] <= b[0] and a[1] <= b[1] and a[2] >= b[2])
    strictly_better = (a[0] < b[0] or a[1] < b[1] or a[2] > b[2])
    return no_worse and strictly_better


def pareto_mask(points: Sequence[Objectives]) -> List[bool]:
    """Non-domination flags, one per point, in input order."""
    return [not any(dominates(other, point)
                    for j, other in enumerate(points) if j != i)
            for i, point in enumerate(points)]


def pareto_front(points: Iterable) -> List:
    """The non-dominated subset of objects carrying ``.objectives``."""
    items = list(points)
    mask = pareto_mask([item.objectives for item in items])
    return [item for item, keep in zip(items, mask) if keep]
