"""Pareto-front computation over design points (experiment E17/E20).

A design point is *dominated* when another point is at least as good on
every objective and strictly better on at least one.  "Good" is defined
per objective by an explicit **sense tuple** — one ``"min"``/``"max"``
entry per objective position — instead of a hardcoded ordering, so the
same machinery serves both fronts:

* :data:`E17_SENSES` ``("min", "min", "max")`` — minimize mean cycle
  overhead, minimize mean code-size ratio, maximize the §IV-A
  online-forgery bound (the classic E17 objectives, and the default);
* :data:`HW_SENSES` ``("min", "max", "min")`` — minimize cycle
  overhead, maximize the forgery bound, minimize the hardware
  area-delay product (the unified E17+hardware front).

The front is computed on exact values (no tolerance): two points that tie
on every objective dominate each other on none, so both survive — which
is what a sweep wants when, say, two ciphers yield identical overheads at
the same seal width.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

#: per-objective optimization direction, one entry per objective position
Senses = Tuple[str, ...]

#: the classic E17 objectives: (cycle_overhead, size_ratio, si_years)
E17_SENSES: Senses = ("min", "min", "max")

#: the unified E17+hardware objectives (experiment E20):
#: (cycle_overhead, si_years, area_delay)
HW_SENSES: Senses = ("min", "max", "min")

#: objective vector (arity must match the sense tuple in use)
Objectives = Tuple[float, ...]


def _check_senses(senses: Senses, arity: int) -> None:
    if len(senses) != arity:
        raise ValueError(f"{arity} objectives need {arity} senses, "
                         f"got {len(senses)}: {senses!r}")
    for sense in senses:
        if sense not in ("min", "max"):
            raise ValueError(f"sense must be 'min' or 'max', "
                             f"got {sense!r}")


def dominates(a: Objectives, b: Objectives,
              senses: Senses = E17_SENSES) -> bool:
    """True when ``a`` Pareto-dominates ``b`` under ``senses``."""
    if len(a) != len(b):
        raise ValueError(f"objective arity mismatch: {len(a)} vs {len(b)}")
    _check_senses(senses, len(a))
    no_worse = all(x <= y if sense == "min" else x >= y
                   for x, y, sense in zip(a, b, senses))
    strictly_better = any(x < y if sense == "min" else x > y
                          for x, y, sense in zip(a, b, senses))
    return no_worse and strictly_better


def pareto_mask(points: Sequence[Objectives],
                senses: Senses = E17_SENSES) -> List[bool]:
    """Non-domination flags, one per point, in input order."""
    if points:
        _check_senses(senses, len(points[0]))
    return [not any(dominates(other, point, senses)
                    for j, other in enumerate(points) if j != i)
            for i, point in enumerate(points)]


def pareto_front(points: Iterable, senses: Senses = E17_SENSES) -> List:
    """The non-dominated subset of objects carrying ``.objectives``."""
    items = list(points)
    mask = pareto_mask([item.objectives for item in items], senses)
    return [item for item, keep in zip(items, mask) if keep]
