"""Design-space exploration over protection profiles (experiment E17).

The paper argues security and overhead at one design point; this package
turns the reproduction into a design-space explorer.  A profile grid
(2 ciphers x {32, 64, 96}-bit seals x renonce policies by default) fans
out through :mod:`repro.runner`, each point measuring workload overheads,
an empirical attack-synthesis detection rate and a fault campaign, and
the sweep exports a byte-deterministic Pareto table of cost vs security.

Entry points: :func:`run_dse` (library), ``repro dse`` (CLI),
``benchmarks/bench_dse_pareto.py`` (the E17 driver).
"""

from .campaign import (DEFAULT_PROGRAMS, DEFAULT_SCALE, DEFAULT_SEED,
                       DEFAULT_WORKLOADS, DesignPointRow, DseReport,
                       HwPointRow, run_dse)
from .grid import (default_grid, parse_grid, parse_hw_point,
                   parse_profile_spec, parse_profiles, resolve_profiles)
from .pareto import (E17_SENSES, HW_SENSES, dominates, pareto_front,
                     pareto_mask)

__all__ = [
    "run_dse", "DseReport", "DesignPointRow", "HwPointRow",
    "DEFAULT_SEED", "DEFAULT_SCALE", "DEFAULT_WORKLOADS",
    "DEFAULT_PROGRAMS",
    "default_grid", "parse_grid", "parse_profiles", "parse_profile_spec",
    "parse_hw_point", "resolve_profiles",
    "dominates", "pareto_mask", "pareto_front",
    "E17_SENSES", "HW_SENSES",
]
