"""The E17 design-space sweep: one campaign per profile grid point.

Each task of the sweep is one :class:`ProtectionProfile` and runs, inside
its worker, the full per-point evaluation **serially** (the grid itself is
what fans out across processes via :mod:`repro.runner`):

* the workload suite on both cores (through the per-process build cache)
  for cycle and code-size overheads,
* a scaled-down attack-synthesis campaign (E16 machinery) for the
  empirical detection rate against the profile's own §IV-A expectation,
* a fault-injection campaign (E11 machinery) for the guarantee boundary,
* the closed-form §IV-A forgery bounds at the profile's seal width.

Every per-point seed derives from the campaign seed plus the profile
label, so the sweep is deterministic at any ``--jobs`` value and the
JSON/CSV artifacts are byte-identical serial vs parallel (they carry no
wall-clock or worker-count fields).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..crypto.keys import DeviceKeys
from ..errors import ReproError
from ..eval.export import DSE_HW_CSV_HEADER, dse_csv, dse_json
from ..eval.overhead import OverheadPoint, measure_point
from ..faults.campaign import FaultOutcome
from ..faults.campaign import run_campaign as run_fault_campaign
from ..hwmodel.profilecost import (CYCLES_BUDGET, UnrollSpec, legal_unrolls,
                                   profile_cost, resolve_unrolls)
from ..obs import phase as obs_phase
from ..runner import (DEFAULT_KEY_SEED, ResultStore, ShardSpec, run_tasks,
                      run_tasks_stored, task_key, task_seed)
from ..security.bounds import cfi_attack_years, si_forgery_years
from ..transform.profile import ProtectionProfile
from ..workloads.base import make_workload
from .pareto import HW_SENSES, Objectives, pareto_mask

DEFAULT_SEED = 0xD5E17
DEFAULT_WORKLOADS: Tuple[str, ...] = ("crc32", "rle", "sort")
DEFAULT_SCALE = "tiny"
DEFAULT_PROGRAMS = 5
DEFAULT_PER_MODEL = 3

# per-process context installed by the pool initializer
_WORKER_CTX: Optional[tuple] = None


@dataclass
class DesignPointRow:
    """Everything the sweep measured for one design point (picklable)."""

    label: str
    cipher: str
    mac_bits: int
    renonce: str
    block_words: int
    schedule_stores: bool
    #: per-workload (workload, size_ratio, cycle_overhead) triples
    workload_rows: List[Tuple[str, float, float]] = field(
        default_factory=list)
    size_ratio: float = 0.0
    cycle_overhead: float = 0.0
    si_years: float = 0.0
    cfi_years: float = 0.0
    synth_instances: int = 0
    synth_attempts: int = 0
    synth_undetected: int = 0
    synth_expected: float = 0.0
    synth_consistent: bool = True
    synth_anomalies: int = 0
    fault_counts: Dict[str, int] = field(default_factory=dict)
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return (self.error is None and self.synth_consistent
                and self.synth_anomalies == 0)

    @property
    def detection_rate(self) -> Optional[float]:
        if not self.synth_attempts:
            return None
        return 1.0 - self.synth_undetected / self.synth_attempts

    @property
    def objectives(self) -> Objectives:
        """(cycle_overhead min, size_ratio min, si_years max)."""
        return (self.cycle_overhead, self.size_ratio, self.si_years)

    def to_record(self) -> Dict:
        return {
            "profile": self.label,
            "cipher": self.cipher,
            "mac_bits": self.mac_bits,
            "renonce": self.renonce,
            "block_words": self.block_words,
            "schedule_stores": self.schedule_stores,
            "workloads": [
                {"workload": name, "size_ratio": ratio,
                 "cycle_overhead": overhead}
                for name, ratio, overhead in self.workload_rows],
            "size_ratio": self.size_ratio,
            "cycle_overhead": self.cycle_overhead,
            "si_years": self.si_years,
            "cfi_years": self.cfi_years,
            "attacksynth": {
                "instances": self.synth_instances,
                "attempts": self.synth_attempts,
                "undetected": self.synth_undetected,
                "expected": self.synth_expected,
                "consistent": self.synth_consistent,
                "anomalies": self.synth_anomalies,
            },
            "faults": dict(sorted(self.fault_counts.items())),
            "error": self.error,
        }


@dataclass
class HwPointRow:
    """One (design point, unroll) hardware variant of the E20 front.

    Derived *after* the sweep by pure arithmetic on the profile
    (:func:`repro.hwmodel.profilecost.profile_cost`) — never stored, never
    keyed into the result store, so ``--hw`` on/off shares one cache and
    the hardware axes are byte-deterministic at any ``--jobs``.
    """

    profile: str        # base profile label
    cipher: str
    unroll: int
    min_unroll: int
    cipher_cycles: int
    datapath_slices: int
    sofia_slices: int
    slices: int
    path_ns: float
    clock_mhz: float
    area_delay: float   # slices x path_ns, the scalar hardware cost
    cycle_overhead: float
    si_years: float

    @property
    def label(self) -> str:
        """``<profile>@u<N>`` — parseable by ``dse.grid.parse_hw_point``."""
        return f"{self.profile}@u{self.unroll}"

    @property
    def objectives(self) -> Objectives:
        """(cycle_overhead min, si_years max, area_delay min)."""
        return (self.cycle_overhead, self.si_years, self.area_delay)

    def to_record(self) -> Dict:
        return {
            "label": self.label,
            "profile": self.profile,
            "cipher": self.cipher,
            "unroll": self.unroll,
            "min_unroll": self.min_unroll,
            "cipher_cycles": self.cipher_cycles,
            "datapath_slices": self.datapath_slices,
            "sofia_slices": self.sofia_slices,
            "slices": self.slices,
            "path_ns": self.path_ns,
            "clock_mhz": self.clock_mhz,
            "area_delay": self.area_delay,
            "cycle_overhead": self.cycle_overhead,
            "si_years": self.si_years,
        }


def check_unroll_specs(profiles: Sequence[ProtectionProfile],
                        specs: Sequence[UnrollSpec]) -> None:
    """Reject an explicit unroll that no swept cipher can legally use."""
    for spec in specs:
        if spec == "min":
            continue
        if not any(spec in legal_unrolls(profile) for profile in profiles):
            ranges = sorted({f"{profile.cipher} "
                             f"{legal_unrolls(profile).start}.."
                             f"{legal_unrolls(profile)[-1]}"
                             for profile in profiles})
            raise ValueError(
                f"unroll {spec} is not legal for any swept cipher "
                f"(fetch-sustaining ranges: {', '.join(ranges)})")


def _hw_point_rows(profiles: Sequence[ProtectionProfile],
                   points: Sequence["DesignPointRow"],
                   specs: Sequence[UnrollSpec]) -> "List[HwPointRow]":
    """Hardware variants of every measured point, in sweep order.

    A factor outside one cipher's legal range is skipped for that cipher
    only (a mixed grid may request ``13,16``); points that errored get no
    variants.
    """
    by_label = {profile.label: profile for profile in profiles}
    rows: List[HwPointRow] = []
    for point in points:
        profile = by_label.get(point.label)
        if point.error is not None or profile is None:
            continue
        for unroll in resolve_unrolls(profile, specs):
            cost = profile_cost(profile, unroll)
            rows.append(HwPointRow(
                profile=point.label, cipher=point.cipher, unroll=unroll,
                min_unroll=cost.min_unroll,
                cipher_cycles=cost.cipher_cycles,
                datapath_slices=cost.datapath_slices,
                sofia_slices=cost.sofia_slices, slices=cost.slices,
                path_ns=_round(cost.critical_path_ns),
                clock_mhz=_round(cost.clock_mhz),
                area_delay=_round(cost.area_delay),
                cycle_overhead=point.cycle_overhead,
                si_years=point.si_years))
    return rows


def _init_dse_worker(key_seed: int, seed: int, workloads: Tuple[str, ...],
                     scale: str, programs: int, per_model: int,
                     engine: Optional[str] = None) -> None:
    global _WORKER_CTX
    _WORKER_CTX = (key_seed, seed, workloads, scale, programs, per_model,
                   engine)


def _round(value: float) -> float:
    """Stable rounding for exported floats (byte-deterministic JSON)."""
    return round(value, 6)


def _dse_task(task: Tuple[int, ProtectionProfile]) -> DesignPointRow:
    """Worker: evaluate one design point end to end."""
    (key_seed, seed, workloads, scale, programs, per_model,
     engine) = _WORKER_CTX
    _index, profile = task
    row = DesignPointRow(
        label=profile.label, cipher=profile.cipher,
        mac_bits=profile.mac_bits, renonce=profile.renonce,
        block_words=profile.block_words,
        schedule_stores=profile.schedule_stores,
        si_years=si_forgery_years(profile.mac_bits),
        cfi_years=cfi_attack_years(profile.mac_bits))
    try:
        # -- workload suite: overheads at this design point ---------------
        ratios: List[float] = []
        overheads: List[float] = []
        for workload in workloads:
            measured = measure_point(OverheadPoint(
                workload=workload, scale=scale, key_seed=key_seed,
                profile=profile))
            ratios.append(measured.size_ratio)
            overheads.append(measured.cycle_overhead)
            row.workload_rows.append(
                (workload, _round(measured.size_ratio),
                 _round(measured.cycle_overhead)))
        row.size_ratio = _round(sum(ratios) / len(ratios))
        row.cycle_overhead = _round(sum(overheads) / len(overheads))

        # -- empirical detection: scaled-down attack synthesis ------------
        # imported lazily: attacksynth pulls in the fuzz substrate, which
        # the overhead-only callers of this module never need
        from ..attacksynth.campaign import run_attacksynth
        synth = run_attacksynth(
            programs, seed=task_seed(seed, "dse-synth", profile.label),
            key_seed=key_seed, profile=profile, parallel=False,
            engine=engine)
        bounds = synth.bounds()
        row.synth_instances = synth.instances
        row.synth_attempts = bounds.attempts
        row.synth_undetected = bounds.undetected
        row.synth_expected = bounds.expected
        row.synth_consistent = bounds.consistent
        row.synth_anomalies = (
            len(synth.missed) + len(synth.benign_anomalies)
            + len(synth.edge_anomalies) + len(synth.plain_anomalies)
            + len(synth.build_errors))

        # -- guarantee boundary: fault campaign on the first workload -----
        keys = DeviceKeys.from_seed(key_seed).for_profile(profile)
        victim = make_workload(workloads[0], scale)
        _results, summary = run_fault_campaign(
            victim.compile().program, keys, victim.expected_output,
            per_model=per_model,
            seed=task_seed(seed, "dse-fault", profile.label),
            profile=profile, parallel=False, engine=engine)
        totals = {outcome.value: 0 for outcome in FaultOutcome}
        for per_model_counts in summary.counts.values():
            for outcome, count in per_model_counts.items():
                totals[outcome.value] += count
        row.fault_counts = totals
    except (ReproError, AssertionError, ValueError) as exc:
        row.error = f"{type(exc).__name__}: {exc}"
    return row


@dataclass
class DseReport:
    """The whole sweep, with the Pareto front computed over its points."""

    seed: int
    key_seed: int
    scale: str
    workloads: Tuple[str, ...]
    programs: int
    per_model: int
    points: List[DesignPointRow] = field(default_factory=list)
    #: unroll spec tuple when the hardware axes are on, ``None`` when off
    #: (``None`` keeps the exports byte-identical to pre-hardware runs)
    hw_unrolls: Optional[Tuple[UnrollSpec, ...]] = None
    #: hardware variants, one per (measured point, legal unroll)
    hw_points: List[HwPointRow] = field(default_factory=list)
    elapsed_seconds: float = 0.0
    #: ``False`` for a sharded invocation that skipped grid points owned
    #: by other shards; exports wait for a merged store
    complete: bool = True

    @property
    def ok(self) -> bool:
        return bool(self.points) and all(p.ok for p in self.points)

    @property
    def hw(self) -> bool:
        """Are the hardware axes folded into this sweep?"""
        return self.hw_unrolls is not None

    def pareto_labels(self) -> List[str]:
        """Labels of the non-dominated design points, in sweep order."""
        measured = [p for p in self.points if p.error is None]
        mask = pareto_mask([p.objectives for p in measured])
        return [p.label for p, keep in zip(measured, mask) if keep]

    def hw_pareto_labels(self) -> List[str]:
        """Labels of the unified E17+hardware front, in sweep order.

        A 3-way front over (cycle overhead min, forgery bound max,
        area-delay min) across every (point, unroll) hardware variant.
        """
        mask = pareto_mask([row.objectives for row in self.hw_points],
                           HW_SENSES)
        return [row.label
                for row, keep in zip(self.hw_points, mask) if keep]

    def to_record(self) -> Dict:
        """Canonical JSON document (wall-clock- and jobs-free)."""
        record = {
            "experiment": "E17",
            "campaign": "dse",
            "parameters": {
                "seed": self.seed,
                "key_seed": self.key_seed,
                "scale": self.scale,
                "workloads": list(self.workloads),
                "programs": self.programs,
                "per_model": self.per_model,
            },
            "points": [p.to_record() for p in self.points],
            "pareto": self.pareto_labels(),
        }
        if self.hw_unrolls is not None:
            record["hw"] = {
                "cycles_budget": CYCLES_BUDGET,
                "unrolls": list(self.hw_unrolls),
                "points": [row.to_record() for row in self.hw_points],
                "pareto": self.hw_pareto_labels(),
            }
        return record

    def _csv_base(self, p: DesignPointRow, pareto: set) -> Dict:
        rate = p.detection_rate
        return {
            "profile": p.label, "cipher": p.cipher,
            "mac_bits": p.mac_bits, "renonce": p.renonce,
            "block_words": p.block_words,
            "schedule_stores": int(p.schedule_stores),
            "size_ratio": p.size_ratio,
            "cycle_overhead": p.cycle_overhead,
            "si_years": p.si_years,
            "cfi_years": p.cfi_years,
            "synth_attempts": p.synth_attempts,
            "synth_undetected": p.synth_undetected,
            "detection_rate": "" if rate is None else _round(rate),
            "expected_collisions": p.synth_expected,
            "consistent": int(p.synth_consistent),
            "fault_detected": p.fault_counts.get("detected", 0),
            "fault_sdc": p.fault_counts.get("sdc", 0),
            "pareto": int(p.label in pareto),
            "error": p.error or "",
        }

    def csv_rows(self) -> List[Dict]:
        pareto = set(self.pareto_labels())
        return [self._csv_base(p, pareto) for p in self.points]

    def hw_csv_rows(self) -> List[Dict]:
        """One CSV row per (point, unroll) variant, hardware columns on.

        Errored points (which have no hardware variants) still appear
        once, with the hardware columns empty, so the CSV never silently
        drops a grid point.
        """
        pareto = set(self.pareto_labels())
        hw_pareto = set(self.hw_pareto_labels())
        by_profile: Dict[str, List[HwPointRow]] = {}
        for row in self.hw_points:
            by_profile.setdefault(row.profile, []).append(row)
        rows = []
        for p in self.points:
            variants = by_profile.get(p.label, [])
            if not variants:
                rows.append(self._csv_base(p, pareto))
                continue
            for variant in variants:
                base = self._csv_base(p, pareto)
                base.update({
                    "unroll": variant.unroll,
                    "cipher_cycles": variant.cipher_cycles,
                    "datapath_slices": variant.datapath_slices,
                    "slices": variant.slices,
                    "clock_mhz": variant.clock_mhz,
                    "path_ns": variant.path_ns,
                    "area_delay": variant.area_delay,
                    "hw_pareto": int(variant.label in hw_pareto),
                })
                rows.append(base)
        return rows

    def render(self) -> str:
        pareto = set(self.pareto_labels())
        header = (f"{'profile':<38s} {'cyc ovh':>8s} {'size':>6s} "
                  f"{'forgery bound':>14s} {'det rate':>9s} "
                  f"{'faults det/sdc':>14s}  pareto")
        lines = [
            f"Design-space sweep (E17): {len(self.points)} points, "
            f"seed {self.seed:#x}",
            header, "-" * len(header)]
        for p in self.points:
            if p.error is not None:
                lines.append(f"{p.label:<38s} ERROR {p.error}")
                continue
            rate = p.detection_rate
            lines.append(
                f"{p.label:<38s} {p.cycle_overhead:>+7.1%} "
                f"{p.size_ratio:>5.2f}x {p.si_years:>12.3g}y "
                f"{'n/a' if rate is None else format(rate, '.4f'):>9s} "
                f"{p.fault_counts.get('detected', 0):>7d}/"
                f"{p.fault_counts.get('sdc', 0):<6d} "
                f"{'*' if p.label in pareto else ''}")
        lines.append("")
        lines.append(f"  Pareto front: {', '.join(sorted(pareto))}")
        if self.hw:
            hw_pareto = set(self.hw_pareto_labels())
            lines.append("")
            lines.append(
                f"Hardware axes (E20): unrolls="
                f"{','.join(str(u) for u in self.hw_unrolls)}, "
                f"one cipher op per {CYCLES_BUDGET} cycles")
            hw_header = (f"{'design point':<44s} {'slices':>7s} "
                         f"{'clock':>9s} {'c/op':>5s} "
                         f"{'area-delay':>12s}  hw-pareto")
            lines.append(hw_header)
            lines.append("-" * len(hw_header))
            for row in self.hw_points:
                lines.append(
                    f"{row.label:<44s} {row.slices:>7d} "
                    f"{row.clock_mhz:>5.1f} MHz {row.cipher_cycles:>5d} "
                    f"{row.area_delay:>12.1f} "
                    f"{'*' if row.label in hw_pareto else ''}")
            lines.append("")
            lines.append(f"  hw Pareto front: "
                         f"{', '.join(sorted(hw_pareto))}")
        return "\n".join(lines)


def run_dse(profiles: Sequence[ProtectionProfile], *,
            seed: int = DEFAULT_SEED,
            key_seed: int = DEFAULT_KEY_SEED,
            workloads: Sequence[str] = DEFAULT_WORKLOADS,
            scale: str = DEFAULT_SCALE,
            programs: int = DEFAULT_PROGRAMS,
            per_model: int = DEFAULT_PER_MODEL,
            parallel: bool = False, jobs: Optional[int] = None,
            export_path=None, csv_path=None,
            engine: Optional[str] = None,
            store_dir=None, shard: Optional[ShardSpec] = None,
            telemetry=None, hw: bool = False,
            unrolls: Optional[Sequence[UnrollSpec]] = None) -> DseReport:
    """Sweep the profile list; one runner task per design point.

    ``hw=True`` folds the hardware axes in: every measured point gains
    one :class:`HwPointRow` per requested ``unrolls`` entry (``"min"``,
    the default, is the per-cipher minimum fetch-sustaining factor), the
    report carries the unified 3-way E20 front (cycle overhead x forgery
    bound x area-delay), and the exports switch to the extended schema.
    Hardware costing is pure post-hoc arithmetic on the profile: it never
    enters the result-store keys (one store serves ``hw`` on and off),
    and with ``hw=False`` the exports stay byte-identical to pre-hardware
    releases.

    ``engine="batch"`` routes each point's attack-synthesis and
    fault-injection campaigns through the bit-sliced batch engine; the
    overhead measurements stay scalar (they time the scalar engines) and
    the JSON/CSV artifacts are byte-identical either way.

    ``store_dir`` caches each grid point's :class:`DesignPointRow` in a
    persistent :class:`~repro.runner.store.ResultStore` (keyed by code
    version + sweep context + profile), making large sweeps resumable;
    ``shard`` evaluates one deterministic ``i/n`` slice of the grid
    (requires a store) — exports wait for a merged store and are then
    byte-identical to an uninterrupted serial sweep.

    ``telemetry`` (a :class:`repro.obs.Telemetry`, default ``None``)
    records phases, per-point spans, and simulator counters — strictly
    observationally: the report and exports are byte-identical either
    way.
    """
    if not profiles:
        raise ValueError("the sweep needs at least one profile")
    if not workloads:
        raise ValueError("the sweep needs at least one workload")
    if unrolls is not None and not hw:
        raise ValueError("unroll factors need hw=True (--unroll "
                         "parameterizes the hardware axes)")
    unroll_specs: Optional[Tuple[UnrollSpec, ...]] = None
    if hw:
        unroll_specs = tuple(unrolls) if unrolls else ("min",)
        if not unroll_specs:
            raise ValueError("empty unroll list")
        check_unroll_specs(profiles, unroll_specs)
    started = time.perf_counter()
    report = DseReport(seed=seed, key_seed=key_seed, scale=scale,
                       workloads=tuple(workloads), programs=programs,
                       per_model=per_model)
    tasks = list(enumerate(profiles))
    store = ResultStore(store_dir) if store_dir is not None else None
    keys = None
    if store is not None:
        context = {"seed": seed, "key_seed": key_seed, "scale": scale,
                   "workloads": list(workloads), "programs": programs,
                   "per_model": per_model}
        keys = [task_key("dse", context, profile, engine=engine)
                for _index, profile in tasks]

    def execute(missing: List[Tuple[int, ProtectionProfile]]
                ) -> List[DesignPointRow]:
        return run_tasks(
            _dse_task, missing, jobs=jobs, parallel=parallel,
            initializer=_init_dse_worker,
            initargs=(key_seed, seed, tuple(workloads), scale, programs,
                      per_model, engine), telemetry=telemetry)

    with obs_phase(telemetry, "execute"):
        run = run_tasks_stored(execute, tasks, keys, store=store,
                               shard=shard, telemetry=telemetry)
    report.points = [point for point in run.results if point is not None]
    report.complete = run.complete
    if hw:
        # post-hoc, simulation-free: the same cached rows serve hw on/off
        report.hw_unrolls = unroll_specs
        report.hw_points = _hw_point_rows(profiles, report.points,
                                          unroll_specs)
    report.elapsed_seconds = time.perf_counter() - started
    if run.complete:
        with obs_phase(telemetry, "export"):
            if export_path is not None:
                dse_json(report.to_record(), export_path)
            if csv_path is not None:
                if hw:
                    dse_csv(report.hw_csv_rows(), csv_path,
                            header=DSE_HW_CSV_HEADER)
                else:
                    dse_csv(report.csv_rows(), csv_path)
    return report
