"""repro.fuzz — coverage-guided differential program fuzzer (ISSUE 3).

The paper's security argument quantifies over *every* program and CFG
shape; the hand-picked workloads and per-instruction property tests
sample that space thinly.  This package turns the PR 2 lockstep oracle
and the PR 1 parallel runner into a standing scenario-generation engine:

:mod:`repro.fuzz.generators`
    genome-driven generators emitting random-but-valid SRISC programs
    (straight-line, diamonds, loops, call trees, indirect fan-in) and
    mini-C sources for :mod:`repro.cc` — deterministic, mutation-ready.

:mod:`repro.fuzz.coverage`
    the coverage map (mnemonic bigrams, block/entry-path classes,
    I-cache line-run shapes, outcome classes) that decides which
    specimens are worth keeping and steers mutation.

:mod:`repro.fuzz.oracle`
    differential oracles over protect → {vanilla, SOFIA} x
    {reference, predecoded}: any divergence in registers, PC, data
    memory, cycles, I-cache stats or detection verdicts is a finding.

:mod:`repro.fuzz.corpus`
    content-addressed, deduplicated, deterministically serialized
    specimen corpus.

:mod:`repro.fuzz.minimize`
    line-wise delta reduction of failing specimens + triage artifacts.

:mod:`repro.fuzz.campaign`
    batch scheduling over :mod:`repro.runner` — ``run_fuzz`` is the
    ``repro fuzz`` CLI's engine and experiment E15's driver.

Quickstart::

    from repro.fuzz import run_fuzz
    report = run_fuzz(seeds=200, seed=7)
    assert report.ok, report.render()
"""

from .campaign import FuzzReport, run_fuzz
from .corpus import Corpus, CorpusEntry, specimen_sha
from .coverage import CoverageMap
from .generators import (BLOCK_WORDS, SHAPES, Genome, Specimen, generate,
                         mutate, random_genome)
from .minimize import TriageRecord, minimize, triage, write_triage
from .oracle import Divergence, OracleReport, build_program, run_oracle

__all__ = [
    "run_fuzz", "FuzzReport",
    "Genome", "Specimen", "generate", "mutate", "random_genome",
    "SHAPES", "BLOCK_WORDS",
    "CoverageMap",
    "Corpus", "CorpusEntry", "specimen_sha",
    "Divergence", "OracleReport", "run_oracle", "build_program",
    "TriageRecord", "minimize", "triage", "write_triage",
]
