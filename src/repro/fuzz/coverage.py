"""Coverage map steering the fuzzer (ISSUE 3 feature families).

A specimen's *features* are short string keys drawn from four families,
chosen so that "new coverage" means "a transform/simulator code path the
corpus has not yet pinned":

``bi:<m1>><m2>``   mnemonic bigrams over the program's instruction
                   stream (plus ``mn:<m>`` unigrams) — ALU/memory/CTI
                   semantics and the predecoded dispatch table
``bk:...``         block-geometry classes from the protected image:
                   block kind x entry-path count, forwarder blocks,
                   multiplexor-tree size buckets, block-count buckets
``lr:<runs>x<max>`` I-cache line-run shapes: each block's fetch
                   addresses collapsed into same-line runs (the exact
                   structure the predecoded engine's fetch loop walks)
``oc:...``         outcome classes: per-core status, detection
                   verdicts, violation kinds, trap classes, and
                   cycle-overhead buckets from the differential runs

The map counts how often each key has been observed; a specimen is
*interesting* (kept in the corpus) when it contributes at least one new
key, and mutation is steered toward corpus entries that exhibit the
rarest keys.  Counting (not just set membership) is what makes the
rarest-first scheduling deterministic and cheap.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterable, List, Sequence, Tuple

#: feature-family prefixes, in render order
FAMILIES: Tuple[str, ...] = ("bi", "mn", "bk", "lr", "oc")


def _bucket(value: int) -> int:
    """Logarithmic bucket: 0, 1, 2, 4, 8, ... (order-of-magnitude class)."""
    if value <= 0:
        return 0
    return 1 << (value.bit_length() - 1)


def program_features(instructions) -> List[str]:
    """Mnemonic unigrams and bigrams over the instruction stream."""
    features = []
    prev = None
    for instr in instructions:
        name = instr.mnemonic
        features.append(f"mn:{name}")
        if prev is not None:
            features.append(f"bi:{prev}>{name}")
        prev = name
    return features


def image_features(image, line_words: int = 8) -> List[str]:
    """Block-geometry and line-run shape classes of a protected image.

    ``line_words`` is the I-cache line geometry the specimen runs under
    (``TimingParams.icache_line_words``); the oracle passes its timing's
    value so the ``lr:`` shapes match what the predecoded fetch loop
    actually walks.
    """
    features = [f"bk:words{image.block_words}",
                f"bk:nblocks{_bucket(image.num_blocks)}"]
    stats = image.stats
    if stats is not None:
        features.append(f"bk:mux{_bucket(stats.mux_blocks)}")
        features.append(f"bk:tree{_bucket(stats.tree_nodes)}")
    for block in image.blocks:
        paths = len(block.entry_prev_pcs)
        features.append(f"bk:{block.kind}:paths{paths}")
        if block.is_forwarder:
            features.append("bk:forwarder")
        # same-line runs of the block's fetch window (offset-0 entry):
        # the shape is (number of runs) x (longest run) — the structure
        # engine.compile_fetch_runs hands the predecoded fetch loop
        run_lengths = []
        previous_line = None
        for index in range(image.block_words):
            line = (block.base + 4 * index) // (4 * line_words)
            if line == previous_line:
                run_lengths[-1] += 1
            else:
                run_lengths.append(1)
                previous_line = line
        features.append(f"lr:{len(run_lengths)}x{max(run_lengths)}")
    return features


def outcome_features(axis: str, result) -> List[str]:
    """Status/verdict classes of one machine's run."""
    features = [f"oc:{axis}:{result.status.value}"]
    if result.violation is not None:
        features.append(f"oc:{axis}:violation:{result.violation.kind}")
    if result.trap_reason:
        features.append(f"oc:{axis}:trap:{result.trap_reason.split(':')[0]}")
    return features


def overhead_feature(vanilla_cycles: int, sofia_cycles: int) -> str:
    """Cycle-overhead bucket (percent, order-of-magnitude classes)."""
    if vanilla_cycles <= 0:
        return "oc:ovh:na"
    percent = int(100 * (sofia_cycles / vanilla_cycles - 1.0))
    return f"oc:ovh:{_bucket(max(0, percent))}"


class CoverageMap:
    """Counted feature keys with new-key detection and JSON round-trip."""

    def __init__(self) -> None:
        self._counts: Dict[str, int] = {}

    def __len__(self) -> int:
        return len(self._counts)

    def __contains__(self, key: str) -> bool:
        return key in self._counts

    @property
    def counts(self) -> Dict[str, int]:
        return dict(self._counts)

    def observe(self, features: Iterable[str]) -> List[str]:
        """Count every feature; return the keys seen for the first time."""
        new_keys = []
        counts = self._counts
        for key in features:
            seen = counts.get(key)
            if seen is None:
                counts[key] = 1
                new_keys.append(key)
            else:
                counts[key] = seen + 1
        return new_keys

    def rarest(self, limit: int) -> List[str]:
        """The ``limit`` least-observed keys (count, then key — stable)."""
        ordered = sorted(self._counts.items(), key=lambda kv: (kv[1], kv[0]))
        return [key for key, _ in ordered[:limit]]

    def family_sizes(self) -> Dict[str, int]:
        sizes = {family: 0 for family in FAMILIES}
        for key in self._counts:
            family = key.split(":", 1)[0]
            sizes[family] = sizes.get(family, 0) + 1
        return sizes

    def summary(self) -> Dict[str, object]:
        """Stable JSON-ready digest (identical across identical runs)."""
        return {"total_keys": len(self._counts),
                "families": self.family_sizes(),
                "keys": sorted(self._counts)}

    def render(self) -> str:
        sizes = self.family_sizes()
        parts = [f"{family}={sizes.get(family, 0)}" for family in FAMILIES]
        return f"coverage: {len(self._counts)} keys ({', '.join(parts)})"

    # -- persistence -----------------------------------------------------

    def to_json(self) -> str:
        return json.dumps({"counts": dict(sorted(self._counts.items()))},
                          indent=2) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "CoverageMap":
        instance = cls()
        instance._counts = dict(json.loads(text)["counts"])
        return instance

    def save(self, path) -> Path:
        target = Path(path)
        target.write_text(self.to_json())
        return target

    @classmethod
    def load(cls, path) -> "CoverageMap":
        return cls.from_json(Path(path).read_text())
