"""Failure minimization and triage for divergent specimens.

The minimizer is a line-wise greedy delta reducer over *assembly* source
(mini-C failures are first lowered through their compiled assembly, so
one reducer serves both languages): repeatedly try deleting each
instruction line and keep the deletion when the reduced program still
(a) builds and (b) reproduces a divergence on the same oracle axis.
Labels and directives are only deleted together with the instruction
they annotate — candidates that stop assembling or transforming are
simply skipped, so every intermediate stays a valid specimen.

Running to a fixpoint makes the result 1-minimal (no single remaining
line can be removed) and therefore idempotent — re-minimizing a minimal
specimen returns it unchanged, which ``tests/test_fuzz.py`` pins.

``triage`` packages a failure into the on-disk artifact a human (or CI)
picks up: the genome to replay, the axis/observable/detail of every
divergence, and the original + minimized sources.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Callable, List, Optional

from ..crypto.keys import DeviceKeys
from ..errors import ReproError
from .corpus import specimen_sha
from .generators import Specimen
from .oracle import OracleReport, reproduces_axis


def _asm_source(specimen: Specimen) -> str:
    """The specimen's assembly view (compile mini-C once, then reduce)."""
    if specimen.language == "c":
        from ..cc import compile_source
        return compile_source(specimen.source).asm_text
    return specimen.source


def _reduced(specimen: Specimen, source: str) -> Specimen:
    return Specimen(genome=specimen.genome, language="asm", source=source)


#: ceiling on reduction probes per failure; a cap this size is only
#: reached by pathological specimens, where a partially reduced result
#: beats an unbounded search
DEFAULT_MAX_EVALS = 600

#: probe budgets scale with the original failing run (a deleted line can
#: turn a terminating specimen into an endless loop; such candidates
#: must be abandoned after a bounded, small number of steps)
_BUDGET_FLOOR = 4_000
_BUDGET_SCALE = 8


def probe_budgets(instructions: int) -> "tuple[int, int]":
    """(vanilla, sofia) step budgets for reduction probes."""
    vanilla = max(_BUDGET_FLOOR, _BUDGET_SCALE * max(1, instructions))
    return vanilla, 4 * vanilla


def minimize(specimen: Specimen, keys: DeviceKeys, axis: str,
             check: Optional[Callable[[Specimen], bool]] = None,
             instructions: int = 0,
             max_evals: int = DEFAULT_MAX_EVALS) -> Specimen:
    """Greedily shrink a failing specimen while ``axis`` still diverges.

    ``check`` overrides the reproduction predicate (tests use this to
    minimize against a planted bug without a full oracle run);
    ``instructions`` is the original failure's dynamic length, used to
    scale the probe budgets.  Within ``max_evals`` probes the result is
    1-minimal and therefore idempotent.
    """
    vanilla_budget, sofia_budget = probe_budgets(instructions)
    fails = check if check is not None else (
        lambda candidate: reproduces_axis(candidate, keys, axis,
                                          vanilla_budget, sofia_budget))
    evals = [0]

    def budgeted_fails(candidate: Specimen) -> bool:
        if evals[0] >= max_evals:
            return False
        evals[0] += 1
        return fails(candidate)

    current = _asm_source(specimen)
    if not budgeted_fails(_reduced(specimen, current)):
        return _reduced(specimen, current)  # not reproducible post-lowering
    changed = True
    while changed and evals[0] < max_evals:
        changed = False
        lines = current.splitlines()
        index = 0
        while index < len(lines):
            line = lines[index].strip()
            if not line or line.endswith(":") or line.startswith("."):
                index += 1  # labels/directives ride with their users
                continue
            candidate_lines = lines[:index] + lines[index + 1:]
            candidate = "\n".join(candidate_lines) + "\n"
            if budgeted_fails(_reduced(specimen, candidate)):
                lines = candidate_lines
                current = candidate
                changed = True
            else:
                index += 1
    return _reduced(specimen, current)


@dataclasses.dataclass
class TriageRecord:
    """The replay-ready description of one confirmed failure.

    ``language`` describes ``original_source``; ``minimized_language``
    describes ``minimized_source`` — a reduced mini-C failure is
    replayed as *assembly* (the reducer works on the lowered program).
    """

    sha: str
    genome: dict
    language: str
    divergences: List[dict]
    original_source: str
    minimized_source: str
    original_lines: int
    minimized_lines: int
    minimized_language: str = "asm"

    def render(self) -> str:
        lines = [f"specimen {self.sha} ({self.language}, "
                 f"shape={self.genome['shape']}, seed={self.genome['seed']})",
                 f"reduced {self.original_lines} -> "
                 f"{self.minimized_lines} lines"]
        for record in self.divergences:
            lines.append(f"  [{record['axis']}/{record['observable']}] "
                         f"{record['detail']}")
        lines.append("--- minimized specimen ---")
        lines.append(self.minimized_source.rstrip())
        return "\n".join(lines) + "\n"


def triage(report: OracleReport, keys: DeviceKeys,
           do_minimize: bool = True) -> TriageRecord:
    """Minimize a failing report and build its triage record."""
    specimen = report.specimen
    sha = specimen_sha(specimen.language, specimen.source)
    minimized = specimen
    if do_minimize and report.divergences:
        minimized = minimize(specimen, keys, report.divergences[0].axis,
                             instructions=report.instructions)
    # line counts compare like with like: the reducer works on the
    # assembly view, so a minimized mini-C failure reports its lowered
    # size (an untouched specimen keeps its own line count)
    original_lines = len(specimen.source.splitlines())
    if minimized.language != specimen.language:
        try:
            original_lines = len(_asm_source(specimen).splitlines())
        except ReproError:
            pass
    return TriageRecord(
        sha=sha,
        genome=dataclasses.asdict(specimen.genome),
        language=specimen.language,
        divergences=[dataclasses.asdict(d) for d in report.divergences],
        original_source=specimen.source,
        minimized_source=minimized.source,
        original_lines=original_lines,
        minimized_lines=len(minimized.source.splitlines()),
        minimized_language=minimized.language)


def write_triage(record: TriageRecord, root) -> Path:
    """Persist one triage artifact pair (JSON + readable text)."""
    directory = Path(root)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"triage-{record.sha}.json"
    path.write_text(json.dumps(dataclasses.asdict(record), indent=2) + "\n")
    (directory / f"triage-{record.sha}.txt").write_text(record.render())
    return path
