"""Differential oracles: one specimen, four engines, every observable.

``run_oracle`` drives a specimen through protect → {vanilla, SOFIA} x
{reference, predecoded} and flags *any* observable disagreement:

* **engine axes** (``vanilla-engine``, ``sofia-engine``) — the two
  engines of one machine must be bit-identical in every
  ``ExecutionResult`` field (status, cycles, instructions, exit code,
  I-cache hits/misses, block/MAC accounting, violations, traps) *and*
  in final registers, PC and data RAM.  This is the PR 2 lockstep
  contract applied to generated programs.
* **cross-core axis** (``cross-core``) — the SOFIA build must preserve
  the vanilla program's semantics: same termination status, same
  console output (ints, text, raw words), same actuator writes, same
  exit code.  Registers, PC and raw stack bytes are *excluded* here by
  design: the transformed layout legally changes code addresses, which
  leak into ``ra`` and into spilled return addresses.
* **verdict axis** (``verdict``) — generated specimens are valid by
  construction, so any SOFIA detection (reset) or any trap/budget
  exhaustion on either core is itself a finding.

The optional **baseline axis** runs the XOR/ECB ISR machines' engine
pairs over the same executable — SRISC has no interrupts, so these
fetch-path variants stand in for the paper's interrupt-enabled builds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..crypto.keys import DeviceKeys
from ..errors import ReproError
from ..isa.assembler import assemble, parse
from ..isa.program import AsmProgram
from ..sim.sofia import SofiaMachine
from ..sim.timing import DEFAULT_TIMING, TimingParams
from ..sim.vanilla import VanillaMachine
from ..transform.config import TransformConfig
from ..transform.transformer import transform
from .coverage import (image_features, outcome_features, overhead_feature,
                       program_features)
from .generators import Specimen

#: step budgets: a valid specimen finishes well below these; hitting one
#: is reported as a finding, not silently classified as "slow"
VANILLA_BUDGET = 200_000
SOFIA_BUDGET = 800_000


@dataclass(frozen=True)
class Divergence:
    """One observable disagreement between two runs of a specimen."""

    axis: str     # "vanilla-engine" | "sofia-engine" | "cross-core" |
                  # "verdict" | "build" | "baseline-xor" | "baseline-ecb"
    observable: str   # "status" | "regs" | "ram" | "cycles" | ...
    detail: str

    def render(self) -> str:
        return f"[{self.axis}/{self.observable}] {self.detail}"


@dataclass
class OracleReport:
    """Everything the campaign needs back from one specimen run."""

    specimen: Specimen
    divergences: List[Divergence] = field(default_factory=list)
    features: List[str] = field(default_factory=list)
    vanilla_status: str = ""
    sofia_status: str = ""
    instructions: int = 0

    @property
    def ok(self) -> bool:
        return not self.divergences


def _result_fields(result) -> Tuple:
    """The bit-identical ``ExecutionResult`` contract, as one tuple."""
    return (result.status, result.cycles, result.instructions,
            result.exit_code, result.icache.hits, result.icache.misses,
            result.blocks_executed, result.mac_fetch_cycles,
            result.output_ints, result.output_text, result.trap_reason,
            str(result.violation) if result.violation else None)


_FIELD_NAMES = ("status", "cycles", "instructions", "exit_code",
                "icache_hits", "icache_misses", "blocks_executed",
                "mac_fetch_cycles", "output_ints", "output_text",
                "trap_reason", "violation")


def _compare_engines(axis: str, make_machine, budget: int,
                     divergences: List[Divergence],
                     engines: Tuple[str, ...] = ("reference",)):
    """Run ``engines`` against the predecoded engine of one machine; flag
    every differing observable.

    Returns the predecoded run's (machine, result) — the pair the rest
    of the oracle keeps reasoning about.  Each extra engine (the
    ``--engine`` opt-in adds ``"batch"`` or ``"fused"``) is held to the
    same bit-identical contract.
    """
    pre = make_machine("predecoded")
    pre_result = pre.run(max_instructions=budget)
    pre_fields = _result_fields(pre_result)
    for engine in engines:
        other = make_machine(engine)
        other_result = other.run(max_instructions=budget)
        other_fields = _result_fields(other_result)
        for name, a, b in zip(_FIELD_NAMES, other_fields, pre_fields):
            if a != b:
                divergences.append(Divergence(
                    axis, name, f"{engine}={a!r} predecoded={b!r}"))
        if other.state.regs != pre.state.regs:
            delta = [i for i in range(32)
                     if other.state.regs[i] != pre.state.regs[i]]
            divergences.append(Divergence(
                axis, "regs", f"registers differ at {delta}"))
        if other.state.pc != pre.state.pc:
            divergences.append(Divergence(
                axis, "pc",
                f"{engine}=0x{other.state.pc:08x} "
                f"predecoded=0x{pre.state.pc:08x}"))
        if other.memory.ram != pre.memory.ram:
            first = next(
                i for i, (x, y) in
                enumerate(zip(other.memory.ram, pre.memory.ram)) if x != y)
            divergences.append(Divergence(
                axis, "ram", f"data RAM differs from byte offset {first}"))
    return pre, pre_result


def build_program(specimen: Specimen) -> AsmProgram:
    """Lower a specimen to a parsed program (asm directly, C via minicc)."""
    if specimen.language == "c":
        from ..cc import compile_source
        return compile_source(specimen.source).program
    return parse(specimen.source)


def run_oracle(specimen: Specimen, keys: DeviceKeys,
               timing: TimingParams = DEFAULT_TIMING,
               include_baselines: bool = False,
               vanilla_budget: int = VANILLA_BUDGET,
               sofia_budget: int = SOFIA_BUDGET,
               engine: Optional[str] = None) -> OracleReport:
    """The full differential pipeline for one specimen.

    The budgets exist for the minimizer: a reduced candidate can loop
    forever, so reduction probes run with budgets scaled to the
    original failure instead of the full campaign budgets.

    ``engine="batch"`` or ``engine="fused"`` widens the SOFIA engine
    axis to a three-way lockstep — reference and the chosen engine each
    compared bit-for-bit against predecoded — so every fuzzing campaign
    that opts in also differential-tests that engine on generated
    programs.  ``"fused"`` additionally widens the vanilla axis (the
    fused engine exists on both cores; batch is SOFIA-only).
    """
    report = OracleReport(specimen=specimen)
    genome = specimen.genome
    try:
        program = build_program(specimen)
        executable = assemble(program)
        image = transform(program, keys, nonce=genome.nonce,
                          config=TransformConfig(
                              block_words=genome.block_words))
    except ReproError as exc:
        # a generated specimen must always build — this is a generator
        # or toolchain bug, and exactly what the fuzzer exists to catch
        report.divergences.append(Divergence(
            "build", "toolchain", f"{type(exc).__name__}: {exc}"))
        return report

    report.features.extend(program_features(program.instructions))
    report.features.extend(image_features(image, timing.icache_line_words))

    divergences = report.divergences
    extra = () if engine in (None, "predecoded") else (engine,)
    vanilla_engines = ("reference",) + (extra if engine == "fused" else ())
    _, vanilla = _compare_engines(
        "vanilla-engine",
        lambda eng: VanillaMachine(executable, timing, engine=eng),
        vanilla_budget, divergences, engines=vanilla_engines)
    sofia_engines = ("reference",) + extra
    _, sofia = _compare_engines(
        "sofia-engine",
        lambda eng: SofiaMachine(image, keys, timing, engine=eng),
        sofia_budget, divergences, engines=sofia_engines)

    report.vanilla_status = vanilla.status.value
    report.sofia_status = sofia.status.value
    report.instructions = vanilla.instructions + sofia.instructions
    report.features.extend(outcome_features("van", vanilla))
    report.features.extend(outcome_features("sofia", sofia))
    report.features.append(overhead_feature(vanilla.cycles, sofia.cycles))

    # verdict axis: a valid program must terminate cleanly on both cores
    if not vanilla.ok:
        divergences.append(Divergence(
            "verdict", "vanilla-status",
            f"valid specimen ended {vanilla.summary()}"))
    if not sofia.ok:
        detail = sofia.summary()
        if sofia.detected:
            detail = f"false detection: {sofia.violation}"
        divergences.append(Divergence("verdict", "sofia-status", detail))

    # cross-core axis: protection must preserve program semantics
    if vanilla.ok and sofia.ok:
        checks = (
            ("status", vanilla.status, sofia.status),
            ("output_ints", vanilla.output_ints, sofia.output_ints),
            ("output_text", vanilla.output_text, sofia.output_text),
            ("output_words", vanilla.mmio.words, sofia.mmio.words),
            ("actuator", vanilla.mmio.actuator, sofia.mmio.actuator),
            ("exit_code", vanilla.exit_code, sofia.exit_code),
        )
        for name, a, b in checks:
            if a != b:
                divergences.append(Divergence(
                    "cross-core", name, f"vanilla={a!r} sofia={b!r}"))

    if include_baselines:
        from ..baselines import EcbIsrMachine, XorIsrMachine
        _compare_engines(
            "baseline-xor",
            lambda engine: XorIsrMachine(executable, 0xA5A5F00D,
                                         engine=engine),
            vanilla_budget, divergences)
        _compare_engines(
            "baseline-ecb",
            lambda engine: EcbIsrMachine(executable, 0xBEEF2016CAFE,
                                         engine=engine),
            vanilla_budget, divergences)
    return report


def reproduces_axis(specimen: Specimen, keys: DeviceKeys, axis: str,
                    vanilla_budget: int = VANILLA_BUDGET,
                    sofia_budget: int = SOFIA_BUDGET,
                    timing: TimingParams = DEFAULT_TIMING) -> bool:
    """Does the specimen still diverge on ``axis``?  (Minimizer probe.)

    Engine axes only build and run the machines they compare — a
    ``vanilla-engine`` probe never pays for transform + encryption, a
    ``sofia-engine`` probe skips the vanilla pair — which is what makes
    line-wise reduction affordable.  Other axes fall back to the full
    oracle.
    """
    if axis == "vanilla-engine":
        try:
            executable = assemble(build_program(specimen))
        except ReproError:
            return False
        divergences: List[Divergence] = []
        _compare_engines(
            axis,
            lambda engine: VanillaMachine(executable, timing, engine=engine),
            vanilla_budget, divergences)
        return bool(divergences)
    if axis == "sofia-engine":
        genome = specimen.genome
        try:
            image = transform(build_program(specimen), keys,
                              nonce=genome.nonce,
                              config=TransformConfig(
                                  block_words=genome.block_words))
        except ReproError:
            return False
        divergences = []
        _compare_engines(
            axis,
            lambda engine: SofiaMachine(image, keys, timing, engine=engine),
            sofia_budget, divergences)
        return bool(divergences)
    try:
        report = run_oracle(specimen, keys, timing,
                            vanilla_budget=vanilla_budget,
                            sofia_budget=sofia_budget)
    except ReproError:
        return False
    return any(d.axis == axis for d in report.divergences)
