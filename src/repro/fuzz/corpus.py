"""Deduplicated specimen corpus with a deterministic on-disk form.

The corpus keeps every specimen that contributed new coverage, keyed by
the SHA-256 of its (language, source) — so two genomes that happen to
grow the same program occupy one slot, and re-running a campaign with
the same seed reproduces byte-identical corpus files.

On disk a corpus is a directory of one JSON document per entry, named
``<sha16>.json`` (content-addressed: the name *is* the dedup key), plus
the campaign's ``coverage.json`` summary written next to them by
:mod:`repro.fuzz.campaign`.  Loading ignores unknown files, so a corpus
directory can be shared with triage artifacts.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from pathlib import Path
from typing import Dict, List, Optional

from .generators import Genome, Specimen

_SHA_CHARS = 16


def specimen_sha(language: str, source: str) -> str:
    """Content identity of a specimen (dedup + filename key)."""
    digest = hashlib.sha256(
        f"{language}\x00{source}".encode("utf-8")).hexdigest()
    return digest[:_SHA_CHARS]


@dataclasses.dataclass
class CorpusEntry:
    """One kept specimen and the coverage keys it contributed."""

    sha: str
    genome: Genome
    language: str
    source: str
    new_keys: List[str]

    def to_json(self) -> str:
        record = {"sha": self.sha,
                  "genome": dataclasses.asdict(self.genome),
                  "language": self.language,
                  "source": self.source,
                  "new_keys": sorted(self.new_keys)}
        return json.dumps(record, indent=2) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "CorpusEntry":
        record = json.loads(text)
        return cls(sha=record["sha"], genome=Genome(**record["genome"]),
                   language=record["language"], source=record["source"],
                   new_keys=list(record["new_keys"]))


class Corpus:
    """In-memory corpus with optional directory persistence."""

    def __init__(self) -> None:
        self._entries: Dict[str, CorpusEntry] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, sha: str) -> bool:
        return sha in self._entries

    def entries(self) -> List[CorpusEntry]:
        """Entries in deterministic (sha) order."""
        return [self._entries[sha] for sha in sorted(self._entries)]

    def add(self, specimen: Specimen, new_keys: List[str]) -> Optional[str]:
        """Keep a specimen; returns its sha, or ``None`` if deduplicated."""
        sha = specimen_sha(specimen.language, specimen.source)
        if sha in self._entries:
            return None
        self._entries[sha] = CorpusEntry(
            sha=sha, genome=specimen.genome, language=specimen.language,
            source=specimen.source, new_keys=list(new_keys))
        return sha

    def entries_with_key(self, key: str) -> List[CorpusEntry]:
        """Entries that contributed ``key``, in sha order."""
        return [entry for entry in self.entries() if key in entry.new_keys]

    def shas(self) -> List[str]:
        return sorted(self._entries)

    def genomes(self) -> List[Genome]:
        """Entry genomes in deterministic (sha) order.

        The corpus doubles as a *program source* for downstream
        campaigns — :mod:`repro.attacksynth` replays coverage-selected
        specimens as attack victims instead of drawing fresh ones.
        """
        return [entry.genome for entry in self.entries()]

    # -- persistence -----------------------------------------------------

    def save(self, root) -> Path:
        """Write one ``<sha>.json`` per entry under ``root``."""
        directory = Path(root)
        directory.mkdir(parents=True, exist_ok=True)
        for entry in self.entries():
            (directory / f"{entry.sha}.json").write_text(entry.to_json())
        return directory

    @classmethod
    def load(cls, root) -> "Corpus":
        """Read every ``<sha>.json`` under ``root`` (missing dir = empty)."""
        corpus = cls()
        directory = Path(root)
        if not directory.is_dir():
            return corpus
        for path in sorted(directory.glob("*.json")):
            if path.name == "coverage.json" or path.name == "report.json":
                continue
            try:
                entry = CorpusEntry.from_json(path.read_text())
            except (json.JSONDecodeError, KeyError, TypeError):
                continue  # foreign file sharing the directory
            corpus._entries[entry.sha] = entry
        return corpus
