"""Structured specimen generators: random-but-valid SRISC programs.

Every specimen is grown from a :class:`Genome` — a tiny, picklable
parameter record — through a deterministic generator keyed by
:func:`repro.runner.seeding.task_rng`.  The same genome always produces
the same source text, which is what makes fuzzing campaigns replayable,
corpus entries self-describing, and mutation a pure genome edit instead
of a fragile text patch.

Validity is *by construction*, not by filtering: each shape emits
programs that parse, assemble, survive the SOFIA transformation
(exclusivity rules included) and terminate within a small step budget —
loops count down fixed trip counts, branches that can retreat are
bounded, call graphs are acyclic, and every indirect call declares a
``.targets`` set exclusive to its site.  The generator-validity tests in
``tests/test_fuzz.py`` pin exactly this contract.

Shapes (ISSUE 3) and the transform/simulator surfaces they stress:

``straight``  straight-line ALU/memory blocks — block chunking, padding
``diamond``   if/else joins — two-predecessor multiplexor blocks
``loop``      bounded backward loops — the hot decrypt-memo path
``calltree``  acyclic call trees with shared leaves — call fan-in up to
              the multiplexor-tree limits (paper Fig. 9)
``indirect``  ``.targets``-annotated ``jalr`` sites — exclusivity rules,
              indirect-edge sealing, return-landing pads
``minic``     a mini-C source generator feeding :mod:`repro.cc` — the
              whole compiler front-end joins the fuzzed surface

SRISC has no interrupt machinery, so the paper's interrupt-enabled
variants have no direct analogue here; the closest standing variants —
the ISR baseline machines — are exercised by the oracle's optional
baseline axis instead (see DESIGN.md, "Fuzzing subsystem").
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import List, Tuple

from ..runner.seeding import task_rng

#: every generator shape, in canonical order (round-robin scans and
#: deterministic corpus scheduling both rely on this ordering)
SHAPES: Tuple[str, ...] = ("straight", "diamond", "loop", "calltree",
                           "indirect", "minic")

#: transform geometries worth fuzzing: the paper's 8-word blocks (store
#: slots forbidden) and the 6-word ablation point (no restriction)
BLOCK_WORDS: Tuple[int, ...] = (8, 6)


@dataclass(frozen=True)
class Genome:
    """Everything that determines one specimen, in mutation-sized knobs."""

    shape: str
    seed: int
    #: 1..3 — scales segment counts, body lengths, loop nests, fan-in
    size: int = 2
    #: transform geometry for the protected build
    block_words: int = 8
    #: per-binary nonce for the protected build
    nonce: int = 0x2016

    def rng(self) -> random.Random:
        """The specimen's private deterministic stream."""
        return task_rng(self.seed, "fuzz", self.shape, self.size)


@dataclass(frozen=True)
class Specimen:
    """One generated program, ready for the differential oracle."""

    genome: Genome
    language: str       # "asm" | "c"
    source: str


def random_genome(rng: random.Random, shape: str = None) -> Genome:
    """Draw a fresh genome (shape round-robin unless pinned)."""
    return Genome(
        shape=shape if shape is not None else rng.choice(SHAPES),
        seed=rng.randrange(1 << 48),
        size=rng.randint(1, 3),
        block_words=rng.choice(BLOCK_WORDS),
        nonce=rng.randrange(1, 0x10000))


def mutate(genome: Genome, rng: random.Random) -> Genome:
    """Perturb one knob of a genome (validity-preserving by design)."""
    choice = rng.randrange(5)
    if choice == 0:
        return replace(genome, seed=rng.randrange(1 << 48))
    if choice == 1:
        return replace(genome, size=1 + (genome.size + rng.randint(0, 1)) % 3)
    if choice == 2:
        other = [bw for bw in BLOCK_WORDS if bw != genome.block_words]
        return replace(genome, block_words=rng.choice(other))
    if choice == 3:
        return replace(genome, nonce=rng.randrange(1, 0x10000))
    return replace(genome, shape=rng.choice(SHAPES),
                   seed=rng.randrange(1 << 48))


# -- assembly building blocks ------------------------------------------------

#: ALU/memory line templates; {r} slots are filled from _WORK_REGS and
#: {imm} from small signed immediates.  Stack traffic stays inside an
#: aligned 32-byte scratch window below sp; div/rem are total on SRISC
#: (div-by-zero is architecturally defined), so unguarded operands are
#: fair game.
_WORK_REGS = ("t0", "t1", "t2", "t3", "s0", "s1")

_ALU_TEMPLATES = (
    "add {a}, {b}, {c}", "sub {a}, {b}, {c}", "and {a}, {b}, {c}",
    "or {a}, {b}, {c}", "xor {a}, {b}, {c}", "sll {a}, {b}, {c}",
    "srl {a}, {b}, {c}", "sra {a}, {b}, {c}", "mul {a}, {b}, {c}",
    "div {a}, {b}, {c}", "rem {a}, {b}, {c}", "slt {a}, {b}, {c}",
    "sltu {a}, {b}, {c}",
    "addi {a}, {b}, {imm}", "andi {a}, {b}, {uimm}",
    "ori {a}, {b}, {uimm}", "xori {a}, {b}, {uimm}",
    "slli {a}, {b}, {sh}", "srli {a}, {b}, {sh}", "srai {a}, {b}, {sh}",
    "slti {a}, {b}, {imm}", "sltiu {a}, {b}, {uimm}",
    "lui {a}, {uimm}",
)

_MEM_TEMPLATES = (
    ("sw {a}, -{w4}(sp)", "lw {b}, -{w4}(sp)"),
    ("sh {a}, -{w2}(sp)", "lhu {b}, -{w2}(sp)"),
    ("sh {a}, -{w2}(sp)", "lh {b}, -{w2}(sp)"),
    ("sb {a}, -{w1}(sp)", "lbu {b}, -{w1}(sp)"),
    ("sb {a}, -{w1}(sp)", "lb {b}, -{w1}(sp)"),
)

_BRANCHES = ("beq", "bne", "blt", "bge", "bltu", "bgeu")


def _alu_line(rng: random.Random) -> str:
    template = rng.choice(_ALU_TEMPLATES)
    return template.format(
        a=rng.choice(_WORK_REGS), b=rng.choice(_WORK_REGS),
        c=rng.choice(_WORK_REGS),
        imm=rng.randint(-128, 127), uimm=rng.randint(0, 255),
        sh=rng.randint(0, 31))


def _mem_lines(rng: random.Random) -> List[str]:
    store, load = rng.choice(_MEM_TEMPLATES)
    slots = {"w4": 4 * rng.randint(1, 8), "w2": 2 * rng.randint(1, 16),
             "w1": rng.randint(1, 32),
             "a": rng.choice(_WORK_REGS), "b": rng.choice(_WORK_REGS)}
    return [store.format(**slots), load.format(**slots)]


def _body(rng: random.Random, size: int) -> List[str]:
    lines = []
    for _ in range(rng.randint(1, 2 + 2 * size)):
        if rng.random() < 0.25:
            lines.extend(_mem_lines(rng))
        else:
            lines.append(_alu_line(rng))
    return lines


def _seed_regs(rng: random.Random) -> List[str]:
    return [f"    li {reg}, {rng.randint(-0x8000, 0x7FFF)}"
            for reg in _WORK_REGS]


#: epilogue printing the live register file to the console, so the
#: cross-core oracle observes every work register, then halting
_EPILOGUE = ["    li a1, 0xFFFF0004"] + \
    [f"    sw {reg}, 0(a1)" for reg in _WORK_REGS] + ["    halt"]


def _asm(lines: List[str]) -> str:
    return "\n".join(lines) + "\n"


# -- shape generators --------------------------------------------------------

def _gen_straight(rng: random.Random, size: int) -> str:
    lines = ["main:"] + _seed_regs(rng)
    for seg in range(rng.randint(1, 2 * size)):
        lines.append(f"seg{seg}:")
        lines.extend(f"    {line}" for line in _body(rng, size))
    return _asm(lines + _EPILOGUE)


def _gen_diamond(rng: random.Random, size: int) -> str:
    """Forward if/else diamonds: every join has two CFG predecessors."""
    lines = ["main:"] + _seed_regs(rng)
    for d in range(rng.randint(1, size + 1)):
        branch = rng.choice(_BRANCHES)
        a, b = rng.choice(_WORK_REGS), rng.choice(_WORK_REGS)
        lines.append(f"    {branch} {a}, {b}, else{d}")
        lines.extend(f"    {line}" for line in _body(rng, size))
        lines.append(f"    jmp join{d}")
        lines.append(f"else{d}:")
        lines.extend(f"    {line}" for line in _body(rng, size))
        lines.append(f"join{d}:")
        lines.append(f"    {_alu_line(rng)}")
    return _asm(lines + _EPILOGUE)


def _gen_loop(rng: random.Random, size: int) -> str:
    """Sequential and nested bounded counting loops (backward branches)."""
    lines = ["main:"] + _seed_regs(rng)
    for loop_id in range(rng.randint(1, size)):
        nested = rng.random() < 0.4
        lines.append("    li a2, 0")
        lines.append(f"    li a3, {rng.randint(1, 3 + 2 * size)}")
        lines.append(f"outer{loop_id}:")
        lines.extend(f"    {line}" for line in _body(rng, size))
        if nested:
            lines.append("    li a4, 0")
            lines.append(f"    li a5, {rng.randint(1, 4)}")
            lines.append(f"inner{loop_id}:")
            lines.extend(f"    {line}" for line in _body(rng, 1))
            lines.append("    addi a4, a4, 1")
            lines.append(f"    blt a4, a5, inner{loop_id}")
        lines.append("    addi a2, a2, 1")
        lines.append(f"    blt a2, a3, outer{loop_id}")
    return _asm(lines + _EPILOGUE)


def _gen_calltree(rng: random.Random, size: int) -> str:
    """Acyclic call tree whose shared leaf has fan-in up to 8 callers.

    Call fan-in above two predecessors forces the layout engine to build
    binary multiplexor trees (paper Fig. 9); eight callers exercise a
    three-level tree, the deepest shape the default experiments reach.
    """
    fan_in = rng.randint(2, 2 + 2 * size)   # up to 8 callers of the leaf
    depth = rng.randint(1, 2)
    lines = ["main:"] + _seed_regs(rng)
    for _ in range(fan_in):
        lines.append("    mv a0, t0")
        lines.append(f"    call mid0" if depth == 2 else "    call leaf")
        lines.append("    mv t0, a0")
        lines.append(f"    {_alu_line(rng)}")
    body = [f"    {line}" for line in _body(rng, 1)]
    lines += _EPILOGUE
    if depth == 2:
        lines += ["mid0:", "    addi sp, sp, -4", "    sw ra, 0(sp)"]
        lines += body
        lines += ["    call leaf", "    lw ra, 0(sp)",
                  "    addi sp, sp, 4", "    ret"]
    lines += ["leaf:", f"    addi a0, a0, {rng.randint(-64, 64)}",
              f"    xori a0, a0, {rng.randint(0, 255)}", "    ret"]
    return _asm(lines)


def _gen_indirect(rng: random.Random, size: int) -> str:
    """``.targets``-annotated ``jalr`` sites with exclusive target sets.

    Each site owns a disjoint set of 1-3 candidate functions (the
    transformer's exclusivity restriction) and picks one at genome time;
    every candidate is sealed as a potential edge, so the image carries
    the full indirect fan-out even though one edge executes.
    """
    n_sites = rng.randint(1, min(2, size))
    lines = ["main:"] + _seed_regs(rng)
    functions: List[str] = []
    for site in range(n_sites):
        n_targets = rng.randint(1, 3)
        names = [f"f{site}_{t}" for t in range(n_targets)]
        chosen = rng.choice(names)
        lines.append(f"    la a6, {chosen}")
        lines.append(f"    .targets {', '.join(names)}")
        lines.append("    jalr ra, a6")
        lines.append("    add t0, t0, a0")
        for name in names:
            functions += [f"{name}:",
                          f"    li a0, {rng.randint(0, 999)}",
                          f"    {_alu_line(rng)}",
                          "    ret"]
    return _asm(lines + _EPILOGUE + functions)


# -- mini-C generator --------------------------------------------------------

def _c_expr(rng: random.Random, names: List[str], depth: int = 0) -> str:
    if depth >= 2 + (0 if not names else 1) or rng.random() < 0.35:
        if names and rng.random() < 0.5:
            return rng.choice(names)
        return str(rng.randint(-999, 999))
    op = rng.choice(["+", "-", "*", "&", "|", "^", "<<", ">>",
                     "<", ">", "==", "!=", "&&", "||"])
    left = _c_expr(rng, names, depth + 1)
    right = _c_expr(rng, names, depth + 1)
    if op in ("<<", ">>"):
        right = str(rng.randint(0, 15))
    return f"({left} {op} {right})"


def _c_div_expr(rng: random.Random, names: List[str]) -> str:
    # division/modulo only by nonzero constants (C UB stays out of scope)
    op = rng.choice(["/", "%"])
    denom = rng.choice([d for d in range(-9, 10) if d])
    return f"({_c_expr(rng, names)} {op} {denom})"


def _gen_minic(rng: random.Random, size: int) -> str:
    """A mini-C translation unit feeding the whole repro.cc front-end."""
    helpers = []
    helper_names = []
    for h in range(rng.randint(0, size)):
        name = f"mix{h}"
        helper_names.append(name)
        helpers.append(
            f"int {name}(int x, int y) {{\n"
            f"    return {_c_expr(rng, ['x', 'y'])};\n"
            f"}}\n")
    body = ["    int acc = %d;" % rng.randint(-99, 99)]
    names = ["acc"]
    for v in range(rng.randint(1, 1 + size)):
        var = f"v{v}"
        body.append(f"    int {var} = {_c_expr(rng, names)};")
        names.append(var)
    for stmt in range(rng.randint(1, 1 + size)):
        kind = rng.randrange(4)
        if kind == 0 and helper_names:
            fn = rng.choice(helper_names)
            body.append(f"    acc = {fn}({_c_expr(rng, names)}, "
                        f"{_c_expr(rng, names)});")
        elif kind == 1:
            count = rng.randint(1, 6)
            body.append(f"    for (int i{stmt} = 0; i{stmt} < {count}; "
                        f"i{stmt} = i{stmt} + 1) {{")
            body.append(f"        acc = acc + {_c_expr(rng, names)};")
            body.append("    }")
        elif kind == 2:
            body.append(f"    if ({_c_expr(rng, names)}) {{")
            body.append(f"        acc = {_c_expr(rng, names)};")
            body.append("    } else {")
            body.append(f"        acc = {_c_div_expr(rng, names)};")
            body.append("    }")
        else:
            body.append(f"    {rng.choice(names)} = {_c_expr(rng, names)};")
    for name in names[:3]:
        body.append(f"    print_int({name});")
    body.append("    return 0;")
    return "".join(helpers) + "int main() {\n" + "\n".join(body) + "\n}\n"


_GENERATORS = {
    "straight": _gen_straight,
    "diamond": _gen_diamond,
    "loop": _gen_loop,
    "calltree": _gen_calltree,
    "indirect": _gen_indirect,
    "minic": _gen_minic,
}


def generate(genome: Genome) -> Specimen:
    """Grow the specimen a genome encodes (pure and deterministic)."""
    generator = _GENERATORS.get(genome.shape)
    if generator is None:
        raise ValueError(
            f"unknown specimen shape {genome.shape!r}; choose from {SHAPES}")
    source = generator(genome.rng(), genome.size)
    language = "c" if genome.shape == "minic" else "asm"
    return Specimen(genome=genome, language=language, source=source)
