"""Coverage-guided fuzzing campaigns over the parallel runner.

A campaign is a sequence of fixed-size *batches*.  Each batch is an
ordered list of genomes — fresh random ones plus mutations of corpus
entries that exhibit the rarest coverage keys — dispatched through
:func:`repro.runner.pool.run_tasks` exactly like the fault and attack
campaigns: workers are pure (genome -> :class:`OracleReport`), shared
context (device keys) travels once through the pool initializer, and
results return in submission order.  All steering state — the coverage
map, the corpus, failure collection — lives in the parent and is
updated in task order, so a campaign is **deterministic in every knob
except wall-clock**: same ``seed`` and ``seeds`` produce byte-identical
corpus directories and coverage summaries at any ``--jobs`` value.
``time_budget`` (seconds) optionally caps a campaign between batches;
only then does wall-clock influence how many specimens run.

Failures are deduplicated by content, minimized
(:mod:`repro.fuzz.minimize`), and triaged to ``<corpus>/triage/``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional

from ..crypto.keys import DeviceKeys
from ..obs import phase as obs_phase
from ..runner import (ResultStore, ShardSpec, run_tasks, run_tasks_stored,
                      task_key, task_rng, write_campaign)
from ..runner.cache import DEFAULT_KEY_SEED
from .corpus import Corpus, specimen_sha
from .coverage import CoverageMap
from .generators import SHAPES, Genome, generate, mutate, random_genome
from .minimize import TriageRecord, triage, write_triage
from .oracle import OracleReport, run_oracle

# per-process context installed by the pool initializer
_WORKER_CTX: Optional[tuple] = None


def _init_fuzz_worker(keys: DeviceKeys, include_baselines: bool,
                      engine: Optional[str] = None) -> None:
    global _WORKER_CTX
    _WORKER_CTX = (keys, include_baselines, engine)


def _fuzz_task(genome: Genome) -> OracleReport:
    keys, include_baselines, engine = _WORKER_CTX
    return run_oracle(generate(genome), keys,
                      include_baselines=include_baselines, engine=engine)


@dataclass
class FuzzReport:
    """Outcome of one campaign: steering state plus the findings."""

    seed: int
    specimens: int = 0
    instructions: int = 0
    batches: int = 0
    elapsed_seconds: float = 0.0
    coverage: CoverageMap = field(default_factory=CoverageMap)
    corpus: Corpus = field(default_factory=Corpus)
    failures: List[TriageRecord] = field(default_factory=list)
    #: a sharded invocation stopped at a sync point: the next planned
    #: batch needs results owned by other shards.  Rerun the peer shards
    #: (same store, or merge theirs in) until a ``--resume`` pass
    #: completes; nothing is persisted for a pending run
    pending: bool = False

    @property
    def divergences(self) -> int:
        return sum(len(record.divergences) for record in self.failures)

    @property
    def ok(self) -> bool:
        return not self.failures

    def render(self) -> str:
        lines = [
            "Fuzzing campaign (E15)",
            f"  specimens   {self.specimens}  "
            f"({self.batches} batches, seed {self.seed})",
            f"  simulated   {self.instructions:,d} instructions",
            f"  corpus      {len(self.corpus)} specimens kept",
            f"  {self.coverage.render()}",
            f"  divergences {self.divergences}"
            + ("" if self.ok else f" in {len(self.failures)} specimens"),
        ]
        for record in self.failures:
            for divergence in record.divergences:
                lines.append(f"    {record.sha}: "
                             f"[{divergence['axis']}/"
                             f"{divergence['observable']}] "
                             f"{divergence['detail']}")
        return "\n".join(lines)


def _plan_batch(seed: int, round_index: int, batch: int,
                coverage: CoverageMap, corpus: Corpus) -> List[Genome]:
    """The genomes of one batch (pure function of the steering state).

    Round 0 sweeps every shape round-robin to open coverage broadly;
    later rounds alternate fresh genomes with mutations of the corpus
    entries that contributed the rarest coverage keys — the classic
    greybox schedule, kept fully deterministic by deriving every draw
    from the campaign seed and the (ordered) steering state.
    """
    genomes = []
    rare_keys = coverage.rarest(batch) if len(corpus) else []
    for index in range(batch):
        rng = task_rng(seed, "fuzz-plan", round_index, index)
        if round_index == 0 or not len(corpus) or index % 2 == 0:
            shape = SHAPES[index % len(SHAPES)] if round_index == 0 else None
            genomes.append(random_genome(rng, shape=shape))
            continue
        parent = None
        if rare_keys:
            key = rare_keys[index % len(rare_keys)]
            candidates = corpus.entries_with_key(key)
            if candidates:
                parent = candidates[rng.randrange(len(candidates))]
        if parent is None:
            shas = corpus.shas()
            parent = corpus.entries()[rng.randrange(len(shas))]
        genomes.append(mutate(parent.genome, rng))
    return genomes


def run_fuzz(seeds: int = 500, *, seed: int = 0x5EED,
             batch: int = 50,
             parallel: bool = False, jobs: Optional[int] = None,
             corpus_dir=None,
             time_budget: Optional[float] = None,
             include_baselines: bool = False,
             minimize_failures: bool = True,
             max_failures: int = 8,
             key_seed: int = DEFAULT_KEY_SEED,
             engine: Optional[str] = None,
             store_dir=None, shard: Optional[ShardSpec] = None,
             telemetry=None) -> FuzzReport:
    """Run a campaign of ``seeds`` specimens; returns the full report.

    ``corpus_dir`` persists the corpus, ``coverage.json``,
    ``report.json`` and any triage artifacts; an existing corpus there
    is loaded first, so campaigns accumulate across invocations.
    ``max_failures`` caps how many *distinct* failing specimens are
    minimized and triaged (minimization re-runs the oracle many times).
    ``engine="batch"`` or ``engine="fused"`` widens every specimen's
    engine axes to a three-way reference/predecoded/ENGINE lockstep
    (see :func:`~repro.fuzz.oracle.run_oracle`).

    ``store_dir`` caches every specimen's :class:`OracleReport` in a
    persistent :class:`~repro.runner.store.ResultStore` keyed by code
    version + (key seed, baselines, engine) + genome: a killed campaign
    resumed over the same store replays its finished specimens and only
    simulates the rest, converging on the same report.  ``shard``
    distributes fuzzing round-by-round: each invocation executes its
    deterministic slice of every planned batch, and stops at a *sync
    point* (``report.pending``) once the next batch needs results owned
    by other shards — the steering state is sequential across rounds by
    design.  Alternate the shards over a shared (or merged) store until
    a plain ``--resume`` pass replays the whole campaign; that pass is
    byte-identical to an uninterrupted serial run.

    ``telemetry`` (a :class:`repro.obs.Telemetry`, default ``None``)
    records per-specimen spans and simulator counters round by round —
    strictly observationally: the report, corpus, and exports are
    byte-identical either way.
    """
    started = time.perf_counter()
    keys = DeviceKeys.from_seed(key_seed)
    report = FuzzReport(seed=seed)
    if corpus_dir is not None:
        report.corpus = Corpus.load(corpus_dir)
        coverage_path = Path(corpus_dir) / "coverage.json"
        if coverage_path.is_file():
            report.coverage = CoverageMap.load(coverage_path)
    store = ResultStore(store_dir) if store_dir is not None else None
    context = {"key_seed": key_seed, "baselines": include_baselines}

    def execute(missing: List[Genome]) -> List[OracleReport]:
        return run_tasks(_fuzz_task, missing,
                         jobs=jobs, parallel=parallel,
                         initializer=_init_fuzz_worker,
                         initargs=(keys, include_baselines, engine),
                         telemetry=telemetry)

    failing_reports: List[OracleReport] = []
    seen_failures = set()
    round_index = 0
    while report.specimens < seeds:
        if time_budget is not None and \
                time.perf_counter() - started >= time_budget:
            break
        size = min(batch, seeds - report.specimens)
        genomes = _plan_batch(seed, round_index, size,
                              report.coverage, report.corpus)
        genome_keys = None
        if store is not None:
            genome_keys = [task_key("fuzz", context, genome,
                                    engine=engine) for genome in genomes]
        run = run_tasks_stored(execute, genomes, genome_keys,
                               store=store, shard=shard,
                               telemetry=telemetry)
        if not run.complete:
            # sync point: the steering update needs the whole batch in
            # task order, and the gaps belong to other shards
            report.pending = True
            break
        results = run.results
        for oracle_report in results:
            report.specimens += 1
            report.instructions += oracle_report.instructions
            new_keys = report.coverage.observe(oracle_report.features)
            specimen = oracle_report.specimen
            if new_keys:
                report.corpus.add(specimen, new_keys)
            if oracle_report.divergences:
                sha = specimen_sha(specimen.language, specimen.source)
                if sha not in seen_failures:
                    seen_failures.add(sha)
                    failing_reports.append(oracle_report)
        report.batches = round_index = round_index + 1

    if report.pending:
        # a sync-pointed shard must not persist: a partial corpus or
        # triage directory would change the initial steering state of
        # the next invocation and break replay determinism
        report.elapsed_seconds = time.perf_counter() - started
        return report

    with obs_phase(telemetry, "triage"):
        for oracle_report in failing_reports[:max_failures]:
            report.failures.append(
                triage(oracle_report, keys, do_minimize=minimize_failures))
        if len(failing_reports) > max_failures:
            for oracle_report in failing_reports[max_failures:]:
                report.failures.append(
                    triage(oracle_report, keys, do_minimize=False))

    report.elapsed_seconds = time.perf_counter() - started
    if corpus_dir is not None:
        with obs_phase(telemetry, "export"):
            root = report.corpus.save(corpus_dir)
            report.coverage.save(root / "coverage.json")
            write_campaign(root / "report.json", _campaign_record(report))
            for record in report.failures:
                write_triage(record, root / "triage")
    return report


def _campaign_record(report: FuzzReport) -> dict:
    """The deterministic JSON digest of a campaign (no wall-clock)."""
    return {
        "campaign": "fuzz",
        "parameters": {"seed": report.seed,
                       "specimens": report.specimens,
                       "batches": report.batches},
        "corpus_size": len(report.corpus),
        "coverage": report.coverage.summary(),
        "failures": [record.sha for record in report.failures],
        "divergences": report.divergences,
    }
