"""The campaign telemetry context.

A :class:`Telemetry` object is created by the CLI (from ``--telemetry
DIR`` / ``--progress``) and threaded — always optionally, default
``None`` — through a campaign driver into
:func:`repro.runner.pool.run_tasks` and
:func:`repro.runner.store.run_tasks_stored`.  It owns:

- the **event log** (``DIR/events.jsonl``, schema in
  :mod:`repro.obs.events`),
- the campaign **metrics registry** (``DIR/metrics.json``), into which
  worker counter deltas and task-duration observations are merged
  deterministically,
- the collected **task spans** and **phase spans**, exported as a
  chrome ``trace_event`` timeline (``DIR/trace.json``),
- the optional stderr **progress heartbeat**.

Everything here is observational: a campaign driver behaves — and its
exported artifacts are byte-identical — whether ``telemetry`` is a
live object or ``None``.  Timestamps in the event log are *parent
observation times*; the precise per-task timings measured inside the
workers live in the trace spans and the ``task.seconds`` histogram.

While a campaign is open, a parent-side
:class:`~repro.obs.metrics.MetricsRegistry` is installed into
:data:`repro.obs.hook.SIM` so simulation done outside the pool (golden
runs, failure triage/minimization) is counted too; it is merged into
the campaign metrics at :meth:`finish` under the same names.
"""

from __future__ import annotations

import json
import time
from collections import deque
from contextlib import contextmanager
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from . import hook
from .events import EventLog
from .metrics import MetricsRegistry
from .progress import ProgressMeter
from .trace import write_chrome_trace
from .worker import Span


class Telemetry:
    """Event log + metrics + timeline + progress for one campaign run."""

    def __init__(self, directory=None, progress: bool = False,
                 stream=None) -> None:
        self.directory: Optional[Path] = \
            Path(directory) if directory is not None else None
        if self.directory is not None:
            self.directory.mkdir(parents=True, exist_ok=True)
        self.metrics = MetricsRegistry()
        self.events = EventLog(
            self.directory / "events.jsonl"
            if self.directory is not None else None)
        self.progress: Optional[ProgressMeter] = \
            ProgressMeter(stream=stream) if progress else None
        self.spans: List[Tuple[int, int, float, float]] = []
        self.phases: List[Tuple[str, float, float]] = []
        self.campaign: Optional[str] = None
        self._origin = time.perf_counter()
        self._workers: Dict[int, bool] = {}
        self._pending: deque = deque()
        self._fallback_index = 0
        self._sim: Optional[MetricsRegistry] = None
        self._previous_sink = None
        self._finished = False

    # -- lifecycle ----------------------------------------------------

    def begin(self, campaign: str, parameters: Optional[dict] = None) -> None:
        self.campaign = campaign
        if self.progress is not None:
            self.progress.label = campaign
        fields = {}
        for key, value in (parameters or {}).items():
            fields[f"x_{key}" if key in ("ts", "event", "campaign")
                   else key] = value
        self.events.emit("campaign-start", campaign=campaign, **fields)
        self._sim = MetricsRegistry()
        self._previous_sink = hook.SIM
        hook.install(self._sim)

    def finish(self) -> None:
        if self._finished:
            return
        self._finished = True
        hook.SIM = self._previous_sink
        if self._sim is not None:
            self.metrics.merge_counters(self._sim.counters)
        for worker in sorted(self._workers):
            self.events.emit("worker-exit", worker=worker)
        seconds = time.perf_counter() - self._origin
        self.events.emit("campaign-end", seconds=round(seconds, 6))
        self.metrics.observe("campaign.seconds", seconds)
        if self.progress is not None:
            self.progress.finish()
        if self.directory is not None:
            from ..runner.export import atomic_write_text
            atomic_write_text(self.directory / "metrics.json",
                              self.metrics.render_json())
            write_chrome_trace(self.directory / "trace.json",
                               self.spans, self.phases,
                               origin=self._origin)
        self.events.close()

    @contextmanager
    def phase(self, name: str):
        """Time one campaign phase (plan/execute/triage/export/...)."""
        self.events.emit("phase-start", phase=name)
        start = time.perf_counter()
        try:
            yield
        finally:
            end = time.perf_counter()
            self.phases.append((name, start, end))
            self.events.emit("phase-end", phase=name,
                             seconds=round(end - start, 6))
            self.metrics.observe(f"phase.{name}.seconds", end - start)

    # -- dispatch accounting (runner-facing) --------------------------

    def plan(self, total: int, cached: int = 0, skipped: int = 0) -> None:
        """Account one dispatch of ``total`` tasks (store hits counted
        as ``cached``, other shards' indices as ``skipped``)."""
        self.events.emit("tasks-planned", total=total,
                         cached=cached, skipped=skipped)
        if self.progress is not None:
            self.progress.plan(total, cached=cached, skipped=skipped)

    def expect_tasks(self, indices) -> None:
        """Queue the campaign-global indices about to be executed, in
        dispatch order, so pool-side completions can be labelled."""
        for index in indices:
            index = int(index)
            self._pending.append(index)
            self.events.emit("task-scheduled", index=index)

    def store_hit(self, index: int) -> None:
        self.events.emit("store-hit", index=int(index))
        self.metrics.count("store.hits")

    def shard_decision(self, shard: str, owned: int, skipped: int) -> None:
        self.events.emit("shard-decision", shard=shard,
                         owned=owned, skipped=skipped)

    def resume(self, store: str, hits: int, missing: int) -> None:
        self.events.emit("resume", store=str(store),
                         hits=hits, missing=missing)

    def claim_indices(self, n: int) -> List[int]:
        """Labels for the ``n`` tasks one dispatch is about to run.

        When the pending queue (from :meth:`expect_tasks`) holds exactly
        ``n`` entries they are consumed — completions then carry their
        campaign-global indices.  Any mismatch (e.g. a driver that
        groups tasks before dispatch, like the fault campaign's batch
        mode) falls back to a fresh local sequence and clears the queue,
        so labels never silently shift between dispatches.
        """
        if len(self._pending) == n:
            indices = list(self._pending)
        else:
            indices = list(range(self._fallback_index,
                                 self._fallback_index + n))
        self._pending.clear()
        if indices:
            self._fallback_index = indices[-1] + 1
        return indices

    def task_completed(self, span: Span,
                       index: Optional[int] = None) -> None:
        """Fold one finished task's span into events/metrics/trace."""
        worker, start, end, deltas = span
        if index is None:
            if self._pending:
                index = self._pending.popleft()
            else:
                index = self._fallback_index
            self._fallback_index = index + 1
        if worker not in self._workers:
            self._workers[worker] = True
            self.events.emit("worker-start", worker=worker)
        seconds = max(0.0, end - start)
        self.events.emit("task-started", index=index, worker=worker)
        self.events.emit("task-completed", index=index, worker=worker,
                         seconds=round(seconds, 6))
        self.metrics.count("tasks.completed")
        self.metrics.observe("task.seconds", seconds)
        self.metrics.merge_counters(deltas)
        self.spans.append((index, worker, start, end))
        if self.progress is not None:
            self.progress.tick()

    # -- convenience passthroughs ------------------------------------

    def count(self, name: str, n: int = 1) -> None:
        self.metrics.count(name, n)

    def gauge(self, name: str, value: float) -> None:
        self.metrics.gauge(name, value)

    def note(self, text: str) -> None:
        self.events.emit("note", text=text)


@contextmanager
def campaign(telemetry: Optional[Telemetry], name: str,
             parameters: Optional[dict] = None):
    """Open/close a campaign on ``telemetry``; no-op when it is None."""
    if telemetry is None:
        yield None
        return
    telemetry.begin(name, parameters)
    try:
        yield telemetry
    finally:
        telemetry.finish()


@contextmanager
def phase(telemetry: Optional[Telemetry], name: str):
    """Time a phase on ``telemetry``; no-op when it is None."""
    if telemetry is None:
        yield
        return
    with telemetry.phase(name):
        yield


def load_metrics(directory) -> dict:
    """Read ``metrics.json`` from a telemetry directory."""
    with open(Path(directory) / "metrics.json", encoding="utf-8") as handle:
        return json.load(handle)
