"""Per-worker metric collection for the process pool.

Each worker process (and the parent, on the serial path) owns one
:class:`~repro.obs.metrics.MetricsRegistry`, installed into the
simulator hook by :func:`install`.  After every task the worker calls
:func:`span`, which returns ``(pid, start, end, counter_deltas)`` — the
counter *increments since the previous span*, not a cumulative
snapshot, so multi-round pools, chunked maps, and reused workers merge
without double counting.  Spans travel back to the parent piggybacked
on the existing result channel (``(result, span)`` tuples built by
:mod:`repro.runner.pool`) and are folded into the campaign registry by
:meth:`repro.obs.Telemetry.task_completed`.
"""

from __future__ import annotations

import os
from typing import Dict, Optional, Tuple

from . import hook
from .metrics import MetricsRegistry, counter_delta

Span = Tuple[int, float, float, Dict[str, int]]

_REGISTRY: Optional[MetricsRegistry] = None
_BASELINE: Dict[str, int] = {}
_PREVIOUS_SINK = None


def install() -> None:
    """Start a fresh per-process registry and hook it into the sims."""
    global _REGISTRY, _BASELINE, _PREVIOUS_SINK
    _REGISTRY = MetricsRegistry()
    _BASELINE = {}
    _PREVIOUS_SINK = hook.SIM
    hook.install(_REGISTRY)


def uninstall() -> None:
    """Tear down the worker registry, restoring any prior sink.

    Only meaningful on the serial path, where the "worker" is the
    parent process and a campaign-level sink may already be installed.
    """
    global _REGISTRY, _BASELINE, _PREVIOUS_SINK
    hook.SIM = _PREVIOUS_SINK
    _REGISTRY = None
    _BASELINE = {}
    _PREVIOUS_SINK = None


def span(start: float, end: float) -> Span:
    """Close out one task: timing plus counter deltas since last span."""
    global _BASELINE
    if _REGISTRY is None:
        return (os.getpid(), start, end, {})
    current = dict(_REGISTRY.counters)
    delta = counter_delta(current, _BASELINE)
    _BASELINE = current
    return (os.getpid(), start, end, delta)
