"""Campaign observability: events, metrics, timelines, progress.

Public surface:

- :class:`Telemetry` — per-campaign context created from ``--telemetry
  DIR`` / ``--progress``; owns the JSONL event log, the metrics
  registry, the chrome-trace timeline, and the stderr heartbeat.
- :func:`campaign` / :func:`phase` — context managers that no-op when
  handed ``telemetry=None``, so drivers thread telemetry without
  branching.
- :func:`note` / :func:`set_quiet` — the single stderr diagnostics
  channel for the CLI, silenced by the global ``--quiet`` flag.
- :mod:`~repro.obs.hook` — the nil-by-default simulator counter sink.
- :func:`validate_event` / :func:`read_events` — the event schema.
- :func:`summarize` — ``repro stats DIR``.

Design rule (see DESIGN.md "Observability"): telemetry is strictly
observational.  No exported campaign artifact may differ by a byte
between telemetry on and off; merges are order-independent so metric
totals are stable across ``--jobs``.
"""

from __future__ import annotations

import sys

from . import hook
from .events import EVENT_TYPES, EventLog, read_events, validate_event
from .metrics import DEFAULT_BOUNDS, Histogram, MetricsRegistry, \
    counter_delta
from .progress import ProgressMeter
from .stats import summarize
from .telemetry import Telemetry, campaign, load_metrics, phase
from .trace import chrome_trace, write_chrome_trace

__all__ = [
    "EVENT_TYPES", "EventLog", "read_events", "validate_event",
    "DEFAULT_BOUNDS", "Histogram", "MetricsRegistry", "counter_delta",
    "ProgressMeter", "summarize", "Telemetry", "campaign", "phase",
    "load_metrics", "chrome_trace", "write_chrome_trace",
    "hook", "note", "set_quiet", "is_quiet",
]

_QUIET = False


def set_quiet(quiet: bool) -> None:
    """Set the process-wide quiet flag (the CLI's global ``--quiet``)."""
    global _QUIET
    _QUIET = bool(quiet)


def is_quiet() -> bool:
    return _QUIET


def note(text: str, stream=None) -> None:
    """Print one diagnostic line to stderr unless ``--quiet``.

    This is the only sanctioned channel for informational CLI chatter;
    stdout stays reserved for artifacts and machine-readable output.
    """
    if _QUIET:
        return
    (stream if stream is not None else sys.stderr).write(text + "\n")
