"""Summarize a telemetry directory (`repro stats DIR`).

Re-validates every event line against the schema, checks timestamp
monotonicity, and renders a human summary of events, task throughput,
phase timings, simulator counters, and histograms.  Returns the number
of problems found so the CLI can exit non-zero on a corrupt directory.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import List, Tuple

from .events import validate_event


def summarize(directory) -> Tuple[str, int]:
    """Render a summary of ``directory``; returns (text, problems)."""
    root = Path(directory)
    events_path = root / "events.jsonl"
    if not events_path.is_file():
        raise FileNotFoundError(
            f"no telemetry directory at {root} (missing events.jsonl)")
    problems = 0
    counts = {}
    campaign = "?"
    campaign_seconds = None
    last_ts = 0.0
    lines = 0
    workers = set()
    cached = 0
    with open(events_path, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            lines += 1
            try:
                record = validate_event(json.loads(line))
            except (ValueError, json.JSONDecodeError):
                problems += 1
                continue
            if record["ts"] < last_ts:
                problems += 1
            last_ts = record["ts"]
            event = record["event"]
            counts[event] = counts.get(event, 0) + 1
            if event == "campaign-start":
                campaign = record.get("campaign", "?")
            elif event == "campaign-end":
                campaign_seconds = record.get("seconds")
            elif event == "worker-start":
                workers.add(record.get("worker"))
            elif event == "tasks-planned":
                cached += int(record.get("cached", 0) or 0)

    out: List[str] = [f"Telemetry summary: {root}"]
    out.append(f"  campaign    {campaign}")
    schema = "ok" if not problems else f"{problems} PROBLEMS"
    out.append(f"  events      {lines} lines, schema {schema}")
    for event in sorted(counts):
        out.append(f"    {event:<16} {counts[event]}")
    completed = counts.get("task-completed", 0)
    wall = f", wall {campaign_seconds:.2f}s" if campaign_seconds else ""
    qualifier = f" ({cached} cached)" if cached else ""
    out.append(f"  tasks       {completed} completed{qualifier} on "
               f"{len(workers)} worker(s){wall}")

    metrics_path = root / "metrics.json"
    if metrics_path.is_file():
        with open(metrics_path, encoding="utf-8") as handle:
            metrics = json.load(handle)
        counters = metrics.get("counters", {})
        if counters:
            out.append("  counters")
            for name in sorted(counters):
                out.append(f"    {name:<32} {counters[name]:,d}")
        if campaign_seconds:
            for name, value in sorted(counters.items()):
                if name.startswith("sim.instructions."):
                    label = name[len("sim.instructions."):] + " sofia"
                elif name.startswith("sim.vanilla.instructions."):
                    label = (name[len("sim.vanilla.instructions."):]
                             + " vanilla")
                else:
                    continue
                out.append(
                    f"  throughput  {value / campaign_seconds:,.0f} "
                    f"instructions/s ({label}, campaign wall)")
        histograms = metrics.get("histograms", {})
        if histograms:
            out.append("  histograms")
            for name in sorted(histograms):
                data = histograms[name]
                count = data.get("count", 0)
                mean = (data.get("total", 0.0) / count) if count else 0.0
                out.append(
                    f"    {name:<24} n={count} mean={mean:.4f}s "
                    f"min={_fmt(data.get('min'))} "
                    f"max={_fmt(data.get('max'))}")

    trace_path = root / "trace.json"
    if trace_path.is_file():
        try:
            with open(trace_path, encoding="utf-8") as handle:
                trace = json.load(handle)
            out.append(f"  trace       {len(trace.get('traceEvents', []))} "
                       "trace events (chrome://tracing)")
        except json.JSONDecodeError:
            problems += 1
            out.append("  trace       UNREADABLE")
    return "\n".join(out), problems


def _fmt(value) -> str:
    return f"{value:.4f}s" if isinstance(value, (int, float)) else "-"
