"""Chrome ``trace_event`` timeline exporter.

Serializes the task spans a campaign collected into the JSON object
format understood by ``chrome://tracing``, Perfetto, and Speedscope:
one lane (``tid``) per worker process, one ``"X"`` (complete) event per
task, plus a lane of campaign phases.  Timestamps are microseconds
relative to the campaign origin; worker spans are measured on
``time.perf_counter`` which is CLOCK_MONOTONIC on Linux and therefore
comparable across fork()ed workers.
"""

from __future__ import annotations

import json
from typing import Iterable, Sequence, Tuple

#: a task span: (task index, worker pid, start, end) in origin seconds
Span = Tuple[int, int, float, float]
#: a phase span: (name, start, end) in origin seconds
Phase = Tuple[str, float, float]

_PID = 1        # single-process view: lanes are threads of one "process"
_PHASE_LANE = 0


def chrome_trace(spans: Iterable[Span], phases: Iterable[Phase] = (),
                 origin: float = 0.0, process_name: str = "repro") -> dict:
    """Build the ``{"traceEvents": [...]}`` object (JSON-ready)."""
    events = [{
        "ph": "M", "name": "process_name", "pid": _PID, "tid": _PHASE_LANE,
        "args": {"name": process_name},
    }, {
        "ph": "M", "name": "thread_name", "pid": _PID, "tid": _PHASE_LANE,
        "args": {"name": "campaign phases"},
    }]
    for name, start, end in phases:
        events.append({
            "ph": "X", "name": name, "cat": "phase",
            "pid": _PID, "tid": _PHASE_LANE,
            "ts": _us(start, origin), "dur": _dur(start, end),
        })
    lanes = {}
    for index, worker, start, end in sorted(spans,
                                            key=lambda s: (s[2], s[0])):
        lane = lanes.get(worker)
        if lane is None:
            lane = lanes[worker] = len(lanes) + 1
            events.append({
                "ph": "M", "name": "thread_name", "pid": _PID, "tid": lane,
                "args": {"name": f"worker {worker}"},
            })
        events.append({
            "ph": "X", "name": f"task {index}", "cat": "task",
            "pid": _PID, "tid": lane,
            "ts": _us(start, origin), "dur": _dur(start, end),
            "args": {"index": index, "worker": worker},
        })
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(path, spans: Sequence[Span],
                       phases: Sequence[Phase] = (),
                       origin: float = 0.0) -> None:
    from ..runner.export import atomic_write_text
    payload = chrome_trace(spans, phases, origin=origin)
    atomic_write_text(path, json.dumps(payload, indent=1) + "\n")


def _us(instant: float, origin: float) -> float:
    return round(max(0.0, instant - origin) * 1e6, 1)


def _dur(start: float, end: float) -> float:
    return round(max(0.0, end - start) * 1e6, 1)
