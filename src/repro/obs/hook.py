"""Nil-by-default simulator telemetry hook.

The simulators (:mod:`repro.sim.sofia`, :mod:`repro.sim.vanilla`,
:mod:`repro.sim.batch`) report throughput and memo counters to whatever
sink is installed here.  ``SIM`` is ``None`` by default; machines capture
it **once at construction**, and every reporting site sits on a cold path
(an uncached front-end decrypt, the end of a ``run()`` call, a lockstep
fork) behind a single ``is not None`` check — with no sink installed the
hot step loops are untouched and the simulators behave exactly like an
uninstrumented build.  Instrumentation is *observational by contract*:
a sink may count, never steer; the invisibility suite
(``tests/test_obs_invisibility.py``) gates that campaign artifacts are
byte-identical with telemetry on and off.

The sink interface is a single method: ``sink.count(name, n=1)`` —
:class:`repro.obs.metrics.MetricsRegistry` satisfies it.  Worker
processes install a fresh per-process registry via
:mod:`repro.obs.worker`; the parent installs a campaign-scoped registry
through :class:`repro.obs.Telemetry` so serial-path simulation (golden
runs, triage replays) is counted too.
"""

from __future__ import annotations

from typing import Optional

#: the active simulator sink, or ``None`` (the default: no telemetry)
SIM: Optional[object] = None


def install(sink) -> None:
    """Install ``sink`` as the process-wide simulator telemetry sink."""
    global SIM
    SIM = sink


def uninstall() -> None:
    """Remove any installed sink (machines built afterwards count nothing)."""
    global SIM
    SIM = None
