"""Throttled stderr progress heartbeat (tasks/sec + ETA).

One ``\\r``-rewritten line, resume- and shard-aware::

    # attacksynth: 137/200 tasks (12 cached, 50 other shards) 8.3/s eta 6s

``done`` counts every result the campaign has (cached hits included);
the rate and ETA are computed over *executed* tasks only, so a warm
resume shows instantly-complete progress instead of a bogus ETA, and a
sharded run's denominator excludes indices owned by other shards.
Rendering is throttled (default 10 Hz) and goes to stderr only — stdout
artifacts are never touched.
"""

from __future__ import annotations

import sys
import time
from typing import Optional


def _format_eta(seconds: float) -> str:
    if seconds >= 3600:
        return f"{seconds / 3600:.1f}h"
    if seconds >= 60:
        return f"{seconds / 60:.1f}m"
    return f"{seconds:.0f}s"


class ProgressMeter:
    """Accumulating task progress with a throttled one-line renderer."""

    def __init__(self, label: str = "campaign", stream=None,
                 min_interval: float = 0.1) -> None:
        self.label = label
        self.stream = stream if stream is not None else sys.stderr
        self.min_interval = min_interval
        self.total = 0
        self.done = 0
        self.cached = 0
        self.skipped = 0
        self.executed = 0
        self._started = time.perf_counter()
        self._last_render = float("-inf")
        self._rendered = False

    def plan(self, total: int, cached: int = 0, skipped: int = 0) -> None:
        """Account one dispatch: ``total`` tasks, of which ``cached``
        are already done (store hits) and ``skipped`` belong to other
        shards."""
        self.total += total
        self.cached += cached
        self.done += cached
        self.skipped += skipped
        self.render()

    def tick(self, n: int = 1) -> None:
        self.done += n
        self.executed += n
        self.render()

    def _line(self) -> str:
        qualifiers = []
        if self.cached:
            qualifiers.append(f"{self.cached} cached")
        if self.skipped:
            qualifiers.append(f"{self.skipped} other shards")
        extra = f" ({', '.join(qualifiers)})" if qualifiers else ""
        elapsed = time.perf_counter() - self._started
        rate = self.executed / elapsed if elapsed > 0 else 0.0
        remaining = max(0, self.total - self.skipped - self.done)
        if remaining == 0:
            eta = "done"
        elif rate > 0:
            eta = "eta " + _format_eta(remaining / rate)
        else:
            eta = "eta ?"
        return (f"# {self.label}: {self.done}/{self.total} tasks{extra} "
                f"{rate:.1f}/s {eta}")

    def render(self, force: bool = False) -> None:
        now = time.perf_counter()
        if not force and now - self._last_render < self.min_interval:
            return
        self._last_render = now
        self._rendered = True
        self.stream.write("\r" + self._line() + "\x1b[K")
        self.stream.flush()

    def finish(self) -> None:
        """Render the final state and terminate the line."""
        if self.total or self._rendered:
            self.render(force=True)
            self.stream.write("\n")
            self.stream.flush()
