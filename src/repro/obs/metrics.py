"""Counters, gauges and bounded histograms with deterministic merges.

The registry is the unit of collection: each worker process owns one
(installed into :data:`repro.obs.hook.SIM` by the pool initializer), the
parent owns one per campaign, and worker snapshots are merged into the
parent's with operations chosen to be **order-independent**:

- counters merge by **sum**,
- gauges merge by **max** (they record high-water marks),
- histograms merge **bucketwise** over a fixed, shared bucket layout.

Because every merge operator is commutative and associative, the merged
totals are identical for any ``--jobs`` value and any task interleaving
— the property the jobs-invariance tests pin down.  Workers report
per-task counter *deltas* (:func:`counter_delta`) rather than cumulative
snapshots so multi-round pools and reused worker processes cannot
double-count.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Mapping, Optional

#: default histogram bucket upper bounds: powers of ten from 1 µs to
#: 1000 s, a span that covers both single-task and whole-phase timings.
DEFAULT_BOUNDS = tuple(10.0 ** e for e in range(-6, 4))


class Histogram:
    """A bounded histogram: fixed bucket bounds, one overflow bucket."""

    __slots__ = ("bounds", "buckets", "count", "total", "minimum", "maximum")

    def __init__(self, bounds: Iterable[float] = DEFAULT_BOUNDS) -> None:
        self.bounds: List[float] = sorted(float(b) for b in bounds)
        if not self.bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self.buckets: List[int] = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.minimum: Optional[float] = None
        self.maximum: Optional[float] = None

    def observe(self, value: float) -> None:
        value = float(value)
        index = len(self.bounds)
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                index = i
                break
        self.buckets[index] += 1
        self.count += 1
        self.total += value
        self.minimum = value if self.minimum is None \
            else min(self.minimum, value)
        self.maximum = value if self.maximum is None \
            else max(self.maximum, value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> dict:
        return {
            "bounds": self.bounds,
            "buckets": list(self.buckets),
            "count": self.count,
            "total": self.total,
            "min": self.minimum,
            "max": self.maximum,
        }

    def merge(self, other: Mapping) -> None:
        """Merge a snapshot produced by :meth:`as_dict` into this one."""
        if list(other["bounds"]) != self.bounds:
            raise ValueError("histogram bucket layouts differ; "
                             "merges require a shared layout")
        for i, n in enumerate(other["buckets"]):
            self.buckets[i] += int(n)
        self.count += int(other["count"])
        self.total += float(other["total"])
        for key, pick in (("min", min), ("max", max)):
            theirs = other.get(key)
            if theirs is None:
                continue
            mine = self.minimum if key == "min" else self.maximum
            merged = float(theirs) if mine is None \
                else pick(mine, float(theirs))
            if key == "min":
                self.minimum = merged
            else:
                self.maximum = merged


class MetricsRegistry:
    """Named counters, gauges, and histograms for one collection scope.

    Satisfies the :data:`repro.obs.hook.SIM` sink contract (``count``),
    and is what :class:`repro.obs.Telemetry` serializes to
    ``metrics.json``.
    """

    __slots__ = ("counters", "gauges", "histograms")

    def __init__(self) -> None:
        self.counters: Dict[str, int] = {}
        self.gauges: Dict[str, float] = {}
        self.histograms: Dict[str, Histogram] = {}

    def count(self, name: str, n: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + n

    def gauge(self, name: str, value: float) -> None:
        """Record a high-water mark: keeps the max of all reports."""
        value = float(value)
        existing = self.gauges.get(name)
        self.gauges[name] = value if existing is None \
            else max(existing, value)

    def observe(self, name: str, value: float,
                bounds: Iterable[float] = DEFAULT_BOUNDS) -> None:
        histogram = self.histograms.get(name)
        if histogram is None:
            histogram = self.histograms[name] = Histogram(bounds)
        histogram.observe(value)

    def snapshot(self) -> dict:
        """A JSON-ready snapshot with deterministic (sorted) key order."""
        return {
            "counters": {k: self.counters[k] for k in sorted(self.counters)},
            "gauges": {k: self.gauges[k] for k in sorted(self.gauges)},
            "histograms": {k: self.histograms[k].as_dict()
                           for k in sorted(self.histograms)},
        }

    def merge(self, snapshot: Mapping) -> None:
        """Merge another registry's :meth:`snapshot` into this one."""
        for name, n in snapshot.get("counters", {}).items():
            self.count(name, int(n))
        for name, value in snapshot.get("gauges", {}).items():
            self.gauge(name, value)
        for name, data in snapshot.get("histograms", {}).items():
            histogram = self.histograms.get(name)
            if histogram is None:
                histogram = self.histograms[name] = \
                    Histogram(data["bounds"])
            histogram.merge(data)

    def merge_counters(self, deltas: Mapping[str, int]) -> None:
        """Sum a plain ``{name: delta}`` mapping into the counters."""
        for name, n in deltas.items():
            self.count(name, int(n))

    def render_json(self) -> str:
        return json.dumps(self.snapshot(), indent=2, sort_keys=True) + "\n"


def counter_delta(current: Mapping[str, int],
                  previous: Mapping[str, int]) -> Dict[str, int]:
    """The per-span counter increments between two cumulative states."""
    delta: Dict[str, int] = {}
    for name, value in current.items():
        change = value - previous.get(name, 0)
        if change:
            delta[name] = change
    return delta
