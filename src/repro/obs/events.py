"""Append-only structured event log (JSONL, monotonic timestamps).

Every record is one flat JSON object per line::

    {"ts": 0.01327, "event": "task-completed", "index": 3,
     "worker": 41772, "seconds": 0.0521}

``ts`` is seconds since the log was opened, measured on
``time.perf_counter`` (CLOCK_MONOTONIC on Linux) and clamped to be
non-decreasing — consumers may rely on file order == time order.  All
field values are scalars (str/int/float/bool/None) so every line is
greppable and schema-checkable without a parser stack;
:func:`validate_event` is the single source of truth for the schema and
is what the CI telemetry smoke job runs over each line.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Dict, Iterator, Optional

#: the closed set of event types; see DESIGN.md "Observability".
EVENT_TYPES = frozenset({
    "campaign-start",   # campaign + its parameters
    "campaign-end",     # seconds=wall time
    "phase-start",      # phase=name
    "phase-end",        # phase=name, seconds=wall time
    "tasks-planned",    # total / cached / skipped for one dispatch
    "task-scheduled",   # index (campaign-global when store-routed)
    "store-hit",        # index served from the persistent store
    "task-started",     # index, worker (pid)
    "task-completed",   # index, worker, seconds
    "worker-start",     # worker (pid), first result seen from it
    "worker-exit",      # worker (pid)
    "shard-decision",   # shard=i/n, owned / skipped counts
    "resume",           # store=dir, hits already present
    "note",             # free-form text=...
})

_RESERVED = ("ts", "event")
_SCALARS = (str, int, float, bool, type(None))


def validate_event(record: object) -> Dict:
    """Check one decoded event line against the schema; raise ValueError.

    Returns the record so callers can chain
    ``validate_event(json.loads(line))``.
    """
    if not isinstance(record, dict):
        raise ValueError(f"event is not an object: {record!r}")
    ts = record.get("ts")
    if not isinstance(ts, (int, float)) or isinstance(ts, bool) or ts < 0:
        raise ValueError(f"bad or missing ts: {record!r}")
    event = record.get("event")
    if event not in EVENT_TYPES:
        raise ValueError(f"unknown event type {event!r}: {record!r}")
    for key, value in record.items():
        if not isinstance(key, str):
            raise ValueError(f"non-string field name {key!r}")
        if not isinstance(value, _SCALARS):
            raise ValueError(
                f"non-scalar field {key}={value!r} in {record!r}")
    return record


def read_events(path) -> Iterator[Dict]:
    """Yield validated event records from a JSONL file, in file order."""
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                yield validate_event(json.loads(line))


class EventLog:
    """Appends schema-valid events to a JSONL file (or swallows them).

    With ``path=None`` the log validates and counts events but writes
    nothing — the shape used when ``--progress`` is requested without a
    ``--telemetry`` directory.
    """

    def __init__(self, path=None) -> None:
        self.path: Optional[Path] = Path(path) if path is not None else None
        self.counts: Dict[str, int] = {}
        self._handle = None
        self._origin = time.perf_counter()
        self._last_ts = 0.0
        if self.path is not None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = open(self.path, "w", encoding="utf-8")

    def emit(self, event: str, **fields) -> Dict:
        if event not in EVENT_TYPES:
            raise ValueError(f"unknown event type {event!r}")
        for reserved in _RESERVED:
            if reserved in fields:
                raise ValueError(f"field {reserved!r} is reserved")
        ts = time.perf_counter() - self._origin
        # clamp: perf_counter is monotonic, but guard float rounding so
        # readers may rely on non-decreasing timestamps unconditionally
        ts = self._last_ts = max(ts, self._last_ts)
        record = {"ts": round(ts, 6), "event": event}
        for key in fields:
            value = fields[key]
            record[key] = value if isinstance(value, _SCALARS) \
                else str(value)
        validate_event(record)
        self.counts[event] = self.counts.get(event, 0) + 1
        if self._handle is not None:
            self._handle.write(json.dumps(record, sort_keys=False,
                                          separators=(",", ":")) + "\n")
            self._handle.flush()
        return record

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None
