"""Benchmark workloads (minicc sources + Python golden models)."""

from . import (adpcm, controller, crc32, dijkstra, fir,  # noqa: F401
               matmul, rle, sort)
from .adpcm import make_adpcm
from .controller import controller_reference, make_controller
from .base import (Workload, all_workloads, make_workload, pcm_signal,
                   workload_names)
from .crc32 import crc32_reference, make_crc32
from .dijkstra import dijkstra_reference, make_dijkstra
from .fir import fir_reference, make_fir
from .matmul import make_matmul
from .rle import make_rle, rle_decode, rle_encode
from .sort import make_sort

__all__ = [
    "Workload", "make_workload", "all_workloads", "workload_names",
    "pcm_signal", "make_adpcm", "make_crc32", "crc32_reference",
    "make_fir", "fir_reference", "make_sort", "make_matmul",
    "make_dijkstra", "dijkstra_reference", "make_rle", "rle_encode",
    "rle_decode", "make_controller", "controller_reference",
]
