"""Run-length encoding: compress, decompress, verify round trip.

Byte-stream processing with short data-dependent inner loops — the code
shape of embedded protocol/codec handlers.
"""

from __future__ import annotations

from typing import List, Tuple

from .base import Workload, _LCG, format_int_array, register, scale_index

_SCALE_BYTES = (48, 256, 1024)
MAX_RUN = 255


def rle_encode(data: List[int]) -> List[int]:
    """(count, value) pairs, runs capped at MAX_RUN."""
    out = []
    i = 0
    while i < len(data):
        value = data[i]
        run = 1
        while (i + run < len(data) and data[i + run] == value
               and run < MAX_RUN):
            run += 1
        out.append(run)
        out.append(value)
        i += run
    return out


def rle_decode(pairs: List[int]) -> List[int]:
    out = []
    for i in range(0, len(pairs), 2):
        out.extend([pairs[i + 1]] * pairs[i])
    return out


def runs_data(count: int, seed: int) -> List[int]:
    """Byte data with a mix of runs and noise (compressible)."""
    rng = _LCG(seed)
    data: List[int] = []
    while len(data) < count:
        if rng.int_range(0, 9) < 6:
            value = rng.int_range(0, 255)
            run = rng.int_range(2, 12)
            data.extend([value] * run)
        else:
            data.append(rng.int_range(0, 255))
    return data[:count]


_C_TEMPLATE = """
// run-length encode + decode + verify
{data_def}
int packed[{pack_cap}];
int restored[{n}];

int encode(int n) {{
    int out = 0;
    int i = 0;
    while (i < n) {{
        int value = data[i];
        int run = 1;
        while (i + run < n && data[i + run] == value && run < {max_run}) {{
            run += 1;
        }}
        packed[out] = run;
        packed[out + 1] = value;
        out += 2;
        i += run;
    }}
    return out;
}}

int decode(int pairs) {{
    int out = 0;
    for (int i = 0; i < pairs; i += 2) {{
        int run = packed[i];
        int value = packed[i + 1];
        for (int k = 0; k < run; k += 1) {{
            restored[out] = value;
            out += 1;
        }}
    }}
    return out;
}}

int main() {{
    int n = {n};
    int packed_len = encode(n);
    int restored_len = decode(packed_len);
    int mismatches = 0;
    for (int i = 0; i < n; i += 1) {{
        if (restored[i] != data[i]) mismatches += 1;
    }}
    print_int(packed_len);
    print_int(restored_len);
    print_int(mismatches);
    return 0;
}}
"""


def make_rle(scale: str = "small", seed: int = 71) -> Workload:
    n = _SCALE_BYTES[scale_index(scale)]
    data = runs_data(n, seed)
    pairs = rle_encode(data)
    assert rle_decode(pairs) == data
    expected = [len(pairs), n, 0]
    source = _C_TEMPLATE.format(
        n=n, pack_cap=2 * n, max_run=MAX_RUN,
        data_def=format_int_array("data", data))
    return Workload(name="rle",
                    description="run-length encode/decode round trip",
                    c_source=source, expected_output=expected)


@register("rle")
def _factory(scale: str) -> Workload:
    return make_rle(scale)
