"""IMA/DVI ADPCM codec — the paper's benchmark (MediaBench-I ADPCM).

The minicc program encodes a PCM buffer to 4-bit ADPCM codes, decodes them
back, and prints three checksums: the sum of code nibbles, the sum of
absolute reconstruction error, and the final predictor state.  The Python
reference implements the identical integer algorithm.
"""

from __future__ import annotations

from typing import List, Tuple

from .base import (Workload, format_int_array, pcm_signal, register,
                   scale_index)

INDEX_TABLE = [-1, -1, -1, -1, 2, 4, 6, 8, -1, -1, -1, -1, 2, 4, 6, 8]

STEPSIZE_TABLE = [
    7, 8, 9, 10, 11, 12, 13, 14, 16, 17, 19, 21, 23, 25, 28, 31,
    34, 37, 41, 45, 50, 55, 60, 66, 73, 80, 88, 97, 107, 118, 130, 143,
    157, 173, 190, 209, 230, 253, 279, 307, 337, 371, 408, 449, 494, 544,
    598, 658, 724, 796, 876, 963, 1060, 1166, 1282, 1411, 1552, 1707,
    1878, 2066, 2272, 2499, 2749, 3024, 3327, 3660, 4026, 4428, 4871,
    5358, 5894, 6484, 7132, 7845, 8630, 9493, 10442, 11487, 12635, 13899,
    15289, 16818, 18500, 20350, 22385, 24623, 27086, 29794, 32767]

_SCALE_SAMPLES = (64, 400, 2000)


def encode(samples: List[int]) -> Tuple[List[int], int, int]:
    """Reference IMA ADPCM encoder; returns (codes, valpred, index)."""
    valpred = 0
    index = 0
    codes = []
    for sample in samples:
        step = STEPSIZE_TABLE[index]
        diff = sample - valpred
        sign = 8 if diff < 0 else 0
        if sign:
            diff = -diff
        delta = 0
        vpdiff = step >> 3
        if diff >= step:
            delta = 4
            diff -= step
            vpdiff += step
        step >>= 1
        if diff >= step:
            delta |= 2
            diff -= step
            vpdiff += step
        step >>= 1
        if diff >= step:
            delta |= 1
            vpdiff += step
        if sign:
            valpred -= vpdiff
        else:
            valpred += vpdiff
        valpred = max(-32768, min(32767, valpred))
        delta |= sign
        index += INDEX_TABLE[delta]
        index = max(0, min(88, index))
        codes.append(delta)
    return codes, valpred, index


def decode(codes: List[int]) -> List[int]:
    """Reference IMA ADPCM decoder."""
    valpred = 0
    index = 0
    out = []
    for delta in codes:
        step = STEPSIZE_TABLE[index]
        index += INDEX_TABLE[delta]
        index = max(0, min(88, index))
        sign = delta & 8
        delta_bits = delta & 7
        vpdiff = step >> 3
        if delta_bits & 4:
            vpdiff += step
        if delta_bits & 2:
            vpdiff += step >> 1
        if delta_bits & 1:
            vpdiff += step >> 2
        if sign:
            valpred -= vpdiff
        else:
            valpred += vpdiff
        valpred = max(-32768, min(32767, valpred))
        out.append(valpred)
    return out


_C_TEMPLATE = """
// IMA ADPCM encoder/decoder (MediaBench-I ADPCM workload)
{pcm_def}
int code[{n}];
int decoded[{n}];
{index_def}
{step_def}

int enc_valpred; int enc_index;
int dec_valpred; int dec_index;

int clamp16(int v) {{
    if (v > 32767) return 32767;
    if (v < -32768) return -32768;
    return v;
}}

int clamp_index(int v) {{
    if (v < 0) return 0;
    if (v > 88) return 88;
    return v;
}}

int adpcm_encode(int n) {{
    int i = 0;
    while (i < n) {{
        int step = stepsizeTable[enc_index];
        int diff = pcm[i] - enc_valpred;
        int sign = 0;
        if (diff < 0) {{ sign = 8; diff = -diff; }}
        int delta = 0;
        int vpdiff = step >> 3;
        if (diff >= step) {{ delta = 4; diff -= step; vpdiff += step; }}
        step >>= 1;
        if (diff >= step) {{ delta |= 2; diff -= step; vpdiff += step; }}
        step >>= 1;
        if (diff >= step) {{ delta |= 1; vpdiff += step; }}
        if (sign) enc_valpred -= vpdiff; else enc_valpred += vpdiff;
        enc_valpred = clamp16(enc_valpred);
        delta |= sign;
        enc_index = clamp_index(enc_index + indexTable[delta]);
        code[i] = delta;
        i += 1;
    }}
    return 0;
}}

int adpcm_decode(int n) {{
    int i = 0;
    while (i < n) {{
        int delta = code[i];
        int step = stepsizeTable[dec_index];
        dec_index = clamp_index(dec_index + indexTable[delta]);
        int sign = delta & 8;
        int bits = delta & 7;
        int vpdiff = step >> 3;
        if (bits & 4) vpdiff += step;
        if (bits & 2) vpdiff += step >> 1;
        if (bits & 1) vpdiff += step >> 2;
        if (sign) dec_valpred -= vpdiff; else dec_valpred += vpdiff;
        dec_valpred = clamp16(dec_valpred);
        decoded[i] = dec_valpred;
        i += 1;
    }}
    return 0;
}}

int main() {{
    int n = {n};
    adpcm_encode(n);
    adpcm_decode(n);
    int codesum = 0;
    int errsum = 0;
    for (int i = 0; i < n; i += 1) {{
        codesum += code[i];
        int e = pcm[i] - decoded[i];
        if (e < 0) e = -e;
        errsum += e;
    }}
    print_int(codesum);
    print_int(errsum);
    print_int(enc_valpred);
    print_int(dec_valpred);
    return 0;
}}
"""


def make_adpcm(scale: str = "small", seed: int = 2016) -> Workload:
    n = _SCALE_SAMPLES[scale_index(scale)]
    samples = pcm_signal(n, seed=seed)
    codes, enc_valpred, _enc_index = encode(samples)
    decoded = decode(codes)
    expected = [
        sum(codes),
        sum(abs(s - d) for s, d in zip(samples, decoded)),
        enc_valpred,
        decoded[-1],
    ]
    source = _C_TEMPLATE.format(
        n=n,
        pcm_def=format_int_array("pcm", samples),
        index_def=format_int_array("indexTable", INDEX_TABLE),
        step_def=format_int_array("stepsizeTable", STEPSIZE_TABLE),
    )
    return Workload(name="adpcm",
                    description="IMA ADPCM encode+decode (MediaBench-I)",
                    c_source=source, expected_output=expected)


@register("adpcm")
def _factory(scale: str) -> Workload:
    return make_adpcm(scale)
