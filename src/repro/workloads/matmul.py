"""Integer matrix-multiply workload (dense loop nest, branch-light)."""

from __future__ import annotations

from .base import Workload, _LCG, format_int_array, register, scale_index

_SCALE_DIMS = (4, 8, 16)


_C_TEMPLATE = """
// dense {dim}x{dim} integer matrix multiply
{a_def}
{b_def}
int c[{n}];

int matmul(int dim) {{
    for (int i = 0; i < dim; i += 1) {{
        for (int j = 0; j < dim; j += 1) {{
            int acc = 0;
            for (int k = 0; k < dim; k += 1) {{
                acc += a[i * dim + k] * b[k * dim + j];
            }}
            c[i * dim + j] = acc;
        }}
    }}
    return 0;
}}

int main() {{
    int dim = {dim};
    matmul(dim);
    int trace = 0;
    int checksum = 0;
    for (int i = 0; i < dim; i += 1) {{
        trace += c[i * dim + i];
        for (int j = 0; j < dim; j += 1) checksum ^= c[i * dim + j] + i - j;
    }}
    print_int(trace);
    print_int(checksum);
    return 0;
}}
"""


def make_matmul(scale: str = "small", seed: int = 31) -> Workload:
    dim = _SCALE_DIMS[scale_index(scale)]
    rng = _LCG(seed)
    a = [rng.int_range(-50, 50) for _ in range(dim * dim)]
    b = [rng.int_range(-50, 50) for _ in range(dim * dim)]
    c = [0] * (dim * dim)
    for i in range(dim):
        for j in range(dim):
            acc = 0
            for k in range(dim):
                acc += a[i * dim + k] * b[k * dim + j]
            c[i * dim + j] = acc
    trace = sum(c[i * dim + i] for i in range(dim))
    checksum = 0
    for i in range(dim):
        for j in range(dim):
            checksum ^= (c[i * dim + j] + i - j) & 0xFFFFFFFF
    checksum &= 0xFFFFFFFF
    if checksum & 0x80000000:
        checksum -= 0x100000000
    source = _C_TEMPLATE.format(dim=dim, n=dim * dim,
                                a_def=format_int_array("a", a),
                                b_def=format_int_array("b", b))
    return Workload(name="matmul",
                    description=f"{dim}x{dim} integer matrix multiply",
                    c_source=source, expected_output=[trace, checksum])


@register("matmul")
def _factory(scale: str) -> Workload:
    return make_matmul(scale)
