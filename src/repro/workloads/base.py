"""Workload model: a minicc program plus its Python golden output.

A workload is self-contained: the C source embeds its input data as global
initializers (generated deterministically), and the program prints result
checksums through the MMIO console.  The golden output is computed by a
pure-Python reference implementation of the same algorithm, so the
simulator, compiler, transformer and crypto stack are all validated
end-to-end by comparing ``print_int`` streams.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List

from ..cc import CompiledProgram, compile_source


@dataclass
class Workload:
    """One benchmark program with its expected console output."""

    name: str
    description: str
    c_source: str
    expected_output: List[int]
    expected_exit: int = 0
    _compiled: object = field(default=None, repr=False, compare=False)

    def compile(self) -> CompiledProgram:
        if self._compiled is None:
            self._compiled = compile_source(self.c_source)
        return self._compiled


class _LCG:
    """Deterministic 32-bit linear congruential generator (data synthesis)."""

    def __init__(self, seed: int) -> None:
        self.state = seed & 0xFFFFFFFF

    def next(self) -> int:
        self.state = (self.state * 1103515245 + 12345) & 0xFFFFFFFF
        return self.state

    def int_range(self, low: int, high: int) -> int:
        """Uniform-ish integer in [low, high]."""
        return low + self.next() % (high - low + 1)


def pcm_signal(count: int, seed: int = 2016) -> List[int]:
    """Synthetic 16-bit PCM: a triangle carrier with LCG noise.

    Stands in for the MediaBench audio clip (DESIGN.md substitution table):
    the ADPCM code path depends only on sample dynamics, not on the clip's
    semantics.
    """
    rng = _LCG(seed)
    samples = []
    value = 0
    direction = 257
    for _ in range(count):
        value += direction
        if value > 14000 or value < -14000:
            direction = -direction
        noise = rng.int_range(-900, 900)
        sample = max(-32768, min(32767, value + noise))
        samples.append(sample)
    return samples


def format_int_array(name: str, values: List[int]) -> str:
    """Emit a minicc global array definition with initializers."""
    body = ", ".join(str(v) for v in values)
    return f"int {name}[{len(values)}] = {{{body}}};"


#: registry of workload factories: name -> factory(scale) -> Workload
_REGISTRY: Dict[str, Callable[[str], Workload]] = {}


def register(name: str):
    def wrap(factory: Callable[[str], Workload]):
        _REGISTRY[name] = factory
        return factory
    return wrap


def workload_names() -> List[str]:
    return sorted(_REGISTRY)


def make_workload(name: str, scale: str = "small") -> Workload:
    """Instantiate a registered workload at a given scale.

    Scales: ``tiny`` (unit tests), ``small`` (default benchmarks),
    ``medium`` (longer runs for overhead measurements).
    """
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise KeyError(f"unknown workload {name!r}; "
                       f"known: {workload_names()}") from None
    return factory(scale)


def all_workloads(scale: str = "small") -> List[Workload]:
    return [make_workload(name, scale) for name in workload_names()]


SCALE_SIZES = {"tiny": 0, "small": 1, "medium": 2}


def scale_index(scale: str) -> int:
    try:
        return SCALE_SIZES[scale]
    except KeyError:
        raise ValueError(f"unknown scale {scale!r}") from None
