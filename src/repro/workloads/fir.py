"""16-tap integer FIR filter workload."""

from __future__ import annotations

from typing import List

from .base import (Workload, format_int_array, pcm_signal, register,
                   scale_index)

_SCALE_SAMPLES = (48, 300, 1500)
TAPS = [3, -1, 4, 1, -5, 9, 2, -6, 5, 3, -5, 8, 9, -7, 9, 3]


def fir_reference(samples: List[int], taps: List[int]) -> List[int]:
    """Direct-form FIR; output is >>6 scaled, same as the C code."""
    out = []
    n_taps = len(taps)
    for i in range(len(samples)):
        acc = 0
        for t in range(n_taps):
            if i - t >= 0:
                acc += taps[t] * samples[i - t]
        out.append(acc >> 6)
    return out


_C_TEMPLATE = """
// 16-tap direct-form FIR filter
{signal_def}
{taps_def}
int out[{n}];

int fir(int n, int ntaps) {{
    for (int i = 0; i < n; i += 1) {{
        int acc = 0;
        for (int t = 0; t < ntaps; t += 1) {{
            if (i - t >= 0) acc += taps[t] * signal[i - t];
        }}
        out[i] = acc >> 6;
    }}
    return 0;
}}

int main() {{
    int n = {n};
    fir(n, {ntaps});
    int checksum = 0;
    int peak = -2147483647;
    for (int i = 0; i < n; i += 1) {{
        checksum += out[i];
        if (out[i] > peak) peak = out[i];
    }}
    print_int(checksum);
    print_int(peak);
    print_int(out[n - 1]);
    return 0;
}}
"""


def make_fir(scale: str = "small", seed: int = 404) -> Workload:
    n = _SCALE_SAMPLES[scale_index(scale)]
    samples = pcm_signal(n, seed=seed)
    out = fir_reference(samples, TAPS)
    expected = [sum(out), max(out), out[-1]]
    source = _C_TEMPLATE.format(
        n=n, ntaps=len(TAPS),
        signal_def=format_int_array("signal", samples),
        taps_def=format_int_array("taps", TAPS))
    return Workload(name="fir", description="16-tap integer FIR filter",
                    c_source=source, expected_output=expected)


@register("fir")
def _factory(scale: str) -> Workload:
    return make_fir(scale)
