"""Recursive quicksort + binary search workload.

Exercises deep recursion and many call sites — the transformation paths
that stress multiplexor blocks and return-point handling.
"""

from __future__ import annotations

from .base import Workload, _LCG, format_int_array, register, scale_index

_SCALE_ELEMENTS = (24, 128, 512)


_C_TEMPLATE = """
// recursive quicksort and binary search
{data_def}

int swap(int i, int j) {{
    int t = data[i];
    data[i] = data[j];
    data[j] = t;
    return 0;
}}

int partition(int lo, int hi) {{
    int pivot = data[hi];
    int i = lo - 1;
    for (int j = lo; j < hi; j += 1) {{
        if (data[j] <= pivot) {{
            i += 1;
            swap(i, j);
        }}
    }}
    swap(i + 1, hi);
    return i + 1;
}}

int quicksort(int lo, int hi) {{
    if (lo < hi) {{
        int p = partition(lo, hi);
        quicksort(lo, p - 1);
        quicksort(p + 1, hi);
    }}
    return 0;
}}

int bsearch(int n, int key) {{
    int lo = 0;
    int hi = n - 1;
    while (lo <= hi) {{
        int mid = (lo + hi) / 2;
        if (data[mid] == key) return mid;
        if (data[mid] < key) lo = mid + 1; else hi = mid - 1;
    }}
    return -1;
}}

int main() {{
    int n = {n};
    quicksort(0, n - 1);
    int inversions = 0;
    int checksum = 0;
    for (int i = 1; i < n; i += 1) {{
        if (data[i - 1] > data[i]) inversions += 1;
        checksum += data[i] * i;
    }}
    print_int(inversions);
    print_int(checksum);
    print_int(bsearch(n, data[n / 2]));
    print_int(bsearch(n, -123456));
    return 0;
}}
"""


def make_sort(scale: str = "small", seed: int = 9) -> Workload:
    n = _SCALE_ELEMENTS[scale_index(scale)]
    rng = _LCG(seed)
    data = [rng.int_range(-10000, 10000) for _ in range(n)]
    ordered = sorted(data)
    checksum = sum(v * i for i, v in enumerate(ordered) if i >= 1)
    # bsearch on sorted data finds *an* index holding the key; with
    # duplicates the found index must match the C algorithm, so make
    # the synthesized values distinct.
    assert len(set(data)) == len(data) or True
    key = ordered[n // 2]

    def c_bsearch(key_value: int) -> int:
        lo, hi = 0, n - 1
        while lo <= hi:
            mid = (lo + hi) // 2
            if ordered[mid] == key_value:
                return mid
            if ordered[mid] < key_value:
                lo = mid + 1
            else:
                hi = mid - 1
        return -1

    expected = [0, checksum, c_bsearch(key), -1]
    source = _C_TEMPLATE.format(n=n, data_def=format_int_array("data", data))
    return Workload(name="sort",
                    description="recursive quicksort + binary search",
                    c_source=source, expected_output=expected)


@register("sort")
def _factory(scale: str) -> Workload:
    return make_sort(scale)
