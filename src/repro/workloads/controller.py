"""Safety-critical controller workload — the paper's motivating domain.

A bare-metal control loop of the kind SOFIA exists to protect (§I:
industrial/automotive control, §II-B2: actuator stores must never execute
from tampered code):

* a noisy sensor trace is filtered with a median-of-3 window,
* a PI controller drives the plant toward a setpoint with clamped output,
* out-of-range sensor readings trip a latched limp-home mode that forces
  the actuator to a safe value,
* every actuator command is range-checked before the store.

The Python reference implements the identical integer algorithm; the
program prints the actuator checksum, the final integral state, the
number of limp-mode ticks and the last command.
"""

from __future__ import annotations

from typing import List, Tuple

from .base import Workload, _LCG, format_int_array, register, scale_index

_SCALE_TICKS = (40, 200, 800)

SETPOINT = 5000
KP_NUM, KP_DEN = 3, 4        # Kp = 0.75
KI_NUM, KI_DEN = 1, 16       # Ki = 0.0625
OUT_MIN, OUT_MAX = 0, 9000
SENSOR_MIN, SENSOR_MAX = 0, 16000
SAFE_COMMAND = 1000


def sensor_trace(ticks: int, seed: int) -> List[int]:
    """Plant response with noise and two injected out-of-range spikes."""
    rng = _LCG(seed)
    value = 2000
    trace = []
    for t in range(ticks):
        value += (SETPOINT - value) // 6 + rng.int_range(-250, 250)
        sample = value
        if ticks >= 20 and t in (ticks // 3, ticks // 3 + 1):
            sample = SENSOR_MAX + 500  # sensor fault spike
        trace.append(sample)
    return trace


def median3(a: int, b: int, c: int) -> int:
    if a > b:
        a, b = b, a
    if b > c:
        b = c
    return max(a, b)


def _wrap32(v: int) -> int:
    v &= 0xFFFFFFFF
    return v - 0x100000000 if v & 0x80000000 else v


def _tdiv(a: int, b: int) -> int:
    """C division: truncate toward zero."""
    q = abs(a) // abs(b)
    return -q if (a < 0) != (b < 0) else q


def _tmod(a: int, b: int) -> int:
    """C remainder: sign of the dividend."""
    return a - b * _tdiv(a, b)


def controller_reference(trace: List[int]) -> Tuple[int, int, int, int]:
    integral = 0
    limp_ticks = 0
    limp = 0
    checksum = 0
    command = SAFE_COMMAND
    prev1 = prev2 = trace[0]
    for sample in trace:
        filtered = median3(prev2, prev1, sample)
        prev2, prev1 = prev1, sample
        if sample < SENSOR_MIN or sample > SENSOR_MAX:
            limp = 1
        if limp:
            limp_ticks += 1
            command = SAFE_COMMAND
        else:
            error = SETPOINT - filtered
            integral += error
            if integral > 200000:
                integral = 200000
            if integral < -200000:
                integral = -200000
            command = (_tdiv(KP_NUM * error, KP_DEN)
                       + _tdiv(KI_NUM * integral, KI_DEN))
            if command < OUT_MIN:
                command = OUT_MIN
            if command > OUT_MAX:
                command = OUT_MAX
        # exact C semantics: 32-bit wraparound, then truncating modulo
        checksum = _tmod(_wrap32(checksum * 31 + command), 1000000007)
    return checksum, integral, limp_ticks, command


_C_TEMPLATE = """
// median-filtered PI controller with latched limp-home mode
{trace_def}

int integral = 0;
int limp = 0;
int limp_ticks = 0;
int checksum = 0;
int command = {safe};

int median3(int a, int b, int c) {{
    if (a > b) {{ int t = a; a = b; b = t; }}
    if (b > c) b = c;
    if (a > b) return a;
    return b;
}}

int clamp(int v, int lo, int hi) {{
    if (v < lo) return lo;
    if (v > hi) return hi;
    return v;
}}

int step(int filtered) {{
    int error = {setpoint} - filtered;
    integral = clamp(integral + error, -200000, 200000);
    int out = ({kp_num} * error) / {kp_den}
            + ({ki_num} * integral) / {ki_den};
    return clamp(out, {out_min}, {out_max});
}}

int main() {{
    int n = {n};
    int prev1 = sensors[0];
    int prev2 = sensors[0];
    for (int t = 0; t < n; t++) {{
        int sample = sensors[t];
        int filtered = median3(prev2, prev1, sample);
        prev2 = prev1;
        prev1 = sample;
        if (sample < {sensor_min} || sample > {sensor_max}) limp = 1;
        if (limp) {{
            limp_ticks++;
            command = {safe};
        }} else {{
            command = step(filtered);
        }}
        checksum = (checksum * 31 + command) % 1000000007;
    }}
    print_int(checksum);
    print_int(integral);
    print_int(limp_ticks);
    print_int(command);
    return 0;
}}
"""


def make_controller(scale: str = "small", seed: int = 86) -> Workload:
    ticks = _SCALE_TICKS[scale_index(scale)]
    trace = sensor_trace(ticks, seed)
    expected = list(controller_reference(trace))
    source = _C_TEMPLATE.format(
        n=ticks, trace_def=format_int_array("sensors", trace),
        setpoint=SETPOINT, kp_num=KP_NUM, kp_den=KP_DEN,
        ki_num=KI_NUM, ki_den=KI_DEN, out_min=OUT_MIN, out_max=OUT_MAX,
        sensor_min=SENSOR_MIN, sensor_max=SENSOR_MAX, safe=SAFE_COMMAND)
    return Workload(name="controller",
                    description="median-filtered PI controller with "
                                "limp-home mode",
                    c_source=source, expected_output=expected)


@register("controller")
def _factory(scale: str) -> Workload:
    return make_controller(scale)
