"""CRC-32 (IEEE 802.3, bitwise) workload."""

from __future__ import annotations

from typing import List

from .base import (Workload, _LCG, format_int_array, register, scale_index)

_SCALE_BYTES = (32, 256, 1024)
POLY = 0xEDB88320


def crc32_reference(data: List[int]) -> int:
    """Bitwise CRC-32 over byte values, returned as a signed 32-bit int."""
    crc = 0xFFFFFFFF
    for byte in data:
        crc ^= byte & 0xFF
        for _ in range(8):
            if crc & 1:
                crc = (crc >> 1) ^ POLY
            else:
                crc >>= 1
    crc ^= 0xFFFFFFFF
    return crc - 0x100000000 if crc & 0x80000000 else crc


_C_TEMPLATE = """
// bitwise CRC-32 (IEEE polynomial)
{data_def}

int crc32(int n) {{
    int crc = -1;                 // 0xFFFFFFFF
    for (int i = 0; i < n; i += 1) {{
        crc ^= data[i] & 255;
        for (int bit = 0; bit < 8; bit += 1) {{
            int lsb = crc & 1;
            crc = (crc >> 1) & 2147483647;   // logical shift right by 1
            if (lsb) crc ^= {poly};
        }}
    }}
    return ~crc;
}}

int main() {{
    print_int(crc32({n}));
    return 0;
}}
"""


def make_crc32(scale: str = "small", seed: int = 77) -> Workload:
    n = _SCALE_BYTES[scale_index(scale)]
    rng = _LCG(seed)
    data = [rng.int_range(0, 255) for _ in range(n)]
    poly_signed = POLY - 0x100000000  # fits minicc's signed literals
    source = _C_TEMPLATE.format(n=n, poly=poly_signed,
                                data_def=format_int_array("data", data))
    return Workload(name="crc32",
                    description="bitwise CRC-32 over a byte buffer",
                    c_source=source,
                    expected_output=[crc32_reference(data)])


@register("crc32")
def _factory(scale: str) -> Workload:
    return make_crc32(scale)
