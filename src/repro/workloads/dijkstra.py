"""Dijkstra single-source shortest paths over a dense adjacency matrix.

Irregular control flow (nested loops with data-dependent branches) plus a
linear-scan priority selection — a contrast to the streaming codecs.
"""

from __future__ import annotations

from typing import List

from .base import Workload, _LCG, format_int_array, register, scale_index

_SCALE_NODES = (8, 16, 28)
INF = 0x3FFFFFFF


def generate_graph(nodes: int, seed: int) -> List[int]:
    """Random dense weighted digraph as a row-major adjacency matrix."""
    rng = _LCG(seed)
    matrix = []
    for i in range(nodes):
        for j in range(nodes):
            if i == j:
                matrix.append(0)
            elif rng.int_range(0, 99) < 55:
                matrix.append(rng.int_range(1, 40))
            else:
                matrix.append(INF)
    return matrix


def dijkstra_reference(matrix: List[int], nodes: int,
                       source: int) -> List[int]:
    dist = [INF] * nodes
    done = [False] * nodes
    dist[source] = 0
    for _ in range(nodes):
        best = -1
        best_dist = INF
        for v in range(nodes):
            if not done[v] and dist[v] < best_dist:
                best, best_dist = v, dist[v]
        if best < 0:
            break
        done[best] = True
        for v in range(nodes):
            weight = matrix[best * nodes + v]
            if weight < INF and dist[best] + weight < dist[v]:
                dist[v] = dist[best] + weight
    return dist


_C_TEMPLATE = """
// Dijkstra shortest paths over a dense adjacency matrix
{graph_def}
int dist[{n}];
int done[{n}];

int dijkstra(int n, int source) {{
    int inf = {inf};
    for (int i = 0; i < n; i += 1) {{ dist[i] = inf; done[i] = 0; }}
    dist[source] = 0;
    for (int round = 0; round < n; round += 1) {{
        int best = -1;
        int best_dist = inf;
        for (int v = 0; v < n; v += 1) {{
            if (!done[v] && dist[v] < best_dist) {{
                best = v;
                best_dist = dist[v];
            }}
        }}
        if (best < 0) break;
        done[best] = 1;
        for (int v = 0; v < n; v += 1) {{
            int w = graph[best * n + v];
            if (w < inf && dist[best] + w < dist[v]) {{
                dist[v] = dist[best] + w;
            }}
        }}
    }}
    return 0;
}}

int main() {{
    int n = {n};
    dijkstra(n, 0);
    int reachable = 0;
    int total = 0;
    int far = 0;
    for (int v = 0; v < n; v += 1) {{
        if (dist[v] < {inf}) {{
            reachable += 1;
            total += dist[v];
            if (dist[v] > far) far = dist[v];
        }}
    }}
    print_int(reachable);
    print_int(total);
    print_int(far);
    return 0;
}}
"""


def make_dijkstra(scale: str = "small", seed: int = 58) -> Workload:
    nodes = _SCALE_NODES[scale_index(scale)]
    matrix = generate_graph(nodes, seed)
    dist = dijkstra_reference(matrix, nodes, 0)
    finite = [d for d in dist if d < INF]
    expected = [len(finite), sum(finite), max(finite)]
    source = _C_TEMPLATE.format(
        n=nodes, inf=INF,
        graph_def=format_int_array("graph", matrix))
    return Workload(name="dijkstra",
                    description="Dijkstra shortest paths (dense graph)",
                    c_source=source, expected_output=expected)


@register("dijkstra")
def _factory(scale: str) -> Workload:
    return make_dijkstra(scale)
