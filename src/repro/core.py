"""High-level façade over the SOFIA toolchain.

The three-step workflow a user of the real system would follow:

1. **Build** — compile C (or assemble hand-written assembly) into a parsed
   program.
2. **Protect** — transform + MAC + encrypt into a :class:`SofiaImage`
   bound to a device's keys and a fresh nonce.
3. **Run** — execute on the simulated SOFIA core (or the vanilla core for
   baseline comparisons).

>>> from repro import core
>>> keys = core.make_keys(seed=1)
>>> prog = core.build_assembly("main: li a0, 2\\n add a0, a0, a0\\n halt\\n")
>>> image = core.protect(prog, keys, nonce=7)
>>> core.run_protected(image, keys).ok
True
"""

from __future__ import annotations

from typing import Optional, Union

from .cc import CompiledProgram, compile_source
from .crypto.keys import DeviceKeys
from .errors import ReproError
from .isa.assembler import assemble, parse
from .isa.program import AsmProgram, Executable
from .sim.result import ExecutionResult
from .sim.sofia import SofiaMachine
from .sim.timing import DEFAULT_TIMING, TimingParams
from .sim.vanilla import VanillaMachine
from .transform.config import DEFAULT_CONFIG, TransformConfig
from .transform.image import SofiaImage
from .transform.profile import ProtectionProfile
from .transform.transformer import transform

ProgramLike = Union[AsmProgram, CompiledProgram, str]


def make_keys(seed: int) -> DeviceKeys:
    """Provision a deterministic device key set (tests/examples)."""
    return DeviceKeys.from_seed(seed)


def build_c(source: str) -> CompiledProgram:
    """Compile minicc C source."""
    return compile_source(source)


def build_assembly(source: str) -> AsmProgram:
    """Parse SRISC assembly source."""
    return parse(source)


def _as_program(program: ProgramLike) -> AsmProgram:
    if isinstance(program, AsmProgram):
        return program
    if isinstance(program, CompiledProgram):
        return program.program
    if isinstance(program, str):
        raise ReproError(
            "pass source through build_c()/build_assembly() first "
            "(ambiguous raw string)")
    raise ReproError(f"cannot build from {type(program).__name__}")


def link_vanilla(program: ProgramLike) -> Executable:
    """Assemble + link for the unprotected baseline core."""
    return assemble(_as_program(program))


def protect(program: ProgramLike, keys: DeviceKeys, nonce: int,
            config: Optional[TransformConfig] = None,
            profile: Optional[ProtectionProfile] = None) -> SofiaImage:
    """Transform a program into an encrypted, MACed SOFIA image.

    ``profile`` selects a full design point (cipher, seal width, renonce
    policy, geometry); without one the legacy ``config`` geometry at the
    paper's design point applies.  Passing both forwards both — the
    transformer raises when they disagree on shared axes.
    """
    return transform(_as_program(program), keys, nonce=nonce, config=config,
                     profile=profile)


def run_vanilla(executable: Executable,
                timing: TimingParams = DEFAULT_TIMING,
                max_instructions: int = 50_000_000,
                engine: Optional[str] = None) -> ExecutionResult:
    """Run an unprotected binary on the vanilla core.

    ``engine`` selects the execution engine (``"predecoded"`` by default,
    ``"reference"`` for the semantics-oracle loop; see
    :mod:`repro.sim.engine`).
    """
    return VanillaMachine(executable, timing, engine=engine).run(
        max_instructions)


def run_protected(image: SofiaImage, keys: DeviceKeys,
                  timing: TimingParams = DEFAULT_TIMING,
                  max_instructions: int = 50_000_000,
                  engine: Optional[str] = None) -> ExecutionResult:
    """Run a protected image on the SOFIA core."""
    return SofiaMachine(image, keys, timing, engine=engine).run(
        max_instructions)


def protect_and_run(program: ProgramLike, seed: int = 1, nonce: int = 1,
                    config: TransformConfig = DEFAULT_CONFIG,
                    timing: TimingParams = DEFAULT_TIMING,
                    max_instructions: int = 50_000_000,
                    engine: Optional[str] = None) -> ExecutionResult:
    """One-call convenience: provision keys, protect, run."""
    keys = make_keys(seed)
    image = protect(program, keys, nonce, config)
    return run_protected(image, keys, timing, max_instructions, engine=engine)
