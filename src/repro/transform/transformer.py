"""End-to-end SOFIA binary transformation (paper §III).

``transform`` is the toolchain entry point standing in for the paper's
assembly-rewriting step: canonicalize the program, build its precise CFG,
rewrite indirectly-reachable returns, lay the code out into execution and
multiplexor blocks, then MAC-and-encrypt everything into a
:class:`~repro.transform.image.SofiaImage`.

Canonicalization passes:

* **single-ret** — every function keeps one ``jr ra``; additional returns
  are rewritten into ``jmp`` to the canonical one, so each return point has
  exactly one static predecessor instruction.
* **indirect-return rewriting** — a function reached through a
  ``.targets``-annotated ``jalr`` must be exclusive to that call site
  (checked); its ``ret`` is rewritten to a direct ``jmp`` to the call
  site's return point, making the return edge statically resolvable.
  This mirrors the paper's restriction that control flow must be precisely
  analyzable (§II-D).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional, Set

from ..cfg.builder import build_cfg, function_ranges, returns_of
from ..cfg.graph import ControlFlowGraph
from ..crypto.keys import DeviceKeys
from ..crypto.registry import cipher_name
from ..errors import TransformError
from ..isa.instructions import Instruction
from ..isa.program import AsmProgram, DATA_BASE
from .config import DEFAULT_CONFIG, TransformConfig
from .encrypt import seal
from .image import SofiaImage
from .layout import Layout, build_layout
from .profile import ProtectionProfile


def _resolve_design(config: Optional[TransformConfig],
                    profile: Optional[ProtectionProfile],
                    keys: Optional[DeviceKeys] = None
                    ) -> "tuple[TransformConfig, ProtectionProfile]":
    """Reconcile the legacy config knob with the profile knob.

    ``config`` is the historical geometry-only interface (block words,
    store scheduling); ``profile`` is the full design point.  Passing
    only one derives the other; passing both requires them to agree on
    the axes they share, so a caller cannot seal under one geometry and
    label the image with another.  Without a profile the cipher axis is
    taken from ``keys`` (the legacy keys-select-the-cipher interface),
    so the embedded profile always names the cipher that sealed the
    image.
    """
    if profile is None:
        config = config or DEFAULT_CONFIG
        try:
            cipher = (cipher_name(keys.cipher_factory) if keys is not None
                      else "rectangle-80")
        except ValueError as exc:
            raise TransformError(str(exc)) from None
        return config, ProtectionProfile.from_config(config, cipher=cipher)
    if config is None:
        return profile.to_config(), profile
    if (config.block_words != profile.block_words
            or config.schedule_stores != profile.schedule_stores
            or config.mac_words != profile.mac_words):
        raise TransformError(
            f"config ({config.block_words} words, mac_words="
            f"{config.mac_words}, schedule_stores="
            f"{config.schedule_stores}) disagrees with profile "
            f"{profile.label}")
    return config, profile


def _copy_program(program: AsmProgram) -> AsmProgram:
    return AsmProgram(instructions=list(program.instructions),
                      labels=dict(program.labels),
                      data=bytearray(program.data),
                      data_symbols=dict(program.data_symbols),
                      entry=program.entry)


def canonicalize_returns(program: AsmProgram) -> AsmProgram:
    """Rewrite every function to have at most one ``jr ra``."""
    result = _copy_program(program)
    ranges = function_ranges(result)
    for name, (start, end) in sorted(ranges.items()):
        rets = returns_of(result, start, end)
        if len(rets) <= 1:
            continue
        canonical = rets[-1]
        label = f"__ret_{name}"
        if label in result.labels or label in result.data_symbols:
            raise TransformError(f"reserved label {label!r} already defined")
        result.labels[label] = canonical
        for index in rets[:-1]:
            old = result.instructions[index]
            result.instructions[index] = Instruction(
                "jmp", symbol=label, line=old.line)
    return result


def rewrite_indirect_returns(program: AsmProgram,
                             cfg: ControlFlowGraph) -> None:
    """Make indirect-call targets statically returnable (in place).

    For each ``jalr`` site: every target function's ``ret`` becomes
    ``jmp __iret_<site>`` where the label marks the site's return point.
    Validates the exclusivity restrictions documented in DESIGN.md.
    """
    ranges = function_ranges(program)
    direct_call_targets: Set[int] = {
        e.dst for e in cfg.edges if e.kind == "call"}
    claimed: Dict[str, int] = {}  # target symbol -> claiming site index
    for site_index, instr in enumerate(program.instructions):
        spec = instr.spec
        if not (spec.is_indirect and instr.targets):
            continue
        for symbol in instr.targets:
            owner = claimed.get(symbol)
            if owner is not None and owner != site_index:
                raise TransformError(
                    f"indirect target {symbol!r} is used by two call "
                    f"sites (instructions {owner} and {site_index}); "
                    f"SOFIA needs a distinct entry per caller")
            claimed[symbol] = site_index
            target_index = program.labels[symbol]
            if spec.is_call and target_index in direct_call_targets:
                raise TransformError(
                    f"function {symbol!r} is both directly called and an "
                    f"indirect target; rewrite one of the call styles")
        if not spec.is_call:
            continue  # computed goto: no return edge to rewrite
        return_label = f"__iret_{site_index}"
        if return_label not in program.labels:
            if site_index + 1 >= len(program.instructions):
                raise TransformError(
                    "indirect call at the end of the program")
            program.labels[return_label] = site_index + 1
        for symbol in instr.targets:
            start, end = ranges[symbol]
            rets = returns_of(program, start, end)
            if len(rets) > 1:
                raise TransformError(
                    f"function {symbol!r} still has multiple returns")
            for ret_index in rets:
                old = program.instructions[ret_index]
                program.instructions[ret_index] = Instruction(
                    "jmp", symbol=return_label, line=old.line)


def prepare(program: AsmProgram,
            config: Optional[TransformConfig] = DEFAULT_CONFIG,
            profile: Optional[ProtectionProfile] = None) -> Layout:
    """Canonicalize + CFG + layout, without sealing (useful for tests)."""
    config, _profile = _resolve_design(config, profile)
    canonical = canonicalize_returns(program)
    cfg = build_cfg(canonical)
    rewrite_indirect_returns(canonical, cfg)
    return build_layout(canonical, cfg, config)


def transform(program: AsmProgram, keys: DeviceKeys, nonce: int,
              config: Optional[TransformConfig] = None,
              data_base: int = DATA_BASE,
              profile: Optional[ProtectionProfile] = None) -> SofiaImage:
    """Transform a parsed program into an encrypted SOFIA image.

    The design point is given either as a full ``profile`` (cipher, seal
    width, renonce policy, geometry — the E17 sweep axis) or as the
    legacy geometry-only ``config``; omitting both builds the paper's
    default design point.
    """
    config, profile = _resolve_design(config, profile, keys)
    keys = keys.for_profile(profile)
    canonical = canonicalize_returns(program)
    cfg = build_cfg(canonical)
    rewrite_indirect_returns(canonical, cfg)
    layout = build_layout(canonical, cfg, config)
    return seal(layout, canonical, keys, nonce, data_base=data_base,
                profile=profile)
