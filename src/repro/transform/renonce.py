"""Re-encryption under a fresh nonce — the software-update tool.

The paper requires ω to be "unique across different programs and different
program versions of an encrypted program" (§II-A).  When the provider
ships an update (or rotates the nonce of an unchanged binary, e.g. after a
key-exposure scare), the image must be decrypted along its sealed edges
and re-encrypted with the new counter values.  Only the provider can do
this — it needs k1 — which is exactly the copyright/anti-cloning property
the paper claims.

``reencrypt`` keeps everything but the keystream: same blocks, same MACs
(the MACs cover plaintext, which is unchanged), new ciphertext everywhere.
``rotate_nonce`` is the policy-aware entry point: it derives the successor
nonce from the image profile's renonce policy, and refuses on
fixed-nonce deployments (which have no update path by construction).
"""

from __future__ import annotations

from dataclasses import replace
from typing import List

from ..crypto.ctr import EdgeKeystream
from ..crypto.keys import DeviceKeys
from ..errors import ImageError
from .encrypt import chain_prev_pcs
from .image import SofiaImage
from .verify import ImageVerifier


def reencrypt(image: SofiaImage, keys: DeviceKeys,
              new_nonce: int) -> SofiaImage:
    """Produce the same program sealed under ``new_nonce``.

    Requires the transformer's block metadata (the provider keeps it with
    the build artifacts).  The result verifies under the same keys and
    runs identically; no two words of ciphertext survive unchanged
    (distinct nonces give independent keystreams).
    """
    if not image.blocks:
        raise ImageError("re-encryption needs the block metadata")
    if new_nonce == image.nonce:
        raise ImageError("the new nonce must differ from the current one")
    verifier = ImageVerifier(image, keys)
    keys = verifier.keys  # bound to the image profile's cipher
    new_stream = EdgeKeystream(keys.encryption_cipher, new_nonce)
    words: List[int] = list(image.words)
    bw = image.block_words
    for record in image.blocks:
        if not record.entry_prev_pcs:
            raise ImageError(
                f"block 0x{record.base:08x} has no sealed entry")
        # recover the plaintext via the first sealed edge, then re-seal
        # every word along the canonical chain (chain_prev_pcs is the
        # single home of the per-word prevPC scheme).
        plain_primary = verifier._decrypt_block(record, 0,
                                                record.entry_prev_pcs[0])
        base = record.base
        base_index = (base - image.code_base) // 4
        if record.kind == "exec":
            plaintext = plain_primary
        else:
            # path-1 decryption leaves index 1 (M1e2) unrecovered; it is a
            # copy of M1, so take it from index 0.
            plaintext = list(plain_primary)
            plaintext[1] = plain_primary[0]
        prevs = chain_prev_pcs(record.kind, base, bw,
                               list(record.entry_prev_pcs))
        for j in range(bw):
            address = base + 4 * j
            words[base_index + j] = new_stream.encrypt_word(
                plaintext[j], prevs[j], address)
    return replace(image, words=words, nonce=new_nonce)


def rotate_nonce(image: SofiaImage, keys: DeviceKeys) -> SofiaImage:
    """Re-encrypt under the profile's successor nonce (the update path).

    Raises :class:`ImageError` for fixed-nonce profiles: such a
    deployment has no renonce tooling, which is precisely what removes
    its cross-epoch replay surface (and its update path) in the E17
    design-space comparison.
    """
    profile = image.profile
    if not profile.supports_renonce:
        raise ImageError(
            f"profile {profile.label} is a fixed-nonce deployment; "
            f"it has no renonce path")
    return reencrypt(image, keys, profile.next_nonce(image.nonce))
