"""Re-encryption under a fresh nonce — the software-update tool.

The paper requires ω to be "unique across different programs and different
program versions of an encrypted program" (§II-A).  When the provider
ships an update (or rotates the nonce of an unchanged binary, e.g. after a
key-exposure scare), the image must be decrypted along its sealed edges
and re-encrypted with the new counter values.  Only the provider can do
this — it needs k1 — which is exactly the copyright/anti-cloning property
the paper claims.

``reencrypt`` keeps everything but the keystream: same blocks, same MACs
(the MACs cover plaintext, which is unchanged), new ciphertext everywhere.
"""

from __future__ import annotations

from dataclasses import replace
from typing import List

from ..crypto.ctr import EdgeKeystream
from ..crypto.keys import DeviceKeys
from ..errors import ImageError
from .image import SofiaImage
from .verify import ImageVerifier


def reencrypt(image: SofiaImage, keys: DeviceKeys,
              new_nonce: int) -> SofiaImage:
    """Produce the same program sealed under ``new_nonce``.

    Requires the transformer's block metadata (the provider keeps it with
    the build artifacts).  The result verifies under the same keys and
    runs identically; no two words of ciphertext survive unchanged
    (distinct nonces give independent keystreams).
    """
    if not image.blocks:
        raise ImageError("re-encryption needs the block metadata")
    if new_nonce == image.nonce:
        raise ImageError("the new nonce must differ from the current one")
    verifier = ImageVerifier(image, keys)
    new_stream = EdgeKeystream(keys.encryption_cipher, new_nonce)
    words: List[int] = list(image.words)
    bw = image.block_words
    for record in image.blocks:
        if not record.entry_prev_pcs:
            raise ImageError(
                f"block 0x{record.base:08x} has no sealed entry")
        # recover the plaintext via the first sealed edge, then re-seal
        # every word: entry words under their respective edges, the rest
        # along the canonical chain.
        plain_primary = verifier._decrypt_block(record, 0,
                                                record.entry_prev_pcs[0])
        base = record.base
        base_index = (base - image.code_base) // 4
        if record.kind == "exec":
            prevs = [record.entry_prev_pcs[0]] + [
                base + 4 * (j - 1) for j in range(1, bw)]
            plaintext = plain_primary
        else:
            # path-1 decryption leaves index 1 (M1e2) unrecovered; it is a
            # copy of M1, so take it from index 0.
            plaintext = list(plain_primary)
            plaintext[1] = plain_primary[0]
            prevs = ([record.entry_prev_pcs[0], record.entry_prev_pcs[1],
                      base + 4] + [base + 4 * (j - 1)
                                   for j in range(3, bw)])
        for j in range(bw):
            address = base + 4 * j
            words[base_index + j] = new_stream.encrypt_word(
                plaintext[j], prevs[j], address)
    return replace(image, words=words, nonce=new_nonce)
