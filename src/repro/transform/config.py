"""Transformation parameters.

The paper fixes both block types at eight 32-bit words (2 MAC words + 6
instructions for execution blocks, 3 MAC words + 5 instructions for
multiplexor blocks) and derives the store-slot restriction from the LEON3's
7-stage pipeline: integrity verification completes when the last word of a
block is in IF, at which point the instruction in payload slot ``s`` is in
pipeline stage ``capacity - s``; a store must not yet have reached the
Memory Access stage (stage 5 of IF ID OF EXE MA XCP WB), so slots
``s < capacity - 4`` cannot hold stores (paper Figs. 5/6).

``TransformConfig`` exposes the block size and pipeline geometry so the
block-size ablation (experiment E6) can rebuild binaries with 4-instruction
blocks and verify that the restriction disappears, exactly as Fig. 5 shows.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

from ..isa.program import CODE_BASE

#: Stage number of Memory Access in the 7-stage LEON3 pipeline (1-based).
MA_STAGE = 5

#: prevPC presented by the hardware on the reset edge into the entry block.
RESET_PREV_PC = 0x0

#: Sentinel prevPC used to seal the entry of unreachable blocks; it is the
#: highest word address, which no real CTI in a small program occupies.
UNREACHABLE_PREV_PC = ((1 << 24) - 1) << 2


@dataclass(frozen=True)
class TransformConfig:
    """Parameters of the SOFIA binary transformation."""

    #: total words per block (MAC words + instructions)
    block_words: int = 8
    code_base: int = CODE_BASE
    reset_prev_pc: int = RESET_PREV_PC
    unreachable_prev_pc: int = UNREACHABLE_PREV_PC
    #: pipeline stage of Memory Access (controls store-slot restriction)
    ma_stage: int = MA_STAGE
    #: toolchain optimization (paper §V future work): instead of padding a
    #: forbidden store slot with a nop, hoist the next *independent* ALU
    #: instruction in front of the store.  Off by default to keep the
    #: paper-faithful transformation; the E12 ablation measures the gain.
    schedule_stores: bool = False
    #: seal width in 32-bit words for execution blocks (the paper's 64-bit
    #: MAC is 2; multiplexor blocks carry one extra word, the duplicated
    #: ``M1`` that provides their two entry points).  Set through a
    #: :class:`~repro.transform.profile.ProtectionProfile` for the E17
    #: design-space sweep.
    mac_words: int = 2

    def __post_init__(self) -> None:
        if self.mac_words < 1:
            raise ValueError("mac_words must be at least 1")
        if self.block_words < self.mac_words + 3:
            # a multiplexor block needs mac_words + 1 seal words plus a
            # jmp slot, and an execution block needs room for a CTI; the
            # paper's 2-word seal gives the familiar minimum of 5.
            raise ValueError(
                f"block_words must be at least {self.mac_words + 3} "
                f"for a {32 * self.mac_words}-bit seal")
        if self.code_base % self.block_bytes:
            raise ValueError("code_base must be block aligned")

    @property
    def block_bytes(self) -> int:
        return 4 * self.block_words

    @property
    def exec_mac_words(self) -> int:
        """Seal words at the head of an execution block."""
        return self.mac_words

    @property
    def mux_mac_words(self) -> int:
        """Seal words at the head of a multiplexor block (M1 duplicated)."""
        return self.mac_words + 1

    def mac_count(self, kind: str) -> int:
        """Seal words at the head of a ``kind`` ("exec"/"mux") block."""
        return self.exec_mac_words if kind == "exec" else self.mux_mac_words

    @property
    def exec_capacity(self) -> int:
        """Instructions per execution block."""
        return self.block_words - self.exec_mac_words

    @property
    def mux_capacity(self) -> int:
        """Instructions per multiplexor block."""
        return self.block_words - self.mux_mac_words

    def store_forbidden_slots(self, capacity: int) -> Tuple[int, ...]:
        """Payload slots that may not hold store instructions.

        When the block's last word is fetched (verification point), payload
        slot ``s`` sits in stage ``capacity - s``; forbid slots that would
        already have reached the MA stage.
        """
        first_allowed = max(0, capacity - (self.ma_stage - 1))
        return tuple(range(first_allowed))

    @property
    def exec_store_forbidden(self) -> Tuple[int, ...]:
        return self.store_forbidden_slots(self.exec_capacity)

    @property
    def mux_store_forbidden(self) -> Tuple[int, ...]:
        return self.store_forbidden_slots(self.mux_capacity)


DEFAULT_CONFIG = TransformConfig()
