"""Offline image verifier — the toolchain's post-transformation QA gate.

Before a binary is flashed, the software provider (who holds the device
keys) can independently re-derive every check the hardware will perform:

* every sealed inbound edge of every block decrypts to a payload whose
  CBC-MAC matches the interleaved MAC words,
* no store sits in a slot that would reach the MA stage before
  verification, and control leaves blocks only from the last slot,
* every direct CTI in the image targets a *valid entry* of a block of the
  matching kind (offset 0 of an execution block; offset 4/8 of a
  multiplexor block),
* the image's reset entry is one of those valid entries.

The verifier consumes the block metadata the transformer records on the
image (kinds, sealed prevPCs) — it is a build-time tool, not something a
device needs.  An empty finding list means the image is sound.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..crypto.ctr import EdgeKeystream
from ..crypto.keys import DeviceKeys
from ..errors import DecodingError
from ..isa.encoding import decode
from .encrypt import unseal_block
from .image import BlockRecord, SofiaImage


@dataclass(frozen=True)
class Finding:
    """One verification failure."""

    kind: str      # "mac" | "store-slot" | "cti-slot" | "target" | "entry"
    block_base: int
    detail: str

    def __str__(self) -> str:
        return f"[{self.kind}] block 0x{self.block_base:08x}: {self.detail}"


class ImageVerifier:
    """Re-derives the hardware checks for a whole image."""

    def __init__(self, image: SofiaImage, keys: DeviceKeys) -> None:
        if not image.blocks:
            raise ValueError(
                "the verifier needs the transformer's block metadata")
        self.image = image
        self.profile = image.profile
        self.keys = keys.for_profile(self.profile)
        self.keystream = EdgeKeystream(self.keys.encryption_cipher,
                                       image.nonce)
        self.config = self.profile.to_config(code_base=image.code_base)
        self._records: Dict[int, BlockRecord] = {
            record.base: record for record in image.blocks}

    # -- decryption helpers ----------------------------------------------

    def _decrypt_block(self, record: BlockRecord, entry_slot: int,
                       prev_pc: int) -> Optional[List[int]]:
        """Decrypt along one sealed edge; returns all words by index."""
        bw = self.image.block_words
        base = record.base
        if record.kind == "exec":
            indices = list(range(bw))
        elif entry_slot == 0:
            indices = [0] + list(range(2, bw))
        else:
            indices = list(range(1, bw))
        words: Dict[int, int] = {}
        for position, j in enumerate(indices):
            address = base + 4 * j
            if position == 0:
                prev = prev_pc
            elif record.kind == "mux" and j == 2:
                prev = base + 4
            else:
                prev = base + 4 * (j - 1)
            words[j] = self.keystream.decrypt_word(
                self.image.word_at(address), prev, address)
        return [words.get(j, 0) for j in range(bw)]

    def _verify_block_edges(self, record: BlockRecord) -> List[Finding]:
        findings = []
        for slot, prev_pc in enumerate(record.entry_prev_pcs):
            words = self._decrypt_block(record, slot, prev_pc)
            # fetch order: the entry's M1 copy first, then everything
            # after the M1 pair (for exec blocks that is simply all words)
            if record.kind == "exec":
                fetched = words
            else:
                fetched = [words[slot]] + words[2:]
            _payload, stored, computed = unseal_block(
                record.kind, fetched, self.keys, self.profile.mac_words)
            if stored != computed:
                findings.append(Finding(
                    "mac", record.base,
                    f"entry slot {slot} (prevPC=0x{prev_pc:08x}) fails "
                    f"MAC verification"))
        return findings

    # -- structural checks ----------------------------------------------------

    def _entry_kind(self, address: int) -> Optional[str]:
        """'exec'/'mux' if ``address`` is a valid entry of some block."""
        offset = (address - self.image.code_base) % self.image.block_bytes
        base = address - offset
        record = self._records.get(base)
        if record is None:
            return None
        if offset == 0 and record.kind == "exec":
            return "exec"
        if offset in (4, 8) and record.kind == "mux":
            return "mux"
        return None

    def _verify_block_payload(self, record: BlockRecord) -> List[Finding]:
        findings = []
        capacity = record.capacity
        forbidden = self.config.store_forbidden_slots(capacity)
        mac_count = self.image.block_words - capacity
        for slot, word in enumerate(record.plain_payload):
            address = record.base + 4 * (mac_count + slot)
            try:
                instr = decode(word, address)
            except DecodingError as exc:
                findings.append(Finding(
                    "decode", record.base,
                    f"slot {slot}: {exc}"))
                continue
            if instr.is_store and slot in forbidden:
                findings.append(Finding(
                    "store-slot", record.base,
                    f"store {instr.mnemonic} in forbidden slot {slot}"))
            if instr.is_cti and slot != capacity - 1:
                findings.append(Finding(
                    "cti-slot", record.base,
                    f"{instr.mnemonic} in mid-block slot {slot}"))
            if (instr.mnemonic in ("jmp", "call", "beq", "bne", "blt",
                                   "bge", "bltu", "bgeu")
                    and instr.imm is not None):
                if self._entry_kind(instr.imm) is None:
                    findings.append(Finding(
                        "target", record.base,
                        f"{instr.mnemonic} targets 0x{instr.imm:08x}, "
                        f"which is not a valid block entry"))
        return findings

    def verify(self) -> List[Finding]:
        """Run all checks; an empty list means the image is sound."""
        findings: List[Finding] = []
        if self._entry_kind(self.image.entry) is None:
            findings.append(Finding(
                "entry", self.image.entry,
                "the reset entry is not a valid block entry"))
        for record in self.image.blocks:
            findings.extend(self._verify_block_edges(record))
            findings.extend(self._verify_block_payload(record))
        return findings


def verify_image(image: SofiaImage, keys: DeviceKeys) -> List[Finding]:
    """Convenience wrapper around :class:`ImageVerifier`."""
    return ImageVerifier(image, keys).verify()
