"""SOFIA binary transformation toolchain."""

from .blocks import Block, BlockKind, EntryAssignment
from .config import DEFAULT_CONFIG, TransformConfig
from .encrypt import (block_plain_words, chain_prev_pcs, interleave_mac,
                      reseal_block, seal, seal_block, unseal_block,
                      word_prev_pcs)
from .image import BlockRecord, SofiaImage
from .layout import Layout, LayoutStats, build_layout
from .profile import DEFAULT_PROFILE, ProtectionProfile, profile_grid
from .transformer import (canonicalize_returns, prepare,
                          rewrite_indirect_returns, transform)
from .renonce import reencrypt, rotate_nonce
from .verify import Finding, ImageVerifier, verify_image

__all__ = [
    "Block", "BlockKind", "EntryAssignment",
    "TransformConfig", "DEFAULT_CONFIG",
    "ProtectionProfile", "DEFAULT_PROFILE", "profile_grid",
    "Layout", "LayoutStats", "build_layout",
    "SofiaImage", "BlockRecord",
    "seal", "block_plain_words", "word_prev_pcs",
    "interleave_mac", "chain_prev_pcs", "reseal_block",
    "seal_block", "unseal_block",
    "transform", "prepare", "canonicalize_returns",
    "rewrite_indirect_returns",
    "verify_image", "ImageVerifier", "Finding",
    "reencrypt", "rotate_nonce",
]
