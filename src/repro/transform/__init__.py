"""SOFIA binary transformation toolchain."""

from .blocks import Block, BlockKind, EntryAssignment
from .config import DEFAULT_CONFIG, TransformConfig
from .encrypt import (block_plain_words, chain_prev_pcs, interleave_mac,
                      reseal_block, seal, word_prev_pcs)
from .image import BlockRecord, SofiaImage
from .layout import Layout, LayoutStats, build_layout
from .transformer import (canonicalize_returns, prepare,
                          rewrite_indirect_returns, transform)
from .renonce import reencrypt
from .verify import Finding, ImageVerifier, verify_image

__all__ = [
    "Block", "BlockKind", "EntryAssignment",
    "TransformConfig", "DEFAULT_CONFIG",
    "Layout", "LayoutStats", "build_layout",
    "SofiaImage", "BlockRecord",
    "seal", "block_plain_words", "word_prev_pcs",
    "interleave_mac", "chain_prev_pcs", "reseal_block",
    "transform", "prepare", "canonicalize_returns",
    "rewrite_indirect_returns",
    "verify_image", "ImageVerifier", "Finding",
    "reencrypt",
]
