"""SOFIA binary image format.

A :class:`SofiaImage` is what gets flashed onto the device: encrypted code
words, the per-binary nonce ω (stored at a fixed location in the binary,
paper §II-A), the entry address the hardware fetches after reset, and the
(unprotected) data section.  ``blocks`` carries per-block metadata used by
the simulator's diagnostics and by the test-suite — a real device only sees
``words``/``nonce``/``entry``/``data``.

The byte serialization is a simple tagged container::

    magic 'SOFI' | version u16 | nonce u16 | entry u32 | code_base u32 |
    block_words u16 | profile u16 | data_base u32 | n_code_words u32 |
    n_data_bytes u32 | code words (u32 BE each) | data bytes

The ``profile`` field (formerly reserved, and still 0 for the paper's
design point) packs the image's :class:`ProtectionProfile` — cipher,
seal width, renonce policy, store scheduling — via
``ProtectionProfile.to_code``; ``block_words`` carries the remaining
profile axis.  Old images (reserved = 0) therefore deserialize to the
default profile unchanged.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence

from ..errors import ImageError
from .layout import LayoutStats
from .profile import ProtectionProfile

MAGIC = b"SOFI"
VERSION = 1
_HEADER = struct.Struct(">4sHHIIHHIII")


@dataclass(frozen=True)
class BlockRecord:
    """Debug/evaluation metadata for one block of the image."""

    base: int
    kind: str                      # "exec" | "mux"
    capacity: int
    labels: tuple = ()
    leader: Optional[int] = None
    is_forwarder: bool = False
    #: plaintext payload words (never present on a production image)
    plain_payload: tuple = ()
    entry_prev_pcs: tuple = ()


@dataclass
class SofiaImage:
    """A transformed, MACed and encrypted SOFIA binary."""

    words: List[int]
    code_base: int
    nonce: int
    entry: int
    data: bytes
    data_base: int
    block_words: int
    blocks: List[BlockRecord] = field(default_factory=list)
    stats: Optional[LayoutStats] = None
    symbols: Dict[str, int] = field(default_factory=dict)
    #: the design point this image was sealed under; every consumer
    #: (simulator, verifier, renonce tool, attack enumerator) re-derives
    #: its checks from this, never from module constants.  ``None`` at
    #: construction means the default profile at this block geometry.
    profile: Optional[ProtectionProfile] = None

    def __post_init__(self) -> None:
        if self.profile is None:
            self.profile = ProtectionProfile(block_words=self.block_words)
        elif self.profile.block_words != self.block_words:
            raise ImageError(
                f"profile geometry ({self.profile.block_words} words) "
                f"disagrees with the image ({self.block_words} words)")

    @property
    def code_size_bytes(self) -> int:
        """Text-section size — the paper's code-size overhead metric."""
        return 4 * len(self.words)

    @property
    def block_bytes(self) -> int:
        return 4 * self.block_words

    @property
    def num_blocks(self) -> int:
        return len(self.words) // self.block_words

    def word_at(self, address: int) -> int:
        index = (address - self.code_base) // 4
        if not 0 <= index < len(self.words):
            raise ImageError(f"address 0x{address:08x} outside the image")
        return self.words[index]

    def block_base_of(self, address: int) -> int:
        """Base address of the block containing ``address``."""
        offset = (address - self.code_base) % self.block_bytes
        return address - offset

    # -- mutation hooks (the attack-synthesis surface) --------------------

    def with_words(self, words: Sequence[int]) -> "SofiaImage":
        """A copy of this image with its code section replaced.

        The mutation surface of :mod:`repro.attacksynth`: an attacker
        controls program memory word-for-word but nothing else (nonce,
        entry and layout metadata stay, exactly like reflashing a device).
        """
        if len(words) != len(self.words):
            raise ImageError(
                f"mutated code must keep {len(self.words)} words, "
                f"got {len(words)}")
        return replace(self, words=list(words))

    def block_words_at(self, base: int) -> List[int]:
        """The ciphertext words of the block based at ``base``."""
        if (base - self.code_base) % self.block_bytes:
            raise ImageError(f"0x{base:08x} is not a block base")
        index = (base - self.code_base) // 4
        if not 0 <= index < len(self.words):
            raise ImageError(f"block 0x{base:08x} outside the image")
        return self.words[index:index + self.block_words]

    def replace_block_words(self, base: int,
                            words: Sequence[int]) -> "SofiaImage":
        """A copy with the block at ``base`` overwritten by ``words``."""
        self.block_words_at(base)  # validates the base
        if len(words) != self.block_words:
            raise ImageError(
                f"a block is {self.block_words} words, got {len(words)}")
        index = (base - self.code_base) // 4
        mutated = list(self.words)
        mutated[index:index + self.block_words] = [w & 0xFFFFFFFF
                                                   for w in words]
        return self.with_words(mutated)

    def to_bytes(self) -> bytes:
        """Serialize (without debug metadata)."""
        header = _HEADER.pack(MAGIC, VERSION, self.nonce, self.entry,
                              self.code_base, self.block_words,
                              self.profile.to_code(),
                              self.data_base, len(self.words),
                              len(self.data))
        body = b"".join(w.to_bytes(4, "big") for w in self.words)
        return header + body + self.data

    @classmethod
    def from_bytes(cls, blob: bytes) -> "SofiaImage":
        """Deserialize an image produced by :meth:`to_bytes`."""
        if len(blob) < _HEADER.size:
            raise ImageError("image too short for header")
        (magic, version, nonce, entry, code_base, block_words, profile_code,
         data_base, n_words, n_data) = _HEADER.unpack_from(blob)
        if magic != MAGIC:
            raise ImageError(f"bad magic {magic!r}")
        if version != VERSION:
            raise ImageError(f"unsupported image version {version}")
        try:
            profile = ProtectionProfile.from_code(profile_code, block_words)
        except ValueError as exc:
            raise ImageError(f"bad profile field: {exc}") from None
        offset = _HEADER.size
        need = offset + 4 * n_words + n_data
        if len(blob) < need:
            raise ImageError("image truncated")
        words = [int.from_bytes(blob[offset + 4 * i: offset + 4 * i + 4], "big")
                 for i in range(n_words)]
        data = blob[offset + 4 * n_words: need]
        return cls(words=words, code_base=code_base, nonce=nonce,
                   entry=entry, data=data, data_base=data_base,
                   block_words=block_words, profile=profile)
