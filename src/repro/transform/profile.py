"""Protection profiles: the SOFIA design point as a first-class value.

The paper fixes one design point — RECTANGLE-80, a 64-bit CBC-MAC packed
as 2 (execution) / 3 (multiplexor) seal words, 8-word blocks, and §IV
argues security and overhead *at that point*.  A
:class:`ProtectionProfile` lifts every axis of that choice into one
frozen, hashable value:

* **cipher** — any entry of :mod:`repro.crypto.registry` (RECTANGLE-80,
  the paper's choice, or PRESENT-80 for the cipher-agility study);
* **mac_words** — seal width in 32-bit words: 1 (truncated 32-bit), 2
  (the paper's 64-bit MAC) or 3 (widened 96-bit seal);
* **renonce** — the nonce-rotation policy of the deployment:
  ``"sequential"`` providers rotate ω on every update (the paper's
  unique-ω requirement, enabling the cross-epoch replay surface), while
  ``"fixed"`` deployments never re-encrypt (no renonce tooling, no
  stale-nonce attack surface — but also no update path);
* **schedule_stores** — the E12 store-scheduling toolchain optimization;
* **block_words** — block geometry (the E6 ablation axis).

The default profile is *exactly* the paper's design point, and images
built with it are bit-identical to pre-profile builds: the profile
serializes into the image header's previously-reserved u16, packed so
the default encodes to 0 (see :meth:`to_code`).

Profiles are the unit of the E17 design-space sweep (:mod:`repro.dse`):
each grid point rebuilds the stack — keys bind to the profile's cipher
via :meth:`repro.crypto.keys.DeviceKeys.for_profile`, the transformer
lays out and seals per the profile's geometry and MAC width, and the
simulator re-derives every check from the image's embedded profile.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterable, Tuple

from ..crypto.registry import (DEFAULT_CIPHER, cipher_code,
                               cipher_from_code, get_cipher)
from .config import TransformConfig

#: renonce policies, in serialization-code order ("sequential" is the
#: paper-faithful default: ω must be unique across program versions)
RENONCE_POLICIES: Tuple[str, ...] = ("sequential", "fixed")

#: supported seal widths in 32-bit words, and their header codes; code 0
#: is the paper's 64-bit MAC so a zeroed header decodes to the default
_MAC_CODE = {2: 0, 1: 1, 3: 2}
_MAC_FROM_CODE = {code: words for words, code in _MAC_CODE.items()}

#: upper bound on the block geometry: the image header stores the block
#: size in one byte of words, and a block must fit an I-cache line
#: multiple — anything past this is an absurd design point, not a sweep
MAX_BLOCK_WORDS = 256


@dataclass(frozen=True)
class ProtectionProfile:
    """One point of the SOFIA design space."""

    cipher: str = DEFAULT_CIPHER
    mac_words: int = 2
    renonce: str = "sequential"
    schedule_stores: bool = False
    block_words: int = 8

    def __post_init__(self) -> None:
        get_cipher(self.cipher)  # validates the name
        if self.mac_words not in _MAC_CODE:
            raise ValueError(
                f"mac_words must be one of {sorted(_MAC_CODE)} "
                f"(32/64/96-bit seals), got {self.mac_words}")
        if self.renonce not in RENONCE_POLICIES:
            raise ValueError(
                f"renonce policy must be one of {RENONCE_POLICIES}, "
                f"got {self.renonce!r}")
        if not 0 < self.block_words <= MAX_BLOCK_WORDS:
            raise ValueError(
                f"block_words must be in 1..{MAX_BLOCK_WORDS}, "
                f"got {self.block_words}")
        # delegates the geometry check (block_words vs seal width)
        self.to_config()

    # -- derived views ---------------------------------------------------

    @property
    def cipher_factory(self) -> type:
        """The registered cipher class (for DeviceKeys.for_profile)."""
        return get_cipher(self.cipher)

    @property
    def mac_bits(self) -> int:
        """Seal width in bits — the §IV-A forgery-bound parameter."""
        return 32 * self.mac_words

    @property
    def exec_mac_words(self) -> int:
        return self.mac_words

    @property
    def mux_mac_words(self) -> int:
        return self.mac_words + 1

    def mac_count(self, kind: str) -> int:
        """Seal words at the head of a ``kind`` ("exec"/"mux") block."""
        return self.exec_mac_words if kind == "exec" else self.mux_mac_words

    @property
    def supports_renonce(self) -> bool:
        """Does this deployment ever re-encrypt under a fresh nonce?"""
        return self.renonce != "fixed"

    def next_nonce(self, nonce: int) -> int:
        """The successor nonce under this profile's renonce policy."""
        if not self.supports_renonce:
            raise ValueError(
                "a fixed-nonce deployment never rotates its nonce")
        return nonce % 0xFFFF + 1

    def to_config(self, **overrides) -> TransformConfig:
        """The :class:`TransformConfig` realizing this profile's layout."""
        return TransformConfig(block_words=self.block_words,
                               schedule_stores=self.schedule_stores,
                               mac_words=self.mac_words, **overrides)

    @classmethod
    def from_config(cls, config: TransformConfig,
                    cipher: str = DEFAULT_CIPHER,
                    renonce: str = "sequential") -> "ProtectionProfile":
        """Lift a legacy geometry-only config into a full profile."""
        return cls(cipher=cipher, mac_words=config.mac_words,
                   renonce=renonce,
                   schedule_stores=config.schedule_stores,
                   block_words=config.block_words)

    def with_block_words(self, block_words: int) -> "ProtectionProfile":
        """This profile at a different block geometry."""
        if block_words == self.block_words:
            return self
        return replace(self, block_words=block_words)

    @property
    def label(self) -> str:
        """Compact human identifier, e.g. ``rectangle-80/mac64/sequential``."""
        parts = [self.cipher, f"mac{self.mac_bits}", self.renonce]
        if self.block_words != 8:
            parts.append(f"bw{self.block_words}")
        if self.schedule_stores:
            parts.append("sched")
        return "/".join(parts)

    # -- header (de)serialization ----------------------------------------
    #
    # The image header's u16 formerly-reserved field:
    #
    #   bits 0-2  cipher code (crypto.registry.CIPHER_CODES)
    #   bits 3-4  seal-width code (_MAC_CODE)
    #   bit  5    renonce policy (0 sequential, 1 fixed)
    #   bit  6    schedule_stores
    #
    # The default profile packs to 0, which is what every pre-profile
    # image carries — old images deserialize to the paper's design point.
    # block_words travels in its own header field.

    def to_code(self) -> int:
        """Pack this profile (minus block_words) into the header u16."""
        return (cipher_code(self.cipher)
                | (_MAC_CODE[self.mac_words] << 3)
                | (RENONCE_POLICIES.index(self.renonce) << 5)
                | (int(self.schedule_stores) << 6))

    @classmethod
    def from_code(cls, code: int, block_words: int) -> "ProtectionProfile":
        """Unpack a header u16 (inverse of :meth:`to_code`)."""
        if code >> 7:
            raise ValueError(f"unknown profile code 0x{code:04x}")
        mac_code = (code >> 3) & 0x3
        if mac_code not in _MAC_FROM_CODE:
            raise ValueError(f"unknown seal-width code {mac_code}")
        return cls(cipher=cipher_from_code(code & 0x7),
                   mac_words=_MAC_FROM_CODE[mac_code],
                   renonce=RENONCE_POLICIES[(code >> 5) & 0x1],
                   schedule_stores=bool((code >> 6) & 0x1),
                   block_words=block_words)


#: the paper's design point
DEFAULT_PROFILE = ProtectionProfile()


def profile_grid(ciphers: Iterable[str] = ("rectangle-80", "present-80"),
                 mac_bits: Iterable[int] = (32, 64, 96),
                 renonce: Iterable[str] = RENONCE_POLICIES,
                 block_words: Iterable[int] = (8,),
                 schedule_stores: Iterable[bool] = (False,)
                 ) -> "list[ProtectionProfile]":
    """The cartesian profile grid, in deterministic axis order.

    The default axes are the E17 sweep: 2 ciphers x {32, 64, 96}-bit
    seals x both renonce policies = 12 design points, the paper's point
    among them.
    """
    grid = []
    for cipher in ciphers:
        for bits in mac_bits:
            if bits <= 0 or bits % 32:
                raise ValueError(f"mac_bits must be a positive multiple "
                                 f"of 32, got {bits}")
            for policy in renonce:
                for bw in block_words:
                    for sched in schedule_stores:
                        grid.append(ProtectionProfile(
                            cipher=cipher, mac_words=bits // 32,
                            renonce=policy, schedule_stores=sched,
                            block_words=bw))
    return grid
