"""Block and edge model for the SOFIA layout engine.

Edges are identified by *tokens* describing where control comes from:

``("reset",)``            processor reset (enters the program entry)
``("cti", i)``            direct CTI at canonical instruction index ``i``
                          (branch taken, jmp, call, or a rewritten ret)
``("ret", i)``            a ``jr ra`` return at index ``i`` — constrained to
                          enter its target at block offset 0 (the hardware
                          return address is the next block's base)
``("fall", L)``           physical fall-through into leader ``L`` — likewise
                          constrained to offset 0
``("ind", i, L)``         indirect CTI at index ``i`` reaching leader ``L``
``("tree", f)``           the jmp of forwarder block ``f`` (mux-tree node,
                          fall-through thunk, or return landing pad)

An *edge key* pairs a token with the leader it enters: ``(token, leader)``.
Entry assignments map edge keys to a concrete (block, entry slot); the slot
determines both the branch-target address and the MAC word used as the
entry (paper §II-E): execution blocks are entered by targeting ``base+0``;
multiplexor path 1 targets ``base+4`` (fetch starts at ``M1e1``), path 2
targets ``base+8`` (fetch starts at ``M1e2``).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..isa.instructions import Instruction

Token = Tuple
EdgeKey = Tuple[Token, int]

#: Tokens that must enter their target block at offset 0.
OFFSET0_KINDS = ("fall", "ret")


def token_sort_key(token: Token):
    """Deterministic ordering of edge tokens (reset first)."""
    rank = {"reset": 0, "fall": 1, "ret": 2, "cti": 3, "ind": 4, "tree": 5}
    return (rank.get(token[0], 9),) + tuple(
        x if isinstance(x, int) else str(x) for x in token[1:])


def is_offset0(token: Token) -> bool:
    """True when this edge arrives at the target's base word (offset 0)."""
    return token[0] in OFFSET0_KINDS


class BlockKind(enum.Enum):
    """The two SOFIA block types."""

    EXEC = "exec"
    MUX = "mux"

    @property
    def mac_words(self) -> int:
        """Seal words at the paper's design point (64-bit MAC).

        Blocks built under a non-default
        :class:`~repro.transform.profile.ProtectionProfile` carry their
        actual count in :attr:`Block.mac_count`; this property is the
        default for blocks constructed without one.
        """
        return 2 if self is BlockKind.EXEC else 3


@dataclass
class EntryAssignment:
    """One entry point of a block, bound to an inbound edge."""

    edge: EdgeKey
    slot: int  # 0 for exec; 0 (path 1) or 1 (path 2) for mux
    prev_pc: int = -1  # filled once bases are assigned


@dataclass(eq=False)
class Block:
    """One 8-word SOFIA block under construction.

    ``eq=False``: blocks are identity objects — two distinct all-nop
    forwarders must never compare equal.

    ``payload`` always ends up exactly ``capacity`` long (nop padded).
    ``leader`` is the canonical instruction index that starts the block, or
    ``None`` for continuation/forwarder blocks.  Forwarder blocks carry
    ``out_edge`` — the edge key their trailing jmp implements.
    """

    kind: BlockKind
    capacity: int
    leader: Optional[int] = None
    labels: List[str] = field(default_factory=list)
    payload: List[Instruction] = field(default_factory=list)
    source_indices: List[Optional[int]] = field(default_factory=list)
    entries: List[EntryAssignment] = field(default_factory=list)
    falls_through: bool = False
    is_forwarder: bool = False
    out_edge: Optional[EdgeKey] = None
    seq: int = -1
    base: int = -1
    #: seal words at the head of this block; -1 means the paper default
    #: for the kind (2 exec / 3 mux) — profile-driven layouts set it
    mac_count: int = -1

    @property
    def mac_words(self) -> int:
        """Seal words at the head of this block."""
        return self.kind.mac_words if self.mac_count < 0 else self.mac_count

    def entry_address(self, slot: int) -> int:
        """Branch-target address selecting entry ``slot`` (paper §II-E)."""
        if self.base < 0:
            raise ValueError("block has no base address yet")
        if self.kind is BlockKind.EXEC:
            if slot != 0:
                raise ValueError("execution blocks have a single entry")
            return self.base
        if slot == 0:
            return self.base + 4   # branch to cM1e2 -> path 1
        if slot == 1:
            return self.base + 8   # branch to cM2 -> path 2
        raise ValueError("multiplexor blocks have two entries")

    def entry_word_index(self, slot: int) -> int:
        """Word index of the M1 copy consumed by entry ``slot``."""
        if self.kind is BlockKind.EXEC:
            return 0
        return slot  # M1e1 at word 0, M1e2 at word 1

    def payload_word_index(self, payload_slot: int) -> int:
        """Word index of payload slot ``payload_slot`` within the block."""
        return self.mac_words + payload_slot

    def payload_address(self, payload_slot: int) -> int:
        return self.base + 4 * self.payload_word_index(payload_slot)

    @property
    def last_word_address(self) -> int:
        """Address of the final word — the prevPC of every outbound edge."""
        return self.base + 4 * (self.mac_words + self.capacity - 1)
