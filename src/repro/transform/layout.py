"""Block layout engine: rewrite a program into SOFIA blocks.

This is the compile-time half of the paper's architecture (§III,
"the assembly instructions are transformed to conform to the format
required by the CFI and SI mechanisms"):

1. **Chunking** — the canonical instruction stream is split into blocks.
   Every CFG leader (branch/call target, return point, entry) starts a
   block; control-transfer instructions are nop-padded into the final
   payload slot (control may only exit a block at its last word); stores
   are nop-deferred out of the slots that would reach the MA stage before
   verification (paper Fig. 6).
2. **Offset-0 forwarders** — fall-through edges and ``jr ra`` returns can
   only enter a block at its base word.  When their target needs a
   multiplexor entry, a forwarder execution block (a "thunk"/"landing
   pad") is spliced immediately before the target so the constrained edge
   lands at offset 0 and a jmp selects the proper multiplexor entry.
3. **Multiplexor trees** — every leader with two predecessors becomes a
   multiplexor block; more than two predecessors are funnelled through a
   binary tree of forwarder multiplexor blocks (paper Fig. 9).
4. **Placement & resolution** — blocks receive sequential 8-word-aligned
   base addresses (main sequence first, tree nodes appended); every edge
   is assigned a concrete entry address (``base`` for execution blocks,
   ``base+4``/``base+8`` for multiplexor paths 1/2) and all CTI operands,
   forwarder jumps and indirect-target symbols are resolved to those
   addresses.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from ..cfg.builder import is_return
from ..cfg.graph import ControlFlowGraph
from ..errors import TransformError
from ..isa.instructions import Instruction, make_nop
from ..isa.program import AsmProgram, resolve_data_references
from .blocks import (Block, BlockKind, EdgeKey, EntryAssignment, Token,
                     is_offset0, token_sort_key)
from .config import TransformConfig


@dataclass(frozen=True)
class LayoutStats:
    """Size accounting for the transformed binary."""

    source_instructions: int
    payload_instructions: int
    padding_nops: int
    exec_blocks: int
    mux_blocks: int
    tree_nodes: int
    offset0_forwarders: int
    code_bytes: int
    original_code_bytes: int

    @property
    def total_blocks(self) -> int:
        return self.exec_blocks + self.mux_blocks

    @property
    def expansion_ratio(self) -> float:
        if not self.original_code_bytes:
            return 0.0
        return self.code_bytes / self.original_code_bytes


@dataclass
class Layout:
    """The fully placed and resolved block program."""

    blocks: List[Block]
    assignments: Dict[EdgeKey, Tuple[Block, int]]
    block_of_instr: Dict[int, Tuple[Block, int]]
    leader_blocks: Dict[int, Block]
    overrides: Dict[str, int]
    entry_address: int
    config: TransformConfig
    stats: LayoutStats

    def entry_prev_pcs(self, block: Block) -> List[int]:
        """prevPC value(s) sealing this block's entry word(s).

        Unreachable blocks (no inbound edges, and no physical predecessor
        that can fall through) are sealed with the sentinel prevPC so that
        *no* runtime edge decrypts them — sealing them with the physical
        predecessor's address would hand an attacker a valid edge into
        dead code (e.g. dormant diagnostics routines).
        """
        if block.entries:
            return [entry.prev_pc for entry in block.entries]
        if block.leader is None and block.seq > 0:
            previous = self.blocks[block.seq - 1]
            if previous.falls_through:
                # continuation block entered by physical fall-through
                return [previous.last_word_address]
        return [self.config.unreachable_prev_pc]


def compute_leaders(cfg: ControlFlowGraph) -> set:
    """Instruction indices that may be entered from another block."""
    leaders = {cfg.entry}
    for edge in cfg.edges:
        if edge.kind != "fall":
            leaders.add(edge.dst)
    return leaders


def compute_pred_tokens(
    program: AsmProgram, cfg: ControlFlowGraph, leaders: set
) -> Dict[int, List[Token]]:
    """Inbound edge tokens per leader, deduplicated and ordered."""
    pmap = cfg.predecessor_map()
    preds: Dict[int, List[Token]] = {}
    for leader in leaders:
        tokens = set()
        for edge in pmap.get(leader, []):
            if edge.kind == "fall":
                tokens.add(("fall", leader))
            elif edge.kind == "reset":
                tokens.add(("reset",))
            elif edge.kind == "icall":
                tokens.add(("ind", edge.src, leader))
            elif edge.kind == "return":
                instr = program.instructions[edge.src]
                if is_return(instr):
                    tokens.add(("ret", edge.src))
                else:  # ret rewritten to a direct jmp by the transformer
                    tokens.add(("cti", edge.src))
            else:
                tokens.add(("cti", edge.src))
        preds[leader] = sorted(tokens, key=token_sort_key)
    return preds


def _can_hoist_over_store(candidate: Instruction,
                          store: Instruction) -> bool:
    """May ``candidate`` (textually after ``store``) execute before it?

    Conservative dependence test for the store-scheduling optimization:
    the candidate must be a plain ALU instruction (no memory access, no
    control transfer, no halt) and must not write a register the store
    reads (its base ``rs1`` or its data ``rs2``).  Stores write no
    registers, so the reverse direction is always safe.
    """
    spec = candidate.spec
    if spec.is_cti or spec.is_halt or spec.is_load or spec.is_store:
        return False
    reads = {store.rs1, store.rs2}
    return candidate.rd not in reads


class _Chunker:
    """Splits the instruction stream into blocks (step 1)."""

    def __init__(self, program: AsmProgram, leaders: set,
                 preds: Dict[int, List[Token]], config: TransformConfig):
        self.program = program
        self.leaders = leaders
        self.preds = preds
        self.config = config
        self.blocks: List[Block] = []
        self.block_of_instr: Dict[int, Tuple[Block, int]] = {}
        self.leader_blocks: Dict[int, Block] = {}
        self._labels_by_index = program.labels_by_index()
        self._current: Optional[Block] = None
        self._consumed: set = set()

    def _capacity(self, kind: BlockKind) -> int:
        if kind is BlockKind.EXEC:
            return self.config.exec_capacity
        return self.config.mux_capacity

    def _open(self, start_index: int, leader: Optional[int]) -> None:
        labels = self._labels_by_index.get(start_index, [])
        if leader is not None:
            kind = (BlockKind.MUX if len(self.preds.get(leader, ())) > 1
                    else BlockKind.EXEC)
            block = Block(kind=kind, capacity=self._capacity(kind),
                          leader=leader, labels=labels,
                          mac_count=self.config.mac_count(kind.value))
            self.leader_blocks[leader] = block
        else:
            block = Block(kind=BlockKind.EXEC,
                          capacity=self.config.exec_capacity,
                          labels=labels,
                          mac_count=self.config.exec_mac_words)
        self._current = block

    def _pad(self) -> None:
        self._current.payload.append(make_nop())
        self._current.source_indices.append(None)

    def _close(self, falls_through: bool) -> None:
        while len(self._current.payload) < self._current.capacity:
            self._pad()
        self._current.falls_through = falls_through
        self.blocks.append(self._current)
        self._current = None

    def _place(self, index: int, instr: Instruction) -> None:
        current = self._current
        spec = instr.spec
        if spec.is_cti:
            while len(current.payload) < current.capacity - 1:
                self._pad()
            current.payload.append(instr)
            current.source_indices.append(index)
            self.block_of_instr[index] = (current, current.capacity - 1)
            self._close(falls_through=spec.is_branch)
            return
        if spec.is_halt:
            slot = len(current.payload)
            current.payload.append(instr)
            current.source_indices.append(index)
            self.block_of_instr[index] = (current, slot)
            self._close(falls_through=False)
            return
        if spec.is_store:
            while (len(self._current.payload) in
                   self.config.store_forbidden_slots(self._current.capacity)):
                if (self.config.schedule_stores
                        and self._hoist_for_store(index, instr)):
                    continue
                self._pad()
                if len(self._current.payload) >= self._current.capacity:
                    self._close(falls_through=True)
                    self._open(index, None)
        current = self._current
        slot = len(current.payload)
        current.payload.append(instr)
        current.source_indices.append(index)
        self.block_of_instr[index] = (current, slot)
        if len(current.payload) >= current.capacity:
            self._close(falls_through=True)

    def _hoist_for_store(self, store_index: int,
                         store: Instruction) -> bool:
        """Place the next independent instruction ahead of the store.

        Returns True when an instruction was hoisted (the store's slot
        advanced by one); False when no safe candidate exists and the
        caller must fall back to nop padding.
        """
        instructions = self.program.instructions
        candidate_index = store_index + 1
        while candidate_index in self._consumed:
            candidate_index += 1
        if candidate_index >= len(instructions):
            return False
        if candidate_index in self.leaders:
            return False  # never move code across a block entry
        candidate = instructions[candidate_index]
        if not _can_hoist_over_store(candidate, store):
            return False
        self._consumed.add(candidate_index)
        self._place(candidate_index, candidate)
        return True

    def run(self) -> None:
        for index, instr in enumerate(self.program.instructions):
            if index in self._consumed:
                continue  # already placed (hoisted ahead of a store)
            if index in self.leaders and self._current is not None:
                self._close(falls_through=True)
            if self._current is None:
                self._open(index, index if index in self.leaders else None)
            self._place(index, instr)
        if self._current is not None:
            raise TransformError(
                "program does not end with halt, jmp or ret")


def build_layout(program: AsmProgram, cfg: ControlFlowGraph,
                 config: TransformConfig,
                 overrides_hint: Optional[Dict[str, int]] = None) -> Layout:
    """Run the full layout pipeline (chunk, forwarders, trees, resolve)."""
    leaders = compute_leaders(cfg)
    preds = compute_pred_tokens(program, cfg, leaders)

    chunker = _Chunker(program, leaders, preds, config)
    chunker.run()
    blocks = chunker.blocks
    block_of_instr = chunker.block_of_instr
    leader_blocks = chunker.leader_blocks

    assignments: Dict[EdgeKey, Tuple[Block, int]] = {}
    forwarder_blocks: Dict[Token, Block] = {}
    next_fid = [0]

    def new_forwarder(kind: BlockKind, leader: int) -> Tuple[Block, Token]:
        fid = next_fid[0]
        next_fid[0] += 1
        capacity = (config.exec_capacity if kind is BlockKind.EXEC
                    else config.mux_capacity)
        payload = [make_nop()] * (capacity - 1) + [Instruction("jmp")]
        block = Block(kind=kind, capacity=capacity, payload=payload,
                      source_indices=[None] * capacity, is_forwarder=True,
                      mac_count=config.mac_count(kind.value))
        token = ("tree", fid)
        block.out_edge = (token, leader)
        forwarder_blocks[token] = block
        return block, token

    # --- step 2: offset-0 forwarders (fall-through thunks, landing pads) ---
    offset0_count = 0
    inserts: Dict[int, Block] = {}  # position in `blocks` -> forwarder
    for leader in sorted(preds):
        tokens = preds[leader]
        if len(tokens) <= 1:
            continue
        constrained = [t for t in tokens if is_offset0(t)]
        if not constrained:
            continue
        if len(constrained) > 1:
            raise TransformError(
                f"leader {leader} has {len(constrained)} offset-0 "
                f"predecessors; the layout invariant allows at most one")
        token = constrained[0]
        forwarder, new_token = new_forwarder(BlockKind.EXEC, leader)
        forwarder.entries = [EntryAssignment(edge=(token, leader), slot=0)]
        assignments[(token, leader)] = (forwarder, 0)
        position = blocks.index(leader_blocks[leader])
        if position in inserts:
            raise TransformError(
                "two forwarders requested at the same position")
        inserts[position] = forwarder
        preds[leader] = [new_token if t == token else t for t in tokens]
        offset0_count += 1
    if inserts:
        rebuilt: List[Block] = []
        for position, block in enumerate(blocks):
            if position in inserts:
                rebuilt.append(inserts[position])
            rebuilt.append(block)
        blocks = rebuilt

    # --- step 3: entry assignment and multiplexor trees ---
    tree_nodes: List[Block] = []
    for leader in sorted(preds):
        tokens = preds[leader]
        block = leader_blocks[leader]
        if not tokens:
            block.entries = []
            continue
        if len(tokens) == 1:
            assert block.kind is BlockKind.EXEC
            assignments[(tokens[0], leader)] = (block, 0)
            block.entries = [EntryAssignment((tokens[0], leader), 0)]
            continue
        work = list(tokens)
        while len(work) > 2:
            first, second = work[0], work[1]
            node, node_token = new_forwarder(BlockKind.MUX, leader)
            assignments[(first, leader)] = (node, 0)
            assignments[(second, leader)] = (node, 1)
            node.entries = [EntryAssignment((first, leader), 0),
                            EntryAssignment((second, leader), 1)]
            tree_nodes.append(node)
            work = work[2:] + [node_token]
        assert block.kind is BlockKind.MUX
        assignments[(work[0], leader)] = (block, 0)
        assignments[(work[1], leader)] = (block, 1)
        block.entries = [EntryAssignment((work[0], leader), 0),
                         EntryAssignment((work[1], leader), 1)]

    # --- step 4a: placement ---
    blocks = blocks + tree_nodes
    for seq, block in enumerate(blocks):
        block.seq = seq
        block.base = config.code_base + config.block_bytes * seq

    # --- step 4b: prevPC of every entry ---
    def token_prev_pc(token: Token, leader: int) -> int:
        kind = token[0]
        if kind == "reset":
            return config.reset_prev_pc
        if kind in ("cti", "ret", "ind"):
            return block_of_instr[token[1]][0].last_word_address
        if kind == "tree":
            return forwarder_blocks[token].last_word_address
        if kind == "fall":
            target_block = assignments[(token, leader)][0]
            if target_block.seq == 0:
                raise TransformError("fall-through into the first block")
            return blocks[target_block.seq - 1].last_word_address
        raise TransformError(f"unknown edge token {token!r}")

    for block in blocks:
        for entry in block.entries:
            entry.prev_pc = token_prev_pc(entry.edge[0], entry.edge[1])

    # --- step 4c: indirect-target overrides ---
    overrides: Dict[str, int] = dict(overrides_hint or {})
    for (token, leader), (target_block, slot) in assignments.items():
        if token[0] != "ind":
            continue
        site_index = token[1]
        site = program.instructions[site_index]
        address = target_block.entry_address(slot)
        for symbol in site.targets:
            if program.labels.get(symbol) != leader:
                continue
            existing = overrides.get(symbol)
            if existing is not None and existing != address:
                raise TransformError(
                    f"indirect target {symbol!r} is shared by multiple "
                    f"call sites; SOFIA requires one entry per caller")
            overrides[symbol] = address

    # --- step 4d: operand resolution ---
    data_addresses = resolve_data_references(program)
    for block in blocks:
        resolved: List[Instruction] = []
        for slot, instr in enumerate(block.payload):
            if block.is_forwarder and slot == block.capacity - 1:
                target_block, tslot = assignments[block.out_edge]
                resolved.append(Instruction(
                    "jmp", imm=target_block.entry_address(tslot)))
                continue
            if instr.symbol is None:
                resolved.append(instr)
                continue
            symbol = instr.symbol
            if instr.reloc:
                if symbol in data_addresses:
                    address = data_addresses[symbol]
                elif symbol in overrides:
                    address = overrides[symbol]
                else:
                    raise TransformError(
                        f"taking the address of code label {symbol!r} is "
                        f"only supported for .targets-annotated symbols "
                        f"(line {instr.line})")
                value = ((address >> 16) & 0xFFFF if instr.reloc == "hi"
                         else address & 0xFFFF)
                resolved.append(replace(instr, imm=value, symbol=None,
                                        reloc=None))
                continue
            leader = program.labels.get(symbol)
            if leader is None:
                raise TransformError(
                    f"undefined code label {symbol!r} (line {instr.line})")
            source_index = block.source_indices[slot]
            key = (("cti", source_index), leader)
            if key not in assignments:
                raise TransformError(
                    f"no entry assignment for edge {key!r} "
                    f"({instr.mnemonic} at line {instr.line})")
            target_block, tslot = assignments[key]
            resolved.append(replace(
                instr, imm=target_block.entry_address(tslot), symbol=None))
        block.payload = resolved

    entry_leader = cfg.entry
    entry_key = (("reset",), entry_leader)
    if entry_key not in assignments:
        raise TransformError("the reset edge was never assigned an entry")
    entry_block, entry_slot = assignments[entry_key]
    entry_address = entry_block.entry_address(entry_slot)

    stats = _compute_stats(program, blocks, tree_nodes, offset0_count, config)
    return Layout(blocks=blocks, assignments=assignments,
                  block_of_instr=block_of_instr,
                  leader_blocks=leader_blocks, overrides=overrides,
                  entry_address=entry_address, config=config, stats=stats)


def _compute_stats(program: AsmProgram, blocks: List[Block],
                   tree_nodes: List[Block], offset0_count: int,
                   config: TransformConfig) -> LayoutStats:
    payload = sum(len(b.payload) for b in blocks)
    source = len(program.instructions)
    return LayoutStats(
        source_instructions=source,
        payload_instructions=payload,
        padding_nops=payload - source,
        exec_blocks=sum(1 for b in blocks if b.kind is BlockKind.EXEC),
        mux_blocks=sum(1 for b in blocks if b.kind is BlockKind.MUX),
        tree_nodes=len(tree_nodes),
        offset0_forwarders=offset0_count,
        code_bytes=config.block_bytes * len(blocks),
        original_code_bytes=4 * source,
    )
