"""MAC-then-Encrypt sealing of a laid-out block program (paper §II-C).

For every block the plaintext payload instructions are encoded at their
final addresses, a CBC-MAC is computed over them (key k2 for execution
blocks, k3 for multiplexor blocks), the MAC words are interleaved
(``M1 .. Mw p…`` / ``M1 M1 M2 .. Mw p…`` — the duplicated M1 provides the
two multiplexor entry points, paper Fig. 7; ``w`` is the profile's seal
width, 2 at the paper's design point), and every word is encrypted with
the control-flow-dependent CTR keystream:

* entry words use the prevPC of their assigned inbound edge,
* the multiplexor word at index 2 always uses ``prevPC = addr(M1e2)``
  (both paths agree on this — paper Fig. 8's footnote),
* every other word chains on its predecessor word's address.

:func:`seal_block` / :func:`unseal_block` are the **single home** of the
seal packing: every producer (the transformer, the renonce tool, the
attack-synthesis forgery hook) and every consumer (the offline verifier,
the simulated hardware front-end) goes through this pair, so a profile's
MAC width and cipher cannot drift between the paths.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..crypto.cbcmac import mac_stream
from ..crypto.ctr import EdgeKeystream
from ..crypto.keys import DeviceKeys
from ..errors import EncodingError, TransformError
from ..isa.encoding import encode
from ..isa.program import AsmProgram, DATA_BASE, resolve_data_references
from .blocks import Block, BlockKind
from .image import BlockRecord, SofiaImage
from .layout import Layout
from .profile import DEFAULT_PROFILE, ProtectionProfile


def encode_block_payload(block: Block) -> List[int]:
    """Encode a block's payload instructions at their final addresses."""
    words = []
    for slot, instr in enumerate(block.payload):
        pc = block.payload_address(slot)
        try:
            words.append(encode(instr, pc))
        except EncodingError as exc:
            raise TransformError(
                f"cannot encode {instr.mnemonic!r} at 0x{pc:08x}: {exc}"
            ) from exc
    return words


def block_mac_cipher(keys: DeviceKeys, kind: str):
    """The per-block-type CBC-MAC cipher (k2 exec / k3 mux)."""
    return keys.exec_mac_cipher if kind == "exec" else keys.mux_mac_cipher


def seal_block(kind: str, payload_words: Sequence[int], keys: DeviceKeys,
               mac_words: int = 2) -> List[int]:
    """Seal a payload: MAC words + payload in block layout order.

    The single home of the interleave scheme: ``M1 .. Mw p…`` for
    execution blocks, ``M1 M1 M2 .. Mw p…`` for multiplexors (the
    duplicated M1 provides the two entry points, paper Fig. 7).
    ``mac_words`` is the profile seal width ``w``.
    """
    payload = list(payload_words)
    macs = mac_stream(block_mac_cipher(keys, kind), payload, mac_words)
    if kind == "exec":
        return list(macs) + payload
    return [macs[0], macs[0]] + list(macs[1:]) + payload


def unseal_block(kind: str, fetched_words: Sequence[int], keys: DeviceKeys,
                 mac_words: int = 2, mac_cache: Optional[Dict] = None
                 ) -> Tuple[List[int], Tuple[int, ...], Tuple[int, ...]]:
    """Split one traversal's decrypted words and recompute their seal.

    ``fetched_words`` are in *fetch order* — what the hardware sees on
    one block traversal: for execution blocks all ``block_words`` words;
    for multiplexors the entry's M1 copy followed by ``M2..Mw`` and the
    payload (the skipped M1 copy never appears).  In both cases the
    first ``mac_words`` entries are the stored seal.

    ``mac_cache`` (the batch engine's shared seal memo, see
    :mod:`repro.sim.batch`) memoizes the recomputation by
    ``(kind, payload)``; the seal is a pure function of those plus the
    fixed keys and width, so the memo is observationally invisible.

    Returns ``(payload_words, stored_macs, computed_macs)``; the block
    verifies iff ``stored_macs == computed_macs``.
    """
    fetched = list(fetched_words)
    stored = tuple(fetched[:mac_words])
    payload = fetched[mac_words:]
    if mac_cache is None:
        computed = mac_stream(block_mac_cipher(keys, kind), payload,
                              mac_words)
    else:
        key = (kind, tuple(payload))
        computed = mac_cache.get(key)
        if computed is None:
            computed = mac_stream(block_mac_cipher(keys, kind), payload,
                                  mac_words)
            mac_cache[key] = computed
    return payload, stored, computed


def interleave_mac(kind: str, payload_words: List[int], keys: DeviceKeys,
                   mac_words: int = 2) -> List[int]:
    """Back-compat alias of :func:`seal_block` (the historical name)."""
    return seal_block(kind, payload_words, keys, mac_words)


def chain_prev_pcs(kind: str, base: int, total: int,
                   entry_prevs: List[int]) -> List[int]:
    """prevPC used to encrypt each word of a block, in layout order.

    The single home of the chaining scheme: entry words use their sealed
    inbound edge, the mux word at index 2 always chains on ``addr(M1e2)``
    (Fig. 8's footnote; at the paper's design point that word is M2),
    every other word on its predecessor word.  The scheme is independent
    of the seal width — only the entry words and index 2 are special.
    """
    prevs: List[int] = []
    if kind == "exec":
        prevs.append(entry_prevs[0])
        for j in range(1, total):
            prevs.append(base + 4 * (j - 1))
        return prevs
    if len(entry_prevs) == 1:
        # a mux block always has two sealed entries; a single entry can
        # only happen through a construction bug.
        raise TransformError("multiplexor block with a single entry")
    prevs.append(entry_prevs[0])          # M1e1: first predecessor
    prevs.append(entry_prevs[1])          # M1e2: second predecessor
    prevs.append(base + 4)                # index 2 chains on addr(M1e2)
    for j in range(3, total):
        prevs.append(base + 4 * (j - 1))
    return prevs


def block_plain_words(block: Block, keys: DeviceKeys) -> List[int]:
    """MAC words + payload words, in block layout order (plaintext)."""
    kind = block.kind.value
    mac_value_words = (block.mac_words if kind == "exec"
                       else block.mac_words - 1)
    return seal_block(kind, encode_block_payload(block), keys,
                      mac_value_words)


def word_prev_pcs(block: Block, entry_prevs: List[int]) -> List[int]:
    """prevPC used to encrypt each word of the block, in layout order."""
    return chain_prev_pcs(block.kind.value, block.base,
                          block.mac_words + block.capacity,
                          entry_prevs)


def reseal_block(image: SofiaImage, record: BlockRecord,
                 payload, keys: DeviceKeys,
                 nonce: int = None) -> List[int]:
    """Seal replacement ``payload`` instructions into ``record``'s slots.

    This is the provider-side (or successful-forger-side) mutation hook:
    the new payload is encoded at the block's final addresses, MACed with
    the real block-kind key under the image profile's seal width and
    encrypted along the block's *sealed* entry edges — so the result
    passes MAC verification when entered the way the original block was.
    :mod:`repro.attacksynth` uses it to model a MAC forgery that
    succeeded, which is what makes the store-slot and single-exit
    hardware checks testable in isolation.
    """
    if not record.entry_prev_pcs:
        raise TransformError(
            f"block 0x{record.base:08x} has no sealed entry to forge")
    profile = image.profile
    keys = keys.for_profile(profile)
    mac_count = profile.mac_count(record.kind)
    if len(payload) != record.capacity:
        raise TransformError(
            f"block 0x{record.base:08x} holds {record.capacity} payload "
            f"instructions, got {len(payload)}")
    base = record.base
    words: List[int] = []
    for slot, instr in enumerate(payload):
        pc = base + 4 * (mac_count + slot)
        words.append(encode(instr, pc))
    plain = seal_block(record.kind, words, keys, profile.mac_words)
    prevs = chain_prev_pcs(record.kind, base, len(plain),
                           list(record.entry_prev_pcs))
    keystream = EdgeKeystream(
        keys.encryption_cipher,
        image.nonce if nonce is None else nonce)
    return [keystream.encrypt_word(word, prev, base + 4 * j)
            for j, (word, prev) in enumerate(zip(plain, prevs))]


def seal(layout: Layout, program: AsmProgram, keys: DeviceKeys,
         nonce: int, data_base: int = DATA_BASE,
         profile: Optional[ProtectionProfile] = None) -> SofiaImage:
    """Produce the encrypted :class:`SofiaImage` for a layout."""
    if profile is None:
        profile = ProtectionProfile.from_config(layout.config)
    keys = keys.for_profile(profile)
    keystream = EdgeKeystream(keys.encryption_cipher, nonce)
    words: List[int] = []
    records: List[BlockRecord] = []
    for block in layout.blocks:
        plain = block_plain_words(block, keys)
        entry_prevs = layout.entry_prev_pcs(block)
        prevs = word_prev_pcs(block, entry_prevs)
        for j, (word, prev) in enumerate(zip(plain, prevs)):
            address = block.base + 4 * j
            words.append(keystream.encrypt_word(word, prev, address))
        records.append(BlockRecord(
            base=block.base, kind=block.kind.value, capacity=block.capacity,
            labels=tuple(block.labels), leader=block.leader,
            is_forwarder=block.is_forwarder,
            plain_payload=tuple(plain[block.mac_words:]),
            entry_prev_pcs=tuple(entry_prevs)))
    symbols: Dict[str, int] = dict(resolve_data_references(program, data_base))
    for label, index in program.labels.items():
        located = layout.block_of_instr.get(index)
        if located is None:
            continue
        block, slot = located
        if block.leader == index:
            symbols[label] = block.base       # the block's entry
        else:
            symbols[label] = block.payload_address(slot)
    return SofiaImage(words=words, code_base=layout.config.code_base,
                      nonce=nonce, entry=layout.entry_address,
                      data=bytes(program.data), data_base=data_base,
                      block_words=layout.config.block_words,
                      blocks=records, stats=layout.stats, symbols=symbols,
                      profile=profile)
