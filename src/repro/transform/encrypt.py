"""MAC-then-Encrypt sealing of a laid-out block program (paper §II-C).

For every block the plaintext payload instructions are encoded at their
final addresses, a CBC-MAC is computed over them (key k2 for execution
blocks, k3 for multiplexor blocks), the MAC words are interleaved
(``M1 M2 p…`` / ``M1 M1 M2 p…`` — the duplicated M1 provides the two
multiplexor entry points, paper Fig. 7), and every word is encrypted with
the control-flow-dependent CTR keystream:

* entry words use the prevPC of their assigned inbound edge,
* the multiplexor ``M2`` word always uses ``prevPC = addr(M1e2)``
  (both paths agree on this — paper Fig. 8's footnote),
* every other word chains on its predecessor word's address.
"""

from __future__ import annotations

from typing import Dict, List

from ..crypto.cbcmac import mac_words
from ..crypto.ctr import EdgeKeystream
from ..crypto.keys import DeviceKeys
from ..errors import EncodingError, TransformError
from ..isa.encoding import encode
from ..isa.program import AsmProgram, DATA_BASE, resolve_data_references
from .blocks import Block, BlockKind
from .image import BlockRecord, SofiaImage
from .layout import Layout


def encode_block_payload(block: Block) -> List[int]:
    """Encode a block's payload instructions at their final addresses."""
    words = []
    for slot, instr in enumerate(block.payload):
        pc = block.payload_address(slot)
        try:
            words.append(encode(instr, pc))
        except EncodingError as exc:
            raise TransformError(
                f"cannot encode {instr.mnemonic!r} at 0x{pc:08x}: {exc}"
            ) from exc
    return words


def interleave_mac(kind: str, payload_words: List[int],
                   keys: DeviceKeys) -> List[int]:
    """MAC words + payload words in block layout order (plaintext).

    The single home of the interleave scheme: ``M1 M2 p…`` for execution
    blocks, ``M1 M1 M2 p…`` for multiplexors (the duplicated M1 provides
    the two entry points, paper Fig. 7).
    """
    if kind == "exec":
        m1, m2 = mac_words(keys.exec_mac_cipher, payload_words)
        return [m1, m2] + payload_words
    m1, m2 = mac_words(keys.mux_mac_cipher, payload_words)
    return [m1, m1, m2] + payload_words


def chain_prev_pcs(kind: str, base: int, total: int,
                   entry_prevs: List[int]) -> List[int]:
    """prevPC used to encrypt each word of a block, in layout order.

    The single home of the chaining scheme: entry words use their sealed
    inbound edge, the mux ``M2`` word always chains on ``addr(M1e2)``
    (Fig. 8's footnote), every other word on its predecessor word.
    """
    prevs: List[int] = []
    if kind == "exec":
        prevs.append(entry_prevs[0])
        for j in range(1, total):
            prevs.append(base + 4 * (j - 1))
        return prevs
    if len(entry_prevs) == 1:
        # a mux block always has two sealed entries; a single entry can
        # only happen through a construction bug.
        raise TransformError("multiplexor block with a single entry")
    prevs.append(entry_prevs[0])          # M1e1: first predecessor
    prevs.append(entry_prevs[1])          # M1e2: second predecessor
    prevs.append(base + 4)                # M2 chains on addr(M1e2), both paths
    for j in range(3, total):
        prevs.append(base + 4 * (j - 1))
    return prevs


def block_plain_words(block: Block, keys: DeviceKeys) -> List[int]:
    """MAC words + payload words, in block layout order (plaintext)."""
    return interleave_mac(block.kind.value, encode_block_payload(block),
                          keys)


def word_prev_pcs(block: Block, entry_prevs: List[int]) -> List[int]:
    """prevPC used to encrypt each word of the block, in layout order."""
    return chain_prev_pcs(block.kind.value, block.base,
                          block.kind.mac_words + block.capacity,
                          entry_prevs)


def reseal_block(image: SofiaImage, record: BlockRecord,
                 payload, keys: DeviceKeys,
                 nonce: int = None) -> List[int]:
    """Seal replacement ``payload`` instructions into ``record``'s slots.

    This is the provider-side (or successful-forger-side) mutation hook:
    the new payload is encoded at the block's final addresses, MACed with
    the real block-kind key and encrypted along the block's *sealed*
    entry edges — so the result passes MAC verification when entered the
    way the original block was.  :mod:`repro.attacksynth` uses it to
    model a MAC forgery that succeeded, which is what makes the
    store-slot and single-exit hardware checks testable in isolation.
    """
    if not record.entry_prev_pcs:
        raise TransformError(
            f"block 0x{record.base:08x} has no sealed entry to forge")
    mac_count = BlockKind(record.kind).mac_words
    if len(payload) != record.capacity:
        raise TransformError(
            f"block 0x{record.base:08x} holds {record.capacity} payload "
            f"instructions, got {len(payload)}")
    base = record.base
    words: List[int] = []
    for slot, instr in enumerate(payload):
        pc = base + 4 * (mac_count + slot)
        words.append(encode(instr, pc))
    plain = interleave_mac(record.kind, words, keys)
    prevs = chain_prev_pcs(record.kind, base, len(plain),
                           list(record.entry_prev_pcs))
    keystream = EdgeKeystream(
        keys.encryption_cipher,
        image.nonce if nonce is None else nonce)
    return [keystream.encrypt_word(word, prev, base + 4 * j)
            for j, (word, prev) in enumerate(zip(plain, prevs))]


def seal(layout: Layout, program: AsmProgram, keys: DeviceKeys,
         nonce: int, data_base: int = DATA_BASE) -> SofiaImage:
    """Produce the encrypted :class:`SofiaImage` for a layout."""
    keystream = EdgeKeystream(keys.encryption_cipher, nonce)
    words: List[int] = []
    records: List[BlockRecord] = []
    for block in layout.blocks:
        plain = block_plain_words(block, keys)
        entry_prevs = layout.entry_prev_pcs(block)
        prevs = word_prev_pcs(block, entry_prevs)
        for j, (word, prev) in enumerate(zip(plain, prevs)):
            address = block.base + 4 * j
            words.append(keystream.encrypt_word(word, prev, address))
        records.append(BlockRecord(
            base=block.base, kind=block.kind.value, capacity=block.capacity,
            labels=tuple(block.labels), leader=block.leader,
            is_forwarder=block.is_forwarder,
            plain_payload=tuple(plain[block.kind.mac_words:]),
            entry_prev_pcs=tuple(entry_prevs)))
    symbols: Dict[str, int] = dict(resolve_data_references(program, data_base))
    for label, index in program.labels.items():
        located = layout.block_of_instr.get(index)
        if located is None:
            continue
        block, slot = located
        if block.leader == index:
            symbols[label] = block.base       # the block's entry
        else:
            symbols[label] = block.payload_address(slot)
    return SofiaImage(words=words, code_base=layout.config.code_base,
                      nonce=nonce, entry=layout.entry_address,
                      data=bytes(program.data), data_base=data_base,
                      block_words=layout.config.block_words,
                      blocks=records, stats=layout.stats, symbols=symbols)
