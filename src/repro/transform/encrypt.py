"""MAC-then-Encrypt sealing of a laid-out block program (paper §II-C).

For every block the plaintext payload instructions are encoded at their
final addresses, a CBC-MAC is computed over them (key k2 for execution
blocks, k3 for multiplexor blocks), the MAC words are interleaved
(``M1 M2 p…`` / ``M1 M1 M2 p…`` — the duplicated M1 provides the two
multiplexor entry points, paper Fig. 7), and every word is encrypted with
the control-flow-dependent CTR keystream:

* entry words use the prevPC of their assigned inbound edge,
* the multiplexor ``M2`` word always uses ``prevPC = addr(M1e2)``
  (both paths agree on this — paper Fig. 8's footnote),
* every other word chains on its predecessor word's address.
"""

from __future__ import annotations

from typing import Dict, List

from ..crypto.cbcmac import mac_words
from ..crypto.ctr import EdgeKeystream
from ..crypto.keys import DeviceKeys
from ..errors import EncodingError, TransformError
from ..isa.encoding import encode
from ..isa.program import AsmProgram, DATA_BASE, resolve_data_references
from .blocks import Block, BlockKind
from .image import BlockRecord, SofiaImage
from .layout import Layout


def encode_block_payload(block: Block) -> List[int]:
    """Encode a block's payload instructions at their final addresses."""
    words = []
    for slot, instr in enumerate(block.payload):
        pc = block.payload_address(slot)
        try:
            words.append(encode(instr, pc))
        except EncodingError as exc:
            raise TransformError(
                f"cannot encode {instr.mnemonic!r} at 0x{pc:08x}: {exc}"
            ) from exc
    return words


def block_plain_words(block: Block, keys: DeviceKeys) -> List[int]:
    """MAC words + payload words, in block layout order (plaintext)."""
    payload_words = encode_block_payload(block)
    if block.kind is BlockKind.EXEC:
        m1, m2 = mac_words(keys.exec_mac_cipher, payload_words)
        return [m1, m2] + payload_words
    m1, m2 = mac_words(keys.mux_mac_cipher, payload_words)
    return [m1, m1, m2] + payload_words


def word_prev_pcs(block: Block, entry_prevs: List[int]) -> List[int]:
    """prevPC used to encrypt each word of the block, in layout order."""
    prevs: List[int] = []
    total = block.kind.mac_words + block.capacity
    if block.kind is BlockKind.EXEC:
        prevs.append(entry_prevs[0])
        for j in range(1, total):
            prevs.append(block.base + 4 * (j - 1))
        return prevs
    if len(entry_prevs) == 1:
        # a mux block always has two sealed entries; a single entry can
        # only happen through a construction bug.
        raise TransformError("multiplexor block with a single entry")
    prevs.append(entry_prevs[0])          # M1e1: first predecessor
    prevs.append(entry_prevs[1])          # M1e2: second predecessor
    prevs.append(block.base + 4)          # M2 chains on addr(M1e2), both paths
    for j in range(3, total):
        prevs.append(block.base + 4 * (j - 1))
    return prevs


def seal(layout: Layout, program: AsmProgram, keys: DeviceKeys,
         nonce: int, data_base: int = DATA_BASE) -> SofiaImage:
    """Produce the encrypted :class:`SofiaImage` for a layout."""
    keystream = EdgeKeystream(keys.encryption_cipher, nonce)
    words: List[int] = []
    records: List[BlockRecord] = []
    for block in layout.blocks:
        plain = block_plain_words(block, keys)
        entry_prevs = layout.entry_prev_pcs(block)
        prevs = word_prev_pcs(block, entry_prevs)
        for j, (word, prev) in enumerate(zip(plain, prevs)):
            address = block.base + 4 * j
            words.append(keystream.encrypt_word(word, prev, address))
        records.append(BlockRecord(
            base=block.base, kind=block.kind.value, capacity=block.capacity,
            labels=tuple(block.labels), leader=block.leader,
            is_forwarder=block.is_forwarder,
            plain_payload=tuple(plain[block.kind.mac_words:]),
            entry_prev_pcs=tuple(entry_prevs)))
    symbols: Dict[str, int] = dict(resolve_data_references(program, data_base))
    for label, index in program.labels.items():
        located = layout.block_of_instr.get(index)
        if located is None:
            continue
        block, slot = located
        if block.leader == index:
            symbols[label] = block.base       # the block's entry
        else:
            symbols[label] = block.payload_address(slot)
    return SofiaImage(words=words, code_base=layout.config.code_base,
                      nonce=nonce, entry=layout.entry_address,
                      data=bytes(program.data), data_base=data_base,
                      block_words=layout.config.block_words,
                      blocks=records, stats=layout.stats, symbols=symbols)
