"""Empirical security experiments on truncated MACs (experiment E9).

The closed-form bounds assume the CBC-MAC output is uniform — an attacker
who enumerates candidate MAC values for a tampered block needs on average
``2^(n-1)`` trials.  These experiments validate that assumption at widths
small enough to brute-force (4..16 bits), and measure the probability that
a random tamper slips past an n-bit verification (expected ``2^-n``).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Sequence

from ..crypto.cbcmac import cbc_mac
from ..crypto.rectangle import Rectangle80


def truncated_mac(cipher: Rectangle80, words: Sequence[int],
                  bits: int) -> int:
    """CBC-MAC truncated to its ``bits`` least-significant bits."""
    if not 1 <= bits <= 64:
        raise ValueError("bits must be in 1..64")
    return cbc_mac(cipher, words) & ((1 << bits) - 1)


def forgery_trials(cipher: Rectangle80, words: Sequence[int],
                   bits: int) -> int:
    """Number of sequential online trials to forge an n-bit MAC.

    The attacker tampers the message and submits candidate MACs
    0, 1, 2, ... until the device accepts.  If the true MAC is uniform,
    the trial count is uniform on [1, 2^n] with mean 2^(n-1) + 0.5.
    """
    target = truncated_mac(cipher, words, bits)
    return target + 1  # candidates 0..target fail..succeed


@dataclass(frozen=True)
class ForgeryScaling:
    bits: int
    experiments: int
    mean_trials: float
    expected_trials: float

    @property
    def ratio(self) -> float:
        return self.mean_trials / self.expected_trials


def forgery_scaling(bits_list: Sequence[int] = (4, 6, 8, 10, 12),
                    experiments: int = 200,
                    seed: int = 2016) -> List[ForgeryScaling]:
    """Mean trials-to-forge vs MAC width — should track 2^(n-1)."""
    rng = random.Random(seed)
    results = []
    for bits in bits_list:
        total = 0
        for _ in range(experiments):
            cipher = Rectangle80(rng.getrandbits(80))
            words = [rng.getrandbits(32) for _ in range(6)]
            total += forgery_trials(cipher, words, bits)
        results.append(ForgeryScaling(
            bits=bits, experiments=experiments,
            mean_trials=total / experiments,
            expected_trials=float(1 << (bits - 1))))
    return results


@dataclass(frozen=True)
class TamperEscape:
    bits: int
    tampers: int
    undetected: int

    @property
    def escape_rate(self) -> float:
        return self.undetected / self.tampers

    @property
    def expected_rate(self) -> float:
        return 2.0 ** -self.bits


def tamper_detection(bits: int = 8, tampers: int = 4000,
                     seed: int = 99) -> TamperEscape:
    """Fraction of random single-word tampers that pass n-bit verification.

    With an n-bit MAC an undetected tamper needs the tampered message to
    collide on the truncated MAC: probability 2^-n per attempt.
    """
    rng = random.Random(seed)
    cipher = Rectangle80(rng.getrandbits(80))
    undetected = 0
    for _ in range(tampers):
        words = [rng.getrandbits(32) for _ in range(6)]
        mac = truncated_mac(cipher, words, bits)
        tampered = list(words)
        tampered[rng.randrange(6)] ^= 1 << rng.randrange(32)
        if truncated_mac(cipher, tampered, bits) == mac:
            undetected += 1
    return TamperEscape(bits=bits, tampers=tampers, undetected=undetected)
