"""Empirical security experiments on truncated MACs (experiment E9).

The closed-form bounds assume the CBC-MAC output is uniform — an attacker
who enumerates candidate MAC values for a tampered block needs on average
``2^(n-1)`` trials.  These experiments validate that assumption at widths
small enough to brute-force (4..16 bits), and measure the probability that
a random tamper slips past an n-bit verification (expected ``2^-n``).

Both experiments accept ``parallel=True``: batches are dispatched through
:mod:`repro.runner` with per-task seeds derived by
:func:`repro.runner.task_seed`, so parallel results are deterministic and
independent of the worker count.  The ``parallel=False`` default keeps
the original single-stream sampling, bit-identical to the historical
serial results (the two modes draw different — statistically equivalent —
random populations).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..crypto.cbcmac import cbc_mac
from ..crypto.rectangle import Rectangle80
from ..obs import phase as obs_phase
from ..runner import run_tasks, task_rng


def truncated_mac(cipher: Rectangle80, words: Sequence[int],
                  bits: int) -> int:
    """CBC-MAC truncated to its ``bits`` least-significant bits."""
    if not 1 <= bits <= 64:
        raise ValueError("bits must be in 1..64")
    return cbc_mac(cipher, words) & ((1 << bits) - 1)


def forgery_trials(cipher: Rectangle80, words: Sequence[int],
                   bits: int) -> int:
    """Number of sequential online trials to forge an n-bit MAC.

    The attacker tampers the message and submits candidate MACs
    0, 1, 2, ... until the device accepts.  If the true MAC is uniform,
    the trial count is uniform on [1, 2^n] with mean 2^(n-1) + 0.5.
    """
    target = truncated_mac(cipher, words, bits)
    return target + 1  # candidates 0..target fail..succeed


@dataclass(frozen=True)
class ForgeryScaling:
    bits: int
    experiments: int
    mean_trials: float
    expected_trials: float

    @property
    def ratio(self) -> float:
        return self.mean_trials / self.expected_trials


def _forgery_batch(task: Tuple[int, int, int, int]) -> int:
    """Total trials for one (bits, experiments) batch with a derived seed."""
    seed, bits, batch, experiments = task
    rng = task_rng(seed, "forgery", bits, batch)
    total = 0
    for _ in range(experiments):
        cipher = Rectangle80(rng.getrandbits(80))
        words = [rng.getrandbits(32) for _ in range(6)]
        total += forgery_trials(cipher, words, bits)
    return total


#: experiments per parallel Monte-Carlo batch (fixed so the task
#: decomposition — and therefore the drawn population — is independent of
#: the worker count)
_BATCH = 50


def forgery_scaling(bits_list: Sequence[int] = (4, 6, 8, 10, 12),
                    experiments: int = 200,
                    seed: int = 2016,
                    parallel: bool = False,
                    jobs: Optional[int] = None,
                    telemetry=None) -> List[ForgeryScaling]:
    """Mean trials-to-forge vs MAC width — should track 2^(n-1).

    ``telemetry`` (a :class:`repro.obs.Telemetry`, default ``None``)
    records the dispatch plan and per-batch spans on the parallel path
    (the serial path is one untimed stream) — observationally only.
    """
    if parallel:
        tasks = []
        for bits in bits_list:
            remaining = experiments
            batch = 0
            while remaining > 0:
                tasks.append((seed, bits, batch, min(_BATCH, remaining)))
                remaining -= _BATCH
                batch += 1
        if telemetry is not None:
            telemetry.plan(len(tasks))
            telemetry.expect_tasks(range(len(tasks)))
        with obs_phase(telemetry, "forgery-scaling"):
            totals = run_tasks(_forgery_batch, tasks, jobs=jobs,
                               telemetry=telemetry)
        by_bits = {bits: 0 for bits in bits_list}
        for task, total in zip(tasks, totals):
            by_bits[task[1]] += total
        return [ForgeryScaling(
            bits=bits, experiments=experiments,
            mean_trials=by_bits[bits] / experiments,
            expected_trials=float(1 << (bits - 1)))
            for bits in bits_list]
    rng = random.Random(seed)
    results = []
    for bits in bits_list:
        total = 0
        for _ in range(experiments):
            cipher = Rectangle80(rng.getrandbits(80))
            words = [rng.getrandbits(32) for _ in range(6)]
            total += forgery_trials(cipher, words, bits)
        results.append(ForgeryScaling(
            bits=bits, experiments=experiments,
            mean_trials=total / experiments,
            expected_trials=float(1 << (bits - 1))))
    return results


@dataclass(frozen=True)
class TamperEscape:
    bits: int
    tampers: int
    undetected: int

    @property
    def escape_rate(self) -> float:
        return self.undetected / self.tampers

    @property
    def expected_rate(self) -> float:
        return 2.0 ** -self.bits


def _tamper_batch(task: Tuple[int, int, int, int]) -> int:
    """Undetected count for one batch of tampers with a derived seed."""
    seed, bits, batch, tampers = task
    cipher = Rectangle80(task_rng(seed, "tamper-key").getrandbits(80))
    rng = task_rng(seed, "tamper", bits, batch)
    undetected = 0
    for _ in range(tampers):
        words = [rng.getrandbits(32) for _ in range(6)]
        mac = truncated_mac(cipher, words, bits)
        tampered = list(words)
        tampered[rng.randrange(6)] ^= 1 << rng.randrange(32)
        if truncated_mac(cipher, tampered, bits) == mac:
            undetected += 1
    return undetected


def tamper_detection(bits: int = 8, tampers: int = 4000,
                     seed: int = 99, parallel: bool = False,
                     jobs: Optional[int] = None,
                     telemetry=None) -> TamperEscape:
    """Fraction of random single-word tampers that pass n-bit verification.

    With an n-bit MAC an undetected tamper needs the tampered message to
    collide on the truncated MAC: probability 2^-n per attempt.
    """
    if parallel:
        batch_size = _BATCH * 10
        tasks = []
        remaining, batch = tampers, 0
        while remaining > 0:
            tasks.append((seed, bits, batch, min(batch_size, remaining)))
            remaining -= batch_size
            batch += 1
        if telemetry is not None:
            telemetry.plan(len(tasks))
            telemetry.expect_tasks(range(len(tasks)))
        with obs_phase(telemetry, "tamper-detection"):
            undetected = sum(run_tasks(_tamper_batch, tasks, jobs=jobs,
                                       telemetry=telemetry))
        return TamperEscape(bits=bits, tampers=tampers,
                            undetected=undetected)
    rng = random.Random(seed)
    cipher = Rectangle80(rng.getrandbits(80))
    undetected = 0
    for _ in range(tampers):
        words = [rng.getrandbits(32) for _ in range(6)]
        mac = truncated_mac(cipher, words, bits)
        tampered = list(words)
        tampered[rng.randrange(6)] ^= 1 << rng.randrange(32)
        if truncated_mac(cipher, tampered, bits) == mac:
            undetected += 1
    return TamperEscape(bits=bits, tampers=tampers, undetected=undetected)
