"""Security analysis: closed-form bounds + Monte-Carlo experiments."""

from .bounds import (EmpiricalCheck, PAPER_CLOCK_HZ, PAPER_MAC_BITS,
                     SecurityReport, attack_seconds, attack_years,
                     cfi_attack_years, empirical_check,
                     expected_forgery_attempts, expected_undetected,
                     security_report, si_forgery_years)
from .montecarlo import (ForgeryScaling, TamperEscape, forgery_scaling,
                         forgery_trials, tamper_detection, truncated_mac)

__all__ = [
    "expected_forgery_attempts", "attack_seconds", "attack_years",
    "si_forgery_years", "cfi_attack_years", "security_report",
    "SecurityReport", "PAPER_MAC_BITS", "PAPER_CLOCK_HZ",
    "EmpiricalCheck", "empirical_check", "expected_undetected",
    "truncated_mac", "forgery_trials", "forgery_scaling",
    "ForgeryScaling", "tamper_detection", "TamperEscape",
]
