"""Closed-form security bounds (paper §IV-A).

SI: forging an (instructions, MAC) pair for an n-bit MAC takes an expected
``2^(n-1)`` online verification attempts [32]; each attempt costs at least
8 cycles on the target (fetch + verify of one block).  CFI additionally
requires the control-flow diversion itself (another 8 cycles), doubling
the attack time.

The paper evaluates both at a 50 MHz clock: 46,795 years (SI) and
93,590 years (CFI).
"""

from __future__ import annotations

from dataclasses import dataclass

SECONDS_PER_YEAR = 365 * 24 * 3600  # the paper's convention (non-leap years)

#: paper parameters
PAPER_MAC_BITS = 64
PAPER_VERIFY_CYCLES = 8
PAPER_DIVERSION_CYCLES = 8
PAPER_CLOCK_HZ = 50e6


def expected_forgery_attempts(mac_bits: int) -> int:
    """Average online trials before a random forgery is accepted."""
    if mac_bits < 1:
        raise ValueError("MAC width must be positive")
    return 1 << (mac_bits - 1)


def attack_seconds(attempts: int, cycles_per_attempt: int,
                   clock_hz: float) -> float:
    """Wall-clock time of an online attack on the target device."""
    if clock_hz <= 0:
        raise ValueError("clock must be positive")
    return attempts * cycles_per_attempt / clock_hz


def attack_years(attempts: int, cycles_per_attempt: int,
                 clock_hz: float) -> float:
    return attack_seconds(attempts, cycles_per_attempt, clock_hz) / SECONDS_PER_YEAR


def si_forgery_years(mac_bits: int = PAPER_MAC_BITS,
                     verify_cycles: int = PAPER_VERIFY_CYCLES,
                     clock_hz: float = PAPER_CLOCK_HZ) -> float:
    """§IV-A.1: expected years to forge an instruction/MAC pair online."""
    return attack_years(expected_forgery_attempts(mac_bits),
                        verify_cycles, clock_hz)


def cfi_attack_years(mac_bits: int = PAPER_MAC_BITS,
                     diversion_cycles: int = PAPER_DIVERSION_CYCLES,
                     verify_cycles: int = PAPER_VERIFY_CYCLES,
                     clock_hz: float = PAPER_CLOCK_HZ) -> float:
    """§IV-A.2: expected years to deviate control flow and forge the MAC."""
    return attack_years(expected_forgery_attempts(mac_bits),
                        diversion_cycles + verify_cycles, clock_hz)


def expected_undetected(attempts: int, mac_bits: int = PAPER_MAC_BITS) -> float:
    """Expected number of undetected forgeries among ``attempts`` tries.

    Every SI/CFI-violating attack instance is one online forgery attempt:
    it survives only if the tampered block's run-time MAC collides with
    the decrypted MAC words, which happens with probability ``2^-n``.
    """
    if attempts < 0:
        raise ValueError("attempts must be non-negative")
    return attempts * 2.0 ** (-mac_bits)


@dataclass(frozen=True)
class EmpiricalCheck:
    """An empirical detection sweep held against the analytic bound."""

    attempts: int
    undetected: int
    mac_bits: int
    expected: float

    @property
    def consistent(self) -> bool:
        """Is the observed miss count plausible under the 2^-n model?

        Misses are Poisson with mean ``expected``; we accept anything up
        to three standard deviations above it.  For any sweep this
        reproduction can run (``attempts`` ≪ 2^64) the tolerance rounds
        to zero — a single undetected forgery already falsifies the
        bound, which is exactly the cross-check the campaign wants.
        """
        return self.undetected <= int(self.expected
                                      + 3 * self.expected ** 0.5)

    def render(self) -> str:
        verdict = "consistent" if self.consistent else "INCONSISTENT"
        return (f"{self.undetected}/{self.attempts} forgeries undetected "
                f"(analytic expectation {self.expected:.3g} at "
                f"{self.mac_bits}-bit MACs) — {verdict}")


def empirical_check(attempts: int, undetected: int,
                    mac_bits: int = PAPER_MAC_BITS) -> EmpiricalCheck:
    """Cross-check an observed detection rate against §IV-A's model."""
    return EmpiricalCheck(attempts=attempts, undetected=undetected,
                          mac_bits=mac_bits,
                          expected=expected_undetected(attempts, mac_bits))


@dataclass(frozen=True)
class SecurityReport:
    """Both paper bounds plus the parameters that produced them."""

    mac_bits: int
    clock_hz: float
    si_years: float
    cfi_years: float

    def render(self) -> str:
        return "\n".join([
            "Security evaluation (paper §IV-A)",
            f"MAC width: {self.mac_bits} bits, clock: "
            f"{self.clock_hz / 1e6:.1f} MHz",
            f"SI  online forgery: {self.si_years:,.0f} years "
            f"(paper: 46,795)",
            f"CFI online attack:  {self.cfi_years:,.0f} years "
            f"(paper: 93,590)",
        ])


def security_report(mac_bits: int = PAPER_MAC_BITS,
                    clock_hz: float = PAPER_CLOCK_HZ) -> SecurityReport:
    return SecurityReport(mac_bits=mac_bits, clock_hz=clock_hz,
                          si_years=si_forgery_years(mac_bits,
                                                    clock_hz=clock_hz),
                          cfi_years=cfi_attack_years(mac_bits,
                                                     clock_hz=clock_hz))
