"""Command-line interface: ``python -m repro <command> ...``.

The toolchain workflow as a developer would drive it:

==================  ====================================================
``compile``         minicc C -> SRISC assembly
``run``             run a .c/.s program on the vanilla core
``protect``         transform+MAC+encrypt into a .sofia image (verified)
``run-protected``   run a .sofia image on the SOFIA core
``disasm``          disassemble a program (vanilla address space)
``trace``           per-instruction execution trace (vanilla core)
``attack``          run the attack campaign, print the E8 matrix
``attacksynth``     synthesize attacks against generated programs (E16)
``fuzz``            coverage-guided differential fuzzing campaign (E15)
``dse``             design-space sweep over protection profiles
                    (E17; ``--hw`` adds the hardware axes, E20)
``fault``           fault-injection campaign on a workload (E11)
``montecarlo``      truncated-MAC Monte-Carlo experiments (E9)
``merge``           union sharded campaign result stores (E19)
``stats``           summarize a ``--telemetry`` directory
``version``         print package version + store code digest
``experiments``     regenerate paper tables/figures (E1, E2, ...)
``report``          write the full E1–E11 evaluation report
==================  ====================================================

Keys are derived from ``--seed`` (a stand-in for device provisioning);
images embed their nonce and their :class:`ProtectionProfile`.
``protect``, ``attacksynth`` and ``dse`` accept profile specs like
``present-80:mac32:fixed`` (see :mod:`repro.dse.grid`); ``run-protected``
provisions the device keys for the image's embedded profile.  The
``attack``, ``experiments`` and ``dse`` commands accept ``--jobs N`` to
fan their campaigns across N worker processes via :mod:`repro.runner`
(``--jobs 0`` means one per CPU; the default of 1 runs the bit-identical
serial path).  ``run`` and ``run-protected`` accept ``--engine`` with
any registered engine (:data:`repro.sim.engine.ENGINES`) to pin the
execution engine; ``fuzz``, ``attacksynth`` and ``dse`` accept
``--engine`` with any campaign-grade engine
(:data:`repro.sim.engine.CAMPAIGN_ENGINES` — the bit-sliced batch
engine of :mod:`repro.sim.batch` or the fused-superblock engine of
:mod:`repro.sim.fused`); results are bit-identical to the default
scalar path either way.  ``dse --hw`` folds the profile-derived
hardware cost model (:mod:`repro.hwmodel.profilecost`) into the sweep —
``--unroll LIST`` picks the cipher unroll factors (default ``min``, each
cipher's fetch-sustaining minimum) — and the export becomes the unified
3-way Pareto over overhead, forgery bound and area-delay.

``fuzz``, ``attacksynth`` and ``dse`` also accept ``--resume DIR`` — a
persistent result store (:mod:`repro.runner.store`) that makes the
campaign incremental: kill it, rerun it, only unfinished tasks execute,
and the final artifacts are byte-identical to an uninterrupted serial
run — and ``--shard I/N`` (requires ``--resume``), which executes one
deterministic slice of the task list so N hosts can split a campaign;
``repro merge`` unions the shard stores and a final ``--resume`` pass
emits the serial-identical artifact.

Every campaign command (``fault``, ``fuzz``, ``attacksynth``, ``dse``,
``montecarlo``) accepts ``--telemetry DIR`` (structured JSONL events,
merged metrics, and a chrome-trace timeline under DIR — summarize with
``repro stats DIR``) and ``--progress`` (a throttled stderr heartbeat
with tasks/sec and ETA).  Telemetry is strictly observational: campaign
artifacts are byte-identical with it on or off.  The global ``--quiet``
flag silences the informational ``#``-prefixed stderr notes (errors and
stdout artifacts are unaffected).  Exit
status: 0 on success, 1 on a program error (assembly/compile/transform
failure), 2 on bad usage.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from . import core, obs
from .attacks import format_matrix, run_campaign
from .crypto.keys import DeviceKeys
from .errors import ReproError
from .eval import (experiment_adpcm, experiment_blocksize,
                   experiment_muxtree, experiment_security,
                   experiment_table1, experiment_unroll,
                   experiment_workloads, format_overhead_rows,
                   render_blocksize, render_muxtree, render_unroll)
from .isa.disassembler import dump
from .sim.engine import CAMPAIGN_ENGINES, DEFAULT_ENGINE, ENGINES
from .sim.trace import list_image, trace_vanilla
from .sim.vanilla import VanillaMachine
from .transform.config import TransformConfig
from .transform.image import SofiaImage
from .transform.verify import verify_image


def _load_program(path: str, optimize: bool = False):
    """Compile or parse a source file by extension."""
    text = Path(path).read_text()
    if path.endswith(".c"):
        from .cc import compile_source
        return compile_source(text, optimize=optimize).program
    return core.build_assembly(text)


def _print_result(result) -> int:
    if result.output_ints:
        for value in result.output_ints:
            print(value)
    if result.output_text:
        print(result.output_text, end="")
    obs.note(f"# {result.summary()}")
    return 0 if result.ok else 1


def cmd_compile(args) -> int:
    compiled = core.build_c(Path(args.source).read_text())
    output = compiled.asm_text
    if args.output:
        Path(args.output).write_text(output)
    else:
        print(output, end="")
    return 0


def cmd_run(args) -> int:
    program = _load_program(args.source, optimize=args.optimize)
    result = core.run_vanilla(core.link_vanilla(program),
                              max_instructions=args.max_instructions,
                              engine=args.engine)
    return _print_result(result)


def cmd_protect(args) -> int:
    program = _load_program(args.source, optimize=args.optimize)
    keys = DeviceKeys.from_seed(args.seed)
    profile = None
    config = None
    if args.profile is not None:
        from .dse.grid import parse_profile_spec
        if args.block_words != 8 or args.schedule_stores:
            print("error: --profile already fixes the geometry; drop "
                  "--block-words/--schedule-stores (or fold them into "
                  "the spec as bw<N>/sched)", file=sys.stderr)
            return 2
        try:
            profile = parse_profile_spec(args.profile)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        keys = keys.for_profile(profile)
    else:
        config = TransformConfig(block_words=args.block_words,
                                 schedule_stores=args.schedule_stores)
    image = core.protect(program, keys, nonce=args.nonce, config=config,
                         profile=profile)
    findings = verify_image(image, keys)
    if findings:
        for finding in findings:
            print(str(finding), file=sys.stderr)
        return 1
    if args.list:
        print(list_image(image, keys))
    Path(args.output).write_bytes(image.to_bytes())
    stats = image.stats
    obs.note(f"# wrote {args.output}: {image.code_size_bytes} bytes, "
             f"{image.num_blocks} blocks "
             f"({stats.mux_blocks} mux, {stats.tree_nodes} tree), "
             f"expansion {stats.expansion_ratio:.2f}x, verified OK")
    return 0


def cmd_run_protected(args) -> int:
    image = SofiaImage.from_bytes(Path(args.image).read_bytes())
    # provision the device for the image's embedded design point (the
    # cipher datapath is fixed at manufacturing; the operator running
    # this command is the provisioner)
    keys = DeviceKeys.from_seed(args.seed).for_profile(image.profile)
    result = core.run_protected(image, keys,
                                max_instructions=args.max_instructions,
                                engine=args.engine)
    return _print_result(result)


def cmd_disasm(args) -> int:
    program = _load_program(args.source)
    exe = core.link_vanilla(program)
    print(dump(exe.code_words, exe.code_base))
    return 0


def cmd_trace(args) -> int:
    program = _load_program(args.source)
    machine = VanillaMachine(core.link_vanilla(program))
    for entry in trace_vanilla(machine, max_instructions=args.limit):
        print(entry.render())
    return 0


def _jobs_arg(value: str) -> int:
    """argparse type for ``--jobs``: a non-negative worker count."""
    jobs = int(value)
    if jobs < 0:
        raise argparse.ArgumentTypeError(
            f"jobs must be >= 0 (0 = one per CPU), got {jobs}")
    return jobs


def _shard_arg(value: str):
    """argparse type for ``--shard``: a 1-based ``i/n`` spec."""
    from .runner import parse_shard
    try:
        return parse_shard(value)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc))


def _check_shard(args) -> Optional[str]:
    """Usage error for a ``--shard`` given without ``--resume``."""
    if args.shard is not None and args.resume is None:
        return ("--shard needs --resume DIR: without a result store the "
                "shard's results would be lost")
    return None


def _shard_note(args, progress: str) -> None:
    """Progress note for a sharded (incomplete) campaign invocation."""
    obs.note(f"# shard {args.shard.label}: {progress} into {args.resume}; "
             f"run the other shards, `repro merge` their stores, then "
             f"rerun with --resume only to emit the campaign artifacts")


def _add_store_args(p) -> None:
    """``--resume`` / ``--shard`` flags shared by campaign subcommands."""
    p.add_argument("--resume", metavar="DIR", default=None,
                   help="persistent result store: load cached task "
                        "results from DIR and execute only the missing "
                        "ones (created if absent)")
    p.add_argument("--shard", type=_shard_arg, default=None,
                   metavar="I/N",
                   help="execute one deterministic slice of the task "
                        "list: 1-based shard I of N (requires --resume)")


def _add_obs_args(p) -> None:
    """``--telemetry`` / ``--progress`` flags shared by campaign commands."""
    p.add_argument("--telemetry", metavar="DIR", default=None,
                   help="record structured events, merged metrics and a "
                        "chrome-trace timeline under DIR (strictly "
                        "observational; see `repro stats DIR`)")
    p.add_argument("--progress", action="store_true",
                   help="throttled stderr heartbeat: tasks done/total, "
                        "tasks/sec, ETA (cache/shard aware)")


def _make_telemetry(args):
    """A :class:`repro.obs.Telemetry` for this invocation, or ``None``."""
    if args.telemetry is None and not args.progress:
        return None
    return obs.Telemetry(directory=args.telemetry, progress=args.progress)


def _parse_jobs(jobs: int) -> "tuple[bool, Optional[int]]":
    """CLI ``--jobs`` value -> (parallel, jobs) runner arguments.

    ``1`` (the default) selects the serial path, ``0`` means one worker
    per CPU, any other N means N workers.
    """
    if jobs == 1:
        return False, 1
    return True, (None if jobs == 0 else jobs)


def cmd_attack(args) -> int:
    parallel, jobs = _parse_jobs(args.jobs)
    results = run_campaign(seed=args.seed, parallel=parallel, jobs=jobs,
                           export_path=args.export)
    print(format_matrix(results))
    if args.export:
        obs.note(f"# wrote {args.export}")
    return 0


def cmd_attacksynth(args) -> int:
    from .attacksynth import run_attacksynth, run_attacksynth_image
    parallel, jobs = _parse_jobs(args.jobs)
    usage_error = _check_shard(args)
    if usage_error:
        print(f"error: {usage_error}", file=sys.stderr)
        return 2
    profile = None
    if args.profile is not None:
        from .dse.grid import parse_profile_spec
        try:
            profile = parse_profile_spec(args.profile)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    if args.image is not None:
        conflicts = [flag for flag, given in
                     (("--programs", args.programs is not None),
                      ("--corpus", args.corpus is not None),
                      ("--baselines", args.baselines),
                      ("--profile", args.profile is not None),
                      ("--jobs", args.jobs != 1),
                      ("--resume", args.resume is not None),
                      ("--shard", args.shard is not None),
                      ("--telemetry", args.telemetry is not None),
                      ("--progress", args.progress)) if given]
        if conflicts:
            print(f"error: {', '.join(conflicts)} cannot be combined "
                  f"with --image (single-image mode is serial and "
                  f"observational)", file=sys.stderr)
            return 2
        image = SofiaImage.from_bytes(Path(args.image).read_bytes())
        report = run_attacksynth_image(
            image, seed=args.seed, per_program=args.per_program,
            key_seed=args.key_seed, export_path=args.export,
            csv_path=args.csv, engine=args.engine)
    else:
        programs = args.programs if args.programs is not None else 200
        telemetry = _make_telemetry(args)
        with obs.campaign(telemetry, "attacksynth",
                          {"programs": programs, "seed": args.seed,
                           "jobs": args.jobs,
                           "engine": args.engine or DEFAULT_ENGINE}):
            report = run_attacksynth(
                programs, seed=args.seed, per_program=args.per_program,
                parallel=parallel, jobs=jobs, corpus_dir=args.corpus,
                include_baselines=args.baselines, key_seed=args.key_seed,
                profile=profile, export_path=args.export,
                csv_path=args.csv, engine=args.engine,
                store_dir=args.resume, shard=args.shard,
                telemetry=telemetry)
    if report.instances == 0 and report.complete:
        for label, error in report.build_errors:
            print(f"error: {label}: {error}", file=sys.stderr)
        why = ("every program failed to build or run cleanly"
               if report.build_errors
               else "empty program set or zero per-program budget")
        print(f"error: no attack instances enumerated ({why})",
              file=sys.stderr)
        return 2
    print(report.render())
    if not report.complete:
        _shard_note(args, f"{len(report.programs)} program(s) evaluated")
        return 0 if report.ok else 1
    for path in (args.export, args.csv):
        if path:
            obs.note(f"# wrote {path}")
    return 0 if report.ok else 1


def cmd_dse(args) -> int:
    from .dse import resolve_profiles, run_dse
    from .dse.campaign import check_unroll_specs
    from .hwmodel.profilecost import parse_unroll_specs
    parallel, jobs = _parse_jobs(args.jobs)
    usage_error = _check_shard(args)
    if usage_error:
        print(f"error: {usage_error}", file=sys.stderr)
        return 2
    if args.unroll is not None and not args.hw:
        print("error: --unroll needs --hw (it parameterizes the "
              "hardware axes)", file=sys.stderr)
        return 2
    try:
        profiles = resolve_profiles(args.profiles, args.grid)
        unrolls = (parse_unroll_specs(args.unroll)
                   if args.unroll is not None else None)
        if unrolls is not None:
            check_unroll_specs(profiles, unrolls)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    workloads = ([w.strip() for w in args.workloads.split(",") if w.strip()]
                 if args.workloads else None)
    kwargs = {}
    if workloads:
        kwargs["workloads"] = workloads
    if args.hw:
        kwargs["hw"] = True
        kwargs["unrolls"] = unrolls
    telemetry = _make_telemetry(args)
    with obs.campaign(telemetry, "dse",
                      {"profiles": len(profiles), "seed": args.seed,
                       "scale": args.scale, "jobs": args.jobs,
                       "engine": args.engine or DEFAULT_ENGINE}):
        report = run_dse(profiles, seed=args.seed, key_seed=args.key_seed,
                         scale=args.scale, programs=args.programs,
                         per_model=args.per_model, parallel=parallel,
                         jobs=jobs, export_path=args.export,
                         csv_path=args.csv, engine=args.engine,
                         store_dir=args.resume, shard=args.shard,
                         telemetry=telemetry, **kwargs)
    print(report.render())
    if not report.complete:
        _shard_note(args, f"{len(report.points)} design point(s) "
                          f"evaluated")
        return 0 if report.ok else 1
    for path in (args.export, args.csv):
        if path:
            obs.note(f"# wrote {path}")
    return 0 if report.ok else 1


def cmd_fuzz(args) -> int:
    from .fuzz import run_fuzz
    parallel, jobs = _parse_jobs(args.jobs)
    usage_error = _check_shard(args)
    if usage_error:
        print(f"error: {usage_error}", file=sys.stderr)
        return 2
    telemetry = _make_telemetry(args)
    with obs.campaign(telemetry, "fuzz",
                      {"seeds": args.seeds, "seed": args.seed,
                       "batch": args.batch, "jobs": args.jobs,
                       "engine": args.engine or DEFAULT_ENGINE}):
        report = run_fuzz(seeds=args.seeds, seed=args.seed,
                          batch=args.batch,
                          parallel=parallel, jobs=jobs,
                          corpus_dir=args.corpus,
                          time_budget=args.time_budget,
                          include_baselines=args.baselines,
                          engine=args.engine,
                          store_dir=args.resume, shard=args.shard,
                          telemetry=telemetry)
    print(report.render())
    if report.pending:
        _shard_note(args, f"{report.specimens} specimen(s) replayed or "
                          f"executed (sync point)")
        return 0 if report.ok else 1
    if args.corpus:
        obs.note(f"# wrote corpus + coverage + report under {args.corpus}")
    return 0 if report.ok else 1


def cmd_fault(args) -> int:
    from .faults import run_campaign as run_fault_campaign
    from .workloads import make_workload, workload_names
    parallel, jobs = _parse_jobs(args.jobs)
    usage_error = _check_shard(args)
    if usage_error:
        print(f"error: {usage_error}", file=sys.stderr)
        return 2
    profile = None
    if args.profile is not None:
        from .dse.grid import parse_profile_spec
        try:
            profile = parse_profile_spec(args.profile)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    try:
        victim = make_workload(args.workload, args.scale)
    except KeyError:
        print(f"error: unknown workload {args.workload!r}; "
              f"known: {workload_names()}", file=sys.stderr)
        return 2
    keys = DeviceKeys.from_seed(args.key_seed)
    telemetry = _make_telemetry(args)
    with obs.campaign(telemetry, "fault",
                      {"workload": args.workload, "scale": args.scale,
                       "per_model": args.per_model, "seed": args.seed,
                       "jobs": args.jobs,
                       "engine": args.engine or DEFAULT_ENGINE}):
        results, summary = run_fault_campaign(
            victim.compile().program, keys, victim.expected_output,
            per_model=args.per_model, seed=args.seed,
            parallel=parallel, jobs=jobs, export_path=args.export,
            engine=args.engine, profile=profile,
            store_dir=args.resume, shard=args.shard, telemetry=telemetry)
    print(summary.render())
    if any(result is None for result in results):
        _shard_note(args, f"{sum(r is not None for r in results)} "
                          f"specimen(s) replayed or executed")
        return 0
    if args.export:
        obs.note(f"# wrote {args.export}")
    return 0


def cmd_montecarlo(args) -> int:
    from .security.montecarlo import forgery_scaling, tamper_detection
    parallel, jobs = _parse_jobs(args.jobs)
    telemetry = _make_telemetry(args)
    with obs.campaign(telemetry, "montecarlo",
                      {"experiments": args.experiments,
                       "tampers": args.tampers, "seed": args.seed,
                       "jobs": args.jobs}):
        scaling = forgery_scaling(experiments=args.experiments,
                                  seed=args.seed, parallel=parallel,
                                  jobs=jobs, telemetry=telemetry)
        escape = tamper_detection(bits=args.bits, tampers=args.tampers,
                                  seed=args.seed, parallel=parallel,
                                  jobs=jobs, telemetry=telemetry)
    print("Truncated-MAC Monte-Carlo (E9)")
    print(f"{'bits':>6s} {'mean trials':>14s} {'expected':>12s} "
          f"{'ratio':>7s}")
    for row in scaling:
        print(f"{row.bits:>6d} {row.mean_trials:>14.1f} "
              f"{row.expected_trials:>12.1f} {row.ratio:>7.3f}")
    print(f"tamper escape @ {escape.bits}-bit MAC: "
          f"{escape.undetected}/{escape.tampers} "
          f"({escape.escape_rate:.2e}, expected {escape.expected_rate:.2e})")
    return 0


def cmd_stats(args) -> int:
    from .obs import summarize
    try:
        text, problems = summarize(args.directory)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(text)
    return 1 if problems else 0


def cmd_version(args) -> int:
    from . import __version__
    from .runner.store import code_version
    print(f"repro {__version__}")
    print(f"code {code_version()}")
    return 0


def cmd_merge(args) -> int:
    from .runner import merge_stores
    missing = [src for src in args.sources if not Path(src).is_dir()]
    if missing:
        print(f"error: no such store: {', '.join(missing)}",
              file=sys.stderr)
        return 2
    try:
        copied, present = merge_stores(args.dest, args.sources)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    obs.note(f"# merged {len(args.sources)} store(s) into {args.dest}: "
             f"{copied} result(s) copied, {present} already present")
    return 0


_EXPERIMENTS = {
    "table1": lambda parallel, jobs: experiment_table1().render(),
    "adpcm": lambda parallel, jobs: experiment_adpcm("small").render(),
    "security": lambda parallel, jobs: experiment_security(
        100, parallel=parallel, jobs=jobs).render(),
    "blocksize": lambda parallel, jobs: render_blocksize(
        experiment_blocksize("tiny", (6, 8), parallel=parallel,
                             jobs=jobs)),
    "muxtree": lambda parallel, jobs: render_muxtree(
        experiment_muxtree((1, 2, 4, 8))),
    "unroll": lambda parallel, jobs: render_unroll(experiment_unroll()),
    "workloads": lambda parallel, jobs: format_overhead_rows(
        experiment_workloads("tiny", parallel=parallel, jobs=jobs)),
}


def cmd_report(args) -> int:
    from .eval.report import write_report
    text = write_report(args.output, scale=args.scale)
    obs.note(f"# wrote {args.output} ({len(text.splitlines())} lines)")
    return 0


def cmd_experiments(args) -> int:
    parallel, jobs = _parse_jobs(args.jobs)
    names = args.names or sorted(_EXPERIMENTS)
    for name in names:
        runner = _EXPERIMENTS.get(name)
        if runner is None:
            print(f"unknown experiment {name!r}; "
                  f"known: {sorted(_EXPERIMENTS)}", file=sys.stderr)
            return 2
        print(f"==== {name} ====")
        print(runner(parallel, jobs))
        print()
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="SOFIA reproduction toolchain")
    parser.add_argument("-q", "--quiet", action="store_true",
                        help="suppress informational '#' notes on stderr "
                             "(errors and stdout artifacts unaffected)")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("compile", help="minicc C -> SRISC assembly")
    p.add_argument("source")
    p.add_argument("-o", "--output")
    p.set_defaults(func=cmd_compile)

    p = sub.add_parser("run", help="run on the vanilla core")
    p.add_argument("source")
    p.add_argument("--max-instructions", type=int, default=50_000_000)
    p.add_argument("-O", "--optimize", action="store_true",
                   help="enable the minicc peephole optimizer")
    p.add_argument("--engine", choices=ENGINES, default=None,
                   help="execution engine (default: predecoded)")
    p.set_defaults(func=cmd_run)

    p = sub.add_parser("protect", help="build a SOFIA image")
    p.add_argument("source")
    p.add_argument("-o", "--output", required=True)
    p.add_argument("--seed", type=int, default=1,
                   help="device-key provisioning seed")
    p.add_argument("--nonce", type=int, default=0x2016,
                   help="per-binary nonce (16 bits)")
    p.add_argument("--block-words", type=int, default=8)
    p.add_argument("--schedule-stores", action="store_true",
                   help="enable the store-scheduling optimization")
    p.add_argument("--profile", metavar="SPEC",
                   help="full design point (e.g. present-80:mac32:fixed); "
                        "supersedes --block-words/--schedule-stores")
    p.add_argument("-O", "--optimize", action="store_true",
                   help="enable the minicc peephole optimizer")
    p.add_argument("--list", action="store_true",
                   help="print the decrypted listing after building")
    p.set_defaults(func=cmd_protect)

    p = sub.add_parser("run-protected", help="run a .sofia image")
    p.add_argument("image")
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--max-instructions", type=int, default=50_000_000)
    p.add_argument("--engine", choices=ENGINES, default=None,
                   help="execution engine (default: predecoded)")
    p.set_defaults(func=cmd_run_protected)

    p = sub.add_parser("disasm", help="disassemble (vanilla layout)")
    p.add_argument("source")
    p.set_defaults(func=cmd_disasm)

    p = sub.add_parser("trace", help="per-instruction execution trace")
    p.add_argument("source")
    p.add_argument("--limit", type=int, default=200)
    p.set_defaults(func=cmd_trace)

    p = sub.add_parser("attack", help="run the attack campaign (E8)")
    p.add_argument("--seed", type=int, default=1337)
    p.add_argument("-j", "--jobs", type=_jobs_arg, default=1,
                   help="worker processes (0 = one per CPU, 1 = serial)")
    p.add_argument("--export", metavar="FILE",
                   help="write the campaign results as JSON")
    p.set_defaults(func=cmd_attack)

    p = sub.add_parser(
        "attacksynth",
        help="enumerate+run synthesized attacks (E16)")
    p.add_argument("--programs", type=int, default=None,
                   help="fuzz-generated victim programs (default 200)")
    p.add_argument("--seed", type=int, default=0xA77AC2,
                   help="campaign seed (determines programs + sampling)")
    p.add_argument("--per-program", type=int, default=None,
                   help="cap on attack instances per program")
    p.add_argument("-j", "--jobs", type=_jobs_arg, default=1,
                   help="worker processes (0 = one per CPU, 1 = serial)")
    p.add_argument("--corpus", metavar="DIR",
                   help="draw victim programs from a fuzzing corpus")
    p.add_argument("--image", metavar="FILE",
                   help="attack one .sofia image instead of generated "
                        "programs (metadata-less, observational)")
    p.add_argument("--key-seed", type=int, default=0x50F1A,
                   help="device-key provisioning seed")
    p.add_argument("--export", metavar="FILE",
                   help="write the campaign record as canonical JSON")
    p.add_argument("--csv", metavar="FILE",
                   help="write the detection matrix as CSV")
    p.add_argument("--baselines", action="store_true",
                   help="also run the XOR/ECB ISR baseline machines")
    p.add_argument("--profile", metavar="SPEC",
                   help="seal the victims under this design point "
                        "(e.g. present-80:mac32:fixed)")
    p.add_argument("--engine", choices=CAMPAIGN_ENGINES, default=None,
                   help="route the campaign through this engine "
                        "(results are byte-identical)")
    _add_store_args(p)
    _add_obs_args(p)
    p.set_defaults(func=cmd_attacksynth)

    p = sub.add_parser(
        "dse", help="design-space sweep over protection profiles (E17)")
    p.add_argument("--profiles", metavar="SPECS",
                   help="comma-separated design points (e.g. "
                        "rectangle-80:mac64:sequential,present-80:mac32:"
                        "fixed); default: the full E17 grid")
    p.add_argument("--grid", metavar="AXES",
                   help="cartesian grid ciphers:mac_bits:renonce"
                        "[:block_words], e.g. rectangle-80,present-80:"
                        "32,64,96:sequential,fixed")
    p.add_argument("--seed", type=int, default=0xD5E17,
                   help="campaign seed (drives every per-point campaign)")
    p.add_argument("--key-seed", type=int, default=0x50F1A,
                   help="device-key provisioning seed")
    p.add_argument("--scale", default="tiny",
                   choices=("tiny", "small", "medium"),
                   help="workload scale for the overhead suite")
    p.add_argument("--workloads", metavar="NAMES",
                   help="comma-separated workload suite "
                        "(default: crc32,rle,sort)")
    p.add_argument("--programs", type=int, default=5,
                   help="attack-synthesis victims per design point")
    p.add_argument("--per-model", type=int, default=3,
                   help="fault specimens per model per design point")
    p.add_argument("-j", "--jobs", type=_jobs_arg, default=1,
                   help="worker processes (0 = one per CPU, 1 = serial)")
    p.add_argument("--export", metavar="FILE",
                   help="write the sweep record as canonical JSON")
    p.add_argument("--csv", metavar="FILE",
                   help="write the Pareto table as CSV")
    p.add_argument("--engine", choices=CAMPAIGN_ENGINES, default=None,
                   help="route each point's campaigns through this "
                        "engine (byte-identical)")
    p.add_argument("--hw", action="store_true",
                   help="fold the hardware axes in: per-point area/clock "
                        "from the profile cost model and the unified "
                        "3-way Pareto (E20)")
    p.add_argument("--unroll", metavar="LIST", default=None,
                   help="comma-separated cipher unroll factors and/or "
                        "'min' (requires --hw; default 'min' = each "
                        "cipher's fetch-sustaining minimum)")
    _add_store_args(p)
    _add_obs_args(p)
    p.set_defaults(func=cmd_dse)

    p = sub.add_parser("fuzz",
                       help="coverage-guided differential fuzzing (E15)")
    p.add_argument("--seeds", type=int, default=500,
                   help="number of specimens to run (default 500)")
    p.add_argument("--seed", type=int, default=0x5EED,
                   help="campaign seed (determines every specimen)")
    p.add_argument("--time-budget", type=float, default=None, metavar="SEC",
                   help="stop after SEC seconds (checked between batches; "
                        "makes the specimen count wall-clock dependent)")
    p.add_argument("-j", "--jobs", type=_jobs_arg, default=1,
                   help="worker processes (0 = one per CPU, 1 = serial)")
    p.add_argument("--corpus", metavar="DIR",
                   help="persist corpus/coverage/triage under DIR "
                        "(an existing corpus there is extended)")
    p.add_argument("--batch", type=int, default=50,
                   help="specimens per scheduling round (default 50)")
    p.add_argument("--baselines", action="store_true",
                   help="also lockstep the XOR/ECB ISR baseline machines")
    p.add_argument("--engine", choices=CAMPAIGN_ENGINES, default=None,
                   help="widen the engine axis to a three-way "
                        "reference/predecoded/ENGINE lockstep")
    _add_store_args(p)
    _add_obs_args(p)
    p.set_defaults(func=cmd_fuzz)

    p = sub.add_parser(
        "fault", help="fault-injection campaign on a workload (E11)")
    p.add_argument("--workload", default="crc32",
                   help="victim workload name (default crc32)")
    p.add_argument("--scale", default="tiny",
                   choices=("tiny", "small", "medium"))
    p.add_argument("--per-model", type=int, default=25,
                   help="fault specimens per fault model (default 25)")
    p.add_argument("--seed", type=int, default=2016,
                   help="campaign seed (drives the fault sampler)")
    p.add_argument("--key-seed", type=int, default=0x50F1A,
                   help="device-key provisioning seed")
    p.add_argument("-j", "--jobs", type=_jobs_arg, default=1,
                   help="worker processes (0 = one per CPU, 1 = serial)")
    p.add_argument("--export", metavar="FILE",
                   help="write the campaign record as canonical JSON")
    p.add_argument("--profile", metavar="SPEC",
                   help="seal the victim under this design point "
                        "(e.g. present-80:mac32:fixed)")
    p.add_argument("--engine", choices=CAMPAIGN_ENGINES, default=None,
                   help="route the specimens through this lockstep "
                        "engine (results are byte-identical)")
    _add_store_args(p)
    _add_obs_args(p)
    p.set_defaults(func=cmd_fault)

    p = sub.add_parser(
        "montecarlo", help="truncated-MAC Monte-Carlo experiments (E9)")
    p.add_argument("--experiments", type=int, default=200,
                   help="forgeries per MAC width (default 200)")
    p.add_argument("--tampers", type=int, default=4000,
                   help="random tampers for the escape-rate experiment")
    p.add_argument("--bits", type=int, default=8,
                   help="MAC width for the escape-rate experiment")
    p.add_argument("--seed", type=int, default=2016)
    p.add_argument("-j", "--jobs", type=_jobs_arg, default=1,
                   help="worker processes (0 = one per CPU, 1 = serial)")
    _add_obs_args(p)
    p.set_defaults(func=cmd_montecarlo)

    p = sub.add_parser(
        "merge", help="union sharded campaign result stores")
    p.add_argument("dest",
                   help="destination store directory (created if absent)")
    p.add_argument("sources", nargs="+", metavar="SOURCE",
                   help="shard store directories to union into DEST")
    p.set_defaults(func=cmd_merge)

    p = sub.add_parser("experiments", help="regenerate paper artifacts")
    p.add_argument("names", nargs="*",
                   help=f"subset of {sorted(_EXPERIMENTS)}")
    p.add_argument("-j", "--jobs", type=_jobs_arg, default=1,
                   help="worker processes (0 = one per CPU, 1 = serial)")
    p.set_defaults(func=cmd_experiments)

    p = sub.add_parser("report", help="write the full evaluation report")
    p.add_argument("-o", "--output", default="sofia_report.txt")
    p.add_argument("--scale", default="tiny",
                   choices=("tiny", "small", "medium"))
    p.set_defaults(func=cmd_report)

    p = sub.add_parser(
        "stats", help="summarize a --telemetry directory")
    p.add_argument("directory",
                   help="directory written by a --telemetry campaign")
    p.set_defaults(func=cmd_stats)

    p = sub.add_parser(
        "version", help="print package version + store code digest")
    p.set_defaults(func=cmd_version)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    # reset per call: tests drive main() repeatedly in-process
    obs.set_quiet(getattr(args, "quiet", False))
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except BrokenPipeError:
        # stdout closed early (e.g. `repro stats DIR | head`); point the
        # fd at devnull so interpreter shutdown doesn't re-raise
        import os
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
