"""Re-encryption (nonce rotation) tests."""

import pytest

from repro.crypto import DeviceKeys
from repro.errors import ImageError
from repro.isa import parse
from repro.sim import SofiaMachine
from repro.transform import SofiaImage, reencrypt, transform, verify_image
from repro.workloads import make_workload

KEYS = DeviceKeys.from_seed(0x4E4E)

SOURCE = """
main:
    li t0, 0
    li t1, 6
loop:
    addi t0, t0, 4
    addi t1, t1, -1
    bne t1, zero, loop
    call emit
    halt
emit:
    li t2, 0xFFFF0004
    sw t0, 0(t2)
    ret
"""


@pytest.fixture()
def image():
    return transform(parse(SOURCE), KEYS, nonce=0x1111)


class TestReencrypt:
    def test_reencrypted_image_runs_identically(self, image):
        old = SofiaMachine(image, KEYS).run()
        updated = reencrypt(image, KEYS, new_nonce=0x2222)
        new = SofiaMachine(updated, KEYS).run()
        assert old.output_ints == new.output_ints == [24]
        assert new.ok

    def test_reencrypted_image_verifies(self, image):
        updated = reencrypt(image, KEYS, new_nonce=0x2222)
        assert verify_image(updated, KEYS) == []

    def test_every_ciphertext_word_changes(self, image):
        updated = reencrypt(image, KEYS, new_nonce=0x2222)
        assert all(a != b for a, b in zip(image.words, updated.words))

    def test_equals_direct_transform_with_new_nonce(self, image):
        updated = reencrypt(image, KEYS, new_nonce=0x2222)
        direct = transform(parse(SOURCE), KEYS, nonce=0x2222)
        assert updated.words == direct.words
        assert updated.entry == direct.entry

    def test_matches_on_workload(self):
        program = make_workload("rle", "tiny").compile().program
        image = transform(program, KEYS, nonce=7)
        updated = reencrypt(image, KEYS, new_nonce=8)
        direct = transform(program, KEYS, nonce=8)
        assert updated.words == direct.words

    def test_same_nonce_rejected(self, image):
        with pytest.raises(ImageError):
            reencrypt(image, KEYS, new_nonce=image.nonce)

    def test_requires_metadata(self, image):
        stripped = SofiaImage.from_bytes(image.to_bytes())
        with pytest.raises(ImageError):
            reencrypt(stripped, KEYS, new_nonce=0x3333)

    def test_old_image_fails_on_wrong_nonce_expectation(self, image):
        # a device told the binary's nonce is 0x2222 cannot run the old
        # image: the header nonce is what the hardware uses, so model the
        # mismatch by forcing the field
        from dataclasses import replace
        stale = replace(image, nonce=0x2222)
        result = SofiaMachine(stale, KEYS).run()
        assert result.detected