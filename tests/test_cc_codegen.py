"""minicc code-generation tests: run compiled programs and check results."""

import pytest

from repro.cc import compile_source
from repro.errors import CompileError
from repro.isa import assemble
from repro.sim import VanillaMachine


def run_c(source, max_instructions=2_000_000):
    compiled = compile_source(source)
    result = VanillaMachine(assemble(compiled.program)).run(max_instructions)
    assert result.ok, result.summary()
    return result


class TestBasics:
    def test_return_value_becomes_exit_code(self):
        assert run_c("int main() { return 42; }").exit_code == 42

    def test_print_int(self):
        assert run_c("int main() { print_int(-5); return 0; }").output_ints == [-5]

    def test_print_char(self):
        r = run_c("int main() { print_char('h'); print_char('i'); return 0; }")
        assert r.output_text == "hi"

    def test_exit_builtin_stops_execution(self):
        r = run_c("int main() { exit(3); print_int(9); return 0; }")
        assert r.exit_code == 3
        assert r.output_ints == []

    def test_globals_initialized_and_mutable(self):
        r = run_c("""
        int g = 10;
        int main() { g = g + 5; print_int(g); return 0; }
        """)
        assert r.output_ints == [15]

    def test_global_array_partial_init(self):
        r = run_c("""
        int t[4] = {1, 2};
        int main() { print_int(t[0] + t[1] + t[2] + t[3]); return 0; }
        """)
        assert r.output_ints == [3]

    def test_local_array(self):
        r = run_c("""
        int main() {
            int t[5];
            for (int i = 0; i < 5; i += 1) t[i] = i * i;
            print_int(t[4] + t[3]);
            return 0;
        }
        """)
        assert r.output_ints == [25]


class TestExpressions:
    @pytest.mark.parametrize("expr,expected", [
        ("7 / 2", 3), ("-7 / 2", -3), ("7 % 3", 1), ("-7 % 3", -1),
        ("1 << 10", 1024), ("-8 >> 1", -4),
        ("5 & 3", 1), ("5 | 3", 7), ("5 ^ 3", 6),
        ("!0", 1), ("!42", 0), ("~0", -1), ("-(3)", -3),
        ("1 && 2", 1), ("0 || 0", 0), ("2 || 0", 1),
        ("3 < 4", 1), ("4 <= 4", 1), ("5 > 5", 0), ("5 >= 5", 1),
        ("3 == 3", 1), ("3 != 3", 0),
        ("1 ? 10 : 20", 10), ("0 ? 10 : 20", 20),
    ])
    def test_operator_semantics(self, expr, expected):
        r = run_c(f"int main() {{ print_int({expr}); return 0; }}")
        assert r.output_ints == [expected]

    def test_short_circuit_has_no_side_effects(self):
        r = run_c("""
        int count = 0;
        int bump() { count += 1; return 1; }
        int main() {
            int x = 0 && bump();
            int y = 1 || bump();
            print_int(count);
            print_int(x + y);
            return 0;
        }
        """)
        assert r.output_ints == [0, 1]

    def test_assignment_is_an_expression(self):
        r = run_c("""
        int main() {
            int a;
            int b = (a = 5) + 1;
            print_int(a + b);
            return 0;
        }
        """)
        assert r.output_ints == [11]

    def test_32bit_wraparound(self):
        r = run_c("""
        int main() {
            int big = 2147483647;
            print_int(big + 1);
            return 0;
        }
        """)
        assert r.output_ints == [-2147483648]


class TestFunctions:
    def test_eight_arguments(self):
        r = run_c("""
        int addall(int a, int b, int c, int d, int e, int f, int g, int h) {
            return a + b + c + d + e + f + g + h;
        }
        int main() { print_int(addall(1,2,3,4,5,6,7,8)); return 0; }
        """)
        assert r.output_ints == [36]

    def test_deep_recursion(self):
        r = run_c("""
        int sum(int n) { if (n == 0) return 0; return n + sum(n - 1); }
        int main() { print_int(sum(100)); return 0; }
        """)
        assert r.output_ints == [5050]

    def test_self_recursion_even(self):
        r = run_c("""
        int is_even(int n) {
            if (n == 0) return 1;
            if (n == 1) return 0;
            return is_even(n - 2);
        }
        int main() { print_int(is_even(10)); print_int(is_even(7)); return 0; }
        """)
        assert r.output_ints == [1, 0]

    def test_implicit_return_zero(self):
        r = run_c("int f() { } int main() { print_int(f() + 4); return 0; }")
        assert r.output_ints == [4]

    def test_arguments_evaluated_left_to_right(self):
        r = run_c("""
        int g = 0;
        int step() { g = g * 10 + 1; return g; }
        int two(int a, int b) { return a * 100 + b; }
        int main() { print_int(two(step(), step())); return 0; }
        """)
        assert r.output_ints == [100 + 11]


class TestIncrementAndDoWhile:
    def test_postfix_yields_old_value(self):
        r = run_c("""
        int main() {
            int x = 5;
            print_int(x++);
            print_int(x);
            print_int(x--);
            print_int(x);
            return 0;
        }
        """)
        assert r.output_ints == [5, 6, 6, 5]

    def test_prefix_yields_new_value(self):
        r = run_c("""
        int main() {
            int x = 5;
            print_int(++x);
            print_int(--x);
            return 0;
        }
        """)
        assert r.output_ints == [6, 5]

    def test_array_element_increment(self):
        r = run_c("""
        int t[3];
        int main() {
            t[1] = 9;
            print_int(t[1]++);
            print_int(t[1]);
            return 0;
        }
        """)
        assert r.output_ints == [9, 10]

    def test_increment_in_for_step(self):
        r = run_c("""
        int main() {
            int s = 0;
            for (int i = 0; i < 4; i++) s += i;
            print_int(s);
            return 0;
        }
        """)
        assert r.output_ints == [6]

    def test_do_while_runs_body_at_least_once(self):
        r = run_c("""
        int main() {
            int n = 0;
            do { n++; } while (0);
            print_int(n);
            return 0;
        }
        """)
        assert r.output_ints == [1]

    def test_do_while_with_break_continue(self):
        r = run_c("""
        int main() {
            int i = 0;
            int s = 0;
            do {
                i++;
                if (i == 2) continue;
                if (i == 5) break;
                s += i;
            } while (i < 100);
            print_int(s);   // 1 + 3 + 4 = 8
            print_int(i);   // 5
            return 0;
        }
        """)
        assert r.output_ints == [8, 5]

    def test_increment_needs_lvalue(self):
        with pytest.raises(CompileError):
            compile_source("int main() { ++3; return 0; }")

    def test_cannot_increment_array(self):
        with pytest.raises(CompileError):
            compile_source("int t[2]; int main() { t++; return 0; }")


class TestScoping:
    def test_block_shadowing(self):
        r = run_c("""
        int main() {
            int x = 1;
            { int x = 2; print_int(x); }
            print_int(x);
            return 0;
        }
        """)
        assert r.output_ints == [2, 1]

    def test_for_scope_variable(self):
        r = run_c("""
        int main() {
            int i = 99;
            for (int i = 0; i < 3; i += 1) { }
            print_int(i);
            return 0;
        }
        """)
        assert r.output_ints == [99]


class TestErrors:
    def test_undeclared_variable(self):
        with pytest.raises(CompileError):
            compile_source("int main() { return nope; }")

    def test_undefined_function(self):
        with pytest.raises(CompileError):
            compile_source("int main() { return nope(); }")

    def test_arity_mismatch(self):
        with pytest.raises(CompileError):
            compile_source("int f(int a) { return a; } int main() { return f(); }")

    def test_array_used_as_scalar(self):
        with pytest.raises(CompileError):
            compile_source("int t[2]; int main() { return t; }")

    def test_scalar_indexed(self):
        with pytest.raises(CompileError):
            compile_source("int x; int main() { return x[0]; }")

    def test_missing_main(self):
        with pytest.raises(CompileError):
            compile_source("int f() { return 0; }")

    def test_main_with_params_rejected(self):
        with pytest.raises(CompileError):
            compile_source("int main(int argc) { return 0; }")

    def test_break_outside_loop(self):
        with pytest.raises(CompileError):
            compile_source("int main() { break; return 0; }")

    def test_duplicate_local(self):
        with pytest.raises(CompileError):
            compile_source("int main() { int a; int a; return 0; }")

    def test_builtin_redefinition(self):
        with pytest.raises(CompileError):
            compile_source("int print_int(int x) { return x; } int main() { return 0; }")

    def test_builtin_arity(self):
        with pytest.raises(CompileError):
            compile_source("int main() { print_int(1, 2); return 0; }")
