"""Offline image-verifier tests: sound images pass, corruptions are found."""

import pytest

from repro.crypto import DeviceKeys
from repro.isa import parse
from repro.transform import SofiaImage, transform, verify_image
from repro.workloads import make_workload

KEYS = DeviceKeys.from_seed(0x7E57)

SOURCE = """
main:
    li a0, 1
    beq a0, zero, join
    jmp join
join:
    call f
    sw a0, -4(sp)
    halt
f:
    addi a0, a0, 2
    ret
"""


@pytest.fixture()
def image():
    return transform(parse(SOURCE), KEYS, nonce=0xE)


class TestCleanImages:
    def test_simple_program_verifies(self, image):
        assert verify_image(image, KEYS) == []

    def test_workload_image_verifies(self):
        program = make_workload("sort", "tiny").compile().program
        image = transform(program, KEYS, nonce=0xE2)
        assert verify_image(image, KEYS) == []

    def test_wrong_keys_fail_everywhere(self, image):
        wrong = DeviceKeys.from_seed(0xBAD)
        findings = verify_image(image, wrong)
        assert findings
        assert all(f.kind in ("mac", "decode", "target", "store-slot",
                              "cti-slot", "entry") for f in findings)


class TestCorruptions:
    def test_flipped_word_found(self, image):
        image.words[5] ^= 0x10
        findings = verify_image(image, KEYS)
        assert any(f.kind == "mac" for f in findings)

    def test_swapped_blocks_found(self, image):
        bw = image.block_words
        image.words[0:bw], image.words[bw:2 * bw] = (
            image.words[bw:2 * bw], image.words[0:bw])
        assert verify_image(image, KEYS)

    def test_finding_renders(self, image):
        image.words[3] ^= 1
        findings = verify_image(image, KEYS)
        assert findings and "block 0x" in str(findings[0])

    def test_metadata_required(self, image):
        stripped = SofiaImage.from_bytes(image.to_bytes())
        with pytest.raises(ValueError):
            verify_image(stripped, KEYS)
