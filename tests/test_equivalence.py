"""End-to-end differential property tests.

THE invariant of the whole system (paper §II: the transformation preserves
program semantics for all valid control flow): any program produces
identical architectural results and identical console output on the
vanilla core and on the SOFIA core after transformation.  Hypothesis
generates random programs at two levels:

* structured random *assembly* (straight-line blocks with forward branches
  and calls — always terminating),
* random *C expressions* compiled by minicc, additionally checked against
  a Python evaluation of the same expression (golden semantics).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cc import compile_source
from repro.crypto import DeviceKeys
from repro.isa import assemble, parse
from repro.sim import SofiaMachine, VanillaMachine
from repro.transform import TransformConfig, transform

KEYS = DeviceKeys.from_seed(1)

ALU_LINES = st.sampled_from([
    "addi t0, t0, 7",
    "add t1, t0, t1",
    "sub t0, t1, t0",
    "mul t1, t1, t0",
    "xor t0, t0, t1",
    "slli t1, t1, 1",
    "srai t0, t0, 2",
    "sltu t2, t0, t1",
    "sw t0, -4(sp)",
    "lw t1, -4(sp)",
    "sw t1, -8(sp)",
    "lw t2, -8(sp)",
])

BRANCHES = st.sampled_from(["beq", "bne", "blt", "bge", "bltu", "bgeu"])


@st.composite
def assembly_programs(draw):
    """A terminating program: N segments with forward-only branches."""
    n_segments = draw(st.integers(min_value=1, max_value=5))
    use_call = draw(st.booleans())
    lines = ["main:", "    li t0, 3", "    li t1, 5", "    li t2, 9"]
    for seg in range(n_segments):
        lines.append(f"seg{seg}:")
        for line in draw(st.lists(ALU_LINES, min_size=1, max_size=8)):
            lines.append(f"    {line}")
        if use_call and draw(st.booleans()):
            lines.append("    mv a0, t0")
            lines.append("    call helper")
            lines.append("    mv t0, a0")
        if seg + 1 < n_segments and draw(st.booleans()):
            branch = draw(BRANCHES)
            target = draw(st.integers(min_value=seg + 1,
                                      max_value=n_segments - 1))
            lines.append(f"    {branch} t0, t1, seg{target}")
    lines += [
        "    li a0, 0xFFFF0004",
        "    sw t0, 0(a0)",
        "    sw t1, 0(a0)",
        "    sw t2, 0(a0)",
        "    halt",
    ]
    if use_call:
        lines += ["helper:", "    addi a0, a0, 13",
                  "    slli a0, a0, 1", "    ret"]
    return "\n".join(lines) + "\n"


class TestAssemblyEquivalence:
    @given(source=assembly_programs(), nonce=st.integers(0, 0xFFFF))
    @settings(max_examples=30, deadline=None)
    def test_vanilla_equals_sofia(self, source, nonce):
        program = parse(source)
        vanilla = VanillaMachine(assemble(program)).run(200_000)
        image = transform(program, KEYS, nonce=nonce)
        sofia = SofiaMachine(image, KEYS).run(400_000)
        assert vanilla.ok and sofia.ok, (vanilla.summary(), sofia.summary())
        assert vanilla.output_ints == sofia.output_ints

    @given(source=assembly_programs())
    @settings(max_examples=10, deadline=None)
    def test_equivalence_with_small_blocks(self, source):
        program = parse(source)
        vanilla = VanillaMachine(assemble(program)).run(200_000)
        config = TransformConfig(block_words=6)
        image = transform(program, KEYS, nonce=3, config=config)
        sofia = SofiaMachine(image, KEYS).run(400_000)
        assert vanilla.output_ints == sofia.output_ints


# --- C expression differential tests -------------------------------------

@st.composite
def c_expressions(draw, depth=0):
    """Random int expression with guarded division (no div-by-zero/UB)."""
    if depth >= 3 or draw(st.booleans()):
        return str(draw(st.integers(min_value=-1000, max_value=1000)))
    op = draw(st.sampled_from(["+", "-", "*", "&", "|", "^", "<", ">",
                               "==", "!=", "<=", ">=", "&&", "||"]))
    left = draw(c_expressions(depth=depth + 1))
    right = draw(c_expressions(depth=depth + 1))
    return f"({left} {op} {right})"


def _wrap32(v: int) -> int:
    v &= 0xFFFFFFFF
    return v - 0x100000000 if v & 0x80000000 else v


def python_eval_c(expr: str) -> int:
    """Evaluate a generated expression with exact C int32 semantics.

    The generator emits a strict grammar — either an integer literal or
    ``(left op right)`` — so a tiny recursive parser suffices.  Comparisons
    and logical operators yield 0/1; arithmetic wraps to 32 bits.
    """
    pos = [0]

    def skip_ws():
        while pos[0] < len(expr) and expr[pos[0]] == " ":
            pos[0] += 1

    def parse() -> int:
        skip_ws()
        if expr[pos[0]] != "(":
            start = pos[0]
            if expr[pos[0]] == "-":
                pos[0] += 1
            while pos[0] < len(expr) and expr[pos[0]].isdigit():
                pos[0] += 1
            return int(expr[start:pos[0]])
        pos[0] += 1  # "("
        left = parse()
        skip_ws()
        start = pos[0]
        while expr[pos[0]] in "+-*&|^<>=!":
            pos[0] += 1
        op = expr[start:pos[0]]
        right = parse()
        skip_ws()
        assert expr[pos[0]] == ")"
        pos[0] += 1
        ops = {
            "+": lambda a, b: _wrap32(a + b),
            "-": lambda a, b: _wrap32(a - b),
            "*": lambda a, b: _wrap32(a * b),
            "&": lambda a, b: _wrap32(a & b),
            "|": lambda a, b: _wrap32(a | b),
            "^": lambda a, b: _wrap32(a ^ b),
            "<": lambda a, b: int(a < b),
            ">": lambda a, b: int(a > b),
            "==": lambda a, b: int(a == b),
            "!=": lambda a, b: int(a != b),
            "<=": lambda a, b: int(a <= b),
            ">=": lambda a, b: int(a >= b),
            "&&": lambda a, b: int(bool(a) and bool(b)),
            "||": lambda a, b: int(bool(a) or bool(b)),
        }
        return ops[op](left, right)

    return parse()


class TestCompilerDifferential:
    @given(expr=c_expressions())
    @settings(max_examples=30, deadline=None)
    def test_minicc_matches_python(self, expr):
        expected = python_eval_c(expr)
        compiled = compile_source(
            f"int main() {{ print_int({expr}); return 0; }}")
        vanilla = VanillaMachine(assemble(compiled.program)).run(500_000)
        assert vanilla.ok
        assert vanilla.output_ints == [expected]

    @given(expr=c_expressions(), nonce=st.integers(0, 0xFFFF))
    @settings(max_examples=15, deadline=None)
    def test_protected_compiler_output_matches(self, expr, nonce):
        compiled = compile_source(
            f"int main() {{ print_int({expr}); return 0; }}")
        vanilla = VanillaMachine(assemble(compiled.program)).run(500_000)
        image = transform(compiled.program, KEYS, nonce=nonce)
        sofia = SofiaMachine(image, KEYS).run(1_000_000)
        assert vanilla.output_ints == sofia.output_ints
