"""Attack campaign tests — the heart of the security reproduction.

Checks both directions: SOFIA detects every attack in the catalogue
*before any tampered store commits*, the baselines miss the documented
subset (relocation and code reuse), and on-CFG behaviour — returning to a
different legitimate call site of the same function — is correctly NOT
flagged (the inherent limit of CFG-based CFI without a shadow stack,
documented in DESIGN.md).
"""

import pytest

from repro.attacks import (ATTACKS, BENIGN_OUTPUT, Outcome, UNLOCK_VALUE,
                           build_targets, format_matrix, run_attack,
                           run_campaign, victim_program)
from repro.crypto import DeviceKeys
from repro.isa import parse
from repro.sim import SofiaMachine, Status
from repro.transform import transform


@pytest.fixture(scope="module")
def campaign():
    return run_campaign(seed=2024)


def outcomes(campaign, target):
    return {r.attack: r.outcome for r in campaign if r.target == target}


class TestCampaign:
    def test_matrix_is_complete(self, campaign):
        assert len(campaign) == len(ATTACKS) * 4

    def test_sofia_detects_every_attack(self, campaign):
        for attack, outcome in outcomes(campaign, "sofia").items():
            assert outcome is Outcome.DETECTED, (attack, outcome)

    def test_sofia_never_leaks_an_actuator_write(self, campaign):
        assert all(r.outcome is not Outcome.HIJACKED
                   for r in campaign if r.target == "sofia")

    def test_vanilla_is_hijacked_by_injection_and_reuse(self, campaign):
        v = outcomes(campaign, "vanilla")
        assert v["inject-code"] is Outcome.HIJACKED
        assert v["stack-smash"] is Outcome.HIJACKED
        assert v["pc-hijack"] is Outcome.HIJACKED
        assert v["relocate-gadget"] is Outcome.HIJACKED

    def test_isr_stops_plaintext_injection_probabilistically(self, campaign):
        for target in ("xor-isr", "ecb-isr"):
            assert outcomes(campaign, target)["inject-code"] in (
                Outcome.CRASHED, Outcome.CORRUPTED), target

    def test_isr_fails_against_relocation(self, campaign):
        # the paper's §I criticism of ECB/XOR ISR schemes
        assert outcomes(campaign, "xor-isr")["relocate-gadget"] is Outcome.HIJACKED
        assert outcomes(campaign, "ecb-isr")["relocate-gadget"] is Outcome.HIJACKED

    def test_isr_fails_against_code_reuse(self, campaign):
        for target in ("xor-isr", "ecb-isr"):
            o = outcomes(campaign, target)
            assert o["stack-smash"] is Outcome.HIJACKED, target
            assert o["pc-hijack"] is Outcome.HIJACKED, target

    def test_format_matrix_mentions_everything(self, campaign):
        text = format_matrix(campaign)
        for attack in ("bit-flip", "stack-smash"):
            assert attack in text
        for target in ("sofia", "vanilla"):
            assert target in text


class TestTargets:
    def test_clean_targets_produce_benign_output(self):
        for target in build_targets(victim_program()):
            result = target.make().run(max_instructions=100_000)
            assert result.ok
            assert result.output_ints == BENIGN_OUTPUT
            assert result.mmio.actuator == []

    def test_fresh_machine_per_attack(self):
        targets = build_targets(victim_program())
        sofia = next(t for t in targets if t.name == "sofia")
        attack = next(a for a in ATTACKS if a.name == "bit-flip")
        first = run_attack(attack, sofia)
        second = run_attack(attack, sofia)
        assert first.outcome == second.outcome == Outcome.DETECTED

    def test_detail_carries_violation_info(self):
        targets = build_targets(victim_program())
        sofia = next(t for t in targets if t.name == "sofia")
        attack = next(a for a in ATTACKS if a.name == "bit-flip")
        result = run_attack(attack, sofia)
        assert "violation" in result.detail


class TestOnCfgBehaviour:
    def test_cross_callsite_return_is_on_cfg_and_not_detected(self):
        """Returning to the *other* call site of the same function stays on
        the static CFG (both return edges originate at the same ret), so
        SOFIA decrypts correctly and does not reset — the documented
        limitation of CFG-based CFI without a shadow stack."""
        source = """
        main:
            call f
            li t0, 0xFFFF0004
            li t1, 1
            sw t1, 0(t0)
            call f
            li t0, 0xFFFF0004
            li t1, 2
            sw t1, 0(t0)
            halt
        f:
            addi a0, a0, 1
            ret
        """
        from repro.isa.registers import RA
        from repro.transform import prepare

        program = parse(source)
        keys = DeviceKeys.from_seed(5)
        image = transform(program, keys, nonce=0xC5)
        # the second return point is the leader at the instruction after
        # the second call (index 6: call=0, li(2), li, sw, call=5)
        layout = prepare(parse(source))
        ra2 = layout.leader_blocks[6].base

        machine = SofiaMachine(image, keys)
        # the entry block ends with the first call; stop right after it,
        # while f has not executed yet and ra holds return point 1
        machine.run(max_instructions=1)
        ra1 = machine.state.regs[RA]
        assert ra1 != ra2
        machine.state.regs[RA] = ra2  # divert the return cross-call-site
        result = machine.run(max_instructions=10_000)
        # not detected: the diverted return is a valid static CFG edge
        assert result.status in (Status.HALT, Status.EXIT), result.summary()
        # but the program behaved differently (the first print is skipped)
        assert result.output_ints == [2]
