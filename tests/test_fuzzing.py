"""Robustness fuzzing: decoders, parsers and containers never crash badly.

These property tests pin down *total* behaviour of the input-facing
surfaces: arbitrary or mangled inputs either parse cleanly or raise the
documented library exception — never an unrelated Python error.

Program-shaped inputs come from :mod:`repro.fuzz.generators` wrapped as
Hypothesis strategies (a genome is just a tuple of draws): the assembler
and compiler see real, structured programs plus text-level *mutations*
of them — deleted, duplicated and truncated lines — instead of the old
ad-hoc character soup, so the properties exercise the deep paths (label
resolution, section handling, codegen) on every example.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cc import compile_source, tokenize
from repro.errors import (AssemblyError, CompileError, DecodingError,
                          ImageError)
from repro.fuzz import BLOCK_WORDS, SHAPES, Genome, generate
from repro.isa import decode, disassemble_word, encode, parse
from repro.isa.assembler import assemble
from repro.transform import SofiaImage

# -- genome-backed strategies ----------------------------------------------

ASM_SHAPES = tuple(shape for shape in SHAPES if shape != "minic")


def genomes(shapes=SHAPES):
    return st.builds(
        Genome,
        shape=st.sampled_from(shapes),
        seed=st.integers(min_value=0, max_value=1 << 32),
        size=st.integers(min_value=1, max_value=3),
        block_words=st.sampled_from(BLOCK_WORDS),
        nonce=st.integers(min_value=1, max_value=0xFFFF))


def asm_sources():
    return genomes(ASM_SHAPES).map(lambda g: generate(g).source)


def c_sources():
    return genomes(("minic",)).map(lambda g: generate(g).source)


@st.composite
def mangled(draw, sources):
    """A generated program with line-level damage applied."""
    lines = draw(sources).splitlines()
    operation = draw(st.integers(min_value=0, max_value=3))
    index = draw(st.integers(min_value=0, max_value=max(0, len(lines) - 1)))
    if operation == 0:                      # delete a line
        del lines[index]
    elif operation == 1:                    # duplicate a line
        lines.insert(index, lines[index])
    elif operation == 2:                    # truncate a line mid-token
        keep = draw(st.integers(min_value=0,
                                max_value=max(0, len(lines[index]) - 1)))
        lines[index] = lines[index][:keep]
    else:                                   # swap two lines
        other = draw(st.integers(min_value=0,
                                 max_value=max(0, len(lines) - 1)))
        lines[index], lines[other] = lines[other], lines[index]
    return "\n".join(lines) + "\n"


# -- decoder totality ------------------------------------------------------

class TestDecodeFuzz:
    @given(word=st.integers(min_value=0, max_value=0xFFFFFFFF))
    @settings(max_examples=300, deadline=None)
    def test_decode_total(self, word):
        try:
            instr = decode(word, 0x100)
            # decoded instructions re-render to valid assembly text
            assert instr.render()
        except DecodingError:
            pass

    @given(word=st.integers(min_value=0, max_value=0xFFFFFFFF))
    @settings(max_examples=100, deadline=None)
    def test_disassembler_total(self, word):
        text = disassemble_word(word, 0)
        assert isinstance(text, str) and text

    @given(source=asm_sources())
    @settings(max_examples=25, deadline=None)
    def test_generated_words_roundtrip(self, source):
        """Every encoded word of a generated program decodes back."""
        exe = assemble(parse(source))
        for index, word in enumerate(exe.code_words):
            pc = exe.code_base + 4 * index
            assert encode(decode(word, pc), pc) == word


# -- assembler robustness --------------------------------------------------

class TestAssemblerFuzz:
    @given(source=asm_sources())
    @settings(max_examples=30, deadline=None)
    def test_generated_programs_parse(self, source):
        program = parse(source)
        assert program.instructions

    @given(source=mangled(asm_sources()))
    @settings(max_examples=80, deadline=None)
    def test_mangled_programs_raise_only_assembly_errors(self, source):
        try:
            parse(source)
        except AssemblyError:
            pass

    @given(text=st.text(max_size=120))
    @settings(max_examples=60, deadline=None)
    def test_arbitrary_text_total(self, text):
        # totality over the full input space, unicode included — the
        # structured strategies above never leave the generators'
        # alphabet, so this cheap property keeps the outer wall pinned
        try:
            parse("main: halt\n" + text)
        except AssemblyError:
            pass


# -- compiler robustness ---------------------------------------------------

class TestCompilerFuzz:
    @given(source=c_sources())
    @settings(max_examples=20, deadline=None)
    def test_generated_units_compile(self, source):
        compiled = compile_source(source)
        assert compiled.program.instructions

    @given(source=mangled(c_sources()))
    @settings(max_examples=60, deadline=None)
    def test_mangled_units_raise_only_compile_errors(self, source):
        try:
            compile_source(source)
        except CompileError:
            pass

    @given(source=mangled(c_sources()))
    @settings(max_examples=40, deadline=None)
    def test_lexer_total(self, source):
        try:
            tokens = tokenize(source)
            assert tokens[-1].kind == "eof"
        except CompileError:
            pass

    @given(text=st.text(max_size=100))
    @settings(max_examples=60, deadline=None)
    def test_arbitrary_text_total(self, text):
        # as for the assembler: keep compiler + lexer total over raw
        # unicode soup, not just structurally mangled programs
        try:
            compile_source(text)
        except CompileError:
            pass
        try:
            tokenize(text)
        except CompileError:
            pass


# -- image container totality ----------------------------------------------

class TestImageFuzz:
    @given(blob=st.binary(max_size=200))
    @settings(max_examples=150, deadline=None)
    def test_from_bytes_total(self, blob):
        try:
            SofiaImage.from_bytes(blob)
        except ImageError:
            pass

    @given(prefix_keep=st.integers(min_value=0, max_value=60))
    @settings(max_examples=40, deadline=None)
    def test_truncations_rejected_cleanly(self, prefix_keep):
        from repro.crypto import DeviceKeys
        from repro.transform import transform
        image = transform(parse("main: halt\n"),
                          DeviceKeys.from_seed(1), nonce=1)
        blob = image.to_bytes()
        if prefix_keep >= len(blob):
            return
        with pytest.raises(ImageError):
            SofiaImage.from_bytes(blob[:prefix_keep])


class TestDeterminism:
    def test_transform_is_deterministic(self):
        from repro.crypto import DeviceKeys
        from repro.transform import transform
        from repro.workloads import make_workload
        program = make_workload("sort", "tiny").compile().program
        keys = DeviceKeys.from_seed(5)
        a = transform(program, keys, nonce=3)
        b = transform(program, keys, nonce=3)
        assert a.words == b.words
        assert a.entry == b.entry

    def test_nonce_changes_every_word(self):
        from repro.crypto import DeviceKeys
        from repro.transform import transform
        program = parse("main: li a0, 1\n add a0, a0, a0\n halt\n")
        keys = DeviceKeys.from_seed(5)
        a = transform(program, keys, nonce=1)
        b = transform(program, keys, nonce=2)
        differing = sum(1 for x, y in zip(a.words, b.words) if x != y)
        assert differing == len(a.words)

    def test_keys_change_every_word(self):
        from repro.crypto import DeviceKeys
        from repro.transform import transform
        program = parse("main: li a0, 1\n halt\n")
        a = transform(program, DeviceKeys.from_seed(1), nonce=1)
        b = transform(program, DeviceKeys.from_seed(2), nonce=1)
        differing = sum(1 for x, y in zip(a.words, b.words) if x != y)
        assert differing == len(a.words)
