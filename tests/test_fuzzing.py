"""Robustness fuzzing: decoders, parsers and containers never crash badly.

These property tests pin down *total* behaviour of the input-facing
surfaces: arbitrary bytes/words either parse cleanly or raise the
documented library exception — never an unrelated Python error.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cc import compile_source, tokenize
from repro.errors import (AssemblyError, CompileError, DecodingError,
                          ImageError, ReproError)
from repro.isa import decode, disassemble_word, parse
from repro.transform import SofiaImage


class TestDecodeFuzz:
    @given(word=st.integers(min_value=0, max_value=0xFFFFFFFF))
    @settings(max_examples=300, deadline=None)
    def test_decode_total(self, word):
        try:
            instr = decode(word, 0x100)
            # decoded instructions re-render to valid assembly text
            assert instr.render()
        except DecodingError:
            pass

    @given(word=st.integers(min_value=0, max_value=0xFFFFFFFF))
    @settings(max_examples=100, deadline=None)
    def test_disassembler_total(self, word):
        text = disassemble_word(word, 0)
        assert isinstance(text, str) and text


class TestAssemblerFuzz:
    @given(text=st.text(
        alphabet=st.characters(min_codepoint=32, max_codepoint=126),
        max_size=120))
    @settings(max_examples=150, deadline=None)
    def test_parser_raises_only_assembly_errors(self, text):
        try:
            parse("main: halt\n" + text)
        except AssemblyError:
            pass

    @given(lines=st.lists(st.sampled_from([
        "add a0, a1, a2", "beq a0, a1, main", "lw t0, 4(sp)",
        ".data", ".word 1", "x: .word 2", ".text", "jmp main",
        "li t1, 0x123456", "ret", "call main",
    ]), max_size=12))
    @settings(max_examples=100, deadline=None)
    def test_plausible_fragments(self, lines):
        source = "main: halt\n" + "\n".join(lines) + "\n"
        try:
            parse(source)
        except AssemblyError:
            pass


class TestCompilerFuzz:
    @given(text=st.text(
        alphabet=st.characters(min_codepoint=32, max_codepoint=126),
        max_size=100))
    @settings(max_examples=150, deadline=None)
    def test_compiler_raises_only_compile_errors(self, text):
        try:
            compile_source(text)
        except CompileError:
            pass

    @given(text=st.text(max_size=60))
    @settings(max_examples=80, deadline=None)
    def test_lexer_total(self, text):
        try:
            tokens = tokenize(text)
            assert tokens[-1].kind == "eof"
        except CompileError:
            pass


class TestImageFuzz:
    @given(blob=st.binary(max_size=200))
    @settings(max_examples=150, deadline=None)
    def test_from_bytes_total(self, blob):
        try:
            SofiaImage.from_bytes(blob)
        except ImageError:
            pass

    @given(prefix_keep=st.integers(min_value=0, max_value=60))
    @settings(max_examples=40, deadline=None)
    def test_truncations_rejected_cleanly(self, prefix_keep):
        from repro.crypto import DeviceKeys
        from repro.transform import transform
        image = transform(parse("main: halt\n"),
                          DeviceKeys.from_seed(1), nonce=1)
        blob = image.to_bytes()
        if prefix_keep >= len(blob):
            return
        with pytest.raises(ImageError):
            SofiaImage.from_bytes(blob[:prefix_keep])


class TestDeterminism:
    def test_transform_is_deterministic(self):
        from repro.crypto import DeviceKeys
        from repro.transform import transform
        from repro.workloads import make_workload
        program = make_workload("sort", "tiny").compile().program
        keys = DeviceKeys.from_seed(5)
        a = transform(program, keys, nonce=3)
        b = transform(program, keys, nonce=3)
        assert a.words == b.words
        assert a.entry == b.entry

    def test_nonce_changes_every_word(self):
        from repro.crypto import DeviceKeys
        from repro.transform import transform
        program = parse("main: li a0, 1\n add a0, a0, a0\n halt\n")
        keys = DeviceKeys.from_seed(5)
        a = transform(program, keys, nonce=1)
        b = transform(program, keys, nonce=2)
        differing = sum(1 for x, y in zip(a.words, b.words) if x != y)
        assert differing == len(a.words)

    def test_keys_change_every_word(self):
        from repro.crypto import DeviceKeys
        from repro.transform import transform
        program = parse("main: li a0, 1\n halt\n")
        a = transform(program, DeviceKeys.from_seed(1), nonce=1)
        b = transform(program, DeviceKeys.from_seed(2), nonce=1)
        differing = sum(1 for x, y in zip(a.words, b.words) if x != y)
        assert differing == len(a.words)
