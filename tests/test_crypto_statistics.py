"""Statistical quality tests on the CTR keystream and the ciphers.

Lightweight NIST-style checks (monobit balance, byte uniformity, serial
runs) over the keystream SOFIA actually uses — evidence that the
control-flow counter construction inherits the cipher's pseudorandomness
(ω/prevPC/PC are highly structured inputs; a weak cipher could leak that
structure straight into the instruction encryption).
"""

import math

from repro.crypto import EdgeKeystream, Present80, Rectangle80


def _keystream_bits(cipher, nonce: int, words: int) -> list:
    ks = EdgeKeystream(cipher, nonce)
    bits = []
    pc = 0
    prev = 0
    for _ in range(words):
        word = ks.keystream(prev, pc)
        bits.extend((word >> b) & 1 for b in range(32))
        prev, pc = pc, pc + 4
    return bits


class TestKeystreamStatistics:
    def test_monobit_balance(self):
        bits = _keystream_bits(Rectangle80(0xA5A5A5A5A5A5A5A5A5A5),
                               nonce=1, words=512)
        ones = sum(bits)
        n = len(bits)
        # z-score of the one-count under fair coin; |z| < 4 is comfortable
        z = abs(ones - n / 2) / math.sqrt(n / 4)
        assert z < 4.0, (ones, n)

    def test_runs_count(self):
        bits = _keystream_bits(Rectangle80(0x123456789ABCDEF01234),
                               nonce=2, words=512)
        runs = 1 + sum(1 for a, b in zip(bits, bits[1:]) if a != b)
        n = len(bits)
        expected = (n + 1) / 2
        sigma = math.sqrt((n - 1) / 4)
        assert abs(runs - expected) < 5 * sigma

    def test_byte_histogram_roughly_uniform(self):
        ks = EdgeKeystream(Rectangle80(0xFEDCBA98765432101111), nonce=3)
        counts = [0] * 256
        for i in range(2048):
            word = ks.keystream(4 * i, 4 * i + 4)
            for shift in (0, 8, 16, 24):
                counts[(word >> shift) & 0xFF] += 1
        total = sum(counts)
        expected = total / 256
        chi2 = sum((c - expected) ** 2 / expected for c in counts)
        # chi-square with 255 dof: mean 255, std ~22.6; 400 is ~6 sigma
        assert chi2 < 400, chi2

    def test_sequential_counters_decorrelated(self):
        """Adjacent edges (structured counters!) give unrelated streams."""
        ks = EdgeKeystream(Rectangle80(0x1111222233334444AAAA), nonce=4)
        xors = []
        for i in range(256):
            a = ks.keystream(4 * i, 4 * i + 4)
            b = ks.keystream(4 * i + 4, 4 * i + 8)
            xors.append(bin(a ^ b).count("1"))
        mean_distance = sum(xors) / len(xors)
        assert 13 < mean_distance < 19  # ideal: 16 of 32 bits differ

    def test_present_keystream_also_balanced(self):
        bits = _keystream_bits(Present80(0x0F0E0D0C0B0A09080706),
                               nonce=5, words=256)
        ones = sum(bits)
        n = len(bits)
        z = abs(ones - n / 2) / math.sqrt(n / 4)
        assert z < 4.0


class TestCipherDiffusion:
    def test_rectangle_counter_bit_sensitivity(self):
        """Flipping any single counter bit flips ~half the keystream."""
        cipher = Rectangle80(0x99887766554433221100)
        base = cipher.encrypt(0x0123456789ABCDEF)
        weights = []
        for bit in range(0, 64, 4):
            other = cipher.encrypt(0x0123456789ABCDEF ^ (1 << bit))
            weights.append(bin(base ^ other).count("1"))
        assert 24 < sum(weights) / len(weights) < 40

    def test_no_trivial_keystream_reuse_across_nonces(self):
        cipher = Rectangle80(0xABCDEFABCDEFABCDEFAB)
        a = EdgeKeystream(cipher, nonce=1)
        b = EdgeKeystream(cipher, nonce=2)
        collisions = sum(1 for i in range(256)
                         if a.keystream(4 * i, 4 * i + 4)
                         == b.keystream(4 * i, 4 * i + 4))
        assert collisions == 0
