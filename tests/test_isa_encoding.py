"""Encode/decode tests for the SRISC ISA, including round-trip properties."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DecodingError, EncodingError
from repro.isa import Instruction, SPECS, decode, encode, is_valid_word

REG = st.integers(min_value=0, max_value=31)
SIMM16 = st.integers(min_value=-0x8000, max_value=0x7FFF)
UIMM16 = st.integers(min_value=0, max_value=0xFFFF)
SHAMT = st.integers(min_value=0, max_value=31)

R_MNEMONICS = sorted(m for m, s in SPECS.items() if s.fmt == "R")
B_MNEMONICS = sorted(m for m, s in SPECS.items() if s.fmt == "B")
LOADS = ["lw", "lh", "lhu", "lb", "lbu"]
STORES = ["sw", "sh", "sb"]


class TestRoundTrip:
    @given(m=st.sampled_from(R_MNEMONICS), rd=REG, rs1=REG, rs2=REG)
    @settings(max_examples=60, deadline=None)
    def test_rtype(self, m, rd, rs1, rs2):
        instr = Instruction(m, rd=rd, rs1=rs1, rs2=rs2)
        decoded = decode(encode(instr))
        assert (decoded.mnemonic, decoded.rd, decoded.rs1, decoded.rs2) == (m, rd, rs1, rs2)

    @given(rd=REG, rs1=REG, imm=SIMM16)
    @settings(max_examples=40, deadline=None)
    def test_addi(self, rd, rs1, imm):
        decoded = decode(encode(Instruction("addi", rd=rd, rs1=rs1, imm=imm)))
        assert (decoded.rd, decoded.rs1, decoded.imm) == (rd, rs1, imm)

    @given(rd=REG, rs1=REG, imm=UIMM16)
    @settings(max_examples=40, deadline=None)
    def test_zero_extended_ori(self, rd, rs1, imm):
        decoded = decode(encode(Instruction("ori", rd=rd, rs1=rs1, imm=imm)))
        assert decoded.imm == imm

    @given(rd=REG, imm=UIMM16)
    @settings(max_examples=30, deadline=None)
    def test_lui(self, rd, imm):
        decoded = decode(encode(Instruction("lui", rd=rd, imm=imm)))
        assert (decoded.rd, decoded.imm) == (rd, imm)

    @given(rd=REG, rs1=REG, imm=SHAMT, m=st.sampled_from(["slli", "srli", "srai"]))
    @settings(max_examples=30, deadline=None)
    def test_shifts(self, rd, rs1, imm, m):
        decoded = decode(encode(Instruction(m, rd=rd, rs1=rs1, imm=imm)))
        assert decoded.imm == imm

    @given(m=st.sampled_from(LOADS), rd=REG, rs1=REG, imm=SIMM16)
    @settings(max_examples=40, deadline=None)
    def test_loads(self, m, rd, rs1, imm):
        decoded = decode(encode(Instruction(m, rd=rd, rs1=rs1, imm=imm)))
        assert (decoded.rd, decoded.rs1, decoded.imm) == (rd, rs1, imm)

    @given(m=st.sampled_from(STORES), rs2=REG, rs1=REG, imm=SIMM16)
    @settings(max_examples=40, deadline=None)
    def test_stores(self, m, rs2, rs1, imm):
        decoded = decode(encode(Instruction(m, rs2=rs2, rs1=rs1, imm=imm)))
        assert (decoded.rs2, decoded.rs1, decoded.imm) == (rs2, rs1, imm)

    @given(m=st.sampled_from(B_MNEMONICS), rs1=REG, rs2=REG,
           pc_words=st.integers(min_value=0, max_value=1 << 20),
           offset=st.integers(min_value=-0x8000, max_value=0x7FFF))
    @settings(max_examples=60, deadline=None)
    def test_branches_pc_relative(self, m, rs1, rs2, pc_words, offset):
        pc = 4 * pc_words
        target = pc + 4 * offset
        if target < 0:
            return
        instr = Instruction(m, rs1=rs1, rs2=rs2, imm=target)
        decoded = decode(encode(instr, pc), pc)
        assert decoded.imm == target

    @given(target_words=st.integers(min_value=0, max_value=(1 << 26) - 1),
           m=st.sampled_from(["jmp", "call"]))
    @settings(max_examples=40, deadline=None)
    def test_jumps_absolute(self, target_words, m):
        target = target_words * 4
        decoded = decode(encode(Instruction(m, imm=target)))
        assert decoded.imm == target

    def test_jr_and_jalr(self):
        assert decode(encode(Instruction("jr", rs1=5))).rs1 == 5
        decoded = decode(encode(Instruction("jalr", rd=1, rs1=9)))
        assert (decoded.rd, decoded.rs1) == (1, 9)

    def test_nop_and_halt(self):
        assert decode(encode(Instruction("nop"))).mnemonic == "nop"
        assert decode(encode(Instruction("halt"))).mnemonic == "halt"
        assert encode(Instruction("nop")) == 0


class TestEncodeErrors:
    def test_branch_out_of_range(self):
        instr = Instruction("beq", rs1=0, rs2=0, imm=4 * 0x9000)
        with pytest.raises(EncodingError):
            encode(instr, 0)

    def test_misaligned_branch_target(self):
        with pytest.raises(EncodingError):
            encode(Instruction("beq", rs1=0, rs2=0, imm=6), 0)

    def test_immediate_out_of_range(self):
        with pytest.raises(EncodingError):
            encode(Instruction("addi", rd=1, rs1=0, imm=0x8000))

    def test_zero_extended_rejects_negative(self):
        with pytest.raises(EncodingError):
            encode(Instruction("ori", rd=1, rs1=0, imm=-1))

    def test_shift_amount_out_of_range(self):
        with pytest.raises(EncodingError):
            encode(Instruction("slli", rd=1, rs1=1, imm=32))

    def test_missing_register(self):
        with pytest.raises(EncodingError):
            encode(Instruction("add", rd=1, rs1=2))

    def test_unresolved_symbol_rejected(self):
        with pytest.raises(EncodingError):
            encode(Instruction("jmp", symbol="loop"))

    def test_jump_target_too_large(self):
        with pytest.raises(EncodingError):
            encode(Instruction("jmp", imm=4 << 26))


class TestDecodeErrors:
    def test_invalid_opcode(self):
        with pytest.raises(DecodingError):
            decode(0x3F << 26)

    def test_is_valid_word(self):
        assert is_valid_word(encode(Instruction("add", rd=1, rs1=2, rs2=3)))
        assert not is_valid_word(0xFFFFFFFF)


class TestCanonicalRoundTrip:
    """``encode(decode(w), pc) == w`` for every decodable word.

    Each regression below pins a fuzzer-found totality bug: words with
    garbage in unused field bits used to decode to an instruction whose
    re-encoding differed from the original word (the decoder silently
    normalized the garbage away).  Canonical decoding rejects them as
    illegal instructions instead.
    """

    @given(word=st.integers(min_value=0, max_value=0xFFFFFFFF),
           pc_words=st.integers(min_value=0, max_value=1 << 22))
    @settings(max_examples=400, deadline=None)
    def test_roundtrip_property(self, word, pc_words):
        pc = 4 * pc_words
        try:
            instr = decode(word, pc)
        except DecodingError:
            return
        assert encode(instr, pc) == word

    def test_nop_with_operand_bits_rejected(self):
        # opcode 0x00 word with garbage low bits is not a canonical nop
        assert decode(0x00000000).mnemonic == "nop"
        with pytest.raises(DecodingError):
            decode(0x00000001)
        halt = encode(Instruction("halt"))
        assert decode(halt).mnemonic == "halt"
        with pytest.raises(DecodingError):
            decode(halt | 0x00123456)

    def test_rtype_with_low_bits_rejected(self):
        word = encode(Instruction("add", rd=1, rs1=2, rs2=3))
        assert decode(word).mnemonic == "add"
        with pytest.raises(DecodingError):
            decode(word | 0x1)
        with pytest.raises(DecodingError):
            decode(word | 0x7FF)

    def test_lui_with_rs1_field_rejected(self):
        word = encode(Instruction("lui", rd=4, imm=0x1234))
        assert decode(word).imm == 0x1234
        with pytest.raises(DecodingError):
            decode(word | (7 << 16))

    def test_jr_with_rd_field_rejected(self):
        word = encode(Instruction("jr", rs1=1))
        assert decode(word).rs1 == 1
        with pytest.raises(DecodingError):
            decode(word | (3 << 21))

    def test_jr_jalr_with_imm_bits_rejected(self):
        for instr in (Instruction("jr", rs1=5),
                      Instruction("jalr", rd=1, rs1=9)):
            word = encode(instr)
            assert decode(word).mnemonic == instr.mnemonic
            with pytest.raises(DecodingError):
                decode(word | 0x8001)
