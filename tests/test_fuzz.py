"""Tests of the fuzzing subsystem itself (ISSUE 3 satellite).

Four contracts are pinned here:

* **generator validity** — every genome grows a program that builds
  (parse/compile, assemble, SOFIA-transform) and terminates cleanly on
  both cores well under the oracle's step budget;
* **corpus and minimizer mechanics** — content dedup, deterministic
  serialization, and 1-minimal (hence idempotent) reduction;
* **deterministic replay** — the same campaign seed reproduces the
  same coverage map, corpus and verdicts, serial or parallel;
* **planted bug** — corrupting one predecoded handler makes the
  differential oracle flag, minimize and triage the divergence,
  proving the campaign would catch a real engine regression.
"""

import dataclasses

import pytest

import repro.sim.engine as engine
from repro.crypto import DeviceKeys
from repro.fuzz import (Corpus, CoverageMap, Genome, SHAPES, Specimen,
                        build_program, generate, minimize, mutate,
                        random_genome, run_fuzz, run_oracle, specimen_sha,
                        triage, write_triage)
from repro.isa import assemble
from repro.runner import task_rng
from repro.sim import SofiaMachine, VanillaMachine
from repro.transform import TransformConfig, transform

KEYS = DeviceKeys.from_seed(1)

#: far below the oracle's budgets: generated specimens are *small*
STEP_CAP = 100_000


def oracle_reports(seeds, campaign_seed=3):
    rng = task_rng(campaign_seed, "test")
    return [run_oracle(generate(random_genome(rng)), KEYS)
            for _ in range(seeds)]


class TestGeneratorValidity:
    @pytest.mark.parametrize("shape", SHAPES)
    def test_every_shape_builds_and_terminates(self, shape):
        for seed in range(6):
            genome = Genome(shape=shape, seed=seed, size=1 + seed % 3,
                            block_words=(8, 6)[seed % 2], nonce=seed + 1)
            specimen = generate(genome)
            program = build_program(specimen)
            vanilla = VanillaMachine(assemble(program)).run(STEP_CAP)
            assert vanilla.ok, (shape, seed, vanilla.summary())
            image = transform(
                program, KEYS, nonce=genome.nonce,
                config=TransformConfig(block_words=genome.block_words))
            sofia = SofiaMachine(image, KEYS).run(4 * STEP_CAP)
            assert sofia.ok, (shape, seed, sofia.summary())
            assert vanilla.output_ints == sofia.output_ints

    def test_generation_is_deterministic(self):
        for shape in SHAPES:
            genome = Genome(shape=shape, seed=99)
            assert generate(genome) == generate(genome)

    def test_mutation_preserves_validity(self):
        rng = task_rng(7, "mutate-test")
        genome = random_genome(rng)
        for _ in range(12):
            genome = mutate(genome, rng)
            report = run_oracle(generate(genome), KEYS)
            assert report.ok, report.divergences

    def test_unknown_shape_rejected(self):
        with pytest.raises(ValueError):
            generate(Genome(shape="quantum", seed=1))


class TestOracleOnCleanTree:
    def test_sample_campaign_is_clean(self):
        for report in oracle_reports(10):
            assert report.ok, [d.render() for d in report.divergences]
            assert report.vanilla_status in ("halt", "exit")
            assert report.features

    def test_baseline_axis_runs_clean(self):
        genome = Genome(shape="loop", seed=5)
        report = run_oracle(generate(genome), KEYS, include_baselines=True)
        assert report.ok


class TestCorpus:
    def test_dedup_by_content(self):
        corpus = Corpus()
        specimen = generate(Genome(shape="straight", seed=1))
        assert corpus.add(specimen, ["mn:add"]) is not None
        # same source under a different genome is one corpus slot
        twin = Specimen(genome=Genome(shape="straight", seed=1, nonce=77),
                        language=specimen.language, source=specimen.source)
        assert corpus.add(twin, ["mn:sub"]) is None
        assert len(corpus) == 1

    def test_save_load_roundtrip(self, tmp_path):
        corpus = Corpus()
        for seed in range(4):
            corpus.add(generate(Genome(shape=SHAPES[seed], seed=seed)),
                       [f"mn:k{seed}"])
        corpus.save(tmp_path)
        loaded = Corpus.load(tmp_path)
        assert loaded.shas() == corpus.shas()
        assert [dataclasses.asdict(e.genome) for e in loaded.entries()] == \
            [dataclasses.asdict(e.genome) for e in corpus.entries()]

    def test_load_ignores_foreign_files(self, tmp_path):
        (tmp_path / "coverage.json").write_text('{"counts": {}}')
        (tmp_path / "notes.json").write_text('{"hello": 1}')
        assert len(Corpus.load(tmp_path)) == 0


class TestCoverageMap:
    def test_observe_reports_new_keys_once(self):
        coverage = CoverageMap()
        assert coverage.observe(["a", "b", "a"]) == ["a", "b"]
        assert coverage.observe(["a", "c"]) == ["c"]
        assert coverage.counts == {"a": 3, "b": 1, "c": 1}

    def test_rarest_is_stable(self):
        coverage = CoverageMap()
        coverage.observe(["x", "y", "y", "z", "z", "z"])
        assert coverage.rarest(2) == ["x", "y"]

    def test_json_roundtrip(self):
        coverage = CoverageMap()
        coverage.observe(["mn:add", "bi:add>sub", "oc:van:halt"])
        restored = CoverageMap.from_json(coverage.to_json())
        assert restored.counts == coverage.counts


class TestDeterministicReplay:
    def test_same_seed_same_campaign(self, tmp_path):
        first = run_fuzz(seeds=40, seed=1234,
                         corpus_dir=tmp_path / "one")
        second = run_fuzz(seeds=40, seed=1234,
                          corpus_dir=tmp_path / "two")
        assert first.ok and second.ok
        assert first.coverage.counts == second.coverage.counts
        assert first.corpus.shas() == second.corpus.shas()
        one = sorted(p.name for p in (tmp_path / "one").iterdir())
        two = sorted(p.name for p in (tmp_path / "two").iterdir())
        assert one == two
        for name in one:
            assert (tmp_path / "one" / name).read_bytes() == \
                (tmp_path / "two" / name).read_bytes()

    def test_parallel_matches_serial(self):
        serial = run_fuzz(seeds=24, seed=77)
        fanned = run_fuzz(seeds=24, seed=77, parallel=True, jobs=2)
        assert serial.coverage.counts == fanned.coverage.counts
        assert serial.corpus.shas() == fanned.corpus.shas()
        assert serial.divergences == fanned.divergences == 0

    def test_existing_corpus_is_extended(self, tmp_path):
        run_fuzz(seeds=20, seed=5, corpus_dir=tmp_path)
        before = len(Corpus.load(tmp_path))
        report = run_fuzz(seeds=20, seed=6, corpus_dir=tmp_path)
        assert len(report.corpus) >= before


# -- planted bug: the whole loop must catch an engine regression ----------

@pytest.fixture
def broken_xor_engine():
    """Corrupt the predecoded ``xor`` handler (computes OR instead)."""
    original = engine.COMPILERS["xor"]

    def bad_xor(i):
        rd, a, b = i.rd, i.rs1, i.rs2

        def run(regs, memory, pc, rd=rd, a=a, b=b):
            if rd:
                regs[rd] = regs[a] | regs[b]
            return None
        return run

    engine.COMPILERS["xor"] = bad_xor
    try:
        yield
    finally:
        engine.COMPILERS["xor"] = original


XOR_SPECIMEN = Specimen(
    genome=Genome(shape="straight", seed=0),
    language="asm",
    source="\n".join([
        "main:",
        "    li t0, 12",
        "    li t1, 10",
        "    addi t2, t0, 1",      # removable
        "    xor t0, t0, t1",      # the essential line
        "    addi t3, t1, 2",      # removable
        "    li a1, 0xFFFF0004",
        "    sw t0, 0(a1)",
        "    halt",
    ]) + "\n")


class TestPlantedBug:
    def test_oracle_flags_engine_divergence(self, broken_xor_engine):
        report = run_oracle(XOR_SPECIMEN, KEYS)
        axes = {d.axis for d in report.divergences}
        assert "vanilla-engine" in axes and "sofia-engine" in axes
        observables = {d.observable for d in report.divergences}
        assert "regs" in observables or "output_ints" in observables

    def test_campaign_catches_minimizes_and_triages(self, tmp_path,
                                                    broken_xor_engine):
        report = run_fuzz(seeds=40, seed=11, max_failures=1,
                          corpus_dir=tmp_path)
        assert not report.ok and report.divergences > 0
        record = report.failures[0]
        assert record.minimized_lines <= record.original_lines
        # the minimized specimen still reproduces under the planted bug,
        # replayed exactly as the triage record describes it
        reduced = Specimen(genome=Genome(**record.genome),
                           language=record.minimized_language,
                           source=record.minimized_source)
        assert not run_oracle(reduced, KEYS).ok
        # triage artifacts landed next to the corpus
        triage_files = sorted(
            p.name for p in (tmp_path / "triage").iterdir())
        assert f"triage-{record.sha}.json" in triage_files
        assert f"triage-{record.sha}.txt" in triage_files

    def test_minimizer_is_idempotent(self, broken_xor_engine):
        report = run_oracle(XOR_SPECIMEN, KEYS)
        axis = report.divergences[0].axis
        once = minimize(XOR_SPECIMEN, KEYS, axis)
        twice = minimize(once, KEYS, axis)
        assert once.source == twice.source
        # the reducer stripped the removable filler lines
        assert "addi t2" not in once.source
        assert "xor t0, t0, t1" in once.source

    def test_clean_tree_does_not_reproduce(self):
        # guard: without the planted bug the same specimen runs clean
        assert run_oracle(XOR_SPECIMEN, KEYS).ok

    def test_triage_record_renders(self, broken_xor_engine, tmp_path):
        report = run_oracle(XOR_SPECIMEN, KEYS)
        record = triage(report, KEYS, do_minimize=True)
        text = record.render()
        assert record.sha == specimen_sha("asm", XOR_SPECIMEN.source)
        assert "vanilla-engine" in text and "minimized specimen" in text
        path = write_triage(record, tmp_path)
        assert path.is_file()
