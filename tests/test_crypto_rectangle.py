"""Tests for the RECTANGLE-80 block cipher.

Official vectors were unavailable offline (DESIGN.md), so these tests pin
down structural correctness: exact inversion, determinism, block/key-size
validation, avalanche behaviour and key sensitivity — the PRP properties
SOFIA's security argument relies on.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.primitives import MASK64, hamming_weight
from repro.crypto.rectangle import (ROUNDS, Rectangle80, SBOX, SBOX_INV,
                                    round_constants)

BLOCKS = st.integers(min_value=0, max_value=MASK64)
KEYS = st.integers(min_value=0, max_value=(1 << 80) - 1)


class TestSbox:
    def test_sbox_is_a_permutation(self):
        assert sorted(SBOX) == list(range(16))

    def test_sbox_inverse_composes_to_identity(self):
        for x in range(16):
            assert SBOX_INV[SBOX[x]] == x
            assert SBOX[SBOX_INV[x]] == x

    def test_sbox_has_no_fixed_points(self):
        assert all(SBOX[x] != x for x in range(16))


class TestRoundConstants:
    def test_count_and_width(self):
        rcs = round_constants()
        assert len(rcs) == ROUNDS
        assert all(0 < rc < 32 for rc in rcs)

    def test_lfsr_period_covers_all_rounds_distinctly(self):
        rcs = round_constants()
        assert len(set(rcs)) == ROUNDS  # 5-bit maximal LFSR: 31 > 25 states


class TestCipher:
    def test_rejects_oversized_key(self):
        with pytest.raises(ValueError):
            Rectangle80(1 << 80)

    def test_rejects_negative_key(self):
        with pytest.raises(ValueError):
            Rectangle80(-1)

    def test_from_bytes_roundtrip(self):
        key = bytes(range(10))
        cipher = Rectangle80.from_bytes(key)
        assert cipher.key == int.from_bytes(key, "big")

    def test_from_bytes_rejects_wrong_length(self):
        with pytest.raises(ValueError):
            Rectangle80.from_bytes(b"short")

    def test_encrypt_is_deterministic(self):
        cipher = Rectangle80(0x0123456789ABCDEF0123)
        assert cipher.encrypt(0xDEADBEEFCAFEF00D) == cipher.encrypt(0xDEADBEEFCAFEF00D)

    def test_encrypt_changes_the_block(self):
        cipher = Rectangle80(0)
        assert cipher.encrypt(0) != 0

    def test_two_instances_same_key_agree(self):
        a = Rectangle80(42)
        b = Rectangle80(42)
        assert a.encrypt(7) == b.encrypt(7)

    @given(key=KEYS, block=BLOCKS)
    @settings(max_examples=40, deadline=None)
    def test_decrypt_inverts_encrypt(self, key, block):
        cipher = Rectangle80(key)
        assert cipher.decrypt(cipher.encrypt(block)) == block

    @given(key=KEYS, block=BLOCKS)
    @settings(max_examples=20, deadline=None)
    def test_encrypt_inverts_decrypt(self, key, block):
        cipher = Rectangle80(key)
        assert cipher.encrypt(cipher.decrypt(block)) == block

    def test_injective_on_sample(self):
        cipher = Rectangle80(0xA5A5A5A5A5A5A5A5A5A5)
        outputs = {cipher.encrypt(i) for i in range(512)}
        assert len(outputs) == 512

    def test_single_bit_plaintext_avalanche(self):
        cipher = Rectangle80(0x13579BDF02468ACE1122)
        base = cipher.encrypt(0)
        total = 0
        for bit in range(64):
            total += hamming_weight(base ^ cipher.encrypt(1 << bit))
        average = total / 64
        assert 24 < average < 40  # ideal PRP: ~32 flipped bits

    def test_key_avalanche(self):
        base = Rectangle80(0).encrypt(0)
        flipped = 0
        for bit in range(0, 80, 8):
            flipped += hamming_weight(base ^ Rectangle80(1 << bit).encrypt(0))
        average = flipped / 10
        assert 24 < average < 40

    def test_different_keys_give_different_ciphertexts(self):
        assert Rectangle80(1).encrypt(99) != Rectangle80(2).encrypt(99)

    def test_round_key_count(self):
        cipher = Rectangle80(3)
        assert len(cipher._round_keys) == ROUNDS + 1
