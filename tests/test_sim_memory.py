"""Memory system and I-cache tests."""

import pytest

from repro.errors import SimulationError
from repro.isa.program import (DATA_BASE, MMIO_ACTUATOR, MMIO_EXIT,
                               MMIO_PUTCHAR, MMIO_PUTINT)
from repro.sim import DirectMappedCache, Memory


@pytest.fixture
def memory():
    return Memory(code_words=[0x11111111, 0x22222222], data=b"\x01\x02\x03\x04")


class TestCodeRegion:
    def test_fetch(self, memory):
        assert memory.fetch_word(0) == 0x11111111
        assert memory.fetch_word(4) == 0x22222222

    def test_fetch_misaligned(self, memory):
        with pytest.raises(SimulationError):
            memory.fetch_word(2)

    def test_fetch_out_of_range(self, memory):
        with pytest.raises(SimulationError):
            memory.fetch_word(8)

    def test_poke_code_notifies_listeners(self, memory):
        seen = []
        memory.add_code_listener(seen.append)
        memory.poke_code(4, 0xDEAD)
        assert seen == [4]
        assert memory.fetch_word(4) == 0xDEAD

    def test_store_to_code_region_is_a_code_write(self, memory):
        seen = []
        memory.add_code_listener(seen.append)
        memory.store(0, 0x99, 4)
        assert seen == [0]
        assert memory.fetch_word(0) == 0x99

    def test_sub_word_code_store_rejected(self, memory):
        with pytest.raises(SimulationError):
            memory.store(0, 1, 1)

    def test_load_from_code_returns_ciphertext_word(self, memory):
        assert memory.load(0, 4, signed=False) == 0x11111111


class TestDataRegion:
    def test_initial_data(self, memory):
        assert memory.load(DATA_BASE, 4, signed=False) == 0x01020304

    def test_store_load_sizes(self, memory):
        memory.store(DATA_BASE + 8, 0xAABBCCDD, 4)
        assert memory.load(DATA_BASE + 8, 2, signed=False) == 0xAABB
        assert memory.load(DATA_BASE + 11, 1, signed=False) == 0xDD

    def test_misaligned_word_access(self, memory):
        with pytest.raises(SimulationError):
            memory.load(DATA_BASE + 2, 4, signed=False)
        with pytest.raises(SimulationError):
            memory.store(DATA_BASE + 1, 0, 2)

    def test_bus_error_outside_ram(self, memory):
        with pytest.raises(SimulationError):
            memory.load(0x00800000, 4, signed=False)

    def test_signed_byte_load(self, memory):
        memory.store(DATA_BASE + 16, 0xFF, 1)
        assert memory.load(DATA_BASE + 16, 1, signed=True) == 0xFFFFFFFF


class TestMMIO:
    def test_console_devices(self, memory):
        memory.store(MMIO_PUTCHAR, ord("h"), 4)
        memory.store(MMIO_PUTCHAR, ord("i"), 4)
        memory.store(MMIO_PUTINT, 0xFFFFFFFF, 4)
        memory.store(MMIO_ACTUATOR, 0x123, 4)
        assert memory.mmio.text() == "hi"
        assert memory.mmio.ints == [-1]
        assert memory.mmio.actuator == [0x123]

    def test_exit(self, memory):
        assert not memory.mmio.exit_requested
        memory.store(MMIO_EXIT, 3, 4)
        assert memory.mmio.exit_requested
        assert memory.mmio.exit_code == 3

    def test_unmapped_mmio(self, memory):
        with pytest.raises(SimulationError):
            memory.store(0xFFFF0100, 0, 4)

    def test_mmio_load_rejected(self, memory):
        with pytest.raises(SimulationError):
            memory.load(MMIO_PUTCHAR, 4, signed=False)

    def test_sub_word_mmio_store_rejected(self, memory):
        with pytest.raises(SimulationError):
            memory.store(MMIO_PUTCHAR, 1, 1)


class TestICache:
    def test_miss_then_hit(self):
        cache = DirectMappedCache(lines=4, line_words=4)
        assert not cache.access(0x0)
        assert cache.access(0x4)     # same 16-byte line
        assert cache.access(0xC)
        assert not cache.access(0x40)  # conflicting line (4 lines x 16B)

    def test_conflict_eviction(self):
        cache = DirectMappedCache(lines=2, line_words=2)
        assert not cache.access(0x00)
        assert not cache.access(0x10)  # maps to line 0 again (2 lines x 8B)
        assert not cache.access(0x00)  # evicted

    def test_stats(self):
        cache = DirectMappedCache(lines=2, line_words=2)
        cache.access(0)
        cache.access(4)
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.hit_rate == 0.5

    def test_flush(self):
        cache = DirectMappedCache(lines=2, line_words=2)
        cache.access(0)
        cache.flush()
        assert not cache.access(0)

    def test_bad_geometry(self):
        with pytest.raises(ValueError):
            DirectMappedCache(lines=3)
        with pytest.raises(ValueError):
            DirectMappedCache(lines=0)
