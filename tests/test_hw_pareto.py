"""The unified E17+hardware Pareto (E20): profile costing, senses, sweep.

Covers the profile-driven hardware cost model
(:mod:`repro.hwmodel.profilecost`), the sense-tuple generalization of the
Pareto logic, the ``@u<N>`` hw-point label language, and the ``--hw``
sweep/CLI integration — including the byte-determinism contract at any
``--jobs`` value.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cli import main
from repro.dse import (E17_SENSES, HW_SENSES, dominates, parse_hw_point,
                       pareto_mask, run_dse)
from repro.errors import HardwareModelError, ReproError
from repro.hwmodel import (cipher_hw_profile, hw_point_label, legal_unrolls,
                           min_legal_unroll, parse_unroll_specs,
                           profile_cost, profile_costs, resolve_unrolls,
                           sofia_components, sofia_profile_components)
from repro.transform import ProtectionProfile

DEFAULT = ProtectionProfile()
PRESENT64 = ProtectionProfile(cipher="present-80")


class TestProfileCost:
    def test_paper_point_reproduces_table1(self):
        hw = profile_cost(DEFAULT)  # unroll defaults to the minimum legal
        assert hw.unroll == hw.min_unroll == 13
        assert hw.slices == 7_551
        assert hw.sofia_slices == 1_662
        assert hw.datapath_slices == 1_118
        assert hw.cipher_cycles == 2
        assert round(hw.clock_mhz, 1) == 50.1
        assert hw.critical_path_ns == pytest.approx(19.96)
        assert hw.label == "rectangle-80/mac64/sequential@u13"

    def test_components_match_fixed_point_model(self):
        # the generalized component list degenerates to the Table I list
        generalized = sofia_profile_components(DEFAULT, 13)
        fixed = sofia_components()
        assert ([(c.slices, c.path_ns) for c in generalized]
                == [(c.slices, c.path_ns) for c in fixed])

    def test_min_legal_unroll_per_cipher(self):
        # ceil(rounds / 2): RECTANGLE 26 -> 13, PRESENT 31 -> 16
        assert min_legal_unroll(DEFAULT) == 13
        assert min_legal_unroll(PRESENT64) == 16
        assert legal_unrolls(DEFAULT) == range(13, 27)
        assert legal_unrolls(PRESENT64) == range(16, 32)

    def test_present_point_costs_more_area_delay(self):
        rect, present = profile_cost(DEFAULT), profile_cost(PRESENT64)
        assert present.unroll == 16
        assert present.slices > rect.slices
        assert present.clock_mhz < rect.clock_mhz
        assert present.area_delay > rect.area_delay

    def test_seal_width_scales_the_compare_block(self):
        mac32 = profile_cost(ProtectionProfile(mac_words=1))
        mac96 = profile_cost(ProtectionProfile(mac_words=3))
        hw = profile_cost(DEFAULT)
        assert mac96.slices - hw.slices == hw.slices - mac32.slices == 16

    def test_block_geometry_scales_the_counter(self):
        # bw <= 8 shares the paper's 3-bit counter; each extra bit is +4
        assert profile_cost(DEFAULT.with_block_words(6)).slices == 7_551
        assert profile_cost(DEFAULT.with_block_words(16)).slices == 7_555
        assert profile_cost(DEFAULT.with_block_words(32)).slices == 7_559

    def test_deeper_unroll_trades_area_for_clock(self):
        costs = profile_costs(DEFAULT, specs=(13, 20, 26))
        assert [c.unroll for c in costs] == [13, 20, 26]
        slices = [c.slices for c in costs]
        clocks = [c.clock_mhz for c in costs]
        assert slices == sorted(slices)
        assert clocks == sorted(clocks, reverse=True)
        assert costs[-1].cipher_cycles == 1  # fully unrolled: 1 op/cycle

    def test_illegal_unroll_raises_typed_error(self):
        with pytest.raises(HardwareModelError, match="13..26"):
            profile_cost(DEFAULT, unroll=12)  # would stall fetch
        with pytest.raises(HardwareModelError):
            profile_cost(PRESENT64, unroll=13)  # legal for RECTANGLE only
        # the typed error is both a ReproError and a ValueError
        assert issubclass(HardwareModelError, ReproError)
        assert issubclass(HardwareModelError, ValueError)

    def test_resolve_unrolls_filters_per_cipher(self):
        specs = ("min", 13, 16)
        assert resolve_unrolls(DEFAULT, specs) == [13, 16]
        assert resolve_unrolls(PRESENT64, specs) == [16]
        assert resolve_unrolls(DEFAULT) == [13]

    def test_parse_unroll_specs(self):
        assert parse_unroll_specs("min,13, 16") == ("min", 13, 16)
        with pytest.raises(ValueError, match="expected a positive"):
            parse_unroll_specs("13,bogus")
        with pytest.raises(ValueError, match="positive"):
            parse_unroll_specs("0")
        with pytest.raises(ValueError, match="empty"):
            parse_unroll_specs(" , ")

    def test_cipher_hw_profile_rounds(self):
        assert cipher_hw_profile(DEFAULT).rounds == 26
        assert cipher_hw_profile(PRESENT64).rounds == 31


# -- the hw-point label language ------------------------------------------

profiles_st = st.builds(
    ProtectionProfile,
    cipher=st.sampled_from(["rectangle-80", "present-80"]),
    mac_words=st.sampled_from([1, 2, 3]),
    renonce=st.sampled_from(["sequential", "fixed"]),
    schedule_stores=st.booleans(),
    block_words=st.sampled_from([6, 8, 12, 16, 32]),
)


@st.composite
def hw_points_st(draw):
    profile = draw(profiles_st)
    legal = legal_unrolls(profile)
    return profile, draw(st.integers(legal.start, legal[-1]))


class TestHwPointLabels:
    @given(hw_points_st())
    def test_label_round_trips(self, point):
        profile, unroll = point
        label = hw_point_label(profile, unroll)
        assert parse_hw_point(label) == (profile, unroll)
        # and profile_cost agrees on the same label
        assert profile_cost(profile, unroll).label == label

    @given(profiles_st)
    def test_bare_spec_means_minimum_unroll(self, profile):
        parsed, unroll = parse_hw_point(profile.label)
        assert parsed == profile
        assert unroll == min_legal_unroll(profile)

    def test_bad_suffixes_rejected(self):
        with pytest.raises(ValueError, match="bad unroll suffix"):
            parse_hw_point("rectangle-80:mac64@13")
        with pytest.raises(ValueError, match="not legal"):
            parse_hw_point("rectangle-80:mac64@u12")
        with pytest.raises(ValueError, match="not legal"):
            parse_hw_point("present-80:mac64@u13")


# -- sense-tuple Pareto properties ----------------------------------------

objective_st = st.floats(min_value=-1e6, max_value=1e6,
                         allow_nan=False, allow_infinity=False)
senses3_st = st.tuples(*([st.sampled_from(["min", "max"])] * 3))
points3_st = st.tuples(objective_st, objective_st, objective_st)


class TestParetoSenses:
    @given(points3_st, senses3_st)
    def test_irreflexive(self, point, senses):
        assert not dominates(point, point, senses)

    @given(points3_st, points3_st, senses3_st)
    def test_antisymmetric(self, a, b, senses):
        assert not (dominates(a, b, senses) and dominates(b, a, senses))

    @given(points3_st, points3_st)
    def test_default_senses_are_e17(self, a, b):
        assert dominates(a, b) == dominates(a, b, E17_SENSES)

    @settings(max_examples=30)
    @given(st.lists(points3_st, min_size=1, max_size=8), senses3_st)
    def test_mask_keeps_at_least_one_point(self, points, senses):
        mask = pareto_mask(points, senses)
        assert len(mask) == len(points) and any(mask)

    def test_hw_senses_semantics(self):
        # (cycle_overhead min, si_years max, area_delay min)
        assert dominates((0.2, 100.0, 1000.0), (0.3, 100.0, 1000.0),
                         HW_SENSES)
        assert dominates((0.2, 200.0, 1000.0), (0.2, 100.0, 1000.0),
                         HW_SENSES)
        assert dominates((0.2, 100.0, 900.0), (0.2, 100.0, 1000.0),
                         HW_SENSES)
        assert not dominates((0.2, 100.0, 1000.0), (0.3, 200.0, 1000.0),
                             HW_SENSES)

    def test_two_objective_senses(self):
        assert dominates((1.0, 5.0), (2.0, 5.0), ("min", "max"))
        assert dominates((1.0, 6.0), (1.0, 5.0), ("min", "max"))
        assert pareto_mask([(1.0, 5.0), (2.0, 4.0), (0.5, 6.0)],
                           ("min", "max")) == [False, False, True]

    def test_arity_and_sense_validation(self):
        with pytest.raises(ValueError, match="2 objectives need 2 senses"):
            dominates((1.0, 2.0), (1.0, 2.0))  # default senses are 3-way
        with pytest.raises(ValueError, match="arity"):
            dominates((1.0, 2.0, 3.0), (1.0, 2.0), E17_SENSES)
        with pytest.raises(ValueError, match="sense"):
            pareto_mask([(1.0, 2.0)], ("min", "best"))


# -- sweep + CLI integration ----------------------------------------------

HW_PROFILES = [DEFAULT, PRESENT64]
SWEEP_ARGS = dict(seed=77, workloads=("crc32",), scale="tiny",
                  programs=1, per_model=1)


class TestHwSweep:
    @pytest.fixture(scope="class")
    def report(self):
        return run_dse(HW_PROFILES, hw=True, unrolls=("min", 13, 16),
                       **SWEEP_ARGS)

    def test_hw_points_cover_legal_unrolls(self, report):
        assert report.hw
        labels = [p.label for p in report.hw_points]
        # RECTANGLE gets {13, 16}, PRESENT only {16} (13 stalls fetch)
        assert labels == ["rectangle-80/mac64/sequential@u13",
                          "rectangle-80/mac64/sequential@u16",
                          "present-80/mac64/sequential@u16"]

    def test_paper_point_on_the_hw_front(self, report):
        front = report.hw_pareto_labels()
        assert "rectangle-80/mac64/sequential@u13" in front

    def test_hw_rows_inherit_the_measured_objectives(self, report):
        measured = {p.label: p for p in report.points}
        for row in report.hw_points:
            point = measured[row.profile]
            assert row.cycle_overhead == point.cycle_overhead
            assert row.si_years == point.si_years
            assert row.area_delay == pytest.approx(
                row.slices * row.path_ns, rel=1e-6)

    def test_record_carries_the_hw_block(self, report):
        record = report.to_record()
        hw = record["hw"]
        assert hw["cycles_budget"] == 2
        assert hw["unrolls"] == ["min", 13, 16]
        assert len(hw["points"]) == 3
        assert "rectangle-80/mac64/sequential@u13" in hw["pareto"]

    def test_render_includes_the_hw_table(self, report):
        text = report.render()
        assert "Hardware axes (E20)" in text
        assert "@u13" in text and "hw Pareto front" in text

    def test_hw_off_record_has_no_hw_key(self):
        report = run_dse([DEFAULT], **SWEEP_ARGS)
        assert not report.hw
        assert "hw" not in report.to_record()

    def test_unrolls_without_hw_rejected(self):
        with pytest.raises(ValueError, match="hw"):
            run_dse([DEFAULT], unrolls=(13,), **SWEEP_ARGS)

    def test_illegal_unroll_for_every_cipher_rejected(self):
        with pytest.raises(ValueError, match="not legal for any"):
            run_dse(HW_PROFILES, hw=True, unrolls=(5,), **SWEEP_ARGS)

    def test_hw_exports_deterministic_across_jobs(self, tmp_path):
        paths = {name: tmp_path / name
                 for name in ("s.json", "s.csv", "p.json", "p.csv")}
        run_dse(HW_PROFILES, hw=True, export_path=paths["s.json"],
                csv_path=paths["s.csv"], **SWEEP_ARGS)
        run_dse(HW_PROFILES, hw=True, parallel=True, jobs=4,
                export_path=paths["p.json"], csv_path=paths["p.csv"],
                **SWEEP_ARGS)
        assert paths["s.json"].read_bytes() == paths["p.json"].read_bytes()
        assert paths["s.csv"].read_bytes() == paths["p.csv"].read_bytes()
        header = paths["s.csv"].read_text().splitlines()[0]
        assert header.endswith(
            "unroll,cipher_cycles,datapath_slices,slices,clock_mhz,"
            "path_ns,area_delay,hw_pareto")


class TestHwCli:
    def test_unroll_without_hw_is_usage_error(self, capsys):
        assert main(["dse", "--unroll", "13"]) == 2
        assert "--hw" in capsys.readouterr().err

    def test_illegal_unroll_is_usage_error(self, capsys):
        assert main(["dse", "--profiles", "rectangle-80:mac64",
                     "--hw", "--unroll", "5"]) == 2
        assert "not legal" in capsys.readouterr().err

    def test_hw_sweep_exports_the_unified_front(self, tmp_path, capsys):
        export = tmp_path / "hw.json"
        status = main(["dse", "--profiles",
                       "rectangle-80:mac64:sequential",
                       "--workloads", "crc32", "--programs", "1",
                       "--per-model", "1", "--seed", "77", "--hw",
                       "--export", str(export)])
        assert status == 0
        out = capsys.readouterr().out
        assert "Hardware axes (E20)" in out
        record = json.loads(export.read_text())
        assert (record["hw"]["pareto"]
                == ["rectangle-80/mac64/sequential@u13"])
        point = record["hw"]["points"][0]
        assert point["slices"] == 7_551
        assert point["clock_mhz"] == pytest.approx(50.1, abs=0.01)
