"""Workload golden-model tests: every workload, both cores, tiny scale."""

import pytest

from repro.crypto import DeviceKeys
from repro.isa import assemble
from repro.sim import SofiaMachine, VanillaMachine
from repro.transform import transform
from repro.workloads import (all_workloads, crc32_reference, fir_reference,
                             make_workload, pcm_signal, workload_names)
from repro.workloads.adpcm import STEPSIZE_TABLE, decode, encode

KEYS = DeviceKeys.from_seed(606)


class TestRegistry:
    def test_workloads_registered(self):
        assert workload_names() == ["adpcm", "controller", "crc32",
                                    "dijkstra", "fir", "matmul", "rle",
                                    "sort"]

    def test_unknown_workload(self):
        with pytest.raises(KeyError):
            make_workload("doom")

    def test_unknown_scale(self):
        with pytest.raises(ValueError):
            make_workload("adpcm", scale="galactic")


class TestSignal:
    def test_pcm_signal_is_deterministic_and_bounded(self):
        a = pcm_signal(500, seed=1)
        b = pcm_signal(500, seed=1)
        assert a == b
        assert all(-32768 <= s <= 32767 for s in a)
        assert pcm_signal(500, seed=2) != a

    def test_signal_has_dynamics(self):
        samples = pcm_signal(2000)
        assert max(samples) > 8000 and min(samples) < -8000


class TestAdpcmReference:
    def test_stepsize_table_is_the_ima_table(self):
        assert len(STEPSIZE_TABLE) == 89
        assert STEPSIZE_TABLE[0] == 7 and STEPSIZE_TABLE[-1] == 32767

    def test_codes_are_nibbles(self):
        codes, _, _ = encode(pcm_signal(300))
        assert all(0 <= c <= 15 for c in codes)

    def test_decoder_tracks_the_signal(self):
        samples = pcm_signal(500)
        codes, _, _ = encode(samples)
        decoded = decode(codes)
        mean_err = sum(abs(a - b) for a, b in zip(samples, decoded)) / 500
        assert mean_err < 2500  # 4-bit ADPCM on a noisy triangle

    def test_silence_encodes_small(self):
        codes, valpred, _ = encode([0] * 50)
        assert abs(valpred) < 64


class TestCrcReference:
    def test_known_vector(self):
        # CRC-32("123456789") = 0xCBF43926
        value = crc32_reference([ord(c) for c in "123456789"])
        assert value & 0xFFFFFFFF == 0xCBF43926

    def test_matches_zlib(self):
        import zlib
        data = list(b"The quick brown fox jumps over the lazy dog")
        assert crc32_reference(data) & 0xFFFFFFFF == zlib.crc32(bytes(data))


class TestFirReference:
    def test_impulse_response_is_taps(self):
        from repro.workloads.fir import TAPS
        impulse = [64] + [0] * 20
        out = fir_reference(impulse, TAPS)
        assert out[:len(TAPS)] == [t * 64 >> 6 for t in TAPS]


@pytest.mark.parametrize("name", workload_names())
class TestEndToEnd:
    def test_vanilla_matches_golden(self, name):
        wl = make_workload(name, scale="tiny")
        exe = assemble(wl.compile().program)
        result = VanillaMachine(exe).run()
        assert result.ok, result.summary()
        assert result.output_ints == wl.expected_output
        assert result.exit_code == wl.expected_exit

    def test_sofia_matches_golden(self, name):
        wl = make_workload(name, scale="tiny")
        image = transform(wl.compile().program, KEYS, nonce=0xAB)
        result = SofiaMachine(image, KEYS).run()
        assert result.ok, result.summary()
        assert result.output_ints == wl.expected_output


class TestScales:
    def test_scales_grow(self):
        tiny = make_workload("crc32", "tiny")
        small = make_workload("crc32", "small")
        assert len(small.c_source) > len(tiny.c_source)

    def test_all_workloads_compile(self):
        for wl in all_workloads("tiny"):
            compiled = wl.compile()
            assert compiled.program.instructions
            assert wl.compile() is compiled  # memoized
