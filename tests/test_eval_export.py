"""CSV exporter tests."""

import csv
import io

from repro.eval import (blocksize_csv, cache_csv, experiment_blocksize,
                        experiment_cache, experiment_muxtree,
                        measure_overhead, muxtree_csv, overhead_csv)
from repro.workloads import make_workload


def parse_csv(text):
    return list(csv.reader(io.StringIO(text)))


class TestExport:
    def test_overhead_csv_roundtrip(self, tmp_path):
        row = measure_overhead(make_workload("crc32", "tiny"))
        path = tmp_path / "overhead.csv"
        text = overhead_csv([row], path=str(path))
        assert path.read_text() == text
        parsed = parse_csv(text)
        assert parsed[0][0] == "workload"
        assert parsed[1][0] == "crc32"
        assert float(parsed[1][3]) > 1.0  # size ratio

    def test_muxtree_csv(self):
        points = experiment_muxtree(fan_ins=(2, 4))
        parsed = parse_csv(muxtree_csv(points))
        assert parsed[0] == ["fan_in", "tree_nodes", "mux_blocks",
                             "code_bytes", "cycles"]
        assert [r[0] for r in parsed[1:]] == ["2", "4"]

    def test_blocksize_csv(self):
        points = experiment_blocksize("tiny", (6, 8), "crc32")
        parsed = parse_csv(blocksize_csv(points))
        assert parsed[1][0] == "6" and parsed[2][0] == "8"
        assert parsed[1][2] == ""          # no forbidden slots at 6 words
        assert parsed[2][2] == "0 1"

    def test_cache_csv(self):
        points = experiment_cache("tiny", (32, 128), "crc32")
        parsed = parse_csv(cache_csv(points))
        assert len(parsed) == 3
        assert int(parsed[1][1]) == 32 * 32
