"""ProtectionProfile: codec, seal/unseal pair, and grid round-trips.

The profile refactor's contract has two halves, both pinned here:

* the **default** profile is bit-identical to the pre-profile toolchain
  (golden image hashes and run fingerprints captured from the seed
  state), and
* every **non-default** grid point (2 ciphers x {32,64,96}-bit seals x
  renonce policies) goes protect -> offline-verify -> serialize ->
  deserialize -> run and behaves exactly like the vanilla core.
"""

import hashlib

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto import DeviceKeys, Present80, Rectangle80, mac_stream, mac_words
from repro.errors import ImageError, TransformError
from repro.isa import parse
from repro.sim import SofiaMachine, Status
from repro.sim.vanilla import VanillaMachine
from repro.isa.assembler import assemble
from repro.transform import (DEFAULT_CONFIG, DEFAULT_PROFILE,
                             ProtectionProfile, SofiaImage, TransformConfig,
                             profile_grid, seal_block, transform,
                             unseal_block, verify_image)

KEYS = DeviceKeys.from_seed(0x601D)

BRANCHY = """
main:
    li t0, 5
    li t1, 0
loop:
    add t1, t1, t0
    addi t0, t0, -1
    bne t0, zero, loop
    li t2, 0xFFFF0000
    sw t1, 0(t2)
    halt
"""

CALLS = """
main:
    li a0, 3
    call double
    call double
    li t2, 0xFFFF0000
    sw a0, 0(t2)
    halt
double:
    add a0, a0, a0
    jr ra
"""

#: sha256(image.to_bytes()), cycles, instructions, output — captured from
#: the pre-profile toolchain (PR 4 seed state); the default profile must
#: reproduce these bytes and fingerprints forever.
PRE_PROFILE_GOLDENS = {
    ("branchy", 6): ("2fe17020dddd2043ce599ff9c3095a924bc018f742cc4c73606fc9b9959f0c5a", 73, 26),
    ("branchy", 8): ("2373b5996253598383bc73ea5fdd6bea04b0481193cae599c7ecda2f37a2c189", 99, 41),
    ("calls", 6): ("f4d5642b03623245938a28cdbb3accf926c35c978ff0063c462c1be92efc756c", 58, 17),
    ("calls", 8): ("96bbab4905b8f2ae632092a1c5de602accfc3e7e1c50645bcbf8a9084f707292", 78, 26),
}
SOURCES = {"branchy": BRANCHY, "calls": CALLS}

GRID = profile_grid()


class TestProfileValidation:
    def test_default_is_the_paper_design_point(self):
        assert DEFAULT_PROFILE.cipher == "rectangle-80"
        assert DEFAULT_PROFILE.mac_words == 2
        assert DEFAULT_PROFILE.mac_bits == 64
        assert DEFAULT_PROFILE.renonce == "sequential"
        assert DEFAULT_PROFILE.block_words == 8
        assert not DEFAULT_PROFILE.schedule_stores
        assert DEFAULT_PROFILE.to_config() == DEFAULT_CONFIG

    def test_unknown_cipher_rejected(self):
        with pytest.raises(ValueError, match="unknown cipher"):
            ProtectionProfile(cipher="des-56")

    def test_unsupported_seal_width_rejected(self):
        for mac_words_count in (0, 4, -1):
            with pytest.raises(ValueError, match="mac_words"):
                ProtectionProfile(mac_words=mac_words_count)

    def test_unknown_renonce_policy_rejected(self):
        with pytest.raises(ValueError, match="renonce"):
            ProtectionProfile(renonce="hourly")

    def test_geometry_must_fit_the_seal(self):
        # a 96-bit seal needs 3+1 mux words plus jmp + CTI room
        with pytest.raises(ValueError, match="block_words"):
            ProtectionProfile(mac_words=3, block_words=5)
        assert ProtectionProfile(mac_words=3, block_words=6)

    def test_mac_counts_per_kind(self):
        profile = ProtectionProfile(mac_words=3)
        assert profile.mac_count("exec") == 3
        assert profile.mac_count("mux") == 4
        assert profile.to_config().exec_capacity == 5
        assert profile.to_config().mux_capacity == 4

    def test_fixed_policy_has_no_successor_nonce(self):
        fixed = ProtectionProfile(renonce="fixed")
        assert not fixed.supports_renonce
        with pytest.raises(ValueError):
            fixed.next_nonce(7)
        assert DEFAULT_PROFILE.next_nonce(7) == 8
        assert DEFAULT_PROFILE.next_nonce(0xFFFF) == 1


class TestProfileCodec:
    def test_default_packs_to_zero(self):
        assert DEFAULT_PROFILE.to_code() == 0
        assert ProtectionProfile.from_code(0, 8) == DEFAULT_PROFILE

    def test_round_trip_over_the_grid(self):
        variants = GRID + [
            ProtectionProfile(schedule_stores=True),
            ProtectionProfile(block_words=6),
            ProtectionProfile(cipher="present-80", mac_words=3,
                              renonce="fixed", schedule_stores=True,
                              block_words=6),
        ]
        for profile in variants:
            code = profile.to_code()
            assert ProtectionProfile.from_code(
                code, profile.block_words) == profile

    def test_codes_are_distinct(self):
        codes = {p.to_code() for p in GRID}
        assert len(codes) == len(GRID)

    def test_unknown_codes_rejected(self):
        with pytest.raises(ValueError):
            ProtectionProfile.from_code(1 << 7, 8)
        with pytest.raises(ValueError):
            ProtectionProfile.from_code(0x3 << 3, 8)  # bad seal-width code

    def test_label_round_trips_through_spec_parser(self):
        from repro.dse import parse_profile_spec
        for profile in GRID + [ProtectionProfile(block_words=6,
                                                 schedule_stores=True)]:
            assert parse_profile_spec(profile.label) == profile


class TestMacStream:
    def test_two_words_match_the_paper_mac(self):
        cipher = Rectangle80(0x1234)
        message = [0xDEADBEEF, 0x12345678, 0x0BADF00D]
        assert mac_stream(cipher, message, 2) == mac_words(cipher, message)

    def test_truncation_is_a_prefix(self):
        cipher = Present80(0x99)
        message = [1, 2, 3, 4, 5]
        wide = mac_stream(cipher, message, 3)
        assert mac_stream(cipher, message, 1) == wide[:1]
        assert mac_stream(cipher, message, 2) == wide[:2]

    def test_widened_words_differ_and_are_message_sensitive(self):
        cipher = Rectangle80(0x42)
        wide_a = mac_stream(cipher, [1, 2, 3], 3)
        wide_b = mac_stream(cipher, [1, 2, 7], 3)
        assert wide_a != wide_b
        assert len(set(wide_a)) == 3  # extension words are fresh PRF output

    def test_zero_count_rejected(self):
        with pytest.raises(ValueError):
            mac_stream(Rectangle80(1), [1], 0)


class TestSealUnseal:
    @pytest.mark.parametrize("kind", ["exec", "mux"])
    @pytest.mark.parametrize("width", [1, 2, 3])
    def test_seal_then_unseal_verifies(self, kind, width):
        payload = [0x11111111, 0x22222222, 0x33333333]
        sealed = seal_block(kind, payload, KEYS, width)
        header = width if kind == "exec" else width + 1
        assert len(sealed) == header + len(payload)
        if kind == "mux":
            assert sealed[0] == sealed[1]  # duplicated M1 entry pair
            fetched = [sealed[0]] + sealed[2:]
        else:
            fetched = sealed
        out_payload, stored, computed = unseal_block(kind, fetched, KEYS,
                                                     width)
        assert out_payload == payload
        assert stored == computed

    @pytest.mark.parametrize("width", [1, 2, 3])
    def test_tampered_payload_fails_unseal(self, width):
        payload = [5, 6, 7]
        sealed = seal_block("exec", payload, KEYS, width)
        sealed[-1] ^= 1
        _out, stored, computed = unseal_block("exec", sealed, KEYS, width)
        assert stored != computed

    def test_kinds_use_distinct_keys(self):
        payload = [9, 9, 9]
        assert (seal_block("exec", payload, KEYS, 2)[:2]
                != seal_block("mux", payload, KEYS, 2)[:1])


class TestKeysForProfile:
    def test_default_profile_is_identity(self):
        assert KEYS.for_profile(DEFAULT_PROFILE) is KEYS

    def test_rebinding_keeps_the_secrets(self):
        present = KEYS.for_profile(ProtectionProfile(cipher="present-80"))
        assert present.cipher_factory is Present80
        assert tuple(present) == tuple(KEYS)
        assert isinstance(present.encryption_cipher, Present80)


class TestDefaultProfileGoldens:
    """The default profile is bit-identical to the pre-profile toolchain."""

    @pytest.mark.parametrize("name,block_words",
                             sorted(PRE_PROFILE_GOLDENS))
    def test_image_bytes_and_run_fingerprint(self, name, block_words):
        digest, cycles, instructions = PRE_PROFILE_GOLDENS[(name, block_words)]
        image = transform(parse(SOURCES[name]), KEYS, nonce=0x2016,
                          config=TransformConfig(block_words=block_words))
        assert hashlib.sha256(image.to_bytes()).hexdigest() == digest
        result = SofiaMachine(image, KEYS).run()
        assert result.ok
        assert (result.cycles, result.instructions) == (cycles, instructions)

    def test_profile_and_config_paths_build_identical_bytes(self):
        via_config = transform(parse(CALLS), KEYS, nonce=0x2016,
                               config=TransformConfig())
        via_profile = transform(parse(CALLS), KEYS, nonce=0x2016,
                                profile=DEFAULT_PROFILE)
        assert via_config.to_bytes() == via_profile.to_bytes()

    def test_conflicting_config_and_profile_rejected(self):
        with pytest.raises(TransformError, match="disagrees"):
            transform(parse(CALLS), KEYS, nonce=1,
                      config=TransformConfig(block_words=6),
                      profile=DEFAULT_PROFILE)


class TestImageProfileEmbedding:
    def test_serialization_round_trips_the_profile(self):
        for profile in GRID:
            image = transform(parse(CALLS), KEYS, nonce=0x2016,
                              profile=profile)
            assert image.profile == profile
            back = SofiaImage.from_bytes(image.to_bytes())
            assert back.profile == profile

    def test_pre_profile_blob_decodes_to_default(self):
        image = transform(parse(CALLS), KEYS, nonce=0x2016)
        blob = bytearray(image.to_bytes())
        assert image.profile == DEFAULT_PROFILE
        back = SofiaImage.from_bytes(bytes(blob))
        assert back.profile == DEFAULT_PROFILE

    def test_geometry_mismatch_rejected(self):
        with pytest.raises(ImageError, match="disagrees"):
            SofiaImage(words=[0] * 8, code_base=0x1000, nonce=1,
                       entry=0x1000, data=b"", data_base=0x8000,
                       block_words=8,
                       profile=ProtectionProfile(block_words=6))

    def test_legacy_keys_cipher_lands_in_the_profile(self):
        present_keys = DeviceKeys.from_seed(9, cipher_factory=Present80)
        image = transform(parse(CALLS), present_keys, nonce=4)
        assert image.profile.cipher == "present-80"


@st.composite
def grid_profiles(draw):
    return draw(st.sampled_from(GRID))


class TestProfileGridRoundTrip:
    """protect -> decode -> verify -> run equivalence across the grid."""

    @settings(max_examples=24, deadline=None)
    @given(profile=grid_profiles(),
           source=st.sampled_from([BRANCHY, CALLS]),
           nonce=st.integers(min_value=1, max_value=0xFFFF))
    def test_end_to_end_equivalence(self, profile, source, nonce):
        program = parse(source)
        keys = KEYS.for_profile(profile)
        image = transform(program, keys, nonce=nonce, profile=profile)
        assert verify_image(image, KEYS) == []
        vanilla = VanillaMachine(assemble(program)).run()
        restored = SofiaImage.from_bytes(image.to_bytes())
        result = SofiaMachine(restored, keys).run()
        assert result.ok
        assert result.status is vanilla.status
        assert result.output_ints == vanilla.output_ints
        assert result.exit_code == vanilla.exit_code

    @settings(max_examples=12, deadline=None)
    @given(profile=grid_profiles())
    def test_single_bit_tamper_detected(self, profile):
        keys = KEYS.for_profile(profile)
        image = transform(parse(BRANCHY), keys, nonce=0x2016,
                          profile=profile)
        machine = SofiaMachine(image, keys)
        machine.memory.poke_code(image.code_base + 4, image.words[1] ^ 1)
        result = machine.run()
        assert result.status is Status.RESET
        assert result.violation.kind == "integrity"

    def test_wrong_device_cipher_detected_per_profile(self):
        profile = ProtectionProfile(cipher="present-80")
        image = transform(parse(CALLS), KEYS.for_profile(profile),
                          nonce=0x2016, profile=profile)
        # device provisioned with the default (RECTANGLE) datapath
        result = SofiaMachine(image, KEYS).run()
        assert result.detected

    def test_provisioned_profile_ignores_header_tampering(self):
        """A strict device fuses its check parameters at provisioning:
        flipping the header's seal-width field neither downgrades its
        checks nor breaks a legitimate image."""
        image = transform(parse(BRANCHY), KEYS, nonce=0x2016)
        blob = bytearray(image.to_bytes())
        # the profile u16 is header bytes 18-19 (big-endian); set the
        # seal-width code (bits 3-4 of the low byte) to 1 = 32-bit
        blob[19] |= 1 << 3
        tampered = SofiaImage.from_bytes(bytes(blob))
        assert tampered.profile.mac_words == 1
        # header-trusting device: the downgraded split garbles the checks
        assert SofiaMachine(tampered, KEYS).run().detected
        # provisioned device: the header axis is ignored, the image runs
        strict = SofiaMachine(tampered, KEYS, profile=DEFAULT_PROFILE)
        assert strict.run().ok

    def test_protect_forwards_disagreeing_config_and_profile(self):
        from repro import core
        with pytest.raises(TransformError, match="disagrees"):
            core.protect(parse(CALLS), KEYS, nonce=1,
                         config=TransformConfig(block_words=6),
                         profile=DEFAULT_PROFILE)
