"""Tests for the instruction-level CFG builder and analyses."""

import pytest

from repro.cfg import (RESET_NODE, build_cfg, fan_in,
                       multi_predecessor_nodes, stats, unreachable_nodes)
from repro.cfg.graph import ControlFlowGraph, Edge
from repro.errors import CFGError
from repro.isa import parse


def edges_of(cfg, kind=None):
    return {(e.src, e.dst) for e in cfg.edges
            if kind is None or e.kind == kind}


class TestGraph:
    def test_add_edge_validates_range(self):
        cfg = ControlFlowGraph(num_nodes=2, entry=0)
        with pytest.raises(ValueError):
            cfg.add_edge(0, 5, "fall")
        with pytest.raises(ValueError):
            cfg.add_edge(-3, 0, "fall")

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            Edge(0, 1, "warp")

    def test_predecessor_and_successor_maps_agree(self):
        cfg = ControlFlowGraph(num_nodes=3, entry=0)
        cfg.add_edge(0, 1, "fall")
        cfg.add_edge(1, 2, "fall")
        cfg.add_edge(0, 2, "jump")
        assert {e.dst for e in cfg.successors(0)} == {1, 2}
        assert {e.src for e in cfg.predecessors(2)} == {0, 1}

    def test_reachable(self):
        cfg = ControlFlowGraph(num_nodes=3, entry=0)
        cfg.add_edge(0, 1, "fall")
        assert cfg.reachable() == {0, 1}


class TestBuilder:
    def test_straight_line(self):
        cfg = build_cfg(parse("main: nop\n nop\n halt\n"))
        assert (0, 1) in edges_of(cfg, "fall")
        assert (1, 2) in edges_of(cfg, "fall")
        assert (RESET_NODE, 0) in edges_of(cfg, "reset")

    def test_branch_has_two_successors(self):
        cfg = build_cfg(parse("""
        main:
            beq a0, a1, out
            nop
        out:
            halt
        """))
        assert (0, 2) in edges_of(cfg, "taken")
        assert (0, 1) in edges_of(cfg, "fall")

    def test_call_and_return_edges(self):
        program = parse("""
        main:
            call f
            halt
        f:
            nop
            ret
        """)
        cfg = build_cfg(program)
        assert (0, 2) in edges_of(cfg, "call")
        # f's ret (index 3) returns to the instruction after the call
        assert (3, 1) in edges_of(cfg, "return")

    def test_multiple_callers_yield_multiple_return_edges(self):
        cfg = build_cfg(parse("""
        main:
            call f
            call f
            halt
        f:
            ret
        """))
        returns = edges_of(cfg, "return")
        assert (3, 1) in returns and (3, 2) in returns

    def test_halt_has_no_successors(self):
        cfg = build_cfg(parse("main: halt\n"))
        assert not cfg.successors(0)

    def test_fall_off_end_rejected(self):
        with pytest.raises(CFGError):
            build_cfg(parse("main: nop\n addi a0, a0, 1\n"))

    def test_tail_call_rejected(self):
        # g is a real function (directly called from main); f tail-calls it
        with pytest.raises(CFGError):
            build_cfg(parse("""
            main:
                call f
                call g
                halt
            f:
                jmp g
            g:
                ret
            """))

    def test_intra_function_jmp_to_label_allowed(self):
        cfg = build_cfg(parse("""
        main:
            call f
            halt
        f:
            jmp inner
        inner:
            ret
        """))
        assert (2, 3) in edges_of(cfg, "jump")

    def test_trailing_label_target_rejected_cleanly(self):
        # fuzzer-found (repro.fuzz minimizer): a label bound past the
        # last instruction parses and assembles, but building its CFG
        # used to escape as a raw ValueError instead of CFGError
        for source in ("main:\n    li t0, 1\n    beq t0, t0, end\nend:\n",
                       "main:\n    jmp end\nend:\n",
                       "main:\n    call end\n    halt\nend:\n"):
            with pytest.raises(CFGError):
                build_cfg(parse(source))

    def test_trailing_entry_label_rejected_cleanly(self):
        # the entry label itself can be the trailing one (the reset
        # edge used to raise a raw ValueError before any CTI is seen)
        with pytest.raises(CFGError):
            build_cfg(parse("helper: halt\nmain:\n"))

    def test_indirect_without_targets_rejected(self):
        with pytest.raises(CFGError):
            build_cfg(parse("""
            main:
                la t0, f
                jalr ra, t0
                halt
            f:
                ret
            """))

    def test_annotated_indirect_call(self):
        cfg = build_cfg(parse("""
        main:
            la t0, f
            .targets f
            jalr ra, t0
            halt
        f:
            ret
        """))
        assert (2, 4) in edges_of(cfg, "icall")
        assert (4, 3) in edges_of(cfg, "return")

    def test_empty_program_rejected(self):
        program = parse("main: halt\n")
        program.instructions = []
        program.labels = {"main": 0}
        with pytest.raises(CFGError):
            build_cfg(program)


class TestAnalysis:
    def test_fan_in_counts_multi_pred(self):
        cfg = build_cfg(parse("""
        main:
            beq a0, a1, join
            nop
            jmp join
        join:
            halt
        """))
        assert fan_in(cfg)[3] == 2
        assert 3 in multi_predecessor_nodes(cfg)

    def test_unreachable_nodes(self):
        cfg = build_cfg(parse("""
        main:
            jmp end
        dead:
            nop
            jmp end
        end:
            halt
        """))
        assert unreachable_nodes(cfg) == [1, 2]

    def test_stats(self):
        cfg = build_cfg(parse("main: nop\n halt\n"))
        s = stats(cfg)
        assert s.num_nodes == 2
        assert s.reachable_nodes == 2
        assert s.max_fan_out == 1
        assert "nodes=2" in str(s)
