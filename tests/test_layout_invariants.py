"""Layout invariants over the generated program space (ISSUE 4).

DESIGN.md promises four structural invariants of *every* transformed
image; the hand workloads exercise them on a handful of layouts, these
properties pin them across fuzz-generated programs (all shapes, both
block geometries):

* blocks are contiguous and block-size aligned, and the reset entry is a
  valid entry of a block of the matching kind;
* control-transfer instructions appear only in a block's final payload
  slot, and stores never occupy a slot that would reach the MA stage
  before verification;
* multiplexor entries live at offsets 4/8, execution entries at offset
  0, and nothing is sealed anywhere else;
* the interleaved MAC words cover exactly the decrypted payload along
  every sealed edge (the offline verifier re-derives every hardware
  check and finds nothing).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.keys import DeviceKeys
from repro.fuzz import BLOCK_WORDS, SHAPES, Genome, generate
from repro.fuzz.oracle import build_program
from repro.isa.encoding import decode
from repro.transform.config import TransformConfig
from repro.transform.transformer import transform
from repro.transform.verify import verify_image

KEYS = DeviceKeys.from_seed(0x50F1A)

MAX_EXAMPLES = 30


def genomes():
    return st.builds(
        Genome,
        shape=st.sampled_from(SHAPES),
        seed=st.integers(min_value=0, max_value=1 << 32),
        size=st.integers(min_value=1, max_value=3),
        block_words=st.sampled_from(BLOCK_WORDS),
        nonce=st.integers(min_value=1, max_value=0xFFFF))


def build_image(genome):
    program = build_program(generate(genome))
    return transform(program, KEYS, nonce=genome.nonce,
                     config=TransformConfig(block_words=genome.block_words))


def decoded_payload(image, record):
    mac_count = image.block_words - record.capacity
    for slot, word in enumerate(record.plain_payload):
        address = record.base + 4 * (mac_count + slot)
        yield slot, decode(word, address)


@given(genome=genomes())
@settings(max_examples=MAX_EXAMPLES, deadline=None)
def test_blocks_are_aligned_and_contiguous(genome):
    image = build_image(genome)
    assert len(image.words) == image.num_blocks * image.block_words
    assert image.code_base % image.block_bytes == 0
    for index, record in enumerate(image.blocks):
        assert record.base == image.code_base + index * image.block_bytes
    entry_offset = (image.entry - image.code_base) % image.block_bytes
    entry_record = image.blocks[(image.entry - image.code_base)
                                // image.block_bytes]
    assert entry_offset in (0, 4, 8)
    assert entry_record.kind == ("exec" if entry_offset == 0 else "mux")


@given(genome=genomes())
@settings(max_examples=MAX_EXAMPLES, deadline=None)
def test_ctis_only_in_final_slots_and_stores_scheduled(genome):
    image = build_image(genome)
    config = TransformConfig(block_words=genome.block_words)
    for record in image.blocks:
        forbidden = config.store_forbidden_slots(record.capacity)
        for slot, instr in decoded_payload(image, record):
            if instr.is_cti:
                assert slot == record.capacity - 1, \
                    f"{instr.mnemonic} in mid-block slot {slot}"
            if instr.is_store:
                assert slot not in forbidden, \
                    f"store in forbidden slot {slot}"


@given(genome=genomes())
@settings(max_examples=MAX_EXAMPLES, deadline=None)
def test_sealed_entries_use_the_multiplexor_offsets(genome):
    image = build_image(genome)
    for record in image.blocks:
        if record.kind == "exec":
            # one sealed entry at offset 0 (real edge or the
            # unreachable-block sentinel)
            assert len(record.entry_prev_pcs) == 1
        else:
            # path 1 at base+4, path 2 at base+8, never anywhere else
            assert record.kind == "mux"
            assert len(record.entry_prev_pcs) == 2
        for prev in record.entry_prev_pcs:
            assert prev % 4 == 0


@given(genome=genomes())
@settings(max_examples=MAX_EXAMPLES, deadline=None)
def test_macs_cover_the_decrypted_payload_on_every_edge(genome):
    """The offline verifier re-derives every hardware check: each sealed
    edge decrypts to a payload whose CBC-MAC matches the interleaved MAC
    words, every direct CTI targets a valid entry of the matching block
    kind, and the reset entry is sound."""
    image = build_image(genome)
    assert verify_image(image, KEYS) == []


def test_mac_check_is_sensitive_to_a_single_bit():
    """Negative control: the MAC property above actually bites."""
    genome = Genome(shape="diamond", seed=7, size=2)
    image = build_image(genome)
    tampered = list(image.words)
    tampered[-1] ^= 1
    findings = verify_image(image.with_words(tampered), KEYS)
    assert any(finding.kind == "mac" for finding in findings)
