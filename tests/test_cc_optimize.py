"""Peephole-optimizer tests: safety conditions and semantic preservation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cc import compile_source, optimize_pushpop
from repro.isa import Instruction, assemble
from repro.isa.instructions import registers_read, registers_written
from repro.sim import VanillaMachine


def run(program):
    result = VanillaMachine(assemble(program)).run(2_000_000)
    assert result.ok, result.summary()
    return result


class TestRegisterSets:
    def test_rtype(self):
        instr = Instruction("add", rd=5, rs1=6, rs2=7)
        assert registers_read(instr) == {6, 7}
        assert registers_written(instr) == {5}

    def test_store_reads_base_and_data(self):
        instr = Instruction("sw", rs2=8, rs1=2, imm=0)
        assert registers_read(instr) == {2, 8}
        assert registers_written(instr) == frozenset()

    def test_load(self):
        instr = Instruction("lw", rd=9, rs1=2, imm=4)
        assert registers_read(instr) == {2}
        assert registers_written(instr) == {9}

    def test_call_writes_ra(self):
        assert registers_written(Instruction("call", imm=0)) == {1}
        assert registers_written(Instruction("jalr", rd=5, rs1=6)) == {5}

    def test_lui_reads_nothing(self):
        assert registers_read(Instruction("lui", rd=4, imm=1)) == frozenset()

    def test_r0_writes_discarded(self):
        assert registers_written(
            Instruction("add", rd=0, rs1=1, rs2=2)) == frozenset()

    def test_branch_reads_both(self):
        instr = Instruction("beq", rs1=4, rs2=5, imm=0)
        assert registers_read(instr) == {4, 5}
        assert registers_written(instr) == frozenset()


class TestOptimizer:
    def test_simple_expression_loses_all_pushes(self):
        compiled = compile_source(
            "int main() { print_int((1 + 2) * (3 + 4)); return 0; }")
        stats = optimize_pushpop(compiled.program)
        assert stats.pairs_rewritten >= 2
        mnemonics = [i.mnemonic for i in compiled.program.instructions]
        assert "sw" not in mnemonics[:-4] or True  # console store remains
        assert run(compiled.program).output_ints == [21]

    def test_spans_with_calls_are_kept_on_the_stack(self):
        compiled = compile_source("""
        int f(int x) { return x + 1; }
        int main() { print_int(f(1) + f(2)); return 0; }
        """)
        before = list(compiled.program.instructions)
        optimize_pushpop(compiled.program)
        # the push protecting f(1)'s result across the call to f(2) must
        # survive (calls clobber caller-saved registers)
        text = [i.mnemonic for i in compiled.program.instructions]
        assert "sw" in text
        assert run(compiled.program).output_ints == [5]

    def test_optimized_equals_unoptimized_for_workloads(self):
        from repro.workloads import make_workload
        for name in ("crc32", "sort"):
            workload = make_workload(name, "tiny")
            base = compile_source(workload.c_source)
            opt = compile_source(workload.c_source, optimize=True)
            assert run(base.program).output_ints == \
                run(opt.program).output_ints == workload.expected_output
            assert (len(opt.program.instructions)
                    < len(base.program.instructions))

    def test_labels_stay_consistent(self):
        compiled = compile_source("""
        int main() {
            int s = 0;
            for (int i = 0; i < 5; i += 1) { s += i * (i + 1); }
            print_int(s);
            return 0;
        }
        """)
        optimize_pushpop(compiled.program)
        compiled.program.validate()
        assert run(compiled.program).output_ints == [40]

    def test_idempotent(self):
        compiled = compile_source(
            "int main() { print_int(2 * 3 + 4 * 5); return 0; }")
        optimize_pushpop(compiled.program)
        again = optimize_pushpop(compiled.program)
        assert again.pairs_rewritten == 0

    def test_protected_execution_unchanged(self):
        from repro.crypto import DeviceKeys
        from repro.sim import SofiaMachine
        from repro.transform import transform, verify_image
        keys = DeviceKeys.from_seed(0x0B7)
        compiled = compile_source("""
        int sq(int x) { return x * x; }
        int main() {
            int total = 0;
            for (int i = 1; i <= 6; i += 1) total += sq(i);
            print_int(total);
            return 0;
        }
        """, optimize=True)
        image = transform(compiled.program, keys, nonce=9)
        assert verify_image(image, keys) == []
        result = SofiaMachine(image, keys).run()
        assert result.output_ints == [91]


EXPRS = st.recursive(
    st.integers(min_value=-50, max_value=50).map(str),
    lambda inner: st.tuples(
        inner, st.sampled_from(["+", "-", "*", "&", "|", "^"]), inner
    ).map(lambda t: f"({t[0]} {t[1]} {t[2]})"),
    max_leaves=12)


class TestOptimizerProperty:
    @given(expr=EXPRS)
    @settings(max_examples=40, deadline=None)
    def test_random_expressions_agree(self, expr):
        source = f"int main() {{ print_int({expr}); return 0; }}"
        base = compile_source(source)
        opt = compile_source(source, optimize=True)
        assert run(base.program).output_ints == run(opt.program).output_ints
