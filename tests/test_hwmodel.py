"""Hardware model tests: Table I calibration and scaling structure."""

import pytest

from repro.errors import HardwareModelError, ReproError
from repro.hwmodel import (CIPHER_ROUNDS, PAPER_UNROLL, PRESENT_PROFILE,
                           RECTANGLE_PROFILE, cipher_cycles_per_op,
                           cipher_datapath_slices, cipher_path_ns,
                           sofia_design, table1, unroll_ablation,
                           vanilla_design)


class TestTable1:
    def test_vanilla_matches_paper(self):
        t = table1()
        assert t.vanilla.slices == 5_889
        assert round(t.vanilla.clock_mhz, 1) == 92.3

    def test_sofia_matches_paper(self):
        t = table1()
        assert t.sofia.slices == 7_551
        assert round(t.sofia.clock_mhz, 1) == 50.1

    def test_area_overhead_28_percent(self):
        assert round(table1().area_overhead, 3) == 0.282

    def test_clock_slowdown_near_85_percent(self):
        assert abs(table1().clock_slowdown - 0.846) < 0.01

    def test_clock_ratio_for_exec_time(self):
        # the multiplier turning cycle overhead into wall-clock overhead
        assert 1.8 < table1().clock_ratio < 1.9

    def test_render_contains_both_rows(self):
        text = table1().render()
        assert "Vanilla" in text and "SOFIA" in text
        assert "28.2%" in text


class TestComponents:
    def test_sofia_is_vanilla_plus_additions(self):
        extra = sofia_design().total_slices - vanilla_design().total_slices
        assert extra == 1_662

    def test_critical_path_dominated_by_cipher(self):
        design = sofia_design()
        assert design.critical_path_ns == pytest.approx(
            cipher_path_ns(PAPER_UNROLL))

    def test_cipher_slices_scale_linearly(self):
        assert cipher_datapath_slices(26) == pytest.approx(
            2 * cipher_datapath_slices(13), abs=1)

    def test_invalid_unroll_rejected(self):
        with pytest.raises(ValueError):
            cipher_datapath_slices(0)
        with pytest.raises(ValueError):
            cipher_path_ns(27)

    def test_invalid_unroll_raises_typed_error(self):
        # HardwareModelError subclasses ValueError, so both spellings work
        with pytest.raises(HardwareModelError, match="RECTANGLE-80"):
            cipher_datapath_slices(0)
        assert issubclass(HardwareModelError, ReproError)

    def test_unroll_bounds_follow_the_cipher_round_count(self):
        # regression: the bound was hardcoded to RECTANGLE's 26 rounds,
        # so PRESENT silently rejected its own legal 27..31 factors
        assert PRESENT_PROFILE.datapath_slices(31) == round(31 * 74.0)
        assert PRESENT_PROFILE.cycles_per_op(27) == 2
        with pytest.raises(HardwareModelError, match="PRESENT-80"):
            PRESENT_PROFILE.path_ns(32)
        with pytest.raises(HardwareModelError, match="RECTANGLE-80"):
            RECTANGLE_PROFILE.cycles_per_op(27)

    def test_zero_unroll_is_a_model_error_not_a_crash(self):
        # regression: cycles_per_op(0) used to raise ZeroDivisionError
        with pytest.raises(HardwareModelError):
            cipher_cycles_per_op(0)
        with pytest.raises(HardwareModelError):
            RECTANGLE_PROFILE.cycles_per_op(-3)

    def test_min_sustaining_unroll(self):
        assert RECTANGLE_PROFILE.min_sustaining_unroll(2) == 13
        assert PRESENT_PROFILE.min_sustaining_unroll(2) == 16
        assert RECTANGLE_PROFILE.min_sustaining_unroll(1) == 26
        assert RECTANGLE_PROFILE.min_sustaining_unroll(100) == 1
        with pytest.raises(HardwareModelError, match="cycles_budget"):
            RECTANGLE_PROFILE.min_sustaining_unroll(0)

    def test_report_renders(self):
        assert "slices" in vanilla_design().report()


class TestUnrollAblation:
    def test_thirteen_is_the_minimum_sustaining_fetch(self):
        points = unroll_ablation()
        sustaining = [p.unroll for p in points if p.sustains_fetch]
        assert min(sustaining) == PAPER_UNROLL == 13

    def test_cipher_cycles_monotone_nonincreasing(self):
        points = unroll_ablation()
        cycles = [p.cipher_cycles for p in points]
        assert cycles == sorted(cycles, reverse=True)
        assert cipher_cycles_per_op(26) == 1
        assert cipher_cycles_per_op(1) == CIPHER_ROUNDS

    def test_clock_decreases_with_unroll(self):
        points = unroll_ablation()
        clocks = [p.clock_mhz for p in points]
        assert all(a >= b for a, b in zip(clocks, clocks[1:]))

    def test_area_increases_with_unroll(self):
        points = unroll_ablation()
        slices = [p.slices for p in points]
        assert all(a <= b for a, b in zip(slices, slices[1:]))
