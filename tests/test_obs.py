"""Unit tests for :mod:`repro.obs` — events, metrics, traces, CLI."""

import io
import json

import pytest

from repro import obs
from repro.cli import main
from repro.obs import (EVENT_TYPES, DEFAULT_BOUNDS, EventLog, Histogram,
                       MetricsRegistry, ProgressMeter, Telemetry,
                       chrome_trace, counter_delta, load_metrics,
                       read_events, summarize, validate_event)


class TestHistogram:
    def test_observe_and_stats(self):
        h = Histogram()
        for value in (0.5, 1.5, 2.0):
            h.observe(value)
        assert h.count == 3
        assert h.minimum == 0.5
        assert h.maximum == 2.0
        assert h.mean == pytest.approx((0.5 + 1.5 + 2.0) / 3)

    def test_merge_is_order_independent(self):
        parts = []
        for values in ((0.1, 10.0), (2.5,), (0.0001, 7.0, 300.0)):
            h = Histogram()
            for value in values:
                h.observe(value)
            parts.append(h.as_dict())
        forward, backward = Histogram(), Histogram()
        for part in parts:
            forward.merge(part)
        for part in reversed(parts):
            backward.merge(part)
        assert forward.as_dict() == backward.as_dict()
        assert forward.count == 6

    def test_merge_rejects_mismatched_bounds(self):
        h = Histogram(bounds=(1.0, 2.0))
        with pytest.raises(ValueError):
            h.merge(Histogram().as_dict())


class TestMetricsRegistry:
    def test_counters_gauges_histograms(self):
        r = MetricsRegistry()
        r.count("a")
        r.count("a", 4)
        r.gauge("g", 2.0)
        r.gauge("g", 1.0)  # gauges keep the high-water mark
        r.observe("h", 0.5)
        snap = r.snapshot()
        assert snap["counters"] == {"a": 5}
        assert snap["gauges"] == {"g": 2.0}
        assert snap["histograms"]["h"]["count"] == 1

    def test_merge_is_order_independent(self):
        snaps = []
        for base in (1, 10, 100):
            r = MetricsRegistry()
            r.count("x", base)
            r.gauge("peak", float(base))
            r.observe("t", base / 10.0)
            snaps.append(r.snapshot())
        forward, backward = MetricsRegistry(), MetricsRegistry()
        for snap in snaps:
            forward.merge(snap)
        for snap in reversed(snaps):
            backward.merge(snap)
        assert forward.snapshot() == backward.snapshot()
        assert forward.counters["x"] == 111
        assert forward.gauges["peak"] == 100.0

    def test_counter_delta(self):
        previous = {"a": 2, "b": 5}
        current = {"a": 7, "b": 5, "c": 1}
        assert counter_delta(current, previous) == {"a": 5, "c": 1}

    def test_render_json_is_deterministic(self):
        r = MetricsRegistry()
        r.count("z")
        r.count("a")
        text = r.render_json()
        assert json.loads(text)["counters"] == {"a": 1, "z": 1}
        assert text.index('"a"') < text.index('"z"')


class TestEvents:
    def test_validate_accepts_good_event(self):
        validate_event({"ts": 0.5, "event": "note", "text": "hi"})

    @pytest.mark.parametrize("record", [
        "not a dict",
        {"event": "note"},                        # missing ts
        {"ts": -1.0, "event": "note"},            # negative ts
        {"ts": True, "event": "note"},            # bool is not a time
        {"ts": 0.0, "event": "no-such-type"},     # unknown type
        {"ts": 0.0, "event": "note", "x": [1]},   # non-scalar field
    ])
    def test_validate_rejects_bad_events(self, record):
        with pytest.raises(ValueError):
            validate_event(record)

    def test_event_log_writes_valid_monotonic_jsonl(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = EventLog(path)
        log.emit("campaign-start", campaign="t")
        log.emit("note", text="mid")
        log.emit("campaign-end", seconds=0.0)
        log.close()
        records = list(read_events(path))
        assert [r["event"] for r in records] == [
            "campaign-start", "note", "campaign-end"]
        stamps = [validate_event(r)["ts"] for r in records]
        assert stamps == sorted(stamps)

    def test_event_log_rejects_reserved_fields(self, tmp_path):
        log = EventLog(tmp_path / "e.jsonl")
        with pytest.raises(ValueError):
            log.emit("note", ts=1.0)
        log.close()

    def test_event_types_cover_the_schema(self):
        assert "task-completed" in EVENT_TYPES
        assert "store-hit" in EVENT_TYPES
        assert "shard-decision" in EVENT_TYPES


class TestTrace:
    def test_chrome_trace_structure(self):
        spans = [(0, 111, 1.0, 2.0), (1, 222, 1.5, 3.0)]
        phases = [("execute", 0.9, 3.1)]
        doc = chrome_trace(spans, phases, origin=0.0)
        events = doc["traceEvents"]
        names = {e.get("name") for e in events if e.get("ph") == "X"}
        assert "task 0" in names and "task 1" in names
        assert "execute" in names
        lanes = {e["args"]["name"] for e in events
                 if e.get("name") == "thread_name"}
        assert {"campaign phases", "worker 111", "worker 222"} <= lanes
        # complete events carry microsecond timestamps and durations
        task = next(e for e in events if e.get("name") == "task 0")
        assert task["dur"] == pytest.approx(1_000_000.0)


class TestProgress:
    def test_meter_renders_counts_and_finishes(self):
        stream = io.StringIO()
        meter = ProgressMeter(label="demo", stream=stream, min_interval=0.0)
        meter.plan(10, cached=2, skipped=3)
        for _ in range(5):
            meter.tick()
        meter.finish()
        text = stream.getvalue()
        assert "demo" in text
        assert "7/10" in text          # 2 cached + 5 executed
        assert "2 cached" in text
        assert text.endswith("\n")


class TestTelemetry:
    def test_full_lifecycle_writes_all_artifacts(self, tmp_path):
        telemetry = Telemetry(directory=tmp_path / "tel")
        telemetry.begin("demo", {"seed": 7, "event": "clash"})
        with telemetry.phase("execute"):
            telemetry.plan(2)
            telemetry.expect_tasks([0, 1])
            for index in telemetry.claim_indices(2):
                telemetry.task_completed(
                    (4321, 0.0, 0.25, {"sim.runs.predecoded": 1}),
                    index)
        telemetry.finish()
        telemetry.finish()  # idempotent

        records = list(read_events(tmp_path / "tel" / "events.jsonl"))
        for record in records:
            validate_event(record)
        start = records[0]
        assert start["event"] == "campaign-start"
        assert start["x_event"] == "clash"  # reserved keys are prefixed
        kinds = [r["event"] for r in records]
        assert kinds.count("task-completed") == 2
        assert "worker-start" in kinds and "worker-exit" in kinds

        metrics = load_metrics(tmp_path / "tel")
        assert metrics["counters"]["tasks.completed"] == 2
        assert metrics["counters"]["sim.runs.predecoded"] == 2

        trace = json.loads((tmp_path / "tel" / "trace.json").read_text())
        assert any(e.get("ph") == "X" for e in trace["traceEvents"])

        text, problems = summarize(tmp_path / "tel")
        assert problems == 0
        assert "demo" in text

    def test_claim_indices_fallback_on_mismatch(self):
        telemetry = Telemetry()
        telemetry.expect_tasks([5, 9, 12])
        assert telemetry.claim_indices(3) == [5, 9, 12]
        # a grouped dispatch (batch mode) mismatches the queue size:
        telemetry.expect_tasks([20, 21, 22, 23])
        assert telemetry.claim_indices(2) == [13, 14]
        assert telemetry.claim_indices(1) == [15]
        telemetry.finish()

    def test_campaign_and_phase_noop_on_none(self):
        with obs.campaign(None, "x", {"a": 1}) as handle:
            assert handle is None
            with obs.phase(None, "execute"):
                pass


class TestFusedTelemetry:
    """The fused engine honors the observability invariants: telemetry
    never changes an exported byte, per-engine throughput derives from
    the counters, and cold superblock compiles are visible."""

    def test_fused_export_identical_telemetry_on_off(self, tmp_path):
        from repro.attacksynth import run_attacksynth
        exports, counters = {}, None
        for label in ("off", "on"):
            export = tmp_path / f"{label}.json"
            telemetry = Telemetry() if label == "on" else None
            with obs.campaign(telemetry, "attacksynth", {"label": label}):
                run_attacksynth(1, seed=0x0B5, per_program=2,
                                key_seed=0x50F1A, engine="fused",
                                export_path=str(export),
                                telemetry=telemetry)
            exports[label] = export.read_bytes()
            if telemetry is not None:
                counters = dict(telemetry.metrics.counters)
        assert exports["on"] == exports["off"], \
            "fused attacksynth export differs with telemetry attached"
        assert counters["sim.runs.fused"] > 0
        assert counters["sim.instructions.fused"] > 0

    def test_fused_compile_counter_fires_on_hot_blocks(self):
        from repro.crypto.keys import DeviceKeys
        from repro.sim import SofiaMachine
        from repro.transform import transform
        from repro.workloads import make_workload
        workload = make_workload("crc32", "tiny")
        keys = DeviceKeys.from_seed(1)
        image = transform(workload.compile().program, keys, nonce=0x2016)
        telemetry = Telemetry()
        with obs.campaign(telemetry, "demo", {}):
            machine = SofiaMachine(image, keys, engine="fused")
            result = machine.run(2_000_000)
        assert result.ok
        counters = telemetry.metrics.counters
        # crc32's inner loop crosses the hotness threshold, so at least
        # one superblock must have been source-compiled
        assert counters["sim.fused_compile"] > 0
        baseline = SofiaMachine(image, keys, engine="predecoded")
        assert baseline.run(2_000_000).instructions == result.instructions

    def test_stats_derives_per_engine_throughput(self, tmp_path):
        telemetry = Telemetry(directory=tmp_path / "tel")
        telemetry.begin("demo", {})
        telemetry.task_completed(
            (100, 0.0, 0.5, {"sim.instructions.fused": 5000,
                             "sim.vanilla.instructions.fused": 3000}), 0)
        telemetry.finish()
        text, problems = summarize(tmp_path / "tel")
        assert problems == 0
        assert "instructions/s (fused sofia, campaign wall)" in text
        assert "instructions/s (fused vanilla, campaign wall)" in text


class TestNoteQuiet:
    def test_note_writes_unless_quiet(self, capsys):
        obs.set_quiet(False)
        obs.note("# hello")
        assert capsys.readouterr().err == "# hello\n"
        obs.set_quiet(True)
        try:
            obs.note("# silenced")
            assert capsys.readouterr().err == ""
        finally:
            obs.set_quiet(False)


class TestCli:
    def test_version_prints_package_and_code_digest(self, capsys):
        from repro import __version__
        from repro.runner.store import code_version
        assert main(["version"]) == 0
        out = capsys.readouterr().out
        assert f"repro {__version__}" in out
        assert f"code {code_version()}" in out

    def test_stats_on_missing_directory_is_usage_error(self, tmp_path):
        assert main(["stats", str(tmp_path / "nope")]) == 2

    def test_stats_on_telemetry_directory(self, tmp_path, capsys):
        telemetry = Telemetry(directory=tmp_path / "tel")
        telemetry.begin("demo", {})
        telemetry.task_completed((1, 0.0, 0.1, {}), 0)
        telemetry.finish()
        assert main(["stats", str(tmp_path / "tel")]) == 0
        assert "demo" in capsys.readouterr().out

    def test_quiet_flag_suppresses_notes(self, tmp_path, capsys):
        source = tmp_path / "p.c"
        source.write_text("int main() { print_int(33); return 0; }\n")
        assert main(["run", str(source)]) == 0
        loud = capsys.readouterr()
        assert loud.out == "33\n"
        assert loud.err.startswith("# ")
        assert main(["--quiet", "run", str(source)]) == 0
        quiet = capsys.readouterr()
        assert quiet.out == "33\n"
        assert quiet.err == ""
