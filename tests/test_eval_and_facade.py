"""Evaluation-harness and public-façade tests."""

import pytest

from repro import core
from repro.errors import ReproError
from repro.eval import (PAPER_ADPCM, experiment_blocksize,
                        experiment_muxtree, experiment_security,
                        experiment_table1, format_overhead_rows,
                        measure_overhead, render_blocksize, render_muxtree,
                        render_unroll, experiment_unroll)
from repro.workloads import make_workload


class TestOverheadMeasurement:
    @pytest.fixture(scope="class")
    def row(self):
        return measure_overhead(make_workload("crc32", "tiny"))

    def test_sofia_binary_is_larger(self, row):
        assert row.size_ratio > 1.5

    def test_sofia_needs_more_cycles(self, row):
        assert row.cycle_overhead > 0

    def test_exec_time_compounds_clock_ratio(self, row):
        expected = (1 + row.cycle_overhead) * row.clock_ratio - 1
        assert row.exec_time_overhead == pytest.approx(expected)

    def test_block_accounting(self, row):
        assert row.blocks * 8 * 4 == row.sofia_bytes

    def test_formatting(self, row):
        text = format_overhead_rows([row])
        assert "crc32" in text and "ratio" in text


class TestExperiments:
    def test_table1_shape(self):
        t = experiment_table1()
        assert t.vanilla.slices < t.sofia.slices
        assert t.vanilla.clock_mhz > t.sofia.clock_mhz

    def test_paper_adpcm_constants(self):
        assert PAPER_ADPCM["size_ratio"] == pytest.approx(2.41, abs=0.01)
        assert PAPER_ADPCM["cycle_overhead"] == pytest.approx(0.1458, abs=0.001)

    def test_security_experiment(self):
        exp = experiment_security(experiments=50)
        assert exp.bounds.si_years > 40_000
        assert "Monte-Carlo" in exp.render()

    def test_blocksize_ablation(self):
        points = experiment_blocksize(scale="tiny", block_words=(6, 8),
                                      workload="crc32")
        small, large = points
        assert small.exec_capacity == 4 and large.exec_capacity == 6
        assert small.store_forbidden == ()
        assert large.store_forbidden == (0, 1)
        assert "Block-size" in render_blocksize(points)

    def test_muxtree_scaling_is_linear_in_fanin(self):
        points = experiment_muxtree(fan_ins=(2, 4, 8))
        # k callers need exactly k-1 multiplexor blocks in total
        for p in points:
            assert p.mux_blocks == p.fan_in - 1
        assert "fan-in" in render_muxtree(points)

    def test_unroll_render(self):
        assert "unroll" in render_unroll(experiment_unroll())


class TestFacade:
    def test_c_quickstart(self):
        keys = core.make_keys(seed=2)
        program = core.build_c("int main() { print_int(6 * 7); return 0; }")
        image = core.protect(program, keys, nonce=0x2016)
        result = core.run_protected(image, keys)
        assert result.ok and result.output_ints == [42]

    def test_assembly_quickstart(self):
        program = core.build_assembly(
            "main: li a0, 2\n add a0, a0, a0\n halt\n")
        exe = core.link_vanilla(program)
        assert core.run_vanilla(exe).ok

    def test_protect_and_run(self):
        program = core.build_assembly("main: halt\n")
        assert core.protect_and_run(program).ok

    def test_raw_string_rejected(self):
        with pytest.raises(ReproError):
            core.protect("main: halt\n", core.make_keys(1), nonce=1)

    def test_compiled_program_accepted_directly(self):
        compiled = core.build_c("int main() { return 0; }")
        exe = core.link_vanilla(compiled)
        assert core.run_vanilla(exe).ok

    def test_version_exported(self):
        import repro
        assert repro.__version__
